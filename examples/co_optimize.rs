//! Processing↔circuit co-optimization: search the CNT process grid
//! (tube count × pitch spread × metallic fraction) for the cheapest
//! corner that meets a yield/delay/energy target — one composite
//! `OptimizeRequest` through the `Session` engine. Every candidate is a
//! memoized sweep, so the coordinate-descent revisits and a later
//! re-targeted search come back from the cache.
//!
//! Run with: `cargo run --release --example co_optimize`

use cnfet::core::StdCellKind;
use cnfet::immunity::McOptions;
use cnfet::{
    CandidateObserver, OptimizeRequest, OptimizeTarget, Session, SweepMetrics, VariationGrid,
};

fn main() -> cnfet::Result<()> {
    let session = Session::new();
    let target = OptimizeTarget::new()
        .min_yield(0.9)
        .max_delay_s(50e-12)
        .max_energy_j(40e-15);
    let request = OptimizeRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
        .grid(
            VariationGrid::nominal()
                .tube_counts([26, 16, 8])
                .pitch_scales([1.0, 0.8])
                .metallic_fractions([0.0, 0.01]),
        )
        .target(target)
        .passes(2)
        .metrics(SweepMetrics::ALL)
        .mc(McOptions {
            tubes: 500,
            ..McOptions::default()
        })
        .loads([1e-15])
        // Candidates stream in schedule order as the pool harvests them
        // — the same feed `/v1/jobs/{id}/stream` serves over the wire.
        .observe_candidates(CandidateObserver::new(|index, row| {
            println!(
                "  candidate {index:>2} (pass {}, {:>8} axis): {:>2} tubes/4λ, pitch×{:.3}, metallic {:>4.1}% → score {:.4}{}",
                row.pass,
                row.axis.name(),
                row.outcome.tubes_per_4lambda,
                row.outcome.pitch_scale,
                row.outcome.metallic_fraction * 100.0,
                row.score,
                if row.best_so_far { "  *" } else { "" }
            );
        }));

    println!(
        "searching {} candidate evaluations toward yield ≥ 90%, delay ≤ 50 ps, energy ≤ 40 fJ…\n",
        request.candidate_count()
    );
    let report = session.run(&request)?;
    print!("\n{}", report.render());

    // Relaxing the target is a new trajectory over the SAME candidates:
    // every outcome is memoized target-free, so only the trajectory key
    // itself is new work.
    let relaxed = request
        .clone()
        .target(OptimizeTarget::new().min_yield(0.5).max_delay_s(80e-12));
    let second = session.run(&relaxed)?;
    let stats = session.stats();
    println!(
        "\nre-targeted search: converged {} — {} optimization-class hits, {} misses, {} sweep corners executed once",
        second.converged,
        stats.optimizations.hits,
        stats.optimizations.misses,
        stats.sweeps.misses,
    );
    Ok(())
}
