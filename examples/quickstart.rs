//! Quickstart: one `Session`, the paper's NAND3 in both immune styles,
//! area comparison, immunity verdicts (submitted non-blocking), and an
//! SVG dump — everything through the generic `run`/`submit` API.
//!
//! Run with: `cargo run --example quickstart`

use cnfet::core::{check_drc, DesignRules, GenerateOptions, Sizing, StdCellKind, Style};
use cnfet::geom::render_svg;
use cnfet::{CellRequest, ImmunityRequest, SessionBuilder};

fn main() -> cnfet::Result<()> {
    // The cache behind the session is sharded and bounded; both knobs are
    // tunable (capacity 0 disables caching entirely).
    let session = SessionBuilder::new()
        .cache_capacity(1024)
        .cache_shards(8)
        .build();
    let opts = |style| GenerateOptions {
        style,
        sizing: Sizing::Matched { base_lambda: 4 },
        ..GenerateOptions::default()
    };

    // The compact layout of Figure 3(b): Euler path Vdd-A-Out-B-Vdd-C-Out.
    let new = session
        .run(&CellRequest::new(StdCellKind::Nand(3)).options(opts(Style::NewImmune)))?
        .cell;

    // The prior art of Figure 3(a): etched regions + vertical gating.
    let old = session
        .run(&CellRequest::new(StdCellKind::Nand(3)).options(opts(Style::OldEtched)))?
        .cell;

    println!("NAND3 at 4λ:");
    println!(
        "  new compact layout: {:>6.0} λ² active",
        new.active_area_l2()
    );
    println!(
        "  old etched layout:  {:>6.0} λ² active",
        old.active_area_l2()
    );
    println!(
        "  saving: {:.2}% (paper: 16.67%)",
        (old.active_area_l2() - new.active_area_l2()) / old.active_area_l2() * 100.0
    );

    // Both are 100% immune to mispositioned CNTs — but only the new one
    // passes conventional design rules (no via-on-gate). The immunity
    // verdicts are submitted non-blocking: both JobHandles resolve on the
    // session's work-stealing pool while this thread does other work.
    let new_job = session.submit(ImmunityRequest::certify(
        CellRequest::new(StdCellKind::Nand(3)).options(opts(Style::NewImmune)),
    ));
    let old_job = session.submit(ImmunityRequest::certify(
        CellRequest::new(StdCellKind::Nand(3)).options(opts(Style::OldEtched)),
    ));
    let rules = DesignRules::cnfet65();
    let drc = (
        check_drc(&new.cell, &rules).len(),
        check_drc(&old.cell, &rules).len(),
    );
    let (new_report, old_report) = (new_job.wait()?, old_job.wait()?);
    println!(
        "  immunity: new = {}, old = {}",
        new_report.immune, old_report.immune
    );
    println!(
        "  DRC violations: new = {}, old = {} (vertical gating)",
        drc.0, drc.1
    );
    let stats = session.stats();
    println!(
        "  session: {} generated, {} served from cache, {} evicted; \
         immunity verdicts {} run / {} recalled; {} jobs submitted",
        stats.cells.misses,
        stats.cells.hits,
        stats.cells.evictions,
        stats.immunity.misses,
        stats.immunity.hits,
        stats.submitted
    );
    let cache = session.cell_cache_stats();
    println!(
        "  cell cache: {} entries over {} shards (capacity {})",
        cache.entries,
        cache.shards.len(),
        cache.capacity
    );

    std::fs::write("nand3_new.svg", render_svg(&new.cell, 2.0))?;
    println!("  wrote nand3_new.svg");
    Ok(())
}
