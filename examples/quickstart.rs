//! Quickstart: one `Session`, the paper's NAND3 in both immune styles,
//! area comparison, immunity verdicts, and an SVG dump.
//!
//! Run with: `cargo run --example quickstart`

use cnfet::core::{check_drc, DesignRules, GenerateOptions, Sizing, StdCellKind, Style};
use cnfet::geom::render_svg;
use cnfet::{CellRequest, ImmunityRequest, SessionBuilder};

fn main() -> cnfet::Result<()> {
    // The cache behind the session is sharded and bounded; both knobs are
    // tunable (capacity 0 disables caching entirely).
    let session = SessionBuilder::new()
        .cache_capacity(1024)
        .cache_shards(8)
        .build();
    let opts = |style| GenerateOptions {
        style,
        sizing: Sizing::Matched { base_lambda: 4 },
        ..GenerateOptions::default()
    };

    // The compact layout of Figure 3(b): Euler path Vdd-A-Out-B-Vdd-C-Out.
    let new = session
        .generate(&CellRequest::new(StdCellKind::Nand(3)).options(opts(Style::NewImmune)))?
        .cell;

    // The prior art of Figure 3(a): etched regions + vertical gating.
    let old = session
        .generate(&CellRequest::new(StdCellKind::Nand(3)).options(opts(Style::OldEtched)))?
        .cell;

    println!("NAND3 at 4λ:");
    println!(
        "  new compact layout: {:>6.0} λ² active",
        new.active_area_l2()
    );
    println!(
        "  old etched layout:  {:>6.0} λ² active",
        old.active_area_l2()
    );
    println!(
        "  saving: {:.2}% (paper: 16.67%)",
        (old.active_area_l2() - new.active_area_l2()) / old.active_area_l2() * 100.0
    );

    // Both are 100% immune to mispositioned CNTs — but only the new one
    // passes conventional design rules (no via-on-gate). The immunity
    // requests recall the cached layouts instead of regenerating.
    let new_report = session.immunity(&ImmunityRequest::certify(
        CellRequest::new(StdCellKind::Nand(3)).options(opts(Style::NewImmune)),
    ))?;
    let old_report = session.immunity(&ImmunityRequest::certify(
        CellRequest::new(StdCellKind::Nand(3)).options(opts(Style::OldEtched)),
    ))?;
    println!(
        "  immunity: new = {}, old = {}",
        new_report.immune, old_report.immune
    );
    let rules = DesignRules::cnfet65();
    println!(
        "  DRC violations: new = {}, old = {} (vertical gating)",
        check_drc(&new.cell, &rules).len(),
        check_drc(&old.cell, &rules).len()
    );
    let stats = session.stats();
    println!(
        "  session: {} generated, {} served from cache, {} evicted; \
         immunity verdicts {} run / {} recalled",
        stats.cell_misses,
        stats.cell_hits,
        stats.cell_evictions,
        stats.immunity_misses,
        stats.immunity_hits
    );
    let cache = session.cell_cache_stats();
    println!(
        "  cell cache: {} entries over {} shards (capacity {})",
        cache.entries,
        cache.shards.len(),
        cache.capacity
    );

    std::fs::write("nand3_new.svg", render_svg(&new.cell, 2.0))?;
    println!("  wrote nand3_new.svg");
    Ok(())
}
