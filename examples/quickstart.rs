//! Quickstart: generate the paper's NAND3 in both immune styles, compare
//! areas, verify immunity, and write an SVG.
//!
//! Run with: `cargo run --example quickstart`

use cnfet::core::{
    check_drc, generate_cell, DesignRules, GenerateOptions, Sizing, StdCellKind, Style,
};
use cnfet::geom::render_svg;
use cnfet::immunity::certify;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut opts = GenerateOptions {
        sizing: Sizing::Matched { base_lambda: 4 },
        ..GenerateOptions::default()
    };

    // The compact layout of Figure 3(b): Euler path Vdd-A-Out-B-Vdd-C-Out.
    opts.style = Style::NewImmune;
    let new = generate_cell(StdCellKind::Nand(3), &opts)?;

    // The prior art of Figure 3(a): etched regions + vertical gating.
    opts.style = Style::OldEtched;
    let old = generate_cell(StdCellKind::Nand(3), &opts)?;

    println!("NAND3 at 4λ:");
    println!("  new compact layout: {:>6.0} λ² active", new.active_area_l2());
    println!("  old etched layout:  {:>6.0} λ² active", old.active_area_l2());
    println!(
        "  saving: {:.2}% (paper: 16.67%)",
        (old.active_area_l2() - new.active_area_l2()) / old.active_area_l2() * 100.0
    );

    // Both are 100% immune to mispositioned CNTs — but only the new one
    // passes conventional design rules (no via-on-gate).
    println!(
        "  immunity: new = {}, old = {}",
        certify(&new.semantics).immune,
        certify(&old.semantics).immune
    );
    let rules = DesignRules::cnfet65();
    println!(
        "  DRC violations: new = {}, old = {} (vertical gating)",
        check_drc(&new.cell, &rules).len(),
        check_drc(&old.cell, &rules).len()
    );

    std::fs::write("nand3_new.svg", render_svg(&new.cell, 2.0))?;
    println!("  wrote nand3_new.svg");
    Ok(())
}
