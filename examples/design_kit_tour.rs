//! Tour of the CNFET design kit through the session engine: build the
//! library, characterize an inverter, synthesize a custom function, and
//! export Liberty/LEF views.
//!
//! Run with: `cargo run --release --example design_kit_tour`

use cnfet::core::Scheme;
use cnfet::dk::{characterize_cell, write_lef, write_liberty};
use cnfet::flow::synthesize;
use cnfet::logic::Expr;
use cnfet::{LibraryRequest, Session};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new();
    let lib = session.run(&LibraryRequest::new(Scheme::Scheme1))?;
    println!(
        "library: {} cells at the optimal 5 nm pitch",
        lib.cells.len()
    );

    // Characterize the unit inverter across loads.
    let inv = lib.cell("INV_X1").expect("INV_X1 in library");
    let table = characterize_cell(session.kit(), inv, &[0.2e-15, 0.5e-15, 1e-15, 2e-15])?;
    println!("INV_X1 delay vs load:");
    for (l, d) in table.loads_f.iter().zip(&table.delays_s) {
        println!("  {:.2} fF → {:.2} ps", l * 1e15, d * 1e12);
    }
    println!(
        "  energy/cycle at min load: {:.3} fJ",
        table.energy_j * 1e15
    );

    // Synthesize an arbitrary function into the library's NAND2/INV basis.
    let parsed = Expr::parse("(a*b + c) * !(d*e)")?;
    let mapped = synthesize("custom", &parsed.expr, &parsed.vars, "y");
    println!(
        "synthesized `(a*b + c) * !(d*e)` into {} gates",
        mapped.instances.len()
    );

    // Export the views a P&R tool would consume. A second library request
    // is free: the session memoizes it.
    let lib = session.run(&LibraryRequest::new(Scheme::Scheme1))?;
    let liberty = write_liberty(&lib, &HashMap::new());
    let lef = write_lef(&lib);
    std::fs::write("cnfet65.lib", &liberty)?;
    std::fs::write("cnfet65.lef", &lef)?;
    println!(
        "wrote cnfet65.lib ({} B) and cnfet65.lef ({} B)",
        liberty.len(),
        lef.len()
    );
    println!(
        "session stats: {} cell generations, {} library builds, {} library hits",
        session.stats().cells.misses,
        session.stats().libraries.misses,
        session.stats().libraries.hits
    );
    Ok(())
}
