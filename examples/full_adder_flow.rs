//! The full logic-to-GDSII flow on the paper's Figure 8 full adder, as
//! three typed `FlowRequest`s against one session: placement in the CMOS
//! baseline and both CNFET schemes, transistor-level simulation, GDSII.
//!
//! Run with: `cargo run --release --example full_adder_flow`

use cnfet::core::Scheme;
use cnfet::{FlowRequest, FlowSource, Session, SimSpec};
use std::collections::BTreeMap;

fn main() -> cnfet::Result<()> {
    let session = Session::new();

    let mut ties = BTreeMap::new();
    ties.insert("b".to_string(), true);
    ties.insert("cin".to_string(), false);
    let sim = SimSpec {
        toggle_in: "a".to_string(),
        ties,
        watch_out: "sum".to_string(),
    };

    let cmos = session.run(&FlowRequest::cmos(FlowSource::FullAdder).simulate(sim.clone()))?;
    let s1 = session
        .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1).simulate(sim.clone()))?;
    let s2 = session.run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme2).with_gds())?;

    let fa = &s1.netlist;
    println!(
        "full adder: {} gates, {} nets",
        fa.instances.len(),
        fa.nets().len()
    );
    println!(
        "area: CMOS {:.0} λ², scheme1 {:.0} λ² ({:.2}x), scheme2 {:.0} λ² ({:.2}x)",
        cmos.placement.area_l2,
        s1.placement.area_l2,
        cmos.placement.area_l2 / s1.placement.area_l2,
        s2.placement.area_l2,
        cmos.placement.area_l2 / s2.placement.area_l2
    );

    let cn = s1.metrics.expect("simulation requested");
    let cm = cmos.metrics.expect("simulation requested");
    println!(
        "a→sum: CNFET {:.1} ps / {:.1} fJ vs CMOS {:.1} ps / {:.1} fJ ({:.2}x, {:.2}x)",
        cn.delay_s * 1e12,
        cn.energy_j * 1e15,
        cm.delay_s * 1e12,
        cm.energy_j * 1e15,
        cm.delay_s / cn.delay_s,
        cm.energy_j / cn.energy_j
    );

    let gds = s2.gds.expect("gds requested");
    std::fs::write("full_adder_scheme2.gds", &gds)?;
    println!("wrote full_adder_scheme2.gds ({} bytes)", gds.len());
    println!(
        "one Scheme-1 library build served both the CMOS and Scheme-1 runs: {:?}",
        session.stats()
    );
    Ok(())
}
