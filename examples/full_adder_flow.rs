//! The full logic-to-GDSII flow on the paper's Figure 8 full adder:
//! netlist → placement (both schemes) → transistor-level simulation →
//! GDSII.
//!
//! Run with: `cargo run --release --example full_adder_flow`

use cnfet::core::Scheme;
use cnfet::flow::{
    assemble_gds, full_adder, place_cmos, place_cnfet, simulate_netlist, Tech,
};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fa = full_adder();
    println!("full adder: {} gates, {} nets", fa.instances.len(), fa.nets().len());

    let cmos = place_cmos(&fa);
    let s1 = place_cnfet(&fa, Scheme::Scheme1)?;
    let s2 = place_cnfet(&fa, Scheme::Scheme2)?;
    println!("area: CMOS {:.0} λ², scheme1 {:.0} λ² ({:.2}x), scheme2 {:.0} λ² ({:.2}x)",
        cmos.area_l2,
        s1.area_l2, cmos.area_l2 / s1.area_l2,
        s2.area_l2, cmos.area_l2 / s2.area_l2);

    let mut ties = BTreeMap::new();
    ties.insert("b".to_string(), true);
    ties.insert("cin".to_string(), false);
    let cn = simulate_netlist(&fa, &s1, Tech::Cnfet, "a", &ties, "sum")?;
    let cm = simulate_netlist(&fa, &cmos, Tech::Cmos, "a", &ties, "sum")?;
    println!(
        "a→sum: CNFET {:.1} ps / {:.1} fJ vs CMOS {:.1} ps / {:.1} fJ ({:.2}x, {:.2}x)",
        cn.delay_s * 1e12,
        cn.energy_j * 1e15,
        cm.delay_s * 1e12,
        cm.energy_j * 1e15,
        cm.delay_s / cn.delay_s,
        cm.energy_j / cn.energy_j
    );

    let gds = assemble_gds("full_adder", &s2, Scheme::Scheme2);
    std::fs::write("full_adder_scheme2.gds", &gds)?;
    println!("wrote full_adder_scheme2.gds ({} bytes)", gds.len());
    Ok(())
}
