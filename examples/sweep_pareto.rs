//! Variation-aware sweep: judge the paper's cells across a CNT process
//! grid (tube count × pitch spread × metallic fraction) and print the
//! per-corner rows, the delay/energy/yield Pareto frontier, and the
//! best/worst corners — one composite `SweepRequest` through the
//! `Session` engine, fanned out on its work-stealing pool.
//!
//! Run with: `cargo run --release --example sweep_pareto`

use cnfet::core::StdCellKind;
use cnfet::immunity::McOptions;
use cnfet::{Session, SweepMetrics, SweepRequest, VariationCorner, VariationGrid};

fn corner_label(c: &VariationCorner) -> String {
    format!(
        "{:>2} tubes/4λ, pitch×{:.2}, metallic {:>4.1}%",
        c.tubes_per_4lambda,
        c.pitch_scale,
        c.metallic_fraction * 100.0
    )
}

fn main() -> cnfet::Result<()> {
    let session = Session::new();
    let request = SweepRequest::new([
        StdCellKind::Inv,
        StdCellKind::Nand(2),
        StdCellKind::Nor(2),
        StdCellKind::Aoi21,
    ])
    .grid(
        VariationGrid::nominal()
            .tube_counts([26, 16, 8])
            .pitch_scales([1.0, 0.75])
            .metallic_fractions([0.0, 0.01]),
    )
    .metrics(SweepMetrics::ALL)
    .mc(McOptions {
        tubes: 1000,
        ..McOptions::default()
    })
    .loads([1e-15]);

    let n_corners = request.grid.len();
    println!(
        "sweeping {} cells × {} corners = {} evaluations…\n",
        request.cells.len(),
        n_corners,
        request.cells.len() * n_corners
    );
    let report = session.run(&request)?;

    println!(
        "{:<10} {:<38} {:>7} {:>9} {:>9}",
        "cell", "corner", "yield", "delay", "energy"
    );
    for row in &report.rows {
        println!(
            "{:<10} {:<38} {:>6.1}% {:>7.1}ps {:>8.2}fJ",
            row.kind.name(),
            corner_label(&row.corner),
            row.yield_frac().unwrap_or(0.0) * 100.0,
            row.delay_s().unwrap_or(0.0) * 1e12,
            row.energy_j().unwrap_or(0.0) * 1e15,
        );
    }

    println!("\nPareto frontier (no row beats these on yield, delay, and energy at once):");
    for row in report.pareto_rows() {
        println!(
            "  {} @ {} — {:.1}% / {:.1} ps / {:.2} fJ",
            row.kind.name(),
            corner_label(&row.corner),
            row.yield_frac().unwrap_or(0.0) * 100.0,
            row.delay_s().unwrap_or(0.0) * 1e12,
            row.energy_j().unwrap_or(0.0) * 1e15,
        );
    }

    if let (Some(best), Some(worst)) = (&report.best_corner, &report.worst_corner) {
        println!(
            "\nbest corner:  {} (min yield {:.1}%, max delay {:.1} ps)",
            corner_label(&best.corner),
            best.min_yield.unwrap_or(0.0) * 100.0,
            best.max_delay_s.unwrap_or(0.0) * 1e12,
        );
        println!(
            "worst corner: {} (min yield {:.1}%, max delay {:.1} ps)",
            corner_label(&worst.corner),
            worst.min_yield.unwrap_or(0.0) * 100.0,
            worst.max_delay_s.unwrap_or(0.0) * 1e12,
        );
    }

    // A repeated sweep is a pure cache hit; an overlapping one reuses
    // every shared corner. Show the engine's accounting.
    session.run(&request)?;
    let stats = session.stats();
    println!(
        "\nengine: {} sweep-class requests ({} hits), {} cell generations, {} jobs submitted",
        stats.sweeps.requests(),
        stats.sweeps.hits,
        stats.cells.misses,
        stats.submitted,
    );
    Ok(())
}
