//! Per-die defect maps and fault-tolerant cell assignment.
//!
//! Samples a seeded lot of dies, tests every physical site against the
//! logical cells' layouts, and repairs each die by reassigning cells
//! onto healthy sites — matching where it suffices, the in-repo SAT
//! solver where adjacency constraints demand it. Demonstrates the two
//! memoization granularities: a repeated lot is one pure cache hit, and
//! a grown lot re-executes only the dies it adds.
//!
//! Run with `cargo run --example die_repair`.

use cnfet::core::StdCellKind;
use cnfet::repair::{DefectParams, Solver};
use cnfet::{RepairRequest, Session};

fn main() -> Result<(), cnfet::CnfetError> {
    let session = Session::new();

    // A dirty process so repair has something to do: lots of
    // mispositioned growth and a metallic residue.
    let params = DefectParams {
        metallic_fraction: 0.05,
        misposition_fraction: 0.20,
        ..DefectParams::default()
    };

    let lot = RepairRequest::new([StdCellKind::Inv, StdCellKind::Nand(2), StdCellKind::Nor(2)])
        .dies(24)
        .spares(2)
        .base_seed(0xB0BBA)
        .params(params);

    let report = session.run(&lot)?;
    print!("{}", report.render());

    // Growing the lot re-executes only the added dies: the first 24 are
    // pure Repairs-class cache hits.
    let before = session.stats().repairs;
    let grown = session.run(&lot.clone().dies(32))?;
    let after = session.stats().repairs;
    println!(
        "\ngrew the lot 24 -> 32 dies: {} die hits, {} fresh executions",
        after.hits - before.hits,
        // One of the misses is the grown lot's own report.
        after.misses - before.misses - 1,
    );
    println!(
        "yield after repair at 32 dies: {:.1}%",
        grown.yield_after_repair().unwrap_or(1.0) * 100.0
    );

    // Adjacency constraints force the SAT path (matching cannot express
    // pairwise placement coupling).
    let constrained = session.run(
        &RepairRequest::new([StdCellKind::Inv, StdCellKind::Inv])
            .dies(4)
            .spares(2)
            .base_seed(0xB0BBA)
            .params(params)
            .solver(Solver::Auto)
            .adjacent([(0, 1)]),
    )?;
    println!(
        "\nconstrained lot (cells 0,1 adjacent): solver={}, {}/{} dies repaired",
        constrained.dies[0].solver,
        constrained.repaired_dies,
        constrained.dies.len()
    );
    Ok(())
}
