//! RTL-to-GDSII: parse a structural Verilog module, place it in Scheme 2,
//! simulate it transistor-level in both technologies, and stream GDSII —
//! the complete flow the paper's design kit enables.
//!
//! Run with: `cargo run --release --example rtl_to_gds`

use cnfet::core::Scheme;
use cnfet::flow::{assemble_gds, parse_verilog, place_cmos, place_cnfet, simulate_netlist, Tech};
use std::collections::BTreeMap;

const SRC: &str = r#"
// 2:1 multiplexer with a buffered output, mapped to the CNFET library.
module mux2 (input d0, input d1, input sel, output y);
  wire nsel, t0, t1, ym;
  INV_X1   u0 (.A(sel), .OUT(nsel));
  NAND2_X1 u1 (.A(d0), .B(nsel), .OUT(t0));
  NAND2_X1 u2 (.A(d1), .B(sel),  .OUT(t1));
  NAND2_X2 u3 (.A(t0), .B(t1),   .OUT(ym));
  INV_X4   u4 (.A(ym), .OUT(yn));
  INV_X4   u5 (.A(yn), .OUT(y));
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = parse_verilog(SRC)?;
    println!("parsed `{}`: {} instances", netlist.name, netlist.instances.len());

    // Functional check straight off the netlist.
    let mut inputs = BTreeMap::new();
    inputs.insert("d0".to_string(), true);
    inputs.insert("d1".to_string(), false);
    inputs.insert("sel".to_string(), false);
    assert!(netlist.evaluate(&inputs)["y"], "mux selects d0 when sel=0");

    let placement = place_cnfet(&netlist, Scheme::Scheme2)?;
    println!(
        "placed: {:.0} λ² ({:.0}λ × {:.0}λ), utilization {:.0}%",
        placement.area_l2,
        placement.width_l,
        placement.height_l,
        placement.utilization * 100.0
    );

    let mut ties = BTreeMap::new();
    ties.insert("d0".to_string(), true);
    ties.insert("d1".to_string(), false);
    let cn = simulate_netlist(&netlist, &placement, Tech::Cnfet, "sel", &ties, "y")?;
    let cmos_p = place_cmos(&netlist);
    let cm = simulate_netlist(&netlist, &cmos_p, Tech::Cmos, "sel", &ties, "y")?;
    println!(
        "sel→y: CNFET {:.1} ps vs CMOS {:.1} ps ({:.2}x)",
        cn.delay_s * 1e12,
        cm.delay_s * 1e12,
        cm.delay_s / cn.delay_s
    );

    let gds = assemble_gds(&netlist.name, &placement, Scheme::Scheme2);
    std::fs::write("mux2.gds", &gds)?;
    println!("wrote mux2.gds ({} bytes)", gds.len());
    Ok(())
}
