//! RTL-to-GDSII as typed requests: parse a structural Verilog module,
//! place it in Scheme 2, simulate it transistor-level in both
//! technologies, and stream GDSII — the complete flow the paper's design
//! kit enables. Both technology targets are submitted together as one
//! heterogeneous non-blocking batch (`Session::submit_all`), and the
//! handles are harvested in submission order.
//!
//! Run with: `cargo run --release --example rtl_to_gds`

use cnfet::core::Scheme;
use cnfet::flow::parse_verilog;
use cnfet::{FlowRequest, FlowSource, RequestKind, Session, SimSpec};
use std::collections::BTreeMap;

const SRC: &str = r#"
// 2:1 multiplexer with a buffered output, mapped to the CNFET library.
module mux2 (input d0, input d1, input sel, output y);
  wire nsel, t0, t1, ym;
  INV_X1   u0 (.A(sel), .OUT(nsel));
  NAND2_X1 u1 (.A(d0), .B(nsel), .OUT(t0));
  NAND2_X1 u2 (.A(d1), .B(sel),  .OUT(t1));
  NAND2_X2 u3 (.A(t0), .B(t1),   .OUT(ym));
  INV_X4   u4 (.A(ym), .OUT(yn));
  INV_X4   u5 (.A(yn), .OUT(y));
endmodule
"#;

fn main() -> cnfet::Result<()> {
    // Functional check straight off the netlist.
    let netlist = parse_verilog(SRC)?;
    println!(
        "parsed `{}`: {} instances",
        netlist.name,
        netlist.instances.len()
    );
    let mut inputs = BTreeMap::new();
    inputs.insert("d0".to_string(), true);
    inputs.insert("d1".to_string(), false);
    inputs.insert("sel".to_string(), false);
    assert!(netlist.evaluate(&inputs)["y"], "mux selects d0 when sel=0");

    let session = Session::new();
    let mut ties = BTreeMap::new();
    ties.insert("d0".to_string(), true);
    ties.insert("d1".to_string(), false);
    let sim = SimSpec {
        toggle_in: "sel".to_string(),
        ties,
        watch_out: "y".to_string(),
    };

    // One non-blocking fan-out: the pool's workers run both flows while
    // this thread is free; results come back in submission order.
    let handles = session.submit_all([
        RequestKind::from(
            FlowRequest::cnfet(FlowSource::Verilog(SRC.to_string()), Scheme::Scheme2)
                .simulate(sim.clone())
                .with_gds(),
        ),
        RequestKind::from(FlowRequest::cmos(FlowSource::Verilog(SRC.to_string())).simulate(sim)),
    ]);
    let mut results = handles.into_iter().map(|h| h.wait());
    let cnfet = results
        .next()
        .expect("two handles")?
        .into_flow()
        .expect("flow response");
    let cmos = results
        .next()
        .expect("two handles")?
        .into_flow()
        .expect("flow response");

    println!(
        "placed: {:.0} λ² ({:.0}λ × {:.0}λ), utilization {:.0}%",
        cnfet.placement.area_l2,
        cnfet.placement.width_l,
        cnfet.placement.height_l,
        cnfet.placement.utilization * 100.0
    );

    let cn = cnfet.metrics.expect("simulation requested");
    let cm = cmos.metrics.expect("simulation requested");
    println!(
        "sel→y: CNFET {:.1} ps vs CMOS {:.1} ps ({:.2}x)",
        cn.delay_s * 1e12,
        cm.delay_s * 1e12,
        cm.delay_s / cn.delay_s
    );

    let gds = cnfet.gds.expect("gds requested");
    std::fs::write("mux2.gds", &gds)?;
    println!("wrote mux2.gds ({} bytes)", gds.len());
    Ok(())
}
