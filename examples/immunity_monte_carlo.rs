//! Mispositioned-CNT Monte Carlo: compare the vulnerable CMOS-style NAND2
//! of Figure 2(b) against the immune layouts under wavy random tubes —
//! one `ImmunityRequest` per style, certification and Monte-Carlo in a
//! single engine pass.
//!
//! Run with: `cargo run --release --example immunity_monte_carlo`

use cnfet::core::{GenerateOptions, StdCellKind, Style};
use cnfet::immunity::McOptions;
use cnfet::{CellRequest, ImmunityEngine, ImmunityRequest, Session};

fn main() -> cnfet::Result<()> {
    let session = Session::new();
    let mc = McOptions {
        tubes: 10_000,
        tau: 1.0,
        segment_len_lambda: 6.0,
        seed: 42,
        metallic_fraction: 0.0,
    };

    for style in [Style::Vulnerable, Style::OldEtched, Style::NewImmune] {
        let report = session.run(&ImmunityRequest {
            cell: CellRequest::new(StdCellKind::Nand(2)).options(GenerateOptions {
                style,
                ..GenerateOptions::default()
            }),
            engine: ImmunityEngine::Both(mc.clone()),
        })?;
        let mc_report = report.mc.as_ref().expect("monte-carlo ran");
        let cert = report.cert.as_ref().expect("certification ran");
        println!(
            "NAND2 {style:>4}: {:>5} / {} tubes break the function ({:.3}%), certified {}",
            mc_report.failures,
            mc_report.tubes,
            mc_report.failure_probability() * 100.0,
            if cert.immune { "immune" } else { "NOT immune" },
        );
        if let Some(w) = mc_report.witnesses.first() {
            println!(
                "  e.g. a tube creating a stray {}–{} segment through {} gates",
                w.segment.net_a,
                w.segment.net_b,
                w.segment.gates.len()
            );
        }
    }
    Ok(())
}
