//! Mispositioned-CNT Monte Carlo: compare the vulnerable CMOS-style NAND2
//! of Figure 2(b) against the immune layouts under wavy random tubes.
//!
//! Run with: `cargo run --release --example immunity_monte_carlo`

use cnfet::core::{generate_cell, GenerateOptions, StdCellKind, Style};
use cnfet::immunity::{certify, simulate, McOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = McOptions {
        tubes: 10_000,
        tau: 1.0,
        segment_len_lambda: 6.0,
        seed: 42,
    };

    for style in [Style::Vulnerable, Style::OldEtched, Style::NewImmune] {
        let cell = generate_cell(
            StdCellKind::Nand(2),
            &GenerateOptions {
                style,
                ..GenerateOptions::default()
            },
        )?;
        let mc = simulate(&cell.semantics, &opts);
        let cert = certify(&cell.semantics);
        println!(
            "NAND2 {style:>4}: {:>5} / {} tubes break the function ({:.3}%), certified {}",
            mc.failures,
            mc.tubes,
            mc.failure_probability() * 100.0,
            if cert.immune { "immune" } else { "NOT immune" },
        );
        if let Some(w) = mc.witnesses.first() {
            println!(
                "  e.g. a tube creating a stray {}–{} segment through {} gates",
                w.segment.net_a,
                w.segment.net_b,
                w.segment.gates.len()
            );
        }
    }
    Ok(())
}
