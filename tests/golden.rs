//! Golden-file tests: canonical text artifacts — the SPICE deck
//! rendering and the design kit's Liberty/LEF exports — are committed
//! under `tests/golden/` and diffed byte-for-byte against the current
//! output, so any unintended change to an exporter (float formats, line
//! order, unit conventions) fails loudly with the first differing line.
//!
//! To refresh the references after a *deliberate* format change:
//!
//! ```text
//! CNFET_GOLDEN_REGEN=1 cargo test --test golden
//! ```
//!
//! and commit the rewritten files alongside the change.

use cnfet::core::Scheme;
use cnfet::device::Polarity;
use cnfet::dk::{build_library, write_lef, write_liberty, DesignKit, TimingTable};
use cnfet::spice::{Circuit, Waveform};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Path of one committed golden file.
fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Diffs `current` against the committed golden `name`; with
/// `CNFET_GOLDEN_REGEN=1` rewrites the file instead and passes.
fn assert_matches_golden(name: &str, current: &str) {
    let path = golden_path(name);
    if std::env::var_os("CNFET_GOLDEN_REGEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, current).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\n(run with CNFET_GOLDEN_REGEN=1 to create it)",
            path.display()
        )
    });
    if current == expected {
        return;
    }
    // Report the first differing line, not a wall of text.
    for (i, (got, want)) in current.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "`{name}` first differs at line {} (regen with CNFET_GOLDEN_REGEN=1 if deliberate)",
            i + 1
        );
    }
    panic!(
        "`{name}` differs in length: {} vs {} lines",
        current.lines().count(),
        expected.lines().count()
    );
}

/// Binary twin of [`assert_matches_golden`] for artifacts that are not
/// text (GDSII streams). Reports the first differing byte offset.
fn assert_matches_golden_bytes(name: &str, current: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("CNFET_GOLDEN_REGEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, current).unwrap();
        return;
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\n(run with CNFET_GOLDEN_REGEN=1 to create it)",
            path.display()
        )
    });
    if current == expected {
        return;
    }
    let at = current
        .iter()
        .zip(&expected)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| current.len().min(expected.len()));
    panic!(
        "`{name}` first differs at byte {at} ({} vs {} bytes; regen with CNFET_GOLDEN_REGEN=1 if deliberate)",
        current.len(),
        expected.len()
    );
}

/// A loaded CNFET inverter driven by a pulse — covers every element
/// card the renderer knows (V sources in all three waveforms, R, C, and
/// both FET polarities).
fn inverter_circuit() -> Circuit {
    let kit = DesignKit::cnfet65();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(kit.cnfet.vdd));
    ckt.add_vsource(
        vin,
        Circuit::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: kit.cnfet.vdd,
            delay: 0.2e-9,
            rise: 10e-12,
            fall: 10e-12,
            width: 2e-9,
            period: 4e-9,
        },
    );
    let bias = ckt.node("bias");
    ckt.add_vsource(
        bias,
        Circuit::GROUND,
        Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 0.5), (2e-9, 0.5)]),
    );
    ckt.add_resistor(bias, out, 1e6);
    let width_m = kit.base_width_lambda as f64 * 32.5e-9;
    let n = kit
        .cnfet
        .device(Polarity::N, kit.tubes_per_4lambda, width_m);
    let p = kit
        .cnfet
        .device(Polarity::P, kit.tubes_per_4lambda, width_m);
    ckt.add_fet(out, vin, Circuit::GROUND, Arc::new(n));
    ckt.add_fet(out, vin, vdd, Arc::new(p));
    ckt.add_load(out, 1e-15);
    ckt
}

fn inverter_deck() -> String {
    inverter_circuit().to_spice("cnfet65 inverter, 1fF load")
}

#[test]
fn spice_deck_rendering_matches_golden() {
    assert_matches_golden("inverter.sp", &inverter_deck());
}

#[test]
fn inverter_transient_matches_golden() {
    // One backward-Euler pulse period through the MNA engine, rendered
    // as the canonical probe table: a byte-for-byte regression net over
    // the whole lowering → analyze → stamp → refactor → solve chain.
    let ckt = inverter_circuit();
    let mna = cnfet::spice::to_mna(&ckt);
    let pattern = Arc::new(cnfet::mna::Pattern::analyze(&mna));
    let mut engine = cnfet::mna::Engine::new(pattern);
    let wave = engine
        .tran(&mna, &cnfet::mna::TranSpec::new(20e-12, 4e-9))
        .unwrap();
    let table = wave.render_table(&[
        (
            "v(in)",
            cnfet::mna::Probe::Node(ckt.find_node("in").unwrap().0),
        ),
        (
            "v(out)",
            cnfet::mna::Probe::Node(ckt.find_node("out").unwrap().0),
        ),
        ("i(vdd)", cnfet::mna::Probe::SourceCurrent(0)),
    ]);
    assert_matches_golden("inverter.tran", &table);
}

#[test]
fn spice_deck_rendering_is_stable_across_builds() {
    // Independent constructions render byte-identically — the property
    // the golden file (and the cache keys derived from decks) relies on.
    assert_eq!(inverter_deck(), inverter_deck());
}

#[test]
fn die_repair_render_matches_golden() {
    // A fixed-seed 12-die repair lot with a constrained tail: the
    // committed rendering pins the defect sampler, the site tester, both
    // assignment solvers, and the report formatter in one artifact.
    let lot = cnfet::RepairRequest::new([
        cnfet::core::StdCellKind::Inv,
        cnfet::core::StdCellKind::Nand(2),
        cnfet::core::StdCellKind::Nor(2),
    ])
    .dies(12)
    .base_seed(0xB0BBA)
    .spares(2)
    .params(cnfet::repair::DefectParams {
        metallic_fraction: 0.05,
        misposition_fraction: 0.2,
        ..cnfet::repair::DefectParams::default()
    })
    .adjacent([(0, 1)]);
    let report = cnfet::Session::new().run(&lot).unwrap();
    assert_matches_golden("die_repair.txt", &report.render());
}

#[test]
fn adder_macro_artifacts_match_golden() {
    // A fixed-seed 8-bit carry-look-ahead macro: the committed SPICE deck
    // pins the hierarchical netlist (one `.subckt full_adder` referenced
    // by every slice, never flattened), and the committed GDSII stream
    // pins the two-deep cell/instance assembly byte-for-byte.
    let report = cnfet::Session::new()
        .run(&cnfet::MacroRequest::new(cnfet::logic::AdderKind::Cla, 8).seed(0xB0BBA))
        .unwrap();
    assert_matches_golden("adder_cla8.sp", &report.spice);
    assert_matches_golden_bytes("adder_cla8.gds", &report.gds);
}

#[test]
fn liberty_export_matches_golden() {
    let kit = DesignKit::cnfet65();
    let lib = build_library(&kit, Scheme::Scheme1).unwrap();
    // One synthetic (deterministic) timing view: golden-testing the
    // renderer must not depend on transient-simulation float noise.
    let mut timing = HashMap::new();
    timing.insert(
        "INV_X1".to_string(),
        TimingTable {
            loads_f: vec![0.5e-15, 1e-15, 2e-15],
            delays_s: vec![4.25e-12, 6.5e-12, 11.0e-12],
            energy_j: 1.375e-15,
        },
    );
    assert_matches_golden("library_scheme1.lib", &write_liberty(&lib, &timing));
}

#[test]
fn lef_export_matches_golden() {
    let kit = DesignKit::cnfet65();
    let lib = build_library(&kit, Scheme::Scheme2).unwrap();
    assert_matches_golden("library_scheme2.lef", &write_lef(&lib));
}
