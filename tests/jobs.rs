//! Integration tests of the non-blocking submission API:
//! `Session::submit` / `Session::submit_all`, `JobHandle` semantics
//! (`wait`, `try_get`, `wait_timeout`, `is_done`), handle-drop safety,
//! and heterogeneous mixes through the work-stealing pool.

use cnfet::core::{Scheme, StdCellKind};
use cnfet::immunity::McOptions;
use cnfet::{
    CellRequest, CnfetError, FlowRequest, FlowSource, ImmunityRequest, LibraryRequest,
    RequestClass, RequestKind, ResponseKind, Session, SessionBuilder, SweepCornerRequest,
    SweepMetrics, SweepRequest, TranRequest, VariationCorner, VariationGrid,
};
use std::time::{Duration, Instant};

/// A small immunity-only sweep: 2 cells × 4 corners, cheap MC.
fn small_sweep() -> SweepRequest {
    SweepRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
        .grid(
            VariationGrid::nominal()
                .tube_counts([26, 10])
                .metallic_fractions([0.0, 0.1]),
        )
        .metrics(SweepMetrics::IMMUNITY)
        .mc(McOptions {
            tubes: 100,
            ..Default::default()
        })
}

/// A deliberately slow request: a Monte-Carlo sweep big enough that a
/// freshly submitted job cannot finish within a few milliseconds.
fn slow_request() -> ImmunityRequest {
    ImmunityRequest::monte_carlo(
        StdCellKind::Aoi22,
        McOptions {
            tubes: 100_000,
            ..Default::default()
        },
    )
}

#[test]
fn submit_resolves_and_populates_the_cache() {
    let session = Session::new();
    let request = CellRequest::new(StdCellKind::Nand(3));
    let handle = session.submit(request.clone());
    let result = handle.wait().unwrap();
    assert!(!result.cached, "the job ran the generation");
    // The job went through the same cache `run` uses.
    assert!(session.run(&request).unwrap().cached);
    let stats = session.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.cells.misses, 1);
}

#[test]
fn try_get_and_wait_timeout_on_a_slow_request() {
    let session = SessionBuilder::new().batch_workers(1).build();
    let mut handle = session.submit(slow_request());

    // The Monte-Carlo sweep takes far longer than this: the handle must
    // still be pending, and a short wait must expire.
    assert!(handle.try_get().is_none(), "pending → try_get is None");
    let t0 = Instant::now();
    assert!(
        handle.wait_timeout(Duration::from_millis(1)).is_none(),
        "wait_timeout expires while the sweep runs"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "timeout returned promptly"
    );

    // Waiting long enough resolves; the result is collected exactly once.
    let report = handle
        .wait_timeout(Duration::from_secs(120))
        .expect("sweep finishes")
        .unwrap();
    assert!(report.mc.is_some());
    assert!(handle.is_done());
    assert!(handle.try_get().is_none(), "already collected");
}

#[test]
fn dropped_handle_does_not_poison_the_cache() {
    let session = SessionBuilder::new().batch_workers(1).build();
    let request = ImmunityRequest::certify(StdCellKind::Nand(2));
    drop(session.submit(request.clone()));

    // The job still runs: poll the stats until its miss is recorded
    // (the miss counter is bumped after the value is resident).
    let t0 = Instant::now();
    while session.stats().immunity.misses == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "abandoned job never ran"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // And the cached verdict it left behind is sound, not poisoned.
    let report = session.run(&request).unwrap();
    assert!(report.immune);
    assert_eq!(session.stats().immunity.hits, 1);
}

#[test]
fn submit_all_heterogeneous_returns_results_in_submission_order() {
    let session = Session::new();
    let requests = vec![
        RequestKind::from(CellRequest::new(StdCellKind::Nand(3))),
        RequestKind::from(ImmunityRequest::certify(StdCellKind::Nand(3))),
        RequestKind::from(FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1)),
        RequestKind::from(LibraryRequest::new(Scheme::Scheme2)),
        RequestKind::from(CellRequest::new(StdCellKind::Inv)),
        RequestKind::from(TranRequest::new(
            "V1 in 0 PWL(0 0 1e-12 1)\nR1 in out 1k\nC1 out 0 1p\n.end",
            1e-11,
            1e-9,
        )),
    ];
    let classes: Vec<Option<RequestClass>> = requests.iter().map(RequestKind::class).collect();
    assert_eq!(classes.last(), Some(&None), "tran belongs to no class");

    let handles = session.submit_all(requests);
    assert_eq!(handles.len(), 6);
    let responses: Vec<ResponseKind> = handles.into_iter().map(|h| h.wait().unwrap()).collect();

    // One response per request, matching kinds in submission order.
    let got: Vec<Option<RequestClass>> = responses.iter().map(ResponseKind::class).collect();
    assert_eq!(got, classes, "results keep submission order");

    match &responses[0] {
        ResponseKind::Cell(c) => assert_eq!(c.cell.kind, StdCellKind::Nand(3)),
        other => panic!("expected a cell, got {other:?}"),
    }
    assert!(responses[1].clone().into_immunity().unwrap().immune);
    assert!(responses[2].clone().into_flow().unwrap().placement.area_l2 > 0.0);
    assert!(!responses[3]
        .clone()
        .into_library()
        .unwrap()
        .cells
        .is_empty());
    let tran = responses[5].clone().into_tran().unwrap();
    assert!(!tran.time.is_empty());
    assert!((tran.probe("out").unwrap().last().unwrap() - 0.63).abs() < 0.01);
    assert_eq!(session.stats().submitted, 6);
}

#[test]
fn wrapped_and_unwrapped_requests_share_one_cache_entry() {
    // RequestKind must not double-cache: the inner request memoizes
    // itself, so a wrapped submit and a direct run share the entry.
    let session = Session::new();
    let request = CellRequest::new(StdCellKind::Oai21);
    let wrapped = session
        .submit(RequestKind::from(request.clone()))
        .wait()
        .unwrap()
        .into_cell()
        .unwrap();
    let direct = session.run(&request).unwrap();
    assert!(std::sync::Arc::ptr_eq(&wrapped.cell, &direct.cell));
    assert!(direct.cached);
    assert_eq!(session.stats().cells.misses, 1);
}

#[test]
fn composite_sweep_does_not_deadlock_a_single_worker_pool() {
    // The sweep executes ON the pool's only worker and fans its corner
    // sub-requests onto that same pool: without the helping protocol the
    // worker would park on handles nobody is left to serve. Submit
    // individual cell requests around it too — everything must resolve.
    let session = SessionBuilder::new().batch_workers(1).build();
    let before = session.submit(CellRequest::new(StdCellKind::Oai21));
    let sweep = session.submit(small_sweep());
    let after = session.submit(CellRequest::new(StdCellKind::Aoi22));

    let mut sweep = sweep;
    let report = sweep
        .wait_timeout(Duration::from_secs(300))
        .expect("composite sweep completes on a one-worker pool")
        .unwrap();
    assert_eq!(report.rows.len(), 2 * 4);
    assert!(before.wait().is_ok());
    assert!(after.wait().is_ok());

    // Every row landed in the Sweeps cache (8 corners + the sweep key).
    let stats = session.stats();
    assert_eq!(stats.sweeps.misses, 9);
}

#[test]
fn concurrent_identical_sweeps_reduce_once() {
    // Two identical sweeps submitted at once: single-flight on the sweep
    // key means one reduction; the other submission waits and shares the
    // same Arc'd report.
    let session = SessionBuilder::new().batch_workers(2).build();
    let a = session.submit(small_sweep());
    let b = session.submit(small_sweep());
    let ra = a.wait().unwrap();
    let rb = b.wait().unwrap();
    assert!(std::sync::Arc::ptr_eq(&ra, &rb), "one reduction, shared");
    let stats = session.stats();
    assert_eq!(stats.sweeps.misses, 9, "8 corners + 1 sweep key");
    assert_eq!(stats.sweeps.hits, 1, "the duplicate sweep hit");
}

#[test]
fn abandoned_sweep_handles_cancel_on_session_drop() {
    // Occupy the single worker with a slow request, queue a sweep behind
    // it, and drop the session: the queued sweep is discarded during
    // shutdown and must resolve to Canceled rather than strand a waiter.
    let session = SessionBuilder::new().batch_workers(1).build();
    let running = session.submit(slow_request());
    let t0 = Instant::now();
    while session.cache_stats(RequestClass::Immunity).in_flight == 0 {
        assert!(t0.elapsed() < Duration::from_secs(60), "job never started");
        std::thread::yield_now();
    }
    let queued_sweep = session.submit(small_sweep());
    let queued_corner = session.submit(RequestKind::SweepCorner(SweepCornerRequest {
        cell: CellRequest::new(StdCellKind::Inv),
        corner: VariationCorner::nominal(),
        metrics: SweepMetrics::IMMUNITY,
        mc: McOptions {
            tubes: 100,
            ..Default::default()
        },
        loads_f: vec![1e-15],
    }));

    drop(session);
    assert!(running.wait().unwrap().mc.is_some(), "in-flight job landed");
    assert!(matches!(queued_sweep.wait(), Err(CnfetError::Canceled)));
    assert!(matches!(queued_corner.wait(), Err(CnfetError::Canceled)));
}

#[test]
fn queued_jobs_cancel_when_the_session_drops() {
    let session = SessionBuilder::new().batch_workers(1).build();
    let running = session.submit(slow_request());
    // Wait until the slow job is actually executing (its build claims the
    // immunity cache key), so the second job is definitely queued behind
    // it on the single worker.
    let t0 = Instant::now();
    while session.cache_stats(RequestClass::Immunity).in_flight == 0 {
        assert!(t0.elapsed() < Duration::from_secs(60), "job never started");
        std::thread::yield_now();
    }
    let queued = session.submit(CellRequest::new(StdCellKind::Inv));

    // Dropping the last Session handle shuts the engine down: the
    // in-flight job finishes (it holds the core alive while it runs);
    // the queued one is popped during shutdown and canceled.
    drop(session);
    assert!(running.wait().unwrap().mc.is_some(), "in-flight job landed");
    assert!(matches!(queued.wait(), Err(CnfetError::Canceled)));
}
