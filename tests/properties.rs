//! Property-based tests of the core invariants.

use cnfet::core::{generate_from_networks, GenerateOptions, Sizing, StdCellKind};
use cnfet::immunity::certify;
use cnfet::logic::{euler_trails, Expr, PullGraph, SpNetwork, VarTable};
use proptest::prelude::*;

/// Random positive series–parallel expressions over up to 6 variables.
fn sp_expr() -> impl Strategy<Value = String> {
    let leaf = prop::sample::select(vec!["a", "b", "c", "d", "e", "f"])
        .prop_map(|s| s.to_string());
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}*{b})")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every edge of a pull graph is covered exactly once by the Euler
    /// trail decomposition.
    #[test]
    fn euler_trails_cover_every_edge_once(expr in sp_expr()) {
        let mut vars = VarTable::new();
        let e = Expr::parse_with(&expr, &mut vars).unwrap();
        let net = SpNetwork::from_expr(&e).unwrap();
        let graph = PullGraph::from_network(&net);
        let trails = euler_trails(&graph);
        let mut covered = vec![0usize; graph.edge_count()];
        for t in &trails {
            for (i, eid) in t.edges.iter().enumerate() {
                covered[eid.0 as usize] += 1;
                let edge = graph.edge(*eid);
                let (a, b) = (t.nodes[i], t.nodes[i + 1]);
                prop_assert!(
                    (edge.a == a && edge.b == b) || (edge.a == b && edge.b == a),
                    "trail edge endpoints mismatch"
                );
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// The dual of the dual is the original network, and the dual conducts
    /// exactly when the original does not (under complemented inputs).
    #[test]
    fn duality_laws(expr in sp_expr()) {
        let mut vars = VarTable::new();
        let e = Expr::parse_with(&expr, &mut vars).unwrap();
        let net = SpNetwork::from_expr(&e).unwrap();
        prop_assert_eq!(net.dual().dual(), net.clone());
        let n = vars.len();
        let full = (1u64 << n) - 1;
        for m in 0..=full {
            prop_assert_eq!(net.dual().conducts(m), !net.conducts(!m & full));
        }
    }

    /// Any random series–parallel function laid out with the new compact
    /// technique generates, passes DRC-relevant invariants, and is
    /// certified 100% immune to mispositioned CNTs.
    #[test]
    fn arbitrary_functions_generate_immune_layouts(expr in sp_expr()) {
        let mut vars = VarTable::new();
        let e = Expr::parse_with(&expr, &mut vars).unwrap();
        let pdn = SpNetwork::from_expr(&e).unwrap();
        let pun = pdn.dual();
        let opts = GenerateOptions {
            sizing: Sizing::Uniform { width_lambda: 4 },
            ..GenerateOptions::default()
        };
        let cell = generate_from_networks(
            "prop".to_string(),
            StdCellKind::Inv, // kind tag is informational here
            pdn.clone(),
            pun,
            vars,
            &opts,
        ).unwrap();
        prop_assert!(cell.active_area_l2() > 0.0);
        let report = certify(&cell.semantics);
        prop_assert!(report.immune, "harmful: {:?}", report.harmful);
    }

    /// Paths of a network characterize its conduction exactly.
    #[test]
    fn paths_characterize_conduction(expr in sp_expr()) {
        let mut vars = VarTable::new();
        let e = Expr::parse_with(&expr, &mut vars).unwrap();
        let net = SpNetwork::from_expr(&e).unwrap();
        let paths = net.paths();
        let n = vars.len();
        for m in 0..1u64 << n {
            let by_paths = paths.iter().any(|p| p.iter().all(|v| m >> v.index() & 1 == 1));
            prop_assert_eq!(by_paths, net.conducts(m));
        }
    }
}
