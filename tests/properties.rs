//! Property-based tests of the core invariants.
//!
//! The workspace builds without network access, so instead of `proptest`
//! these use the in-repo deterministic RNG (`cnfet_rng`) to sample random
//! series–parallel expressions: same properties, reproducible cases.

use cnfet::core::{GenerateOptions, Sizing, StdCellKind};
use cnfet::logic::{euler_trails, AdderKind, Expr, PullGraph, SpNetwork, VarTable};
use cnfet::repair::DefectParams;
use cnfet::{
    MacroRequest, RepairRequest, Session, SessionBuilder, SweepMetrics, SweepRequest, VariationGrid,
};
use cnfet_rng::{rngs::StdRng, Rng, SeedableRng};

const CASES: usize = 64;

/// Random positive series–parallel expression over up to 6 variables,
/// recursion-bounded like the old proptest strategy (depth 3).
fn sp_expr(rng: &mut StdRng, depth: usize) -> String {
    let leaves = ["a", "b", "c", "d", "e", "f"];
    if depth == 0 || rng.gen_range(0..3u32) == 0 {
        return leaves[rng.gen_range(0..leaves.len())].to_string();
    }
    let a = sp_expr(rng, depth - 1);
    let b = sp_expr(rng, depth - 1);
    if rng.gen_range(0..2u32) == 0 {
        format!("({a}*{b})")
    } else {
        format!("({a}+{b})")
    }
}

fn parse(expr: &str) -> (SpNetwork, VarTable) {
    let mut vars = VarTable::new();
    let e = Expr::parse_with(expr, &mut vars).unwrap();
    (SpNetwork::from_expr(&e).unwrap(), vars)
}

/// Every edge of a pull graph is covered exactly once by the Euler trail
/// decomposition.
#[test]
fn euler_trails_cover_every_edge_once() {
    let mut rng = StdRng::seed_from_u64(0xE0_1E5);
    for case in 0..CASES {
        let expr = sp_expr(&mut rng, 3);
        let (net, _) = parse(&expr);
        let graph = PullGraph::from_network(&net);
        let trails = euler_trails(&graph);
        let mut covered = vec![0usize; graph.edge_count()];
        for t in &trails {
            for (i, eid) in t.edges.iter().enumerate() {
                covered[eid.0 as usize] += 1;
                let edge = graph.edge(*eid);
                let (a, b) = (t.nodes[i], t.nodes[i + 1]);
                assert!(
                    (edge.a == a && edge.b == b) || (edge.a == b && edge.b == a),
                    "case {case} `{expr}`: trail edge endpoints mismatch"
                );
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "case {case} `{expr}`: {covered:?}"
        );
    }
}

/// The dual of the dual is the original network, and the dual conducts
/// exactly when the original does not (under complemented inputs).
#[test]
fn duality_laws() {
    let mut rng = StdRng::seed_from_u64(0xD0A1);
    for case in 0..CASES {
        let expr = sp_expr(&mut rng, 3);
        let (net, vars) = parse(&expr);
        assert_eq!(net.dual().dual(), net, "case {case} `{expr}`");
        let n = vars.len();
        let full = (1u64 << n) - 1;
        for m in 0..=full {
            assert_eq!(
                net.dual().conducts(m),
                !net.conducts(!m & full),
                "case {case} `{expr}` at {m:b}"
            );
        }
    }
}

/// Any random series–parallel function laid out with the new compact
/// technique generates, passes DRC-relevant invariants, and is certified
/// 100% immune to mispositioned CNTs. Runs through the session engine,
/// which also exercises the custom-network cache path.
#[test]
fn arbitrary_functions_generate_immune_layouts() {
    let session = Session::new();
    let opts = GenerateOptions {
        sizing: Sizing::Uniform { width_lambda: 4 },
        ..GenerateOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(0x1A_90);
    for case in 0..CASES {
        let expr = sp_expr(&mut rng, 3);
        let (pdn, vars) = parse(&expr);
        let pun = pdn.dual();
        let result = session
            .generate_custom(format!("prop_{expr}"), pdn, pun, vars, Some(opts.clone()))
            .unwrap();
        assert!(result.cell.active_area_l2() > 0.0, "case {case} `{expr}`");
        let report = cnfet::immunity::certify(&result.cell.semantics);
        assert!(
            report.immune,
            "case {case} `{expr}` harmful: {:?}",
            report.harmful
        );
    }
    // Duplicate expressions across cases are cache hits, never repeats.
    let stats = session.stats();
    assert_eq!(stats.cells.requests(), CASES as u64);
    assert_eq!(stats.cells.misses, session.cached_cells() as u64);
}

/// The reference sweep for the determinism properties: two cells, eight
/// corners across every axis, every metric — including the rendered MNA
/// transient waveforms — fixed seeds everywhere.
fn reference_sweep() -> SweepRequest {
    SweepRequest::new([StdCellKind::Inv, StdCellKind::Nor(2)])
        .grid(
            VariationGrid::nominal()
                .tube_counts([26, 12])
                .pitch_scales([1.0, 0.8])
                .metallic_fractions([0.0, 0.05])
                .seeds([0xFEED]),
        )
        .metrics(SweepMetrics::ALL.with_waveforms())
        .mc(cnfet::immunity::McOptions {
            tubes: 120,
            ..Default::default()
        })
        .loads([0.5e-15, 2e-15])
}

/// A sweep report's canonical rendering: `Debug` covers every row, every
/// float, the Pareto indices and both summaries, so byte-equality of the
/// rendering is byte-equality of the report.
fn render(report: &cnfet::SweepReport) -> String {
    format!("{report:#?}")
}

/// A fixed-seed sweep must produce a byte-identical report no matter how
/// the work is scheduled: one worker, two workers, or auto-sized, and
/// with memoization disabled entirely (`cache_capacity(0)` — every
/// corner re-executes instead of being recalled). Scheduling and caching
/// may only change *when* rows are computed, never *what* they contain.
#[test]
fn sweep_reports_are_deterministic_across_workers_and_cache() {
    let reference = render(
        &SessionBuilder::new()
            .batch_workers(1)
            .build()
            .run(&reference_sweep())
            .unwrap(),
    );
    for workers in [2usize, 0] {
        let session = SessionBuilder::new().batch_workers(workers).build();
        let report = session.run(&reference_sweep()).unwrap();
        assert_eq!(
            render(&report),
            reference,
            "report changed under batch_workers({workers})"
        );
    }
    let uncached = SessionBuilder::new()
        .cache_capacity(0)
        .batch_workers(2)
        .build();
    let report = uncached.run(&reference_sweep()).unwrap();
    assert_eq!(render(&report), reference, "report changed with cache off");
    // With capacity 0 nothing was memoized — every corner executed.
    assert_eq!(uncached.stats().sweeps.hits, 0);
}

/// Submitting the same sweep non-blocking (through the pool) yields the
/// same bytes as the synchronous path.
#[test]
fn sweep_reports_are_deterministic_across_submission_paths() {
    let sync_report = render(&Session::new().run(&reference_sweep()).unwrap());
    let session = SessionBuilder::new().batch_workers(1).build();
    let submitted = session.submit(reference_sweep()).wait().unwrap();
    assert_eq!(render(&submitted), sync_report);
}

/// The reference repair lot for the determinism properties: three cell
/// types per die, a dirty defect mix so some dies need spares (and some
/// are unrepairable), fixed seed base.
fn reference_repair() -> RepairRequest {
    RepairRequest::new([StdCellKind::Inv, StdCellKind::Nand(2), StdCellKind::Nor(2)])
        .dies(24)
        .base_seed(0xFEED)
        .spares(2)
        .params(DefectParams {
            metallic_fraction: 0.05,
            misposition_fraction: 0.2,
            ..DefectParams::default()
        })
}

/// A fixed-seed repair lot must render a byte-identical report no matter
/// how the per-die fan-out is scheduled: one worker, two workers, or
/// auto-sized (which in CI also spans `CNFET_TEST_WORKERS ∈ {auto, 1}` —
/// `batch_workers(0)` defers to that variable), and with memoization
/// disabled entirely. Each die's defect stream is keyed by
/// `base_seed ⊕ die`, never by which worker sampled it.
#[test]
fn repair_reports_are_deterministic_across_workers_and_cache() {
    let reference = SessionBuilder::new()
        .batch_workers(1)
        .build()
        .run(&reference_repair())
        .unwrap()
        .render();
    for workers in [2usize, 0] {
        let session = SessionBuilder::new().batch_workers(workers).build();
        let report = session.run(&reference_repair()).unwrap();
        assert_eq!(
            report.render(),
            reference,
            "report changed under batch_workers({workers})"
        );
    }
    let uncached = SessionBuilder::new()
        .cache_capacity(0)
        .batch_workers(2)
        .build();
    let report = uncached.run(&reference_repair()).unwrap();
    assert_eq!(report.render(), reference, "report changed with cache off");
    // With capacity 0 nothing was memoized — every die executed.
    assert_eq!(uncached.stats().repairs.hits, 0);
}

/// Submitting the same repair lot non-blocking (through the pool) yields
/// the same bytes as the synchronous path.
#[test]
fn repair_reports_are_deterministic_across_submission_paths() {
    let sync_report = Session::new().run(&reference_repair()).unwrap().render();
    let session = SessionBuilder::new().batch_workers(1).build();
    let submitted = session.submit(reference_repair()).wait().unwrap();
    assert_eq!(submitted.render(), sync_report);
}

/// The reference macro for the determinism properties: a 32-bit
/// carry-look-ahead adder, fixed slice-jitter seed.
fn reference_macro() -> MacroRequest {
    MacroRequest::new(AdderKind::Cla, 32).seed(0xFEED)
}

/// A fixed-seed macro must render a byte-identical report — and emit
/// byte-identical SPICE and GDS artifacts — no matter how the per-slice
/// fan-out is scheduled: one worker, two workers, or auto-sized (which
/// in CI also spans `CNFET_TEST_WORKERS ∈ {auto, 1}` — `batch_workers(0)`
/// defers to that variable), and with memoization disabled entirely.
/// Each slice's load jitter is keyed by `seed ⊕ bit`, never by which
/// worker characterized it or whether its sub-cells were recalled.
#[test]
fn macro_reports_are_deterministic_across_workers_and_cache() {
    let reference = SessionBuilder::new()
        .batch_workers(1)
        .build()
        .run(&reference_macro())
        .unwrap();
    for workers in [2usize, 0] {
        let session = SessionBuilder::new().batch_workers(workers).build();
        let report = session.run(&reference_macro()).unwrap();
        assert_eq!(
            report.render(),
            reference.render(),
            "report changed under batch_workers({workers})"
        );
        assert_eq!(report.spice, reference.spice, "SPICE changed ({workers})");
        assert_eq!(report.gds, reference.gds, "GDS changed ({workers})");
    }
    let uncached = SessionBuilder::new()
        .cache_capacity(0)
        .batch_workers(2)
        .build();
    let report = uncached.run(&reference_macro()).unwrap();
    assert_eq!(
        report.render(),
        reference.render(),
        "report changed with cache off"
    );
    assert_eq!(
        report.spice, reference.spice,
        "SPICE changed with cache off"
    );
    assert_eq!(report.gds, reference.gds, "GDS changed with cache off");
    // With capacity 0 nothing was memoized — every slice executed.
    assert_eq!(uncached.stats().macros.hits, 0);
}

/// Submitting the same macro non-blocking (through the pool) yields the
/// same bytes as the synchronous path.
#[test]
fn macro_reports_are_deterministic_across_submission_paths() {
    let sync_report = Session::new().run(&reference_macro()).unwrap().render();
    let session = SessionBuilder::new().batch_workers(1).build();
    let submitted = session.submit(reference_macro()).wait().unwrap();
    assert_eq!(submitted.render(), sync_report);
}

/// Paths of a network characterize its conduction exactly.
#[test]
fn paths_characterize_conduction() {
    let mut rng = StdRng::seed_from_u64(0xFA_77);
    for case in 0..CASES {
        let expr = sp_expr(&mut rng, 3);
        let (net, vars) = parse(&expr);
        let paths = net.paths();
        let n = vars.len();
        for m in 0..1u64 << n {
            let by_paths = paths
                .iter()
                .any(|p| p.iter().all(|v| m >> v.index() & 1 == 1));
            assert_eq!(by_paths, net.conducts(m), "case {case} `{expr}` at {m:b}");
        }
    }
}
