//! Integration tests spanning the whole stack through the `Session`
//! engine: logic → layout → DRC → immunity → GDSII, and netlist →
//! placement → simulation.

use cnfet::core::{check_drc, DesignRules, GenerateOptions, Scheme, Sizing, StdCellKind, Style};
use cnfet::geom::{read_gds, write_gds, Layer, Library};
use cnfet::immunity::McOptions;
use cnfet::{CellRequest, ImmunityEngine, ImmunityRequest, Session};

fn opts(scheme: Scheme) -> GenerateOptions {
    GenerateOptions {
        scheme,
        sizing: Sizing::Matched { base_lambda: 4 },
        ..GenerateOptions::default()
    }
}

#[test]
fn every_catalog_cell_full_pipeline() {
    let session = Session::new();
    let rules = DesignRules::cnfet65();
    for kind in StdCellKind::ALL {
        for scheme in [Scheme::Scheme1, Scheme::Scheme2] {
            let cell = session
                .run(&CellRequest::new(kind).options(opts(scheme)))
                .unwrap_or_else(|e| panic!("{kind} {scheme}: {e}"))
                .cell;

            // DRC clean.
            let drc = check_drc(&cell.cell, &rules);
            assert!(drc.is_empty(), "{kind} {scheme}: {drc:?}");

            // Certified 100% immune.
            let report = session
                .run(&ImmunityRequest {
                    cell: CellRequest::new(kind).options(opts(scheme)),
                    engine: ImmunityEngine::Certify,
                })
                .unwrap();
            assert!(report.immune, "{kind} {scheme} failed certification");

            // Streams to GDS and back without loss of shape counts.
            let mut lib = Library::new("pipeline");
            lib.add_cell(cell.cell.clone());
            let bytes = write_gds(&lib);
            let back = read_gds(&bytes).expect("valid gds");
            let orig = lib.cells()[0].shapes().len();
            let rt = back.cells()[0].shapes().len();
            assert_eq!(orig, rt, "{kind} {scheme}: gds round trip");
        }
    }
    // Each (kind, scheme) was generated once and recalled once by the
    // immunity request — the engine's whole point.
    let stats = session.stats();
    assert_eq!(stats.cells.misses, 2 * StdCellKind::ALL.len() as u64);
    assert_eq!(stats.cells.hits, 2 * StdCellKind::ALL.len() as u64);
}

#[test]
fn new_layout_never_larger_than_old() {
    // The headline claim of Section III: the compact technique saves area
    // for every cell and every size. Generated as one batched request
    // matrix through the session.
    let session = Session::new();
    let mut requests = Vec::new();
    for kind in StdCellKind::ALL {
        for w in [3, 4, 6, 10] {
            for style in [Style::NewImmune, Style::OldEtched] {
                requests.push(CellRequest::new(kind).options(GenerateOptions {
                    style,
                    sizing: Sizing::Uniform { width_lambda: w },
                    ..GenerateOptions::default()
                }));
            }
        }
    }
    let results = session.run_batch(&requests);
    for pair in results.chunks(2) {
        let new = pair[0].as_ref().expect("generates");
        let old = pair[1].as_ref().expect("generates");
        assert!(
            new.cell.active_area_l2() <= old.cell.active_area_l2() + 1e-9,
            "{}: new {} > old {}",
            new.cell.name,
            new.cell.active_area_l2(),
            old.cell.active_area_l2()
        );
    }
}

#[test]
fn vulnerable_layouts_fail_where_immune_ones_do_not() {
    let session = Session::new();
    let mc = ImmunityEngine::MonteCarlo(McOptions {
        tubes: 4000,
        ..McOptions::default()
    });
    let vulnerable = session
        .run(&ImmunityRequest {
            cell: CellRequest::new(StdCellKind::Nand(2)).options(GenerateOptions {
                style: Style::Vulnerable,
                ..GenerateOptions::default()
            }),
            engine: mc.clone(),
        })
        .expect("generates");
    let immune = session
        .run(&ImmunityRequest {
            cell: CellRequest::new(StdCellKind::Nand(2)),
            engine: mc,
        })
        .expect("generates");
    assert!(
        vulnerable.mc.as_ref().unwrap().failures > 0,
        "vulnerable layout never failed"
    );
    assert_eq!(
        immune.mc.as_ref().unwrap().failures,
        0,
        "immune layout failed"
    );
    assert!(!vulnerable.immune && immune.immune);
}

#[test]
fn scheme2_cells_are_shorter_scheme1_cells_are_narrower() {
    let session = Session::new();
    for kind in [StdCellKind::Inv, StdCellKind::Nand(2), StdCellKind::Aoi21] {
        let mk = |scheme| {
            session
                .run(&CellRequest::new(kind).options(GenerateOptions {
                    scheme,
                    ..GenerateOptions::default()
                }))
                .expect("generates")
                .cell
        };
        let s1 = mk(Scheme::Scheme1);
        let s2 = mk(Scheme::Scheme2);
        assert!(s2.height_lambda < s1.height_lambda, "{kind}");
        assert!(s2.width_lambda > s1.width_lambda, "{kind}");
    }
}

#[test]
fn gds_stream_contains_cnt_doping_and_etch_layers() {
    let session = Session::new();
    let old = session
        .run(
            &CellRequest::new(StdCellKind::Nand(3)).options(GenerateOptions {
                style: Style::OldEtched,
                ..GenerateOptions::default()
            }),
        )
        .expect("generates");
    let mut lib = Library::new("layers");
    lib.add_cell(old.cell.cell.clone());
    let back = read_gds(&write_gds(&lib)).expect("valid gds");
    let cell = &back.cells()[0];
    for layer in [
        Layer::CntActive,
        Layer::PDoping,
        Layer::NDoping,
        Layer::Etch,
        Layer::Via,
    ] {
        assert!(
            cell.shapes_on(layer).count() > 0,
            "missing {layer} shapes after round trip"
        );
    }
}
