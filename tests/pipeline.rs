//! Integration tests spanning the whole stack: logic → layout → DRC →
//! immunity → GDSII, and netlist → placement → simulation.

use cnfet::core::{
    check_drc, generate_cell, DesignRules, GenerateOptions, Scheme, Sizing, StdCellKind, Style,
};
use cnfet::geom::{read_gds, write_gds, Layer, Library};
use cnfet::immunity::{certify, simulate, McOptions};

#[test]
fn every_catalog_cell_full_pipeline() {
    let rules = DesignRules::cnfet65();
    for kind in StdCellKind::ALL {
        for scheme in [Scheme::Scheme1, Scheme::Scheme2] {
            let cell = generate_cell(
                kind,
                &GenerateOptions {
                    scheme,
                    sizing: Sizing::Matched { base_lambda: 4 },
                    ..GenerateOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{kind} {scheme}: {e}"));

            // DRC clean.
            let drc = check_drc(&cell.cell, &rules);
            assert!(drc.is_empty(), "{kind} {scheme}: {drc:?}");

            // Certified 100% immune.
            assert!(
                certify(&cell.semantics).immune,
                "{kind} {scheme} failed certification"
            );

            // Streams to GDS and back without loss of shape counts.
            let mut lib = Library::new("pipeline");
            lib.add_cell(cell.cell.clone());
            let bytes = write_gds(&lib);
            let back = read_gds(&bytes).expect("valid gds");
            let orig = lib.cells()[0].shapes().len();
            let rt = back.cells()[0].shapes().len();
            assert_eq!(orig, rt, "{kind} {scheme}: gds round trip");
        }
    }
}

#[test]
fn new_layout_never_larger_than_old() {
    // The headline claim of Section III: the compact technique saves area
    // for every cell and every size.
    for kind in StdCellKind::ALL {
        for w in [3, 4, 6, 10] {
            let mk = |style| {
                generate_cell(
                    kind,
                    &GenerateOptions {
                        style,
                        sizing: Sizing::Uniform { width_lambda: w },
                        ..GenerateOptions::default()
                    },
                )
                .expect("generates")
            };
            let new = mk(Style::NewImmune);
            let old = mk(Style::OldEtched);
            assert!(
                new.active_area_l2() <= old.active_area_l2() + 1e-9,
                "{kind} at {w}λ: new {} > old {}",
                new.active_area_l2(),
                old.active_area_l2()
            );
        }
    }
}

#[test]
fn vulnerable_layouts_fail_where_immune_ones_do_not() {
    let opts = McOptions {
        tubes: 4000,
        ..McOptions::default()
    };
    let vulnerable = generate_cell(
        StdCellKind::Nand(2),
        &GenerateOptions {
            style: Style::Vulnerable,
            ..GenerateOptions::default()
        },
    )
    .expect("generates");
    let immune = generate_cell(StdCellKind::Nand(2), &GenerateOptions::default())
        .expect("generates");
    let v = simulate(&vulnerable.semantics, &opts);
    let i = simulate(&immune.semantics, &opts);
    assert!(v.failures > 0, "vulnerable layout never failed");
    assert_eq!(i.failures, 0, "immune layout failed");
}

#[test]
fn scheme2_cells_are_shorter_scheme1_cells_are_narrower() {
    for kind in [StdCellKind::Inv, StdCellKind::Nand(2), StdCellKind::Aoi21] {
        let mk = |scheme| {
            generate_cell(
                kind,
                &GenerateOptions {
                    scheme,
                    ..GenerateOptions::default()
                },
            )
            .expect("generates")
        };
        let s1 = mk(Scheme::Scheme1);
        let s2 = mk(Scheme::Scheme2);
        assert!(s2.height_lambda < s1.height_lambda, "{kind}");
        assert!(s2.width_lambda > s1.width_lambda, "{kind}");
    }
}

#[test]
fn gds_stream_contains_cnt_doping_and_etch_layers() {
    let old = generate_cell(
        StdCellKind::Nand(3),
        &GenerateOptions {
            style: Style::OldEtched,
            ..GenerateOptions::default()
        },
    )
    .expect("generates");
    let mut lib = Library::new("layers");
    lib.add_cell(old.cell.clone());
    let back = read_gds(&write_gds(&lib)).expect("valid gds");
    let cell = &back.cells()[0];
    for layer in [Layer::CntActive, Layer::PDoping, Layer::NDoping, Layer::Etch, Layer::Via] {
        assert!(
            cell.shapes_on(layer).count() > 0,
            "missing {layer} shapes after round trip"
        );
    }
}
