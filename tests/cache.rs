//! Integration tests of the sharded session cache (bounded capacity, LRU
//! eviction, disable switch, per-shard stats, uniform coverage of every
//! request class) and the work-stealing batch executor under
//! skewed workloads.

use cnfet::core::{GenerateOptions, Scheme, StdCellKind};
use cnfet::logic::AdderKind;
use cnfet::{
    CellRequest, FlowRequest, FlowSource, ImmunityRequest, LibraryRequest, MacroRequest,
    RequestClass, Session, SessionBuilder,
};
use std::sync::Arc;

/// A single-shard session is an exact LRU: touching an entry protects it
/// from the next eviction.
#[test]
fn lru_evicts_least_recently_used_cell() {
    let session = SessionBuilder::new()
        .cache_shards(1)
        .cache_capacity(2)
        .build();
    let a = CellRequest::new(StdCellKind::Inv);
    let b = CellRequest::new(StdCellKind::Nand(2));
    let c = CellRequest::new(StdCellKind::Nand(3));

    session.run(&a).unwrap();
    session.run(&b).unwrap();
    // Touch A so B becomes least-recently-used, then overflow with C.
    assert!(session.run(&a).unwrap().cached);
    session.run(&c).unwrap();

    assert_eq!(session.cached_cells(), 2, "capacity bound holds");
    assert_eq!(session.stats().cells.evictions, 1);
    assert!(session.run(&a).unwrap().cached, "A was protected");
    assert!(session.run(&c).unwrap().cached, "C is resident");
    assert!(
        !session.run(&b).unwrap().cached,
        "B was the LRU entry and must regenerate"
    );
}

#[test]
fn capacity_zero_disables_caching() {
    let session = SessionBuilder::new().cache_capacity(0).build();
    let req = CellRequest::new(StdCellKind::Nand(3));

    let first = session.run(&req).unwrap();
    let second = session.run(&req).unwrap();
    assert!(!first.cached && !second.cached, "nothing is ever cached");
    assert!(
        !Arc::ptr_eq(&first.cell, &second.cell),
        "each request built its own layout"
    );
    assert_eq!(session.cached_cells(), 0);

    let stats = session.stats();
    assert_eq!(stats.cells.misses, 2);
    assert_eq!(stats.cells.hits, 0);
    assert_eq!(stats.cells.evictions, 0, "nothing stored, nothing evicted");
}

#[test]
fn eviction_counters_aggregate_over_shards() {
    // 4 λ-width variants × StdCellKind::ALL blow well past capacity 6.
    let session = SessionBuilder::new()
        .cache_shards(4)
        .cache_capacity(6)
        .build();
    let mut generated = 0u64;
    for width in [4u32, 6, 8, 10] {
        for kind in StdCellKind::ALL {
            session
                .run(&CellRequest::new(kind).options(GenerateOptions {
                    sizing: cnfet::core::Sizing::Uniform {
                        width_lambda: width as i64,
                    },
                    ..GenerateOptions::default()
                }))
                .unwrap();
            generated += 1;
        }
    }

    let cache = session.cell_cache_stats();
    assert_eq!(cache.capacity, 6);
    assert!(
        cache.entries <= 6 + cache.shards.len(),
        "bound is per-shard"
    );
    assert_eq!(cache.misses, generated);
    assert!(cache.evictions > 0);
    // Aggregates are exactly the per-shard sums.
    assert_eq!(
        cache.evictions,
        cache.shards.iter().map(|s| s.evictions).sum::<u64>()
    );
    assert_eq!(
        cache.entries,
        cache.shards.iter().map(|s| s.entries).sum::<usize>()
    );
    assert_eq!(session.stats().cells.evictions, cache.evictions);
}

/// A cost-skewed batch (cheap inverters + heavy high-strength gates) on a
/// forced multi-worker pool must match serial results exactly, in order.
#[test]
fn work_stealing_batch_matches_serial_under_skew() {
    let mut requests: Vec<CellRequest> = (0..40)
        .map(|i| CellRequest::new(StdCellKind::Inv).named(format!("INV_S_{i}")))
        .collect();
    for kind in [StdCellKind::Aoi22, StdCellKind::Oai21, StdCellKind::Nand(3)] {
        for strength in [7, 9] {
            requests.push(CellRequest::new(kind).strength(strength));
        }
    }
    // Heavy tasks first: the classic worst case for fixed chunking.
    requests.reverse();

    let serial_session = Session::new();
    let serial: Vec<_> = requests
        .iter()
        .map(|r| serial_session.run(r).unwrap())
        .collect();

    let batch_session = SessionBuilder::new().batch_workers(4).build();
    let batch: Vec<_> = batch_session
        .run_batch(&requests)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    assert_eq!(serial.len(), batch.len());
    for (s, b) in serial.iter().zip(&batch) {
        assert_eq!(s.cell.name, b.cell.name, "results keep request order");
        assert_eq!(s.cell.active_area_l2(), b.cell.active_area_l2());
        assert_eq!(s.cell.width_lambda, b.cell.width_lambda);
    }
    assert_eq!(batch_session.stats().batches, 1);
    assert_eq!(
        batch_session.stats().cells.misses,
        requests.len() as u64,
        "every distinct request generated exactly once"
    );
}

/// Single-flight must hold on a forced multi-worker pool: a batch of
/// duplicates runs one generation even when four workers race for it.
#[test]
fn forced_workers_keep_single_flight() {
    let session = SessionBuilder::new().batch_workers(4).build();
    let requests = vec![CellRequest::new(StdCellKind::Aoi22); 16];
    let results: Vec<_> = session
        .run_batch(&requests)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    let stats = session.stats();
    assert_eq!(stats.cells.misses, 1, "exactly one layout generation");
    assert_eq!(stats.cells.hits, 15);
    let first = &results[0].cell;
    assert!(results.iter().all(|r| Arc::ptr_eq(&r.cell, first)));
}

/// The seqlock fast path under fire: four threads hammer one hot cell
/// while a writer forces eviction churn through the same single shard.
/// Every read must come back untorn, the counters must stay coherent,
/// and once the writer stops, clean hits must take the mutex-free path.
#[test]
fn seqlock_fast_path_survives_hot_key_contention() {
    const HAMMERS: usize = 4;
    const ROUNDS: usize = 200;
    let session = SessionBuilder::new()
        .cache_shards(1)
        .cache_capacity(2)
        .batch_workers(HAMMERS)
        .build();
    let hot = CellRequest::new(StdCellKind::Inv);
    let reference = session.run(&hot).unwrap().cell;
    let mut issued = 1u64;

    // Distinct λ-width variants: each insert lands in the one shard, so
    // the writer keeps evicting while the hammers read.
    let churn: Vec<CellRequest> = [4i64, 6, 8, 10]
        .into_iter()
        .flat_map(|w| {
            [StdCellKind::Nand(2), StdCellKind::Nor(2)].map(|kind| {
                CellRequest::new(kind).options(GenerateOptions {
                    sizing: cnfet::core::Sizing::Uniform { width_lambda: w },
                    ..GenerateOptions::default()
                })
            })
        })
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..HAMMERS {
            scope.spawn(|| {
                for _ in 0..ROUNDS {
                    let result = session.run(&hot).unwrap();
                    // Torn-read check: a half-published entry would hand
                    // back a different (or corrupt) layout.
                    assert_eq!(result.cell.name, reference.name);
                    assert_eq!(result.cell.footprint_l2, reference.footprint_l2);
                    assert_eq!(result.cell.width_lambda, reference.width_lambda);
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..2 {
                for req in &churn {
                    session.run(req).unwrap();
                }
            }
        });
    });
    issued += (HAMMERS * ROUNDS) as u64 + 2 * churn.len() as u64;

    // Quiet tail: with the writer gone, a resident hot key serves pure
    // seqlock hits — this is what pins `fast_hits > 0` deterministically.
    session.run(&hot).unwrap();
    issued += 1;
    for _ in 0..32 {
        assert!(session.run(&hot).unwrap().cached);
    }
    issued += 32;

    let stats = session.stats().cells;
    assert_eq!(stats.hits + stats.misses, issued, "every request counted");
    assert!(
        stats.fast_hits <= stats.hits,
        "fast hits are a subset of hits ({} > {})",
        stats.fast_hits,
        stats.hits
    );
    assert!(
        stats.fast_hits >= 32,
        "the uncontended tail must ride the mutex-free path"
    );
    let cache = session.cell_cache_stats();
    assert!(
        stats.misses >= cache.entries as u64 + stats.evictions,
        "every resident or evicted entry was built by a miss"
    );
    assert!(stats.evictions > 0, "the writer actually forced churn");
}

#[test]
fn immunity_verdicts_are_memoized() {
    let session = Session::new();
    let req = ImmunityRequest::certify(StdCellKind::Nand(2));

    let first = session.run(&req).unwrap();
    let second = session.run(&req).unwrap();
    assert_eq!(first.immune, second.immune);

    let stats = session.stats();
    assert_eq!(stats.immunity.misses, 1, "engines ran once");
    assert_eq!(stats.immunity.hits, 1);
    // The whole report is memoized: the first run generated the cell
    // (one miss); the repeat is a pure immunity hit that leaves the cell
    // cache untouched.
    assert_eq!(stats.cells.misses, 1);
    assert_eq!(stats.cells.hits, 0);

    // A different engine selection is a distinct verdict.
    let mc = ImmunityRequest::monte_carlo(
        StdCellKind::Nand(2),
        cnfet::immunity::McOptions {
            tubes: 200,
            ..Default::default()
        },
    );
    session.run(&mc).unwrap();
    assert_eq!(session.stats().immunity.misses, 2);
    session.run(&mc).unwrap();
    assert_eq!(session.stats().immunity.hits, 2);
}

#[test]
fn flow_results_are_memoized() {
    let session = Session::new();
    let req = FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme2).with_gds();

    let first = session.run(&req).unwrap();
    let second = session.run(&req).unwrap();
    assert_eq!(first.placement.area_l2, second.placement.area_l2);
    assert_eq!(first.gds, second.gds);

    let stats = session.stats();
    assert_eq!(stats.flows.requests(), 2, "both invocations counted");
    assert_eq!(stats.flows.misses, 1, "placement/assembly ran once");
    assert_eq!(stats.flows.hits, 1);

    // A different target misses.
    session
        .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1))
        .unwrap();
    assert_eq!(session.stats().flows.misses, 2);
}

#[test]
fn clear_cache_drops_every_request_class() {
    let session = Session::new();
    session.run(&CellRequest::new(StdCellKind::Inv)).unwrap();
    session.run(&LibraryRequest::new(Scheme::Scheme1)).unwrap();
    session
        .run(&ImmunityRequest::certify(StdCellKind::Inv))
        .unwrap();
    session
        .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1))
        .unwrap();
    session
        .run(
            &cnfet::SweepRequest::new([StdCellKind::Inv])
                .metrics(cnfet::SweepMetrics::IMMUNITY)
                .mc(cnfet::immunity::McOptions {
                    tubes: 50,
                    ..Default::default()
                }),
        )
        .unwrap();
    session
        .run(&cnfet::RepairRequest::new([StdCellKind::Inv]).dies(2))
        .unwrap();
    session
        .run(
            &cnfet::OptimizeRequest::new([StdCellKind::Inv])
                .grid(cnfet::VariationGrid::nominal().tube_counts([6]).seeds([7]))
                .target(cnfet::OptimizeTarget::new().min_yield(0.0))
                .passes(1)
                .metrics(cnfet::SweepMetrics::IMMUNITY)
                .mc(cnfet::immunity::McOptions {
                    tubes: 50,
                    ..Default::default()
                }),
        )
        .unwrap();
    // Scheme 1 so the macro's internal library request hits the entry
    // cached above instead of adding a second library miss.
    session
        .run(&MacroRequest::new(AdderKind::Ripple, 8).scheme(Scheme::Scheme1))
        .unwrap();
    for class in RequestClass::ALL {
        assert!(
            session.cache_stats(class).entries > 0,
            "{} cache populated",
            class.name()
        );
    }
    session.clear_cache();

    assert_eq!(session.cached_cells(), 0);
    for class in RequestClass::ALL {
        let stats = session.cache_stats(class);
        assert_eq!(stats.entries, 0, "{} cache cleared", class.name());
        assert_eq!(stats.in_flight, 0, "{} cache idle", class.name());
    }
    session.run(&LibraryRequest::new(Scheme::Scheme1)).unwrap();
    session
        .run(&ImmunityRequest::certify(StdCellKind::Inv))
        .unwrap();
    session
        .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1))
        .unwrap();
    let stats = session.stats();
    assert_eq!(stats.libraries.misses, 2, "library was dropped");
    assert_eq!(stats.immunity.misses, 2, "verdict was dropped");
    assert_eq!(stats.flows.misses, 2, "flow result was dropped");
}
