//! Integration tests of the `cnfet::Session` engine: generic `run`
//! cache hit/miss semantics, batch-vs-serial equivalence, library/flow
//! memoization, composite sweep memoization, and the unified error
//! hierarchy.

use cnfet::core::{GenerateOptions, Scheme, Sizing, StdCellKind, Style};
use cnfet::{
    CellRequest, CnfetError, FlowRequest, FlowSource, ImmunityEngine, ImmunityRequest,
    LibraryRequest, OptimizeRequest, OptimizeTarget, RequestClass, Session, SessionBuilder,
    SessionRequest, SweepMetrics, SweepRequest, VariationGrid,
};
use std::sync::Arc;

/// A small co-optimization: one cell, a 2-value tube axis, cheap
/// fixed-seed Monte-Carlo — 4 candidate evaluations per pass.
fn small_optimize() -> OptimizeRequest {
    OptimizeRequest::new([StdCellKind::Inv])
        .grid(VariationGrid::nominal().tube_counts([6, 26]).seeds([7]))
        .target(OptimizeTarget::new().min_yield(0.9))
        .passes(1)
        .metrics(SweepMetrics::IMMUNITY)
        .mc(cnfet::immunity::McOptions {
            tubes: 60,
            ..Default::default()
        })
}

#[test]
fn concurrent_identical_requests_generate_once() {
    // Single-flight: a batch of duplicates must run ONE generation; the
    // other workers wait on it and come back as hits on the same Arc.
    let session = Session::new();
    let requests = vec![CellRequest::new(StdCellKind::Nand(3)); 16];
    let results: Vec<_> = session
        .run_batch(&requests)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    let stats = session.stats();
    assert_eq!(stats.cells.misses, 1, "exactly one layout generation");
    assert_eq!(stats.cells.hits, 15);
    assert_eq!(session.cached_cells(), 1);
    assert_eq!(
        results.iter().filter(|r| !r.cached).count(),
        1,
        "exactly one result reports a fresh build"
    );
    let first = &results[0].cell;
    assert!(results.iter().all(|r| Arc::ptr_eq(&r.cell, first)));
}

#[test]
fn identical_requests_hit_the_cache() {
    let session = Session::new();
    let req = CellRequest::new(StdCellKind::Nand(3));

    let first = session.run(&req).unwrap();
    assert!(!first.cached);
    let second = session.run(&req).unwrap();
    assert!(second.cached);

    // No second layout generation happened: one miss, one hit, and both
    // results share the same allocation.
    let stats = session.stats();
    assert_eq!(stats.cells.misses, 1);
    assert_eq!(stats.cells.hits, 1);
    assert!(Arc::ptr_eq(&first.cell, &second.cell));
    assert_eq!(session.cached_cells(), 1);
}

#[test]
fn changed_options_miss_the_cache() {
    let session = Session::new();
    let base = CellRequest::new(StdCellKind::Nand(2));
    session.run(&base).unwrap();

    for options in [
        GenerateOptions {
            scheme: Scheme::Scheme2,
            ..GenerateOptions::default()
        },
        GenerateOptions {
            style: Style::OldEtched,
            ..GenerateOptions::default()
        },
        GenerateOptions {
            sizing: Sizing::Uniform { width_lambda: 6 },
            ..GenerateOptions::default()
        },
    ] {
        let r = session.run(&base.clone().options(options)).unwrap();
        assert!(!r.cached, "distinct options must regenerate");
    }
    // A different strength is a distinct cell too.
    let x2 = session
        .run(&CellRequest::new(StdCellKind::Nand(2)).strength(2))
        .unwrap();
    assert!(!x2.cached);

    let stats = session.stats();
    assert_eq!(stats.cells.hits, 0);
    assert_eq!(stats.cells.misses, 5);
}

#[test]
fn explicit_default_options_share_the_default_entry() {
    let session = Session::new();
    let implicit = session.run(&CellRequest::new(StdCellKind::Inv)).unwrap();
    let explicit = session
        .run(&CellRequest::new(StdCellKind::Inv).options(GenerateOptions::default()))
        .unwrap();
    assert!(explicit.cached, "None-options resolve to the same key");
    assert!(Arc::ptr_eq(&implicit.cell, &explicit.cell));
}

#[test]
fn cache_keys_are_class_tagged() {
    // Every request kind produces a key of its own class, so the four
    // caches can never serve each other's entries.
    let session = Session::new();
    let cell = CellRequest::new(StdCellKind::Inv);
    let lib = LibraryRequest::new(Scheme::Scheme1);
    let imm = ImmunityRequest::certify(StdCellKind::Inv);
    let flow = FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1);
    assert_eq!(
        cell.cache_key(&session).unwrap().class(),
        RequestClass::Cell
    );
    assert_eq!(
        lib.cache_key(&session).unwrap().class(),
        RequestClass::Library
    );
    assert_eq!(
        imm.cache_key(&session).unwrap().class(),
        RequestClass::Immunity
    );
    assert_eq!(
        flow.cache_key(&session).unwrap().class(),
        RequestClass::Flow
    );
}

#[test]
fn batch_equals_serial() {
    let mut requests = Vec::new();
    for kind in StdCellKind::ALL {
        for scheme in [Scheme::Scheme1, Scheme::Scheme2] {
            requests.push(CellRequest::new(kind).options(GenerateOptions {
                scheme,
                ..GenerateOptions::default()
            }));
        }
    }

    let serial_session = Session::new();
    let serial: Vec<_> = requests
        .iter()
        .map(|r| serial_session.run(r).unwrap())
        .collect();

    let batch_session = Session::new();
    let batch: Vec<_> = batch_session
        .run_batch(&requests)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    assert_eq!(serial.len(), batch.len());
    for (s, b) in serial.iter().zip(&batch) {
        assert_eq!(s.cell.name, b.cell.name, "results keep request order");
        assert_eq!(s.cell.active_area_l2(), b.cell.active_area_l2());
        assert_eq!(s.cell.width_lambda, b.cell.width_lambda);
        assert_eq!(s.cell.height_lambda, b.cell.height_lambda);
        assert_eq!(s.cell.via_on_gate_count, b.cell.via_on_gate_count);
    }
    assert_eq!(batch_session.stats().batches, 1);

    // Re-running the same batch is served entirely from the cache.
    let rerun = batch_session.run_batch(&requests);
    assert!(rerun.into_iter().all(|r| r.unwrap().cached));
    assert_eq!(
        batch_session.stats().cells.hits,
        requests.len() as u64,
        "every rerun request must hit"
    );
}

#[test]
fn run_batch_generalizes_beyond_cells() {
    // The batch executor accepts any one request kind — here a slice of
    // immunity requests, each recalling its batch-generated cell.
    let session = Session::new();
    let requests: Vec<ImmunityRequest> = StdCellKind::ALL
        .into_iter()
        .map(ImmunityRequest::certify)
        .collect();
    let reports: Vec<_> = session
        .run_batch(&requests)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert!(reports.iter().all(|r| r.immune));
    let stats = session.stats();
    assert_eq!(stats.immunity.misses, requests.len() as u64);
    assert_eq!(stats.cells.misses, requests.len() as u64);
    assert_eq!(stats.batches, 1);
}

#[test]
fn library_is_memoized_and_feeds_the_cell_cache() {
    let session = Session::new();
    let lib1 = session.run(&LibraryRequest::new(Scheme::Scheme1)).unwrap();
    let misses_after_build = session.stats().cells.misses;
    assert_eq!(misses_after_build, lib1.cells.len() as u64);

    // Second build: whole library from the library cache.
    let lib2 = session.run(&LibraryRequest::new(Scheme::Scheme1)).unwrap();
    assert!(Arc::ptr_eq(&lib1, &lib2));
    let stats = session.stats();
    assert_eq!(stats.libraries.hits, 1);
    assert_eq!(stats.libraries.misses, 1);
    assert_eq!(stats.cells.misses, misses_after_build, "no regeneration");

    // A library cell requested directly is a cell-cache hit.
    let inv = session
        .run(
            &CellRequest::new(StdCellKind::Inv)
                .options(cnfet::dk::library_options(session.kit(), Scheme::Scheme1))
                .named("INV_X1"),
        )
        .unwrap();
    assert!(inv.cached);
    assert!(Arc::ptr_eq(&lib1.cell("INV_X1").unwrap().layout, &inv.cell));
}

#[test]
fn builder_defaults_apply_to_requests() {
    let session = SessionBuilder::new()
        .scheme(Scheme::Scheme2)
        .sizing(Sizing::Uniform { width_lambda: 4 })
        .build();
    let c = session
        .run(&CellRequest::new(StdCellKind::Nand(2)))
        .unwrap();
    assert_eq!(c.cell.scheme, Scheme::Scheme2);

    let s1 = Session::new()
        .run(&CellRequest::new(StdCellKind::Nand(2)))
        .unwrap();
    assert!(
        c.cell.height_lambda < s1.cell.height_lambda,
        "scheme 2 is shorter"
    );
}

#[test]
fn immunity_through_the_session() {
    let session = Session::new();
    let cert = session
        .run(&ImmunityRequest::certify(StdCellKind::Nand(2)))
        .unwrap();
    assert!(cert.immune);
    assert!(cert.cert.is_some() && cert.mc.is_none());

    let vulnerable = CellRequest::new(StdCellKind::Nand(2)).options(GenerateOptions {
        style: Style::Vulnerable,
        ..GenerateOptions::default()
    });
    let mc = session
        .run(&ImmunityRequest {
            cell: vulnerable,
            engine: ImmunityEngine::MonteCarlo(cnfet::immunity::McOptions {
                tubes: 2000,
                ..Default::default()
            }),
        })
        .unwrap();
    assert!(!mc.immune, "vulnerable layout must fail under Monte-Carlo");
    assert!(mc.mc.unwrap().failures > 0);

    // The repeat request is a pure immunity-cache hit — the whole report
    // is memoized, so not even the cell cache is consulted again.
    let again = session
        .run(&ImmunityRequest::certify(StdCellKind::Nand(2)))
        .unwrap();
    assert!(again.immune);
    assert_eq!(session.stats().immunity.hits, 1);
}

#[test]
fn flow_through_the_session() {
    let session = Session::new();
    let cmos = session
        .run(&FlowRequest::cmos(FlowSource::FullAdder))
        .unwrap();
    let s1 = session
        .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1))
        .unwrap();
    let s2 = session
        .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme2).with_gds())
        .unwrap();

    assert!(cmos.placement.area_l2 > s1.placement.area_l2);
    assert!(s1.placement.area_l2 > s2.placement.area_l2);
    assert!(s2.gds.as_ref().is_some_and(|g| !g.is_empty()));
    assert!(cmos.gds.is_none() && s1.gds.is_none());
    assert_eq!(session.stats().flows.requests(), 3);
    // Scheme-1 library was built once and shared by the CMOS baseline run.
    assert_eq!(session.stats().libraries.misses, 2);
}

#[test]
fn flow_rejects_unknown_cells() {
    let src = r#"
module bad (input a, output y);
  NAND2_X7 u0 (.A(a), .B(a), .OUT(y));
endmodule
"#;
    let err = Session::new()
        .run(&FlowRequest::cnfet(
            FlowSource::Verilog(src.to_string()),
            Scheme::Scheme1,
        ))
        .unwrap_err();
    assert!(matches!(err, CnfetError::MissingCell(name) if name == "NAND2_X7"));
}

#[test]
fn sweep_is_memoized_whole_and_per_corner() {
    // The composite request memoizes at both granularities in the
    // `Sweeps` class: a repeated sweep is ONE pure sweep-key hit (no
    // corner re-dispatch), and an overlapping sweep reuses every shared
    // corner row and only executes the corners it adds.
    let session = Session::new();
    let small = SweepRequest::new([StdCellKind::Inv])
        .grid(VariationGrid::nominal().tube_counts([26, 10]))
        .metrics(SweepMetrics::IMMUNITY)
        .mc(cnfet::immunity::McOptions {
            tubes: 100,
            ..Default::default()
        });

    let first = session.run(&small).unwrap();
    assert_eq!(first.rows.len(), 2);
    let stats = session.stats();
    assert_eq!(
        stats.sweeps.misses, 3,
        "one sweep key + two corner keys executed"
    );
    assert_eq!(stats.sweeps.hits, 0);

    // Pure whole-sweep hit: same Arc, no new corner work.
    let again = session.run(&small).unwrap();
    assert!(Arc::ptr_eq(&first, &again));
    let stats = session.stats();
    assert_eq!(stats.sweeps.hits, 1);
    assert_eq!(stats.sweeps.misses, 3);

    // Overlapping sweep: 2 shared corners hit, 2 fresh corners miss
    // (plus the new sweep key itself).
    let wider = small
        .clone()
        .grid(VariationGrid::nominal().tube_counts([26, 10, 8, 6]));
    let report = session.run(&wider).unwrap();
    assert_eq!(report.rows.len(), 4);
    let stats = session.stats();
    assert_eq!(stats.sweeps.hits, 3, "two corner reuses + earlier hit");
    assert_eq!(stats.sweeps.misses, 6, "new sweep key + two new corners");
    // The swept cell itself was generated exactly once.
    assert_eq!(stats.cells.misses, 1);
}

#[test]
fn sweep_report_metrics_are_consistent() {
    let session = Session::new();
    let report = session
        .run(
            &SweepRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
                .grid(VariationGrid::nominal().metallic_fractions([0.0, 0.5]))
                .mc(cnfet::immunity::McOptions {
                    tubes: 150,
                    ..Default::default()
                })
                .loads([0.5e-15, 2e-15]),
        )
        .unwrap();

    assert_eq!(report.cells, 2);
    assert_eq!(report.corners.len(), 2);
    assert_eq!(report.rows.len(), 4);

    // Clean corner of the immune layouts: perfect combined yield, and a
    // full liberty/NLDM view per row.
    let clean = report.row(0, 0);
    assert_eq!(clean.immune, Some(true));
    assert_eq!(clean.yield_frac(), Some(1.0));
    assert!(clean.delay_s().unwrap() > 0.0);
    assert!(clean.energy_j().unwrap() > 0.0);
    let liberty = clean.liberty.as_deref().unwrap();
    assert!(liberty.starts_with("cell ("), "{liberty}");
    assert!(liberty.contains("function : \"!A\""), "{liberty}");
    assert!(liberty.contains("index_1"));

    // The dirty corner must lose yield: surviving metallic tubes short
    // devices regardless of layout immunity.
    let dirty = report.row(0, 1);
    assert!(dirty.yield_frac().unwrap() < clean.yield_frac().unwrap());

    // Summaries rank the clean corner best, the metallic corner worst.
    assert_eq!(report.best_corner.as_ref().unwrap().corner_index, 0);
    assert_eq!(report.worst_corner.as_ref().unwrap().corner_index, 1);
    assert!(!report.pareto.is_empty());
    for &i in &report.pareto {
        assert!(i < report.rows.len());
    }
}

#[test]
fn sweep_propagates_cell_generation_errors() {
    // A sweep over an unrealizable cell must surface the generation
    // error, not hang or panic.
    let session = Session::new();
    // The old etched style cannot realize nested branches, so a fingered
    // AOI21 under it is a guaranteed GenerateError.
    let bad = CellRequest::new(StdCellKind::Aoi21)
        .strength(2)
        .options(GenerateOptions {
            style: Style::OldEtched,
            ..GenerateOptions::default()
        });
    let err = session
        .run(
            &SweepRequest::new([bad]).metrics(SweepMetrics::IMMUNITY).mc(
                cnfet::immunity::McOptions {
                    tubes: 10,
                    ..Default::default()
                },
            ),
        )
        .unwrap_err();
    assert!(matches!(err, CnfetError::Generate(_)), "{err}");
}

#[test]
fn errors_unify_under_cnfet_error() {
    let session = Session::new();

    // Layout generation failure → CnfetError::Generate. Matched sizing
    // makes `A*(B + C*D)` a non-uniform series, which rows cannot realize.
    let mut vars = cnfet::logic::VarTable::new();
    let expr = cnfet::logic::Expr::parse_with("A*(B+C*D)", &mut vars).unwrap();
    let pdn = cnfet::logic::SpNetwork::from_expr(&expr).unwrap();
    let pun = pdn.dual();
    let err = session
        .generate_custom(
            "nonuniform",
            pdn,
            pun,
            vars,
            Some(GenerateOptions {
                sizing: Sizing::Matched { base_lambda: 4 },
                ..GenerateOptions::default()
            }),
        )
        .unwrap_err();
    assert!(matches!(err, CnfetError::Generate(_)), "{err}");

    // Verilog failure → CnfetError::Verilog.
    let err = session
        .run(&FlowRequest::cnfet(
            FlowSource::Verilog("not verilog at all".into()),
            Scheme::Scheme1,
        ))
        .unwrap_err();
    assert!(matches!(err, CnfetError::Verilog(_)), "{err}");

    // Crate-level errors convert via `From` (the `#[from]`-style ladder).
    let sim: CnfetError = cnfet::spice::SimError::Singular.into();
    assert!(sim.to_string().contains("singular"));
    let gds: CnfetError = cnfet::geom::GdsError::Truncated.into();
    assert!(matches!(gds, CnfetError::Gds(_)));
    let net: CnfetError = cnfet::logic::network::NetworkError::NotPositive.into();
    assert!(matches!(net, CnfetError::Network(_)));
}

#[test]
fn optimize_memoizes_trajectory_and_reuses_candidates_on_retarget() {
    // The search memoizes at BOTH granularities in the `Optimizations`
    // class: the whole trajectory (keyed on the target) and every
    // candidate outcome (target-free). A re-targeted search therefore
    // misses only its new trajectory key — every measured candidate and
    // every underlying sweep corner comes back from the cache.
    let session = Session::new();
    let first = session.run(&small_optimize()).unwrap();
    assert_eq!(first.candidates.len(), 4, "2 tubes + 1 pitch + 1 metallic");
    assert!(first.best_index.is_some());

    let after_first = session.stats();
    // The coordinate revisited by the pitch and metallic rounds is a
    // candidate-cache hit, not a fourth sweep execution.
    assert_eq!(
        after_first.optimizations.misses, 3,
        "one trajectory key + two distinct candidates"
    );
    assert_eq!(
        after_first.optimizations.hits, 2,
        "two revisited candidates"
    );
    let sweep_misses = after_first.sweeps.misses;
    let cell_misses = after_first.cells.misses;

    // Identical re-run: one pure trajectory hit, nothing re-dispatched.
    let again = session.run(&small_optimize()).unwrap();
    assert!(Arc::ptr_eq(&first, &again));
    let stats = session.stats();
    assert_eq!(stats.optimizations.hits, 3);
    assert_eq!(stats.optimizations.misses, 3);
    assert_eq!(stats.sweeps.misses, sweep_misses);

    // Widened target: a fresh trajectory, but every candidate outcome is
    // target-free — only the new trajectory key misses, and no sweep
    // corner (or cell) executes again.
    let widened = small_optimize().target(OptimizeTarget::new().min_yield(0.5));
    let retargeted = session.run(&widened).unwrap();
    assert_eq!(retargeted.candidates.len(), first.candidates.len());
    let stats = session.stats();
    assert_eq!(
        stats.optimizations.misses, 4,
        "only the widened trajectory key is new"
    );
    assert_eq!(stats.sweeps.misses, sweep_misses, "no corner re-executes");
    assert_eq!(stats.cells.misses, cell_misses, "no layout regenerates");
}

#[test]
fn optimize_report_is_deterministic_across_execution_shapes() {
    // One fixed-seed search, rendered byte-identically regardless of
    // pool shape (1 worker, 2 workers, the CNFET_TEST_WORKERS default),
    // memoization (cache disabled entirely), and submission path
    // (synchronous run vs a submitted job).
    let request = small_optimize()
        .grid(
            VariationGrid::nominal()
                .tube_counts([6, 26])
                .pitch_scales([0.9, 1.0])
                .seeds([7]),
        )
        .passes(2);
    let reference = Session::new().run(&request).unwrap().render();
    assert!(!reference.is_empty());

    for workers in [1usize, 2, 0] {
        let session = SessionBuilder::new().batch_workers(workers).build();
        let report = session.run(&request).unwrap();
        assert_eq!(report.render(), reference, "workers = {workers}");
    }

    let uncached = SessionBuilder::new().cache_capacity(0).build();
    assert_eq!(uncached.run(&request).unwrap().render(), reference);

    let session = Session::new();
    let submitted = session.submit(request.clone()).wait().unwrap();
    assert_eq!(submitted.render(), reference);
}

#[test]
fn clear_cache_forgets_cells_but_keeps_counters() {
    let session = Session::new();
    let req = CellRequest::new(StdCellKind::Inv);
    session.run(&req).unwrap();
    session.clear_cache();
    assert_eq!(session.cached_cells(), 0);
    let again = session.run(&req).unwrap();
    assert!(!again.cached);
    assert_eq!(session.stats().cells.misses, 2);
}

#[test]
fn session_clones_share_the_engine() {
    let session = Session::new();
    let clone = session.clone();
    session.run(&CellRequest::new(StdCellKind::Inv)).unwrap();
    let via_clone = clone.run(&CellRequest::new(StdCellKind::Inv)).unwrap();
    assert!(via_clone.cached, "clones share one cache");
    assert_eq!(clone.stats().cells.requests(), 2);
}
