//! A minimal deterministic pseudo-random number generator.
//!
//! The workspace builds without network access, so this crate stands in
//! for the tiny slice of the `rand` API the Monte-Carlo engine and the
//! randomized tests need: a seedable generator with uniform range
//! sampling. The generator is xorshift64* seeded through splitmix64 —
//! statistically far stronger than these workloads require, and stable
//! across platforms and releases so seeded experiments stay reproducible.
//!
//! # Example
//!
//! ```
//! use cnfet_rng::{Rng, SeedableRng};
//! let mut rng = cnfet_rng::rngs::StdRng::seed_from_u64(42);
//! let x = rng.gen_range(-1.0..1.0);
//! assert!((-1.0..1.0).contains(&x));
//! let n = rng.gen_range(0..10i64);
//! assert!((0..10).contains(&n));
//! ```

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling interface.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn gen_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range (see [`RandomRange`] for supported
    /// range types).
    fn gen_range<R: RandomRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait RandomRange {
    /// Sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

impl RandomRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        self.start + rng.gen_unit() * (self.end - self.start)
    }
}

impl RandomRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.gen_unit() * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl RandomRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl RandomRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range!(i32, i64, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xorshift64* over a
    /// splitmix64-expanded seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 42, ...).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let state = (z ^ (z >> 31)) | 1; // xorshift state must be nonzero
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.gen_unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-500..500i64);
            assert!((-500..500).contains(&v));
            let w = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..=2.5);
            assert!((-2.5..=2.5).contains(&v));
        }
    }
}
