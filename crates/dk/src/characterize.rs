//! Spice-based cell characterization: delay vs load and switching energy.
//!
//! Measurements run on the [`cnfet_mna`] engine: every cell circuit is
//! lowered to an [`cnfet_mna::MnaCircuit`], its symbolic [`cnfet_mna::Pattern`]
//! comes from a process-wide [`PatternCache`], and one
//! [`cnfet_mna::Engine`] (with its factorization buffers and recorded
//! pivot order) is reused across the load sweep. Since variation corners
//! only change element *values*, repeated same-cell characterizations —
//! across loads, corners and sweep points — do **zero** symbolic
//! re-analysis.

use crate::kit::DesignKit;
#[cfg(test)]
use crate::libgen::build_library;
use crate::libgen::LibCell;
use cnfet_core::SizedNetwork;
use cnfet_core::Sizing;
use cnfet_device::Polarity;
use cnfet_logic::{NodeKind, PullGraph, SpNetwork};
use cnfet_mna::{measure, Engine, PatternCache, Probe, TranSpec};
use cnfet_spice::{to_mna, Circuit, Edge, SimError, Waveform};
use std::sync::{Arc, OnceLock};

/// The process-wide pattern cache shared by all characterization calls.
fn global_patterns() -> &'static PatternCache {
    static CACHE: OnceLock<PatternCache> = OnceLock::new();
    CACHE.get_or_init(PatternCache::new)
}

/// NLDM-style load-indexed timing data for one cell arc.
#[derive(Clone, Debug)]
pub struct TimingTable {
    /// Output loads, farads.
    pub loads_f: Vec<f64>,
    /// Average propagation delay per load, seconds.
    pub delays_s: Vec<f64>,
    /// Switching energy per full output cycle at the first load, joules.
    pub energy_j: f64,
}

impl TimingTable {
    /// Linear-interpolated delay at a load.
    pub fn delay_at(&self, load_f: f64) -> f64 {
        if self.loads_f.is_empty() {
            return 0.0;
        }
        if load_f <= self.loads_f[0] {
            return self.delays_s[0];
        }
        for i in 1..self.loads_f.len() {
            if load_f <= self.loads_f[i] {
                let t = (load_f - self.loads_f[i - 1]) / (self.loads_f[i] - self.loads_f[i - 1]);
                return self.delays_s[i - 1] + t * (self.delays_s[i] - self.delays_s[i - 1]);
            }
        }
        *self.delays_s.last().expect("nonempty")
    }
}

/// A characterization corner: process-variation overrides applied on top
/// of a kit's nominal CNT technology.
///
/// * `tubes_per_4lambda` replaces [`DesignKit::tubes_per_4lambda`] — CNT
///   *count/density* variation (fewer grown tubes mean less drive and
///   less gate capacitance, at a wider effective pitch).
/// * `pitch_scale` multiplies the effective device width seen by the
///   screening model — CNT *pitch/placement spread* variation (tubes
///   bunched tighter than drawn screen each other harder; `1.0` is the
///   evenly-pitched nominal). The drain-strip parasitic scales with it
///   too, as the strip must span the grown spread.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CharCorner {
    /// CNTs per 4λ of device width at this corner.
    pub tubes_per_4lambda: u32,
    /// Multiplier on the effective (screening) device width; `1.0` =
    /// nominal.
    pub pitch_scale: f64,
}

impl CharCorner {
    /// The kit's nominal technology point.
    pub fn nominal(kit: &DesignKit) -> CharCorner {
        CharCorner {
            tubes_per_4lambda: kit.tubes_per_4lambda,
            pitch_scale: 1.0,
        }
    }
}

/// Builds the transistor-level circuit of a cell and measures delay from
/// its first input pin to the output across the given loads.
///
/// Side inputs are tied to the sensitizing values that make the output
/// toggle with the probed input.
///
/// # Errors
///
/// Returns [`SimError`] when a transient fails to converge.
pub fn characterize_cell(
    kit: &DesignKit,
    cell: &LibCell,
    loads_f: &[f64],
) -> Result<TimingTable, SimError> {
    characterize_cell_at(kit, cell, loads_f, CharCorner::nominal(kit))
}

/// [`characterize_cell`] at an explicit variation corner: the same
/// transient measurement with the corner's tube count and pitch spread
/// substituted for the kit's nominal technology. The nominal corner
/// reproduces `characterize_cell` exactly.
///
/// # Errors
///
/// Returns [`SimError`] when a transient fails to converge.
pub fn characterize_cell_at(
    kit: &DesignKit,
    cell: &LibCell,
    loads_f: &[f64],
    corner: CharCorner,
) -> Result<TimingTable, SimError> {
    characterize_with_cache(kit, cell, loads_f, corner, global_patterns(), false)
        .map(|(table, _)| table)
}

/// [`characterize_cell_at`] additionally returning the first-load
/// transient rendered as a deterministic waveform table (`time in out
/// i(vdd)`), for callers that retain waveforms alongside metrics.
///
/// # Errors
///
/// Returns [`SimError`] when a transient fails to converge.
pub fn characterize_cell_traces(
    kit: &DesignKit,
    cell: &LibCell,
    loads_f: &[f64],
    corner: CharCorner,
) -> Result<(TimingTable, Option<String>), SimError> {
    characterize_with_cache(kit, cell, loads_f, corner, global_patterns(), true)
}

/// The characterization engine room, parameterized over the pattern cache
/// (tests pass a local cache to observe symbolic-analysis counts).
fn characterize_with_cache(
    kit: &DesignKit,
    cell: &LibCell,
    loads_f: &[f64],
    corner: CharCorner,
    patterns: &PatternCache,
    retain_waveform: bool,
) -> Result<(TimingTable, Option<String>), SimError> {
    let (pdn, pun, vars) = cell.kind.networks();
    let n_inputs = vars.len();
    let side_mask = sensitizing_mask(&pdn, n_inputs);

    let mut delays = Vec::with_capacity(loads_f.len());
    let mut energy = 0.0;
    let mut waveform_table = None;
    let mut engine: Option<Engine> = None;
    let period = 4e-9;
    for (li, &load) in loads_f.iter().enumerate() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        let vin = ckt.node("in");
        let supply = ckt.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(kit.cnfet.vdd));
        ckt.add_vsource(
            vin,
            Circuit::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: kit.cnfet.vdd,
                delay: 0.2e-9,
                rise: 10e-12,
                fall: 10e-12,
                width: period / 2.0,
                period,
            },
        );
        // Side input rails.
        let mut input_nodes = Vec::with_capacity(n_inputs);
        for i in 0..n_inputs {
            if i == 0 {
                input_nodes.push(vin);
            } else {
                let node = ckt.node(&format!("side{i}"));
                let v = if side_mask >> i & 1 == 1 {
                    kit.cnfet.vdd
                } else {
                    0.0
                };
                ckt.add_vsource(node, Circuit::GROUND, Waveform::Dc(v));
                input_nodes.push(node);
            }
        }
        instantiate_network(
            kit,
            &mut ckt,
            &pdn,
            Polarity::N,
            Circuit::GROUND,
            out,
            &input_nodes,
            cell.strength,
            corner,
        );
        instantiate_network(
            kit,
            &mut ckt,
            &pun,
            Polarity::P,
            vdd,
            out,
            &input_nodes,
            cell.strength,
            corner,
        );
        ckt.add_load(out, load);

        // Lower once per load point; the symbolic pattern comes from the
        // cache (hit on every same-topology load/corner) and the engine —
        // buffers, pivot order — carries over whenever the pattern is the
        // same Arc.
        let mna = to_mna(&ckt);
        let pattern = patterns.get_or_analyze(&mna);
        let engine = match &mut engine {
            Some(e) if Arc::ptr_eq(e.pattern(), &pattern) => e,
            slot => slot.insert(Engine::new(pattern)),
        };
        let wave = engine.tran(&mna, &TranSpec::new(2e-12, period * 1.1))?;

        let (p_in, p_out) = (Probe::Node(vin.0), Probe::Node(out.0));
        let d1 = measure::propagation_delay(&wave, p_in, p_out, kit.cnfet.vdd, Edge::Rising, 0.0);
        let d2 = measure::propagation_delay(
            &wave,
            p_in,
            p_out,
            kit.cnfet.vdd,
            Edge::Falling,
            0.2e-9 + period / 2.0 - 50e-12,
        );
        let avg = match (d1, d2) {
            (Some(a), Some(b)) => (a + b) / 2.0,
            (Some(a), None) | (None, Some(a)) => a,
            (None, None) => 0.0,
        };
        delays.push(avg);
        if li == 0 {
            energy = measure::energy_from_supply(
                &wave,
                Probe::SourceCurrent(supply),
                kit.cnfet.vdd,
                0.0,
                period * 1.05,
            );
            if retain_waveform {
                waveform_table = Some(wave.render_table(&[
                    ("in", p_in),
                    ("out", p_out),
                    ("i(vdd)", Probe::SourceCurrent(supply)),
                ]));
            }
        }
    }

    Ok((
        TimingTable {
            loads_f: loads_f.to_vec(),
            delays_s: delays,
            energy_j: energy,
        },
        waveform_table,
    ))
}

/// Chooses side-input values such that the output toggles with input 0.
fn sensitizing_mask(pdn: &SpNetwork, n_inputs: usize) -> u64 {
    for m in 0..1u64 << n_inputs.saturating_sub(1) {
        let mask = m << 1;
        if pdn.conducts(mask | 1) && !pdn.conducts(mask) {
            return mask;
        }
    }
    0
}

/// Adds one pull network's FETs between `source` and `out`, sized at the
/// given variation corner.
#[allow(clippy::too_many_arguments)]
fn instantiate_network(
    kit: &DesignKit,
    ckt: &mut Circuit,
    net: &SpNetwork,
    polarity: Polarity,
    source: cnfet_spice::Node,
    out: cnfet_spice::Node,
    inputs: &[cnfet_spice::Node],
    strength: u8,
    corner: CharCorner,
) {
    let sized = SizedNetwork::from_network(
        net,
        Sizing::Matched {
            base_lambda: kit.base_width_lambda,
        },
    );
    let widths = sized.widths();
    let graph = PullGraph::from_network(net);
    let mut nodes = Vec::with_capacity(graph.node_count());
    for n in 0..graph.node_count() {
        let node = match graph.kind(cnfet_logic::NodeId(n as u32)) {
            NodeKind::Source => source,
            NodeKind::Drain => out,
            NodeKind::Internal => ckt.node(&format!("{polarity:?}_int{n}_{}", ckt.node_count())),
        };
        nodes.push(node);
    }
    for (ei, e) in graph.edges().iter().enumerate() {
        let w_lambda = widths.get(ei).copied().unwrap_or(kit.base_width_lambda);
        let width_m = w_lambda as f64 * 32.5e-9 * corner.pitch_scale;
        let tubes = (corner.tubes_per_4lambda as f64 * w_lambda as f64
            / kit.base_width_lambda as f64)
            .round()
            .max(1.0) as u32;
        let dev = kit.cnfet.device(polarity, tubes * strength as u32, width_m);
        ckt.add_fet(
            nodes[e.b.0 as usize],
            inputs[e.gate.index()],
            nodes[e.a.0 as usize],
            Arc::new(dev),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_core::Scheme;

    #[test]
    fn inverter_delay_increases_with_load() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let inv = lib.cell("INV_X1").unwrap();
        let table = characterize_cell(&kit, inv, &[0.2e-15, 1e-15, 4e-15]).unwrap();
        assert!(table.delays_s[0] > 0.0);
        assert!(table.delays_s[2] > table.delays_s[1]);
        assert!(table.delays_s[1] > table.delays_s[0]);
        assert!(table.energy_j > 0.0);
    }

    #[test]
    fn nand2_characterizes() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let nand = lib.cell("NAND2_X1").unwrap();
        let table = characterize_cell(&kit, nand, &[1e-15]).unwrap();
        assert!(table.delays_s[0] > 0.0 && table.delays_s[0] < 1e-9);
    }

    #[test]
    fn corner_variation_moves_the_metrics() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let inv = lib.cell("INV_X1").unwrap();
        let loads = [1e-15];
        let nominal = characterize_cell_at(&kit, inv, &loads, CharCorner::nominal(&kit)).unwrap();
        let explicit = characterize_cell(&kit, inv, &loads).unwrap();
        assert_eq!(
            nominal.delays_s, explicit.delays_s,
            "nominal corner reproduces characterize_cell"
        );

        // Fewer tubes = less drive = slower under the same external load.
        let sparse = characterize_cell_at(
            &kit,
            inv,
            &loads,
            CharCorner {
                tubes_per_4lambda: 8,
                pitch_scale: 1.0,
            },
        )
        .unwrap();
        assert!(
            sparse.delays_s[0] > nominal.delays_s[0],
            "sparse {} vs nominal {}",
            sparse.delays_s[0],
            nominal.delays_s[0]
        );

        // Tubes bunched tighter than drawn screen each other harder:
        // per-tube drive collapses, so the corner is slower as well.
        let bunched = characterize_cell_at(
            &kit,
            inv,
            &loads,
            CharCorner {
                tubes_per_4lambda: kit.tubes_per_4lambda,
                pitch_scale: 0.5,
            },
        )
        .unwrap();
        assert!(bunched.delays_s[0] > nominal.delays_s[0]);
    }

    #[test]
    fn repeated_corners_do_zero_symbolic_reanalysis() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let inv = lib.cell("INV_X1").unwrap();
        let loads = [0.5e-15, 2e-15];
        let patterns = PatternCache::new();
        // Two loads, same topology: one symbolic analysis total.
        characterize_with_cache(
            &kit,
            inv,
            &loads,
            CharCorner::nominal(&kit),
            &patterns,
            false,
        )
        .unwrap();
        assert_eq!(patterns.symbolic_builds(), 1, "loads share one pattern");
        // Further corners only change values — still one analysis.
        for tubes in [8, 10, 12, 26] {
            let corner = CharCorner {
                tubes_per_4lambda: tubes,
                pitch_scale: 0.9,
            };
            characterize_with_cache(&kit, inv, &loads, corner, &patterns, false).unwrap();
        }
        assert_eq!(
            patterns.symbolic_builds(),
            1,
            "same-topology corners must not re-analyze"
        );
        // A different cell is a different topology: exactly one more.
        let nand = lib.cell("NAND2_X1").unwrap();
        characterize_with_cache(
            &kit,
            nand,
            &loads,
            CharCorner::nominal(&kit),
            &patterns,
            false,
        )
        .unwrap();
        assert_eq!(patterns.symbolic_builds(), 2);
    }

    #[test]
    fn traces_render_a_waveform_table() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let inv = lib.cell("INV_X1").unwrap();
        let (table, wave) =
            characterize_cell_traces(&kit, inv, &[1e-15], CharCorner::nominal(&kit)).unwrap();
        assert!(table.delays_s[0] > 0.0);
        let wave = wave.expect("waveform retained");
        assert!(wave.starts_with("time in out i(vdd)\n"));
        assert!(wave.lines().count() > 100, "full transient recorded");
    }

    #[test]
    fn delay_interpolation() {
        let t = TimingTable {
            loads_f: vec![1.0, 3.0],
            delays_s: vec![10.0, 30.0],
            energy_j: 0.0,
        };
        assert_eq!(t.delay_at(2.0), 20.0);
        assert_eq!(t.delay_at(0.5), 10.0);
        assert_eq!(t.delay_at(9.0), 30.0);
    }

    #[test]
    fn sensitizing_masks() {
        let (nand_pdn, _, _) = cnfet_core::StdCellKind::Nand(3).networks();
        let m = sensitizing_mask(&nand_pdn, 3);
        assert_eq!(m, 0b110, "NAND needs side inputs high");
        let (nor_pdn, _, _) = cnfet_core::StdCellKind::Nor(3).networks();
        assert_eq!(
            sensitizing_mask(&nor_pdn, 3),
            0,
            "NOR needs side inputs low"
        );
    }
}
