//! The kit bundle: rules + models + library construction.

use cnfet_core::{DesignRules, StdCellKind};
use cnfet_device::{CmosModel, CnfetModel};

/// Everything the flow needs about the target technology.
#[derive(Clone, Debug)]
pub struct DesignKit {
    /// λ-convention rule deck.
    pub rules: DesignRules,
    /// CNFET compact model.
    pub cnfet: CnfetModel,
    /// CMOS baseline model (the "industrial 65 nm" comparator).
    pub cmos: CmosModel,
    /// CNTs per 4λ of device width — the library is built at the optimal
    /// 5 nm pitch (26 tubes in 130 nm).
    pub tubes_per_4lambda: u32,
    /// Base device width of a 1X cell, λ.
    pub base_width_lambda: i64,
    /// Drive strengths instantiated per function.
    pub strengths: Vec<u8>,
    /// Functions instantiated in the library.
    pub functions: Vec<StdCellKind>,
}

impl DesignKit {
    /// The paper's 65 nm CNFET design kit: poly gate, low-k dielectric,
    /// cells at the optimal CNT pitch, drive strengths 1/2/4/7/9 as used
    /// by the Figure 8 full adder.
    pub fn cnfet65() -> DesignKit {
        DesignKit {
            rules: DesignRules::cnfet65(),
            cnfet: CnfetModel::poly_65nm(),
            cmos: CmosModel::industrial_65nm(),
            tubes_per_4lambda: 26,
            base_width_lambda: 4,
            strengths: vec![1, 2, 4, 7, 9],
            functions: vec![
                StdCellKind::Inv,
                StdCellKind::Nand(2),
                StdCellKind::Nand(3),
                StdCellKind::Nor(2),
                StdCellKind::Nor(3),
                StdCellKind::Aoi21,
                StdCellKind::Aoi22,
                StdCellKind::Oai21,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kit_is_at_optimal_pitch() {
        let kit = DesignKit::cnfet65();
        let width_m = kit.base_width_lambda as f64 * 32.5e-9 / 1.0;
        let pitch = kit.cnfet.pitch_nm(kit.tubes_per_4lambda, width_m);
        assert!((pitch - 5.0).abs() < 0.01, "{pitch}");
    }
}
