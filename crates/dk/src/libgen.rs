//! Standard-cell library generation.
//!
//! [`build_library_with`] is the engine: it walks the kit's function ×
//! strength matrix and asks a caller-supplied *cell provider* for each
//! layout, so a memoizing engine (the umbrella crate's `cnfet::Session`)
//! can serve repeated builds from its cache. [`build_library`] is the
//! standalone form that generates every layout directly.

use crate::kit::DesignKit;
use cnfet_core::{
    generate_cell, GenerateError, GenerateOptions, GeneratedCell, Scheme, Sizing, StdCellKind,
    Style,
};
use cnfet_device::Polarity;
use cnfet_logic::{SpNetwork, VarTable};
use std::collections::HashMap;
use std::sync::Arc;

/// One library cell: layout plus electrical summary.
///
/// The layout is shared ([`Arc`]) so a memoizing cache and any number of
/// libraries can hold the same generated cell without copying geometry.
#[derive(Clone, Debug)]
pub struct LibCell {
    /// Library name, e.g. `NAND2_X2`.
    pub name: String,
    /// Function.
    pub kind: StdCellKind,
    /// Drive strength (number of fingers).
    pub strength: u8,
    /// Generated layout (new immune style).
    pub layout: Arc<GeneratedCell>,
    /// Input capacitance per pin, farads.
    pub input_cap_f: f64,
    /// Worst-case pull drive current, amperes.
    pub drive_a: f64,
    /// CNTs per finger device.
    pub tubes_per_device: u32,
}

impl LibCell {
    /// Assembles one library cell from a generated layout, deriving the
    /// electrical summary — per-pin input capacitance and worst-case
    /// stack-derated drive — from the kit's device model at
    /// `tubes_per_device` CNTs per finger. This is the single home of
    /// those sizing formulas; [`build_library_with`] and the umbrella
    /// crate's characterization sweeps both assemble cells through it.
    pub fn from_layout(
        kit: &DesignKit,
        kind: StdCellKind,
        strength: u8,
        layout: Arc<GeneratedCell>,
        tubes_per_device: u32,
    ) -> LibCell {
        use cnfet_device::FetModel;
        let device = kit.cnfet.device(
            Polarity::N,
            tubes_per_device.max(1),
            kit.base_width_lambda as f64 * 32.5e-9,
        );
        // A pin drives one gate per finger in each network.
        let input_cap = 2.0 * device.cgate() * strength as f64;
        let (pdn, _, _) = kind.networks();
        let depth = pdn.max_series_depth() as f64;
        LibCell {
            name: CellLibrary::cell_name(kind, strength),
            kind,
            strength,
            layout,
            input_cap_f: input_cap,
            drive_a: device.ion() * strength as f64 / depth,
            tubes_per_device,
        }
    }
}

/// A generated cell library.
#[derive(Clone, Debug)]
pub struct CellLibrary {
    /// Scheme the layouts use.
    pub scheme: Scheme,
    /// All cells.
    pub cells: Vec<LibCell>,
    by_name: HashMap<String, usize>,
}

impl CellLibrary {
    /// Looks up a cell by library name.
    pub fn cell(&self, name: &str) -> Option<&LibCell> {
        self.by_name.get(name).map(|&i| &self.cells[i])
    }

    /// Library name of a function at a strength.
    pub fn cell_name(kind: StdCellKind, strength: u8) -> String {
        format!("{}_X{strength}", kind.name())
    }
}

/// Replicates a network `x` times in parallel — multi-finger drive
/// strengths, CMOS-library style.
pub fn replicate(net: &SpNetwork, x: u8) -> SpNetwork {
    if x <= 1 {
        return net.clone();
    }
    SpNetwork::Parallel(vec![net.clone(); x as usize]).normalized()
}

/// Generation options used for every library cell of a kit/scheme pair.
///
/// Fingered product terms share contacts along one snake; the full-Euler
/// policy keeps the cell compact and stays immune (certified in this
/// crate's tests).
pub fn library_options(kit: &DesignKit, scheme: Scheme) -> GenerateOptions {
    GenerateOptions {
        style: Style::NewImmune,
        scheme,
        sizing: Sizing::Matched {
            base_lambda: kit.base_width_lambda,
        },
        row_policy: cnfet_core::RowPolicy::FullEuler,
        rules: kit.rules,
    }
}

/// The pull networks of a function replicated to a drive strength:
/// `strength` parallel copies of the PDN and of its dual.
pub fn fingered_networks(kind: StdCellKind, strength: u8) -> (SpNetwork, SpNetwork, VarTable) {
    let (pdn, pun, vars) = kind.networks();
    (replicate(&pdn, strength), replicate(&pun, strength), vars)
}

/// Builds the library for a kit, generating every layout directly.
pub fn build_library(kit: &DesignKit, scheme: Scheme) -> Result<CellLibrary, GenerateError> {
    build_library_with(kit, scheme, |kind, strength| {
        fingered_layout(kind, strength, kit, scheme).map(Arc::new)
    })
}

/// Builds the library for a kit, obtaining each layout from `provider`.
///
/// The provider is called once per `(function, strength)` pair with the
/// expected library cell name already applied, letting callers interpose
/// a cache (see `cnfet::Session`).
///
/// # Errors
///
/// Propagates the first provider failure.
pub fn build_library_with<F>(
    kit: &DesignKit,
    scheme: Scheme,
    mut provider: F,
) -> Result<CellLibrary, GenerateError>
where
    F: FnMut(StdCellKind, u8) -> Result<Arc<GeneratedCell>, GenerateError>,
{
    let mut cells = Vec::new();
    let mut by_name = HashMap::new();

    for &kind in &kit.functions {
        for &strength in &kit.strengths {
            // Only INV gets the full strength ladder; other functions stop
            // at 2X like the paper's full-adder library.
            if kind != StdCellKind::Inv && strength > 2 {
                continue;
            }
            let layout = provider(kind, strength)?;
            let cell = LibCell::from_layout(kit, kind, strength, layout, kit.tubes_per_4lambda);
            by_name.insert(cell.name.clone(), cells.len());
            cells.push(cell);
        }
    }

    Ok(CellLibrary {
        scheme,
        cells,
        by_name,
    })
}

/// Generates the fingered layout of a function at a drive strength:
/// `strength` parallel copies of both networks, snaked through shared
/// contacts by the Euler machinery exactly like multi-finger CMOS cells.
///
/// # Errors
///
/// Propagates layout generation failures (none occur for catalog cells).
pub fn fingered_layout(
    kind: StdCellKind,
    strength: u8,
    kit: &DesignKit,
    scheme: Scheme,
) -> Result<GeneratedCell, GenerateError> {
    let opts = library_options(kit, scheme);
    if strength <= 1 {
        let mut c = generate_cell(kind, &opts)?;
        c.name = CellLibrary::cell_name(kind, strength);
        return Ok(c);
    }
    let (pdn, pun, vars) = fingered_networks(kind, strength);
    cnfet_core::generate_from_networks(
        CellLibrary::cell_name(kind, strength),
        kind,
        pdn,
        pun,
        vars,
        &opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kit::DesignKit;

    #[test]
    fn library_builds_with_expected_cells() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        for name in [
            "INV_X1", "INV_X4", "INV_X9", "NAND2_X1", "NAND2_X2", "AOI21_X1",
        ] {
            assert!(lib.cell(name).is_some(), "missing {name}");
        }
        assert!(lib.cell("NAND2_X9").is_none(), "only INV gets big drives");
    }

    #[test]
    fn strength_scales_drive_and_cap() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let x1 = lib.cell("INV_X1").unwrap();
        let x4 = lib.cell("INV_X4").unwrap();
        assert!((x4.drive_a / x1.drive_a - 4.0).abs() < 1e-9);
        assert!((x4.input_cap_f / x1.input_cap_f - 4.0).abs() < 1e-9);
        assert!(x4.layout.width_lambda > x1.layout.width_lambda);
    }

    #[test]
    fn replicate_preserves_function() {
        let (pdn, _, _) = StdCellKind::Nand(2).networks();
        let r3 = replicate(&pdn, 3);
        assert_eq!(r3.device_count(), 6);
        for m in 0..4u64 {
            assert_eq!(pdn.conducts(m), r3.conducts(m));
        }
    }

    #[test]
    fn nand_drive_derated_by_stack() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let inv = lib.cell("INV_X1").unwrap();
        let nand3 = lib.cell("NAND3_X1").unwrap();
        assert!(nand3.drive_a < inv.drive_a);
    }

    #[test]
    fn provider_sees_every_library_slot_once() {
        let kit = DesignKit::cnfet65();
        let mut calls = Vec::new();
        let lib = build_library_with(&kit, Scheme::Scheme1, |kind, strength| {
            calls.push((kind, strength));
            fingered_layout(kind, strength, &kit, Scheme::Scheme1).map(Arc::new)
        })
        .unwrap();
        assert_eq!(calls.len(), lib.cells.len());
        let mut dedup = calls.clone();
        dedup.sort_by_key(|(k, s)| (format!("{k}"), *s));
        dedup.dedup();
        assert_eq!(dedup.len(), calls.len(), "no slot requested twice");
    }
}
