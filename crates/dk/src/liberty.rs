//! Liberty-like timing-view emission.

use crate::characterize::TimingTable;
use crate::libgen::CellLibrary;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Emits a Liberty-like `.lib` for the library; `timing` maps cell names
/// to characterized tables (cells without tables get capacitance-only
/// views).
pub fn write_liberty(lib: &CellLibrary, timing: &HashMap<String, TimingTable>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library (cnfet65_{}) {{", lib.scheme);
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  voltage_unit : \"1V\";");
    for cell in &lib.cells {
        let (f, vars) = cell.kind.function();
        let _ = writeln!(out, "  cell ({}) {{", cell.name);
        let _ = writeln!(out, "    area : {:.2};", cell.layout.footprint_l2);
        for (_, name) in vars.iter() {
            let _ = writeln!(out, "    pin ({name}) {{");
            let _ = writeln!(out, "      direction : input;");
            let _ = writeln!(out, "      capacitance : {:.4};", cell.input_cap_f * 1e15);
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "    pin (OUT) {{");
        let _ = writeln!(out, "      direction : output;");
        let _ = writeln!(out, "      function : \"{}\";", f.display(&vars));
        if let Some(table) = timing.get(&cell.name) {
            let _ = writeln!(out, "      timing () {{");
            let loads: Vec<String> = table
                .loads_f
                .iter()
                .map(|l| format!("{:.4}", l * 1e15))
                .collect();
            let delays: Vec<String> = table
                .delays_s
                .iter()
                .map(|d| format!("{:.2}", d * 1e12))
                .collect();
            let _ = writeln!(out, "        index_1 (\"{}\");", loads.join(", "));
            let _ = writeln!(out, "        values (\"{}\");", delays.join(", "));
            let _ = writeln!(out, "      }}");
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kit::DesignKit;
    use crate::libgen::build_library;
    use cnfet_core::Scheme;

    #[test]
    fn liberty_contains_cells_and_functions() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let text = write_liberty(&lib, &HashMap::new());
        assert!(text.contains("library (cnfet65_s1)"));
        assert!(text.contains("cell (NAND2_X1)"));
        assert!(text.contains("function : \"!(A*B)\""));
        assert!(text.contains("capacitance"));
    }

    #[test]
    fn timing_tables_rendered() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let mut timing = HashMap::new();
        timing.insert(
            "INV_X1".to_string(),
            TimingTable {
                loads_f: vec![1e-15],
                delays_s: vec![5e-12],
                energy_j: 1e-15,
            },
        );
        let text = write_liberty(&lib, &timing);
        assert!(text.contains("index_1"));
        assert!(text.contains("5.00"));
    }
}
