//! GDSII stream-out of the whole library.

use crate::libgen::CellLibrary;
use cnfet_geom::{write_gds, Library};

/// Assembles every cell's drawn geometry into one GDS library and
/// serializes it.
pub fn library_gds(lib: &CellLibrary) -> Vec<u8> {
    let mut gds = Library::new(format!("cnfet65_{}", lib.scheme));
    for cell in &lib.cells {
        let mut c = cell.layout.cell.clone();
        c.set_name(cell.name.clone());
        gds.add_cell(c);
    }
    write_gds(&gds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kit::DesignKit;
    use crate::libgen::build_library;
    use cnfet_core::Scheme;
    use cnfet_geom::read_gds;

    #[test]
    fn gds_round_trips() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme1).unwrap();
        let bytes = library_gds(&lib);
        let back = read_gds(&bytes).unwrap();
        assert_eq!(back.len(), lib.cells.len());
        let inv = back.cell("INV_X1").unwrap();
        assert!(!inv.shapes().is_empty());
        assert!(!inv.texts().is_empty(), "pin labels must stream out");
    }
}
