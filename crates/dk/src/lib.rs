//! The CNFET Design Kit (Section IV of the paper).
//!
//! Bundles everything a logic-to-GDSII flow needs: the rule deck, the
//! device models, a standard-cell library generated with the compact
//! imperfection-immune layouts (in both Scheme 1 and Scheme 2 variants),
//! spice-based timing/energy characterization, and exporters for
//! Liberty-like timing views, LEF-like abstracts, and GDSII.
//!
//! # Example
//!
//! ```
//! use cnfet_dk::{build_library, DesignKit};
//!
//! let kit = DesignKit::cnfet65();
//! let lib = build_library(&kit, cnfet_core::Scheme::Scheme1).unwrap();
//! let inv = lib.cell("INV_X1").unwrap();
//! assert!(inv.input_cap_f > 0.0);
//! ```
//!
//! Production callers should prefer the umbrella crate's `cnfet::Session`,
//! which memoizes cell generation and library builds across requests.

pub mod characterize;
pub mod export;
pub mod kit;
pub mod lef;
pub mod liberty;
pub mod libgen;

pub use characterize::{
    characterize_cell, characterize_cell_at, characterize_cell_traces, CharCorner, TimingTable,
};
pub use export::library_gds;
pub use kit::DesignKit;
pub use lef::write_lef;
pub use liberty::write_liberty;
pub use libgen::{
    build_library, build_library_with, fingered_layout, fingered_networks, library_options,
    replicate, CellLibrary, LibCell,
};
