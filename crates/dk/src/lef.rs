//! LEF-like abstract emission: macro footprints and pin shapes.

use crate::libgen::CellLibrary;
use std::fmt::Write as _;

/// Emits a LEF-like abstract of the library for place & route.
pub fn write_lef(lib: &CellLibrary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.6 ;");
    let _ = writeln!(out, "UNITS DATABASE MICRONS 1000 ; END UNITS");
    for cell in &lib.cells {
        let _ = writeln!(out, "MACRO {}", cell.name);
        let _ = writeln!(
            out,
            "  SIZE {:.3} BY {:.3} ;",
            cell.layout.width_lambda * 0.0325,
            cell.layout.height_lambda * 0.0325
        );
        for (pin, rect) in &cell.layout.pins {
            let _ = writeln!(out, "  PIN {pin}");
            let _ = writeln!(out, "    PORT");
            let _ = writeln!(
                out,
                "      LAYER metal1 ; RECT {:.3} {:.3} {:.3} {:.3} ;",
                rect.x0().to_lambda() * 0.0325,
                rect.y0().to_lambda() * 0.0325,
                rect.x1().to_lambda() * 0.0325,
                rect.y1().to_lambda() * 0.0325
            );
            let _ = writeln!(out, "    END");
            let _ = writeln!(out, "  END {pin}");
        }
        let _ = writeln!(out, "END {}", cell.name);
    }
    let _ = writeln!(out, "END LIBRARY");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kit::DesignKit;
    use crate::libgen::build_library;
    use cnfet_core::Scheme;

    #[test]
    fn lef_contains_macros_and_pins() {
        let kit = DesignKit::cnfet65();
        let lib = build_library(&kit, Scheme::Scheme2).unwrap();
        let text = write_lef(&lib);
        assert!(text.contains("MACRO INV_X1"));
        assert!(text.contains("PIN OUT"));
        assert!(text.contains("PIN VDD"));
        assert!(text.contains("SIZE"));
        assert!(text.ends_with("END LIBRARY\n"));
    }
}
