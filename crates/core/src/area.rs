//! Area models: the Table 1 reproduction and the Case-study-1 inverter
//! area comparison.

use crate::cells::StdCellKind;
use crate::cmos::cmos_cell;
use crate::generate::{generate_cell, GenerateOptions, Scheme, Style};
use crate::rules::DesignRules;
use crate::sizing::Sizing;

/// The transistor sizes (λ) of Table 1's columns.
pub const TABLE1_WIDTHS: [i64; 4] = [3, 4, 6, 10];

/// One row of the Table 1 comparison.
#[derive(Clone, Debug)]
pub struct Table1Entry {
    /// Row label as printed in the paper.
    pub label: &'static str,
    /// Measured area difference (%) per width, `(old − new)/old × 100`.
    pub measured: [f64; 4],
    /// The paper's printed values (%).
    pub paper: [f64; 4],
}

/// Area difference between the old \[6\] and new immune layouts for one
/// cell at one size, in percent of the old layout's active area.
///
/// `Sizing::Matched` reproduces the paper's NAND/NOR convention
/// ("n-CNFETs are three times bigger than the p-CNFETs for a NAND3");
/// `Sizing::Uniform` reproduces its AOI/OAI rows.
///
/// # Panics
///
/// Panics if either style cannot realize the cell (catalog cells always
/// can).
pub fn area_difference_percent(kind: StdCellKind, sizing: Sizing, rules: &DesignRules) -> f64 {
    let mk = |style| GenerateOptions {
        style,
        scheme: Scheme::Scheme1,
        sizing,
        row_policy: crate::generate::RowPolicy::PaperProductTerms,
        rules: *rules,
    };
    let old = generate_cell(kind, &mk(Style::OldEtched)).expect("old style");
    let new = generate_cell(kind, &mk(Style::NewImmune)).expect("new style");
    (old.active_area_l2() - new.active_area_l2()) / old.active_area_l2() * 100.0
}

/// Regenerates Table 1: area difference between the new layout technique
/// and the old one of \[6\], per cell type and transistor size.
pub fn table1(rules: &DesignRules) -> Vec<Table1Entry> {
    let rows: [(&'static str, StdCellKind, bool, [f64; 4]); 5] = [
        ("Inverter", StdCellKind::Inv, true, [0.0, 0.0, 0.0, 0.0]),
        (
            "NAND2 / NOR2",
            StdCellKind::Nand(2),
            true,
            [17.18, 14.52, 11.67, 9.25],
        ),
        (
            "NAND3 / NOR3",
            StdCellKind::Nand(3),
            true,
            [19.64, 16.67, 13.45, 10.71],
        ),
        (
            "AOI22 (OAI22)",
            StdCellKind::Aoi22,
            false,
            [32.2, 27.7, 22.5, 14.9],
        ),
        (
            "AOI21 (OAI21)",
            StdCellKind::Aoi21,
            false,
            [44.3, 40.6, 36.4, 32.5],
        ),
    ];

    rows.into_iter()
        .map(|(label, kind, matched, paper)| {
            let mut measured = [0.0; 4];
            for (i, w) in TABLE1_WIDTHS.into_iter().enumerate() {
                let sizing = if matched {
                    Sizing::Matched { base_lambda: w }
                } else {
                    Sizing::Uniform { width_lambda: w }
                };
                measured[i] = area_difference_percent(kind, sizing, rules);
            }
            Table1Entry {
                label,
                measured,
                paper,
            }
        })
        .collect()
}

/// Case study 1's inverter area comparison: CMOS footprint over CNFET
/// footprint at the same base width (`nCNFET = pCNFET`, 6λ separation vs
/// `pMOS = 1.4 nMOS`, 10λ separation).
pub fn inverter_area_gain(base_lambda: i64, rules: &DesignRules) -> f64 {
    let cnfet = generate_cell(
        StdCellKind::Inv,
        &GenerateOptions {
            style: Style::NewImmune,
            scheme: Scheme::Scheme1,
            sizing: Sizing::Matched { base_lambda },
            row_policy: crate::generate::RowPolicy::PaperProductTerms,
            rules: *rules,
        },
    )
    .expect("inverter generates");
    let cmos = cmos_cell(StdCellKind::Inv, base_lambda, rules);
    cmos.footprint_l2 / cnfet.footprint_l2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_nor_rows_match_paper_exactly() {
        let rules = DesignRules::cnfet65();
        let t = table1(&rules);
        for entry in t.iter().take(3) {
            #[allow(clippy::needless_range_loop)]
            for i in 0..4 {
                // Within the paper's own print rounding (it truncates
                // 13.4615% to 13.45%).
                assert!(
                    (entry.measured[i] - entry.paper[i]).abs() < 0.02,
                    "{} at {}λ: measured {:.2} vs paper {:.2}",
                    entry.label,
                    TABLE1_WIDTHS[i],
                    entry.measured[i],
                    entry.paper[i]
                );
            }
        }
    }

    #[test]
    fn aoi_rows_match_paper_shape() {
        let rules = DesignRules::cnfet65();
        let t = table1(&rules);
        for entry in t.iter().skip(3) {
            #[allow(clippy::needless_range_loop)]
            for i in 0..4 {
                // Within 9 percentage points (the AOI22 row deviates most:
                // the paper's own 14.9% at 10λ breaks the hyperbolic trend
                // every other entry follows — see EXPERIMENTS.md), and
                // monotonically decreasing with transistor size.
                assert!(
                    (entry.measured[i] - entry.paper[i]).abs() < 9.0,
                    "{} at {}λ: measured {:.2} vs paper {:.2}",
                    entry.label,
                    TABLE1_WIDTHS[i],
                    entry.measured[i],
                    entry.paper[i]
                );
            }
            for w in entry.measured.windows(2) {
                assert!(w[1] < w[0], "{}: not decreasing with size", entry.label);
            }
        }
        // AOI21 saves more than AOI22, which saves more than NAND3.
        assert!(t[4].measured[1] > t[3].measured[1]);
        assert!(t[3].measured[1] > t[2].measured[1]);
    }

    #[test]
    fn nor_duals_match_nand_rows() {
        // NOR areas mirror NAND by duality — the paper prints one row for
        // both.
        let rules = DesignRules::cnfet65();
        for (nand, nor) in [
            (StdCellKind::Nand(2), StdCellKind::Nor(2)),
            (StdCellKind::Nand(3), StdCellKind::Nor(3)),
        ] {
            let a = area_difference_percent(nand, Sizing::Matched { base_lambda: 4 }, &rules);
            let b = area_difference_percent(nor, Sizing::Matched { base_lambda: 4 }, &rules);
            assert!((a - b).abs() < 1e-9, "{nand} {a} vs {nor} {b}");
        }
    }

    #[test]
    fn oai_duals_match_aoi_rows() {
        let rules = DesignRules::cnfet65();
        for (aoi, oai) in [
            (StdCellKind::Aoi21, StdCellKind::Oai21),
            (StdCellKind::Aoi22, StdCellKind::Oai22),
        ] {
            let a = area_difference_percent(aoi, Sizing::Uniform { width_lambda: 4 }, &rules);
            let b = area_difference_percent(oai, Sizing::Uniform { width_lambda: 4 }, &rules);
            assert!((a - b).abs() < 1e-9, "{aoi} {a} vs {oai} {b}");
        }
    }

    #[test]
    fn inverter_gain_is_1_4x() {
        // Case study 1: "area gain of 1.4X for a 4λ width of an n-FET".
        let gain = inverter_area_gain(4, &DesignRules::cnfet65());
        assert!((gain - 1.4).abs() < 0.01, "{gain}");
    }

    #[test]
    fn inverter_gain_declines_for_bigger_transistors() {
        // "for bigger transistor widths the area gain declines as the
        // distance between the PUN and the PDN is fixed".
        let rules = DesignRules::cnfet65();
        let g4 = inverter_area_gain(4, &rules);
        let g6 = inverter_area_gain(6, &rules);
        let g10 = inverter_area_gain(10, &rules);
        assert!(g4 > g6 && g6 > g10, "{g4} {g6} {g10}");
    }
}
