//! Compact imperfection-immune CNFET layout generation — the core
//! contribution of Bobba et al., DATE 2009.
//!
//! Static CNFET gates are laid out as horizontal diffusion *strips*: CNTs
//! run along x, vertical gate fingers cross them, and metal contact columns
//! tie tube segments to nets. Three layout styles are implemented:
//!
//! * [`Style::NewImmune`] — the paper's contribution: an Euler path through
//!   the pull network places every device in a single strip (or a minimal
//!   set of rows), with **redundant metal contacts** at repeated node
//!   visits instead of etched regions. 100% misaligned-CNT-immune and
//!   compact (Table 1).
//! * [`Style::OldEtched`] — the prior art of Patil et al. [DAC'07]: stages
//!   of stacked parallel branches separated by 2λ **etched regions**,
//!   requiring via-on-gate ("vertical gating") to escape buried gates.
//! * [`Style::Vulnerable`] — a CMOS-style layout with under-sized gate
//!   endcaps, reproducing the mispositioned-CNT failure of Figure 2(b).
//!
//! A CMOS baseline generator ([`cmos::cmos_cell`]) supports the paper's
//! area comparisons, and [`area`] reproduces Table 1 analytically from the
//! same strip model the generators draw.
//!
//! # Example: the NAND3 of Figure 3
//!
//! ```
//! use cnfet_core::{generate_cell, GenerateOptions, StdCellKind, Style, Scheme, Sizing};
//!
//! let opts = GenerateOptions {
//!     style: Style::NewImmune,
//!     scheme: Scheme::Scheme1,
//!     sizing: Sizing::Matched { base_lambda: 4 },
//!     ..GenerateOptions::default()
//! };
//! let cell = generate_cell(StdCellKind::Nand(3), &opts).unwrap();
//! // Figure 3(b): PUN strip is Vdd-A-Out-B-Vdd-C-Out → 30λ × 4λ.
//! assert_eq!(cell.pun_active_area_l2, 120.0);
//! ```

pub mod area;
pub mod cells;
pub mod cmos;
pub mod drc;
pub mod generate;
pub mod rules;
pub mod semantics;
pub mod sizing;
pub mod strip;

pub use cells::StdCellKind;
pub use cmos::cmos_cell;
pub use drc::{check_drc, DrcViolation};
pub use generate::{
    generate_cell, generate_from_networks, GenerateError, GenerateOptions, GeneratedCell,
    RowPolicy, Scheme, Style,
};
pub use rules::DesignRules;
pub use semantics::{PullSide, SemKind, SemRect, SemanticLayout};
pub use sizing::{SizedNetwork, Sizing};
