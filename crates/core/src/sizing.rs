//! Transistor sizing policies.

use cnfet_logic::{SpNetwork, VarId};

/// How device widths are assigned across a pull network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sizing {
    /// Every device gets the same width. Table 1's AOI/OAI rows follow
    /// this convention.
    Uniform {
        /// Drawn width in λ.
        width_lambda: i64,
    },
    /// Series-compensated (logical-effort style): a device's width is the
    /// base width times the number of devices stacked in series along its
    /// path, so every path conducts like a single base-width device. The
    /// paper's NAND sizing ("n-CNFETs are three times bigger than the
    /// p-CNFETs for a NAND3") follows this convention.
    Matched {
        /// Base width in λ.
        base_lambda: i64,
    },
}

impl Sizing {
    /// The base width parameter in λ.
    pub fn base(&self) -> i64 {
        match self {
            Sizing::Uniform { width_lambda } => *width_lambda,
            Sizing::Matched { base_lambda } => *base_lambda,
        }
    }
}

/// A pull network annotated with per-device widths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SizedNetwork {
    /// A device with its drawn width.
    Device {
        /// Gate input.
        var: VarId,
        /// Drawn width in λ.
        width_lambda: i64,
    },
    /// Series composition.
    Series(Vec<SizedNetwork>),
    /// Parallel composition.
    Parallel(Vec<SizedNetwork>),
}

impl SizedNetwork {
    /// Applies a sizing policy to a network.
    pub fn from_network(net: &SpNetwork, sizing: Sizing) -> SizedNetwork {
        match sizing {
            Sizing::Uniform { width_lambda } => Self::build(net, width_lambda, false),
            Sizing::Matched { base_lambda } => Self::build(net, base_lambda, true),
        }
    }

    fn build(net: &SpNetwork, factor: i64, compensate: bool) -> SizedNetwork {
        match net {
            SpNetwork::Device(v) => SizedNetwork::Device {
                var: *v,
                width_lambda: factor,
            },
            SpNetwork::Parallel(ns) => SizedNetwork::Parallel(
                ns.iter()
                    .map(|n| Self::build(n, factor, compensate))
                    .collect(),
            ),
            SpNetwork::Series(ns) => {
                let f = if compensate {
                    factor * ns.len() as i64
                } else {
                    factor
                };
                SizedNetwork::Series(ns.iter().map(|n| Self::build(n, f, compensate)).collect())
            }
        }
    }

    /// All device widths in left-to-right order.
    pub fn widths(&self) -> Vec<i64> {
        let mut out = Vec::new();
        self.collect_widths(&mut out);
        out
    }

    fn collect_widths(&self, out: &mut Vec<i64>) {
        match self {
            SizedNetwork::Device { width_lambda, .. } => out.push(*width_lambda),
            SizedNetwork::Series(ns) | SizedNetwork::Parallel(ns) => {
                for n in ns {
                    n.collect_widths(out);
                }
            }
        }
    }

    /// Maximum device width, λ.
    pub fn max_width(&self) -> i64 {
        self.widths().into_iter().max().unwrap_or(0)
    }

    /// Whether every device has the same width.
    pub fn is_uniform(&self) -> bool {
        let w = self.widths();
        w.windows(2).all(|p| p[0] == p[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::StdCellKind;

    #[test]
    fn uniform_sizing() {
        let (pdn, _, _) = StdCellKind::Aoi22.networks();
        let sized = SizedNetwork::from_network(&pdn, Sizing::Uniform { width_lambda: 4 });
        assert!(sized.is_uniform());
        assert_eq!(sized.max_width(), 4);
    }

    #[test]
    fn matched_nand3_pdn_is_3x() {
        // The paper: "n-CNFETs are three times bigger than the p-CNFETs
        // for a NAND3 cell".
        let (pdn, pun, _) = StdCellKind::Nand(3).networks();
        let spdn = SizedNetwork::from_network(&pdn, Sizing::Matched { base_lambda: 4 });
        let spun = SizedNetwork::from_network(&pun, Sizing::Matched { base_lambda: 4 });
        assert_eq!(spdn.widths(), vec![12, 12, 12]);
        assert_eq!(spun.widths(), vec![4, 4, 4]);
    }

    #[test]
    fn matched_nested_series_multiplies() {
        // OAI21 PDN = (A+B)·C: series of 2 → A,B,C all 2x base.
        let (pdn, _, _) = StdCellKind::Oai21.networks();
        let sized = SizedNetwork::from_network(&pdn, Sizing::Matched { base_lambda: 3 });
        assert_eq!(sized.widths(), vec![6, 6, 6]);
    }

    #[test]
    fn matched_aoi31_branches_differ() {
        // AOI31 PDN = ABC + D: branch ABC at 3x, branch D at 1x.
        let (pdn, _, _) = StdCellKind::Aoi31.networks();
        let sized = SizedNetwork::from_network(&pdn, Sizing::Matched { base_lambda: 2 });
        assert_eq!(sized.widths(), vec![6, 6, 6, 2]);
        assert!(!sized.is_uniform());
    }
}
