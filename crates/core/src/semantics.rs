//! Semantic layout view consumed by the imperfection-immunity analysis.
//!
//! The immunity engine does not reverse-engineer raw mask layers; the
//! generators emit, alongside the drawn geometry, a list of semantically
//! tagged rectangles plus the nominal pull networks they realize.

use cnfet_geom::Rect;
use cnfet_logic::{SpNetwork, VarId, VarTable};
use std::collections::BTreeSet;

/// Which pull network a region belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PullSide {
    /// Pull-up network (p-type devices; conduct on gate LOW).
    Up,
    /// Pull-down network (n-type devices; conduct on gate HIGH).
    Down,
}

/// Semantic role of a rectangle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemKind {
    /// Metal contact tied to a net.
    Contact {
        /// Net name (`VDD`, `GND`, `OUT`, `m1`, …).
        net: String,
    },
    /// Gate region: tubes crossing it are gated by `var`.
    Gate {
        /// Controlling input.
        var: VarId,
        /// Polarity of the devices this gate forms.
        side: PullSide,
    },
    /// Doped region: tubes here conduct unconditionally.
    Doped {
        /// Doping polarity (p+ for PUN, n+ for PDN).
        side: PullSide,
    },
    /// Etched region: tubes are cut.
    Etch,
}

/// A semantically tagged rectangle.
#[derive(Clone, Debug, PartialEq)]
pub struct SemRect {
    /// Geometry in database units.
    pub rect: Rect,
    /// Role.
    pub kind: SemKind,
}

/// A nominal device of the cell, at the node level: gate `var` of the
/// given polarity between the named nets `a` and `b` (contact nets or
/// synthetic internal nodes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemEdge {
    /// Gate input.
    pub var: VarId,
    /// Device polarity.
    pub side: PullSide,
    /// One terminal's net name.
    pub a: String,
    /// Other terminal's net name.
    pub b: String,
}

/// The complete semantic view of a generated cell.
#[derive(Clone, Debug)]
pub struct SemanticLayout {
    /// Tagged regions. Priority on overlap: `Etch` > `Contact` > `Gate` >
    /// `Doped` (a gate region inside a doped strip is gated, not doped).
    pub rects: Vec<SemRect>,
    /// Cell bounding box; tubes are clipped here (cell-boundary etch).
    pub bbox: Rect,
    /// Names of the variables used by the networks.
    pub vars: VarTable,
    /// Nominal pull-up network between `VDD` and `OUT`.
    pub pun: SpNetwork,
    /// Nominal pull-down network between `GND` and `OUT`.
    pub pdn: SpNetwork,
    /// Node-level device list of both networks, with terminal names
    /// matching the contact nets.
    pub edges: Vec<SemEdge>,
}

impl SemanticLayout {
    /// Nominal conduction paths (gate-variable sets) between a pair of
    /// nets, if that pair has a nominal network.
    ///
    /// `VDD–OUT` maps to the PUN, `GND–OUT` to the PDN; any other pair has
    /// no legal conduction and returns an empty list.
    pub fn nominal_paths(&self, net_a: &str, net_b: &str) -> Vec<BTreeSet<VarId>> {
        let pair = if net_a < net_b {
            (net_a, net_b)
        } else {
            (net_b, net_a)
        };
        match pair {
            ("OUT", "VDD") => self.pun.paths(),
            ("GND", "OUT") => self.pdn.paths(),
            _ => Vec::new(),
        }
    }

    /// All simple-path gate sets between two *named nodes* of the combined
    /// device graph, each as a set of polarity-tagged gates.
    ///
    /// This is the reference against which stray CNT conduction segments
    /// are judged (Patil et al.'s criterion): a stray segment between two
    /// nets is harmless iff its gate set is a superset of some nominal
    /// simple path between the same nets.
    pub fn node_paths(&self, net_a: &str, net_b: &str) -> Vec<BTreeSet<(VarId, PullSide)>> {
        if net_a == net_b {
            return vec![BTreeSet::new()];
        }
        let mut out = Vec::new();
        let mut used = vec![false; self.edges.len()];
        let mut visited_nodes: Vec<&str> = vec![net_a];
        let mut gates: Vec<(VarId, PullSide)> = Vec::new();
        self.dfs_paths(
            net_a,
            net_b,
            &mut used,
            &mut visited_nodes,
            &mut gates,
            &mut out,
        );
        out
    }

    #[allow(clippy::only_used_in_recursion)]
    fn dfs_paths<'a>(
        &'a self,
        at: &'a str,
        target: &str,
        used: &mut Vec<bool>,
        visited_nodes: &mut Vec<&'a str>,
        gates: &mut Vec<(VarId, PullSide)>,
        out: &mut Vec<BTreeSet<(VarId, PullSide)>>,
    ) {
        if at == target {
            out.push(gates.iter().copied().collect());
            return;
        }
        for (i, e) in self.edges.iter().enumerate() {
            if used[i] {
                continue;
            }
            let next = if e.a == at {
                &e.b
            } else if e.b == at {
                &e.a
            } else {
                continue;
            };
            if next != target && visited_nodes.iter().any(|n| n == next) {
                continue;
            }
            used[i] = true;
            visited_nodes.push(next);
            gates.push((e.var, e.side));
            self.dfs_paths(next, target, used, visited_nodes, gates, out);
            gates.pop();
            visited_nodes.pop();
            used[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_logic::Expr;

    fn demo() -> SemanticLayout {
        let mut vars = VarTable::new();
        let pdn_expr = Expr::parse_with("A*B", &mut vars).unwrap();
        let pdn = SpNetwork::from_expr(&pdn_expr).unwrap();
        let pun = pdn.dual();
        let a = VarId(0);
        let b = VarId(1);
        let e = |var, side, x: &str, y: &str| SemEdge {
            var,
            side,
            a: x.to_string(),
            b: y.to_string(),
        };
        SemanticLayout {
            rects: Vec::new(),
            bbox: Rect::from_lambda(0.0, 0.0, 10.0, 10.0),
            vars,
            pun,
            pdn,
            edges: vec![
                // NAND2: PUN A ∥ B, PDN series A-B via i1.
                e(a, PullSide::Up, "VDD", "OUT"),
                e(b, PullSide::Up, "VDD", "OUT"),
                e(a, PullSide::Down, "GND", "i1"),
                e(b, PullSide::Down, "i1", "OUT"),
            ],
        }
    }

    #[test]
    fn node_paths_between_terminals() {
        let s = demo();
        // VDD→OUT: two single-device PUN paths (plus none through PDN that
        // stay simple... paths through GND exist but carry PDN gates too).
        let paths = s.node_paths("VDD", "OUT");
        assert!(paths
            .iter()
            .any(|p| p.len() == 1 && p.contains(&(VarId(0), PullSide::Up))));
        // VDD→i1 (an internal PDN node): must pass OUT then gate A(n).
        let to_internal = s.node_paths("VDD", "i1");
        assert!(!to_internal.is_empty());
        for p in &to_internal {
            assert!(p.iter().any(|(_, side)| *side == PullSide::Down));
        }
        // Same net: the empty path.
        assert_eq!(s.node_paths("OUT", "OUT"), vec![BTreeSet::new()]);
    }

    #[test]
    fn nominal_paths_by_net_pair() {
        let s = demo();
        // PUN of NAND2: A ∥ B → two single-gate paths.
        assert_eq!(s.nominal_paths("VDD", "OUT").len(), 2);
        assert_eq!(s.nominal_paths("OUT", "VDD").len(), 2);
        // PDN: series A,B → one two-gate path.
        let pdn = s.nominal_paths("OUT", "GND");
        assert_eq!(pdn.len(), 1);
        assert_eq!(pdn[0].len(), 2);
        // Vdd–Gnd has no legal conduction.
        assert!(s.nominal_paths("VDD", "GND").is_empty());
        // Internal nodes neither.
        assert!(s.nominal_paths("m1", "OUT").is_empty());
    }
}
