//! The diffusion-strip abstraction: one horizontal row of alternating
//! contact columns and gate fingers over a CNT bundle.

use crate::rules::DesignRules;
use crate::semantics::{PullSide, SemKind, SemRect};
use cnfet_geom::{Cell, Dbu, Layer, Point, Rect};
use cnfet_logic::VarId;

/// One element of a strip, left to right.
#[derive(Clone, Debug, PartialEq)]
pub enum StripElem {
    /// A metal contact column tied to a net.
    Contact {
        /// Net name.
        net: String,
    },
    /// A gate finger.
    Gate {
        /// Controlling input.
        var: VarId,
        /// Drawn gate length in λ (≥ the rule `lg`; stretched gates are
        /// longer).
        len_lambda: i64,
    },
}

/// A planned diffusion row: element sequence plus transistor width.
#[derive(Clone, Debug, PartialEq)]
pub struct Strip {
    /// Elements, left to right.
    pub elems: Vec<StripElem>,
    /// Transistor width = strip height, λ.
    pub width_lambda: i64,
}

/// Geometry produced by emitting one strip.
#[derive(Clone, Debug, Default)]
pub struct StripGeom {
    /// Total strip length, λ.
    pub len_lambda: i64,
    /// For each gate (in order): its controlling var and drawn rect.
    pub gate_rects: Vec<(VarId, Rect)>,
    /// For each contact (in order): its net and drawn rect.
    pub contact_rects: Vec<(String, Rect)>,
    /// The active (CNT) rectangle.
    pub active: Rect,
}

impl Strip {
    /// Natural (unstretched) length of the strip in λ under the rules:
    /// contacts are `lc` long, gates their drawn length; contact–gate gaps
    /// are `lgs` and gate–gate gaps `lgg`.
    pub fn length_lambda(&self, rules: &DesignRules) -> i64 {
        let mut len = 0;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                len += match (&self.elems[i - 1], e) {
                    (StripElem::Gate { .. }, StripElem::Gate { .. }) => rules.lgg,
                    _ => rules.lgs,
                };
            }
            len += match e {
                StripElem::Contact { .. } => rules.lc,
                StripElem::Gate { len_lambda, .. } => *len_lambda,
            };
        }
        len
    }

    /// Stretches the strip to `target` λ by lengthening its last gate.
    ///
    /// # Panics
    ///
    /// Panics if the strip has no gate or is already longer than `target`.
    pub fn stretch_to(&mut self, target: i64, rules: &DesignRules) {
        let natural = self.length_lambda(rules);
        assert!(natural <= target, "strip longer than stretch target");
        let extra = target - natural;
        if extra == 0 {
            return;
        }
        let gate = self
            .elems
            .iter_mut()
            .rev()
            .find_map(|e| match e {
                StripElem::Gate { len_lambda, .. } => Some(len_lambda),
                _ => None,
            })
            .expect("cannot stretch a strip without gates");
        *gate += extra;
    }

    /// X-position (λ, relative to the strip origin) and drawn length of
    /// every element, in order.
    pub fn element_positions(&self, rules: &DesignRules) -> Vec<(i64, i64, &StripElem)> {
        let mut out = Vec::with_capacity(self.elems.len());
        let mut x = 0;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                x += match (&self.elems[i - 1], e) {
                    (StripElem::Gate { .. }, StripElem::Gate { .. }) => rules.lgg,
                    _ => rules.lgs,
                };
            }
            let len = match e {
                StripElem::Contact { .. } => rules.lc,
                StripElem::Gate { len_lambda, .. } => *len_lambda,
            };
            out.push((x, len, e));
            x += len;
        }
        out
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.elems
            .iter()
            .filter(|e| matches!(e, StripElem::Gate { .. }))
            .count()
    }

    /// Draws the strip into `cell` with its lower-left active corner at
    /// `(x0, y0)` (λ), emitting mask geometry and semantic rectangles.
    ///
    /// `cap_below`/`cap_above` are the gate extensions beyond the active
    /// strip on each side: the full endcap on outward edges, the doping
    /// overhang on edges facing the intra-cell routing band (so PUN and
    /// PDN gates never touch), and the under-sized vulnerable endcap for
    /// the Figure 2(b) baseline.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        rules: &DesignRules,
        x0: i64,
        y0: i64,
        side: PullSide,
        cap_below: i64,
        cap_above: i64,
        cell: &mut Cell,
        sems: &mut Vec<SemRect>,
    ) -> StripGeom {
        let w = self.width_lambda;
        let mut geom = StripGeom {
            len_lambda: self.length_lambda(rules),
            ..StripGeom::default()
        };

        let lam = |v: i64| Dbu::from_lambda_int(v);
        let active = Rect::new(lam(x0), lam(y0), lam(x0 + geom.len_lambda), lam(y0 + w));
        cell.add_rect(Layer::CntActive, active);
        geom.active = active;

        let mut x = x0;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                x += match (&self.elems[i - 1], e) {
                    (StripElem::Gate { .. }, StripElem::Gate { .. }) => rules.lgg,
                    _ => rules.lgs,
                };
            }
            match e {
                StripElem::Contact { net } => {
                    let r = Rect::new(lam(x), lam(y0), lam(x + rules.lc), lam(y0 + w));
                    cell.add_rect(Layer::Contact, r);
                    cell.add_text(Layer::Contact, Point::new(r.center().x, r.center().y), net);
                    sems.push(SemRect {
                        rect: r,
                        kind: SemKind::Contact { net: net.clone() },
                    });
                    geom.contact_rects.push((net.clone(), r));
                    x += rules.lc;
                }
                StripElem::Gate { var, len_lambda } => {
                    let r = Rect::new(
                        lam(x),
                        lam(y0 - cap_below),
                        lam(x + len_lambda),
                        lam(y0 + w + cap_above),
                    );
                    cell.add_rect(Layer::Gate, r);
                    sems.push(SemRect {
                        rect: r,
                        kind: SemKind::Gate { var: *var, side },
                    });
                    geom.gate_rects.push((*var, r));
                    x += len_lambda;
                }
            }
        }
        geom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(v: u32) -> StripElem {
        StripElem::Gate {
            var: VarId(v),
            len_lambda: 2,
        }
    }

    fn contact(net: &str) -> StripElem {
        StripElem::Contact { net: net.into() }
    }

    fn rules() -> DesignRules {
        DesignRules::cnfet65()
    }

    #[test]
    fn euler_strip_length_matches_rules() {
        // Vdd-A-Out-B-Vdd-C-Out: 4 contacts, 3 gates → 30λ.
        let s = Strip {
            elems: vec![
                contact("VDD"),
                gate(0),
                contact("OUT"),
                gate(1),
                contact("VDD"),
                gate(2),
                contact("OUT"),
            ],
            width_lambda: 4,
        };
        assert_eq!(s.length_lambda(&rules()), rules().euler_strip_len(3));
    }

    #[test]
    fn series_strip_length_matches_rules() {
        // Gnd-A-B-C-Out: 2 contacts, 3 gates in series → 20λ.
        let s = Strip {
            elems: vec![contact("GND"), gate(0), gate(1), gate(2), contact("OUT")],
            width_lambda: 12,
        };
        assert_eq!(s.length_lambda(&rules()), rules().series_strip_len(3));
    }

    #[test]
    fn stretch_lengthens_last_gate() {
        let mut s = Strip {
            elems: vec![contact("GND"), gate(0), contact("OUT")],
            width_lambda: 4,
        };
        assert_eq!(s.length_lambda(&rules()), 12);
        s.stretch_to(16, &rules());
        assert_eq!(s.length_lambda(&rules()), 16);
        match &s.elems[1] {
            StripElem::Gate { len_lambda, .. } => assert_eq!(*len_lambda, 6),
            _ => panic!("expected gate"),
        }
    }

    #[test]
    fn emit_produces_expected_geometry() {
        let s = Strip {
            elems: vec![contact("GND"), gate(0), gate(1), contact("OUT")],
            width_lambda: 8,
        };
        let mut cell = Cell::new("t");
        let mut sems = Vec::new();
        let geom = s.emit(&rules(), 0, 0, PullSide::Down, 3, 3, &mut cell, &mut sems);
        assert_eq!(geom.len_lambda, 16);
        assert_eq!(geom.gate_rects.len(), 2);
        assert_eq!(geom.contact_rects.len(), 2);
        // Gates extend past the active by the endcap.
        let (_, g0) = geom.gate_rects[0];
        assert_eq!(g0.y0(), Dbu::from_lambda_int(-3));
        assert_eq!(g0.y1(), Dbu::from_lambda_int(11));
        // Active covers the full strip.
        assert_eq!(geom.active.width(), Dbu::from_lambda_int(16));
        // Semantic rects: 2 contacts + 2 gates.
        assert_eq!(sems.len(), 4);
    }

    #[test]
    #[should_panic(expected = "without gates")]
    fn stretch_without_gate_panics() {
        let mut s = Strip {
            elems: vec![contact("GND")],
            width_lambda: 4,
        };
        s.stretch_to(20, &rules());
    }
}
