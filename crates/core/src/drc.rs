//! Design-rule checking.
//!
//! Covers the rules the paper leans on: minimum widths, same-layer
//! spacing, doping enclosure of active — and crucially the **via-on-gate
//! prohibition** of conventional lithography, which the old etched layouts
//! violate ("conventional lithography rules do not allow a Via on top of
//! an active region") and the new compact layouts avoid.

use crate::rules::DesignRules;
use cnfet_geom::{Cell, Dbu, GridIndex, Layer, Rect};
use std::fmt;

/// A design-rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrcViolation {
    /// Which rule fired.
    pub rule: DrcRule,
    /// Offending geometry.
    pub rect: Rect,
    /// Human-readable context.
    pub message: String,
}

/// Rule identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DrcRule {
    /// Shape narrower than the layer minimum.
    MinWidth(Layer),
    /// Two same-layer shapes closer than the minimum (but not touching —
    /// touching shapes merge).
    Spacing(Layer),
    /// A via lands on a gate (vertical gating): prohibited by the
    /// conventional 65 nm rules the paper works within.
    ViaOnGate,
    /// Active (CNT) region not enclosed by its doping mask.
    DopingEnclosure,
}

impl fmt::Display for DrcRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrcRule::MinWidth(l) => write!(f, "min-width({l})"),
            DrcRule::Spacing(l) => write!(f, "spacing({l})"),
            DrcRule::ViaOnGate => write!(f, "via-on-gate"),
            DrcRule::DopingEnclosure => write!(f, "doping-enclosure"),
        }
    }
}

/// Runs the rule deck over a cell's local shapes.
///
/// # Example
///
/// ```
/// use cnfet_core::{check_drc, generate_cell, GenerateOptions, StdCellKind, DesignRules};
/// let cell = generate_cell(StdCellKind::Nand(3), &GenerateOptions::default()).unwrap();
/// let violations = check_drc(&cell.cell, &DesignRules::cnfet65());
/// assert!(violations.is_empty());
/// ```
pub fn check_drc(cell: &Cell, rules: &DesignRules) -> Vec<DrcViolation> {
    let mut out = Vec::new();
    min_width_checks(cell, rules, &mut out);
    spacing_checks(cell, rules, &mut out);
    via_on_gate_checks(cell, &mut out);
    doping_enclosure_checks(cell, rules, &mut out);
    out
}

fn min_for(layer: Layer, rules: &DesignRules) -> Option<i64> {
    match layer {
        Layer::Gate => Some(rules.lg),
        Layer::Contact => Some(rules.lc),
        Layer::Etch => Some(rules.etch),
        Layer::Via => Some(rules.via),
        Layer::Metal1 | Layer::Metal2 => Some(2),
        Layer::CntActive => Some(2),
        _ => None,
    }
}

fn spacing_for(layer: Layer) -> Option<i64> {
    match layer {
        Layer::Gate | Layer::Contact | Layer::Metal1 | Layer::Metal2 | Layer::Via | Layer::Etch => {
            Some(2)
        }
        _ => None,
    }
}

fn min_width_checks(cell: &Cell, rules: &DesignRules, out: &mut Vec<DrcViolation>) {
    for shape in cell.shapes() {
        let Some(min) = min_for(shape.layer, rules) else {
            continue;
        };
        let min = Dbu::from_lambda_int(min);
        let w = shape.rect.width().min(shape.rect.height());
        if w < min {
            out.push(DrcViolation {
                rule: DrcRule::MinWidth(shape.layer),
                rect: shape.rect,
                message: format!("{} wide, minimum {} on {}", w, min, shape.layer),
            });
        }
    }
}

fn spacing_checks(cell: &Cell, _rules: &DesignRules, out: &mut Vec<DrcViolation>) {
    for layer in Layer::ALL {
        let Some(min) = spacing_for(layer) else {
            continue;
        };
        let min = Dbu::from_lambda_int(min);
        let rects = cell.rects_on(layer);
        if rects.len() < 2 {
            continue;
        }
        let index = GridIndex::build(&rects, Dbu::from_lambda_int(16));
        for (i, r) in rects.iter().enumerate() {
            let window = r.expanded(min);
            for j in index.query(&window) {
                if j <= i {
                    continue;
                }
                let other = &rects[j];
                if r.touches(other) {
                    continue; // touching shapes merge into one
                }
                let gap = r.spacing_to(other);
                if gap < min {
                    out.push(DrcViolation {
                        rule: DrcRule::Spacing(layer),
                        rect: *r,
                        message: format!("{gap} gap to neighbour, minimum {min} on {layer}"),
                    });
                }
            }
        }
    }
}

fn via_on_gate_checks(cell: &Cell, out: &mut Vec<DrcViolation>) {
    let gates = cell.rects_on(Layer::Gate);
    for via in cell.shapes_on(Layer::Via) {
        if gates.iter().any(|g| g.overlaps(&via.rect)) {
            out.push(DrcViolation {
                rule: DrcRule::ViaOnGate,
                rect: via.rect,
                message: "vertical gating: via lands on a gate region".to_string(),
            });
        }
    }
}

fn doping_enclosure_checks(cell: &Cell, rules: &DesignRules, out: &mut Vec<DrcViolation>) {
    let mut doping = cell.rects_on(Layer::PDoping);
    doping.extend(cell.rects_on(Layer::NDoping));
    if doping.is_empty() {
        return; // CMOS baseline cells carry no CNT doping masks
    }
    let margin = Dbu::from_lambda_int(rules.doping_overhang);
    for active in cell.shapes_on(Layer::CntActive) {
        let grown = active.rect.expanded(margin);
        if !doping.iter().any(|d| d.contains_rect(&grown)) {
            out.push(DrcViolation {
                rule: DrcRule::DopingEnclosure,
                rect: active.rect,
                message: format!("active region not enclosed by doping with {margin} margin"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::StdCellKind;
    use crate::generate::{generate_cell, GenerateOptions, Scheme, Style};
    use crate::sizing::Sizing;

    fn opts(style: Style, scheme: Scheme) -> GenerateOptions {
        GenerateOptions {
            style,
            scheme,
            sizing: Sizing::Matched { base_lambda: 4 },
            ..GenerateOptions::default()
        }
    }

    #[test]
    fn new_style_cells_are_clean() {
        let rules = DesignRules::cnfet65();
        for kind in StdCellKind::ALL {
            for scheme in [Scheme::Scheme1, Scheme::Scheme2] {
                let cell = generate_cell(kind, &opts(Style::NewImmune, scheme)).unwrap();
                let v = check_drc(&cell.cell, &rules);
                assert!(
                    v.is_empty(),
                    "{kind} {scheme}: {:?}",
                    v.iter()
                        .map(|x| format!("{}: {}", x.rule, x.message))
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn old_style_nand3_needs_vertical_gating() {
        // The paper's argument for the new technique: the old layout's
        // buried gate B requires a via on the gate, which conventional
        // rules forbid.
        let rules = DesignRules::cnfet65();
        let cell = generate_cell(
            StdCellKind::Nand(3),
            &opts(Style::OldEtched, Scheme::Scheme1),
        )
        .unwrap();
        let v = check_drc(&cell.cell, &rules);
        let via_violations: Vec<_> = v.iter().filter(|x| x.rule == DrcRule::ViaOnGate).collect();
        assert_eq!(via_violations.len(), 1);
        // And apart from vertical gating the old layout is clean.
        assert_eq!(v.len(), via_violations.len(), "{v:?}");
    }

    #[test]
    fn min_width_detected() {
        let mut cell = Cell::new("bad");
        cell.add_rect(Layer::Gate, Rect::from_lambda(0.0, 0.0, 1.0, 10.0));
        let v = check_drc(&cell, &DesignRules::cnfet65());
        assert!(v.iter().any(|x| x.rule == DrcRule::MinWidth(Layer::Gate)));
    }

    #[test]
    fn spacing_detected() {
        let mut cell = Cell::new("bad");
        cell.add_rect(Layer::Contact, Rect::from_lambda(0.0, 0.0, 3.0, 4.0));
        cell.add_rect(Layer::Contact, Rect::from_lambda(4.0, 0.0, 7.0, 4.0));
        let v = check_drc(&cell, &DesignRules::cnfet65());
        assert!(v.iter().any(|x| x.rule == DrcRule::Spacing(Layer::Contact)));
    }

    #[test]
    fn touching_shapes_do_not_violate_spacing() {
        let mut cell = Cell::new("ok");
        cell.add_rect(Layer::Metal1, Rect::from_lambda(0.0, 0.0, 5.0, 2.0));
        cell.add_rect(Layer::Metal1, Rect::from_lambda(5.0, 0.0, 10.0, 2.0));
        let v = check_drc(&cell, &DesignRules::cnfet65());
        assert!(v.is_empty(), "{v:?}");
    }
}
