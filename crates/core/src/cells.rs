//! The standard-cell catalog of the paper's library.

use cnfet_logic::{parse_letters, Expr, SpNetwork, VarTable};
use std::fmt;

/// A combinational standard-cell function, identified by its pull-down
/// expression (the gate computes the complement).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StdCellKind {
    /// Inverter.
    Inv,
    /// `n`-input NAND (n in 2..=4).
    Nand(u8),
    /// `n`-input NOR (n in 2..=4).
    Nor(u8),
    /// And-Or-Invert 21: `!(A·B + C)`.
    Aoi21,
    /// And-Or-Invert 22: `!(A·B + C·D)`.
    Aoi22,
    /// And-Or-Invert 31: `!(A·B·C + D)` — the Figure 4 example.
    Aoi31,
    /// Or-And-Invert 21: `!((A+B)·C)`.
    Oai21,
    /// Or-And-Invert 22: `!((A+B)·(C+D))`.
    Oai22,
}

impl StdCellKind {
    /// Every catalog entry (the cells of Table 1 plus NAND4/NOR4/AOI31).
    pub const ALL: [StdCellKind; 12] = [
        StdCellKind::Inv,
        StdCellKind::Nand(2),
        StdCellKind::Nand(3),
        StdCellKind::Nand(4),
        StdCellKind::Nor(2),
        StdCellKind::Nor(3),
        StdCellKind::Nor(4),
        StdCellKind::Aoi21,
        StdCellKind::Aoi22,
        StdCellKind::Aoi31,
        StdCellKind::Oai21,
        StdCellKind::Oai22,
    ];

    /// Library cell name.
    pub fn name(&self) -> String {
        match self {
            StdCellKind::Inv => "INV".to_string(),
            StdCellKind::Nand(n) => format!("NAND{n}"),
            StdCellKind::Nor(n) => format!("NOR{n}"),
            StdCellKind::Aoi21 => "AOI21".to_string(),
            StdCellKind::Aoi22 => "AOI22".to_string(),
            StdCellKind::Aoi31 => "AOI31".to_string(),
            StdCellKind::Oai21 => "OAI21".to_string(),
            StdCellKind::Oai22 => "OAI22".to_string(),
        }
    }

    /// Pull-down network expression in the paper's letter shorthand.
    pub fn pdn_expr_text(&self) -> String {
        match self {
            StdCellKind::Inv => "A".to_string(),
            StdCellKind::Nand(n) => letters(*n, "*"),
            StdCellKind::Nor(n) => letters(*n, "+"),
            StdCellKind::Aoi21 => "AB+C".to_string(),
            StdCellKind::Aoi22 => "AB+CD".to_string(),
            StdCellKind::Aoi31 => "ABC+D".to_string(),
            StdCellKind::Oai21 => "(A+B)C".to_string(),
            StdCellKind::Oai22 => "(A+B)(C+D)".to_string(),
        }
    }

    /// Number of inputs.
    pub fn fanin(&self) -> usize {
        match self {
            StdCellKind::Inv => 1,
            StdCellKind::Nand(n) | StdCellKind::Nor(n) => *n as usize,
            StdCellKind::Aoi21 | StdCellKind::Oai21 => 3,
            StdCellKind::Aoi22 | StdCellKind::Oai22 | StdCellKind::Aoi31 => 4,
        }
    }

    /// Builds the pull-down network, the pull-up dual, and the variable
    /// table (inputs named `A`, `B`, `C`, …).
    ///
    /// # Panics
    ///
    /// Never for catalog cells: all expressions are valid and positive.
    pub fn networks(&self) -> (SpNetwork, SpNetwork, VarTable) {
        let mut vars = VarTable::new();
        let expr = parse_letters(&self.pdn_expr_text(), &mut vars)
            .expect("catalog expressions are well-formed");
        let pdn = SpNetwork::from_expr(&expr).expect("catalog expressions are positive");
        let pun = pdn.dual();
        (pdn, pun, vars)
    }

    /// The output function as an expression (`!(pdn)`), for logic
    /// verification and library characterization.
    pub fn function(&self) -> (Expr, VarTable) {
        let mut vars = VarTable::new();
        let pdn = parse_letters(&self.pdn_expr_text(), &mut vars)
            .expect("catalog expressions are well-formed");
        (Expr::Not(Box::new(pdn)), vars)
    }
}

impl fmt::Display for StdCellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

fn letters(n: u8, op: &str) -> String {
    (0..n)
        .map(|i| ((b'A' + i) as char).to_string())
        .collect::<Vec<_>>()
        .join(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_fanins() {
        assert_eq!(StdCellKind::Nand(3).name(), "NAND3");
        assert_eq!(StdCellKind::Nand(3).fanin(), 3);
        assert_eq!(StdCellKind::Aoi22.fanin(), 4);
        assert_eq!(StdCellKind::Inv.fanin(), 1);
    }

    #[test]
    fn networks_have_right_device_counts() {
        for kind in StdCellKind::ALL {
            let (pdn, pun, vars) = kind.networks();
            assert_eq!(pdn.device_count(), pun.device_count(), "{kind}");
            assert_eq!(vars.len(), kind.fanin(), "{kind}");
        }
    }

    #[test]
    fn nand_pdn_is_series() {
        let (pdn, pun, _) = StdCellKind::Nand(3).networks();
        assert_eq!(pdn.max_series_depth(), 3);
        assert_eq!(pun.max_series_depth(), 1);
    }

    #[test]
    fn nor_is_dual_of_nand() {
        let (nand_pdn, _, _) = StdCellKind::Nand(2).networks();
        let (nor_pdn, _, _) = StdCellKind::Nor(2).networks();
        assert_eq!(nand_pdn.dual(), nor_pdn);
    }

    #[test]
    fn aoi31_matches_figure4() {
        // PDN = ABC + D (SOP); PUN = (A+B+C)·D (POS).
        let (pdn, pun, _) = StdCellKind::Aoi31.networks();
        assert_eq!(pdn.branches().len(), 2);
        assert_eq!(pun.max_series_depth(), 2);
        assert_eq!(pdn.paths().len(), 2);
        assert_eq!(pun.paths().len(), 3);
    }

    #[test]
    fn functions_invert_pdn() {
        for kind in StdCellKind::ALL {
            let (f, vars) = kind.function();
            let (pdn, _, _) = kind.networks();
            for m in 0..1u64 << vars.len() {
                assert_eq!(f.eval(m), !pdn.conducts(m), "{kind} at {m:b}");
            }
        }
    }
}
