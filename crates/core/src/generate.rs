//! The layout generators: new compact immune, old etched immune, and the
//! vulnerable CMOS-style baseline.

use crate::cells::StdCellKind;
use crate::rules::DesignRules;
use crate::semantics::{PullSide, SemEdge, SemKind, SemRect, SemanticLayout};
use crate::sizing::{SizedNetwork, Sizing};
use crate::strip::{Strip, StripElem};
use cnfet_geom::{Cell, Dbu, Layer, Rect};
use cnfet_logic::{euler_trails, NodeKind, PullGraph, SpNetwork, Trail, VarId};
use std::collections::HashMap;
use std::fmt;

/// Layout style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Style {
    /// The paper's Euler-path layout with redundant contacts (Section III).
    NewImmune,
    /// Patil et al. \[6\]: stacked branches with etched regions and
    /// vertical-gating vias.
    OldEtched,
    /// CMOS-style layout with under-sized gate endcaps — functionally
    /// correct for perfectly aligned tubes, but *not* immune (Figure 2b).
    Vulnerable,
}

impl fmt::Display for Style {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Style::NewImmune => write!(f, "new"),
            Style::OldEtched => write!(f, "old"),
            Style::Vulnerable => write!(f, "vuln"),
        }
    }
}

/// Standard-cell arrangement scheme (Section IV.A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// CMOS-like: PUN above PDN, separated by the intra-cell routing band.
    Scheme1,
    /// Novel compact form: PUN and PDN side by side, shrinking cell height.
    Scheme2,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Scheme1 => write!(f, "s1"),
            Scheme::Scheme2 => write!(f, "s2"),
        }
    }
}

/// How parallel networks are decomposed into diffusion rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RowPolicy {
    /// The paper's Section III procedure: in SOP form, every multi-device
    /// product term becomes its own row "terminated by metal contacts at
    /// both ends"; parallel single devices and POS structures are stitched
    /// into one strip along an Euler path.
    PaperProductTerms,
    /// Extension: always cover the network with a minimum set of Euler
    /// trails, snaking series product terms through shared contacts. Never
    /// larger than the paper's construction, often smaller (e.g. the AOI22
    /// pull-down collapses from two 16λ rows to one 29λ row).
    FullEuler,
}

/// Options controlling generation.
///
/// `Eq`/`Hash` make options usable directly as (part of) a memoization
/// key — the `cnfet::Session` engine caches generated cells by
/// `(StdCellKind, GenerateOptions)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GenerateOptions {
    /// Layout style.
    pub style: Style,
    /// Cell arrangement scheme.
    pub scheme: Scheme,
    /// Transistor sizing policy.
    pub sizing: Sizing,
    /// Row decomposition policy (new/vulnerable styles).
    pub row_policy: RowPolicy,
    /// Rule deck.
    pub rules: DesignRules,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        GenerateOptions {
            style: Style::NewImmune,
            scheme: Scheme::Scheme1,
            sizing: Sizing::Matched { base_lambda: 4 },
            row_policy: RowPolicy::PaperProductTerms,
            rules: DesignRules::cnfet65(),
        }
    }
}

/// Which outer edge of a network block faces the intra-cell routing band
/// (where gate endcaps must shrink to the doping overhang so PUN and PDN
/// gates keep their spacing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BandEdge {
    None,
    Bottom,
    Top,
}

/// Generation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenerateError {
    /// The old etched style only supports branches that are plain series
    /// chains (as in \[6\]'s published constructions).
    UnsupportedOldStyleBranch(String),
    /// A series composition with non-uniform device widths cannot be laid
    /// out as rows.
    NonUniformSeries(String),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::UnsupportedOldStyleBranch(what) => {
                write!(
                    f,
                    "old-style layout does not support nested branch `{what}`"
                )
            }
            GenerateError::NonUniformSeries(what) => {
                write!(
                    f,
                    "non-uniform widths inside a series composition: `{what}`"
                )
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// A fully generated standard cell.
#[derive(Clone, Debug)]
pub struct GeneratedCell {
    /// Library name, e.g. `NAND3_X4_new_s1`.
    pub name: String,
    /// Cell function.
    pub kind: StdCellKind,
    /// Style used.
    pub style: Style,
    /// Scheme used.
    pub scheme: Scheme,
    /// Drawn geometry.
    pub cell: Cell,
    /// Semantic view for the immunity analysis.
    pub semantics: SemanticLayout,
    /// Pull-up active area in λ² (the paper's Table 1 accounting: Σ row
    /// length × row width for strip layouts; stage bounding box for the
    /// old style, whose etched regions consume active area).
    pub pun_active_area_l2: f64,
    /// Pull-down active area in λ².
    pub pdn_active_area_l2: f64,
    /// Footprint: active-extent width × height in λ² (excludes rails).
    pub footprint_l2: f64,
    /// Footprint width, λ.
    pub width_lambda: f64,
    /// Footprint height, λ.
    pub height_lambda: f64,
    /// Number of vertical-gating (via-on-gate) sites the layout requires —
    /// zero for the new style, positive for buried gates in the old style.
    pub via_on_gate_count: usize,
    /// Pin name → pin rectangle.
    pub pins: Vec<(String, Rect)>,
}

impl GeneratedCell {
    /// Total active area (PUN + PDN), λ².
    pub fn active_area_l2(&self) -> f64 {
        self.pun_active_area_l2 + self.pdn_active_area_l2
    }
}

/// Geometry summary of one emitted network.
struct NetworkGeom {
    /// Horizontal extent, λ.
    len: i64,
    /// Vertical extent, λ.
    height: i64,
    /// Active-area accounting, λ².
    active_area: f64,
    /// Vertical-gating count.
    vias: usize,
    /// Gate rectangles by var (drawn).
    gates: Vec<(VarId, Rect)>,
    /// Node-level device list with net names matching the contacts.
    edges: Vec<SemEdge>,
}

/// Generates a standard cell.
///
/// # Errors
///
/// Returns [`GenerateError`] for network/style combinations the style
/// cannot realize (see the error variants).
///
/// # Example
///
/// ```
/// use cnfet_core::{generate_cell, GenerateOptions, StdCellKind};
/// let cell = generate_cell(StdCellKind::Nand(2), &GenerateOptions::default()).unwrap();
/// assert_eq!(cell.via_on_gate_count, 0); // new style needs no vertical gating
/// ```
pub fn generate_cell(
    kind: StdCellKind,
    opts: &GenerateOptions,
) -> Result<GeneratedCell, GenerateError> {
    let (pdn, pun, vars) = kind.networks();
    let name = format!(
        "{}_X{}_{}_{}",
        kind.name(),
        opts.sizing.base(),
        opts.style,
        opts.scheme
    );
    generate_from_networks(name, kind, pdn, pun, vars, opts)
}

/// Generates a cell from explicit pull networks — the general entry point
/// used for fingered library cells and custom functions.
///
/// `pdn` must realize the positive pull-down condition between GND and
/// OUT; `pun` its dual between VDD and OUT; `vars` names the inputs.
///
/// # Errors
///
/// Returns [`GenerateError`] for network/style combinations the style
/// cannot realize.
pub fn generate_from_networks(
    name: String,
    kind: StdCellKind,
    pdn: SpNetwork,
    pun: SpNetwork,
    vars: cnfet_logic::VarTable,
    opts: &GenerateOptions,
) -> Result<GeneratedCell, GenerateError> {
    let spdn = SizedNetwork::from_network(&pdn, opts.sizing);
    let spun = SizedNetwork::from_network(&pun, opts.sizing);
    let rules = &opts.rules;

    let mut cell = Cell::new(name.clone());
    let mut sems: Vec<SemRect> = Vec::new();

    // Emit the two networks at the origin, measure, then place.
    let emit = |sized: &SizedNetwork,
                side: PullSide,
                source: &str,
                x0: i64,
                y0: i64,
                band: BandEdge,
                cell: &mut Cell,
                sems: &mut Vec<SemRect>|
     -> Result<NetworkGeom, GenerateError> {
        match opts.style {
            Style::NewImmune => emit_strip_network(
                sized,
                side,
                source,
                rules,
                rules.gate_endcap,
                band,
                opts.row_policy,
                x0,
                y0,
                cell,
                sems,
            ),
            Style::Vulnerable => emit_strip_network(
                sized,
                side,
                source,
                rules,
                rules.vulnerable_endcap,
                BandEdge::None,
                opts.row_policy,
                x0,
                y0,
                cell,
                sems,
            ),
            Style::OldEtched => {
                emit_old_network(sized, side, source, rules, band, x0, y0, cell, sems)
            }
        }
    };

    let (pdn_geom, pun_geom, width_l, height_l);
    match opts.scheme {
        Scheme::Scheme1 => {
            let g_pdn = emit(
                &spdn,
                PullSide::Down,
                "GND",
                0,
                0,
                BandEdge::Top,
                &mut cell,
                &mut sems,
            )?;
            let y_pun = g_pdn.height + rules.sep_cnfet;
            let g_pun = emit(
                &spun,
                PullSide::Up,
                "VDD",
                0,
                y_pun,
                BandEdge::Bottom,
                &mut cell,
                &mut sems,
            )?;
            width_l = g_pdn.len.max(g_pun.len);
            height_l = y_pun + g_pun.height;
            pdn_geom = g_pdn;
            pun_geom = g_pun;
        }
        Scheme::Scheme2 => {
            let g_pdn = emit(
                &spdn,
                PullSide::Down,
                "GND",
                0,
                0,
                BandEdge::None,
                &mut cell,
                &mut sems,
            )?;
            let x_pun = g_pdn.len + rules.sep_cnfet;
            let g_pun = emit(
                &spun,
                PullSide::Up,
                "VDD",
                x_pun,
                0,
                BandEdge::None,
                &mut cell,
                &mut sems,
            )?;
            width_l = x_pun + g_pun.len;
            height_l = g_pdn.height.max(g_pun.height);
            pdn_geom = g_pdn;
            pun_geom = g_pun;
        }
    }

    // Pins: 2λ×2λ input pins in the routing band, each at a conflict-free
    // x derived from a gate of its signal; OUT on a PDN output contact.
    let mut pins = Vec::new();
    let lam = Dbu::from_lambda_int;
    let pin_band = match opts.scheme {
        Scheme::Scheme1 => {
            let y = pdn_geom.height + (rules.sep_cnfet - 2) / 2;
            (lam(y), lam(y + 2))
        }
        Scheme::Scheme2 => (lam(-4), lam(-2)),
    };
    let mut used_centers: Vec<Dbu> = Vec::new();
    let min_pitch = lam(4);
    for (vid, _) in vars.iter() {
        let candidates: Vec<Dbu> = pdn_geom
            .gates
            .iter()
            .chain(pun_geom.gates.iter())
            .filter(|(v, _)| *v == vid)
            .map(|(_, r)| r.center().x)
            .collect();
        let free = candidates
            .iter()
            .copied()
            .find(|cx| used_centers.iter().all(|u| (*cx - *u).abs() >= min_pitch))
            .unwrap_or_else(|| {
                used_centers
                    .iter()
                    .copied()
                    .max()
                    .map_or(lam(2), |m| m + min_pitch)
            });
        used_centers.push(free);
        let rect = Rect::new(free - lam(1), pin_band.0, free + lam(1), pin_band.1);
        cell.add_rect(Layer::Metal1, rect);
        cell.add_rect(Layer::Pin, rect);
        cell.add_text(Layer::Pin, rect.center(), vars.name(vid));
        pins.push((vars.name(vid).to_string(), rect));
    }
    // OUT pin: on top of the rightmost PDN OUT contact.
    let out_contact = sems
        .iter()
        .filter_map(|s| match &s.kind {
            SemKind::Contact { net } if net == "OUT" => Some(s.rect),
            _ => None,
        })
        .max_by_key(|r| r.x1())
        .expect("every cell has an OUT contact");
    cell.add_rect(Layer::Metal1, out_contact);
    cell.add_rect(Layer::Pin, out_contact);
    cell.add_text(Layer::Pin, out_contact.center(), "OUT");
    pins.push(("OUT".to_string(), out_contact));

    // Supply rails on Metal1, kept 2λ clear of the active footprint.
    let rail = 3;
    let (vdd_rail, gnd_rail) = match opts.scheme {
        Scheme::Scheme1 => (
            Rect::new(
                lam(0),
                lam(height_l + 2),
                lam(width_l),
                lam(height_l + 2 + rail),
            ),
            Rect::new(lam(0), lam(-2 - rail), lam(width_l), lam(-2)),
        ),
        Scheme::Scheme2 => (
            Rect::new(lam(-2 - rail), lam(0), lam(-2), lam(height_l)),
            Rect::new(
                lam(width_l + 2),
                lam(0),
                lam(width_l + 2 + rail),
                lam(height_l),
            ),
        ),
    };
    cell.add_rect(Layer::Metal1, vdd_rail);
    cell.add_text(Layer::Metal1, vdd_rail.center(), "VDD");
    cell.add_rect(Layer::Metal1, gnd_rail);
    cell.add_text(Layer::Metal1, gnd_rail.center(), "GND");
    pins.push(("VDD".to_string(), vdd_rail));
    pins.push(("GND".to_string(), gnd_rail));

    // Boundary: everything drawn, plus 1λ margin. Tubes are clipped here
    // (cell-boundary etch).
    let bbox = cell.bbox().expect("cell has geometry");
    let boundary = bbox.expanded(Dbu::from_lambda_int(1));
    cell.add_rect(Layer::Boundary, boundary);

    let mut edges = pdn_geom.edges.clone();
    edges.extend(pun_geom.edges.clone());
    let semantics = SemanticLayout {
        rects: sems,
        bbox: boundary,
        vars,
        pun,
        pdn,
        edges,
    };

    Ok(GeneratedCell {
        name,
        kind,
        style: opts.style,
        scheme: opts.scheme,
        cell,
        semantics,
        pun_active_area_l2: pun_geom.active_area,
        pdn_active_area_l2: pdn_geom.active_area,
        footprint_l2: width_l as f64 * height_l as f64,
        width_lambda: width_l as f64,
        height_lambda: height_l as f64,
        via_on_gate_count: pdn_geom.vias + pun_geom.vias,
        pins,
    })
}

// ---------------------------------------------------------------------------
// New-style (and vulnerable) strip networks
// ---------------------------------------------------------------------------

/// Converts a sized network back to its unsized shape.
fn to_sp(net: &SizedNetwork) -> SpNetwork {
    match net {
        SizedNetwork::Device { var, .. } => SpNetwork::Device(*var),
        SizedNetwork::Series(ns) => SpNetwork::Series(ns.iter().map(to_sp).collect()),
        SizedNetwork::Parallel(ns) => SpNetwork::Parallel(ns.iter().map(to_sp).collect()),
    }
}

/// Splits a network into width groups, each realizable as equal-width rows.
fn width_groups(sized: &SizedNetwork) -> Result<Vec<(i64, SpNetwork)>, GenerateError> {
    if sized.is_uniform() {
        return Ok(vec![(sized.max_width(), to_sp(sized).normalized())]);
    }
    let branches = match sized {
        SizedNetwork::Parallel(bs) => bs,
        other => {
            return Err(GenerateError::NonUniformSeries(format!("{other:?}")));
        }
    };
    let mut by_width: Vec<(i64, Vec<SpNetwork>)> = Vec::new();
    for b in branches {
        if !b.is_uniform() {
            return Err(GenerateError::NonUniformSeries(format!("{b:?}")));
        }
        let w = b.max_width();
        match by_width.iter_mut().find(|(bw, _)| *bw == w) {
            Some((_, v)) => v.push(to_sp(b)),
            None => by_width.push((w, vec![to_sp(b)])),
        }
    }
    // Widest group at the bottom for a stable look.
    by_width.sort_by_key(|(w, _)| std::cmp::Reverse(*w));
    Ok(by_width
        .into_iter()
        .map(|(w, nets)| {
            let net = if nets.len() == 1 {
                nets.into_iter().next().expect("nonempty")
            } else {
                SpNetwork::Parallel(nets)
            };
            (w, net.normalized())
        })
        .collect())
}

/// Plans the diffusion rows of a network: per width group, either the
/// paper's per-product-term rows or a minimum Euler-trail cover. Also
/// returns the node-level device list with names consistent with the
/// planned contacts.
///
/// Exposed crate-wide so the CMOS baseline generator can reuse the planner.
pub(crate) fn plan_rows(
    sized: &SizedNetwork,
    side: PullSide,
    source_net: &str,
    policy: RowPolicy,
) -> Result<(Vec<Strip>, Vec<SemEdge>), GenerateError> {
    let groups = width_groups(sized)?;
    let mut strips = Vec::new();
    let mut edges = Vec::new();
    let mut m_counter = 0usize;
    let mut i_counter = 0usize;
    // Per-network prefix keeps PUN and PDN internal node names distinct.
    let prefix = match side {
        PullSide::Up => "U",
        PullSide::Down => "D",
    };
    for (width, net) in &groups {
        // The paper's SOP rule: when a parallel composition contains a
        // multi-device product term, each product term becomes its own row
        // "terminated by metal contacts at both ends". Parallel single
        // devices (and everything else) are stitched by Euler trails.
        let subnets: Vec<SpNetwork> = match (policy, net) {
            (RowPolicy::PaperProductTerms, SpNetwork::Parallel(branches))
                if branches.iter().any(|b| b.device_count() > 1) =>
            {
                branches.clone()
            }
            _ => vec![net.clone()],
        };
        for sub in &subnets {
            let graph = PullGraph::from_network(sub);
            // Name every node up front: terminals by net, high-degree
            // internals as visible contacts (m…), series interiors as
            // synthetic nodes (i…) that never receive a contact.
            let mut names: HashMap<u32, String> = HashMap::new();
            for n in 0..graph.node_count() as u32 {
                let node = cnfet_logic::NodeId(n);
                let name = match graph.kind(node) {
                    NodeKind::Source => source_net.to_string(),
                    NodeKind::Drain => "OUT".to_string(),
                    NodeKind::Internal => {
                        if graph.degree(node) == 2 {
                            i_counter += 1;
                            format!("i{prefix}{i_counter}")
                        } else {
                            m_counter += 1;
                            format!("m{prefix}{m_counter}")
                        }
                    }
                };
                names.insert(n, name);
            }
            for e in graph.edges() {
                edges.push(SemEdge {
                    var: e.gate,
                    side,
                    a: names[&e.a.0].clone(),
                    b: names[&e.b.0].clone(),
                });
            }
            let trails = euler_trails(&graph);
            for trail in &trails {
                strips.push(trail_to_strip(&graph, trail, *width, &names));
            }
        }
    }
    Ok((strips, edges))
}

/// Builds the strip of one Euler trail: every node visit that is a terminal
/// or a degree-≠2 internal node receives a (possibly redundant) contact;
/// plain series interiors get none.
fn trail_to_strip(
    graph: &PullGraph,
    trail: &Trail,
    width: i64,
    names: &HashMap<u32, String>,
) -> Strip {
    let rules = DesignRules::cnfet65();
    let mut elems = Vec::new();
    let last = trail.nodes.len() - 1;
    for (k, node) in trail.nodes.iter().enumerate() {
        let needs_contact = k == 0
            || k == last
            || graph.kind(*node) != NodeKind::Internal
            || graph.degree(*node) != 2;
        if needs_contact {
            elems.push(StripElem::Contact {
                net: names[&node.0].clone(),
            });
        }
        if k < last {
            let edge = graph.edge(trail.edges[k]);
            elems.push(StripElem::Gate {
                var: edge.gate,
                len_lambda: rules.lg,
            });
        }
    }
    Strip {
        elems,
        width_lambda: width,
    }
}

/// Emits a strip-style network (new immune or vulnerable), rows stacked
/// bottom-up with the rule gap, all rows stretched to the longest.
#[allow(clippy::too_many_arguments)]
fn emit_strip_network(
    sized: &SizedNetwork,
    side: PullSide,
    source_net: &str,
    rules: &DesignRules,
    endcap: i64,
    band: BandEdge,
    policy: RowPolicy,
    x0: i64,
    y0: i64,
    cell: &mut Cell,
    sems: &mut Vec<SemRect>,
) -> Result<NetworkGeom, GenerateError> {
    let (mut strips, edges) = plan_rows(sized, side, source_net, policy)?;
    let target = strips
        .iter()
        .map(|s| s.length_lambda(rules))
        .max()
        .expect("network has at least one row");
    for s in &mut strips {
        s.stretch_to(target, rules);
    }

    let mut y = y0;
    let mut gates = Vec::new();
    let mut active_area = 0.0;
    let rows = strips.len();
    for (i, s) in strips.iter().enumerate() {
        if i > 0 {
            y += rules.row_gap;
        }
        let cap_below = if i == 0 && band == BandEdge::Bottom {
            rules.doping_overhang.min(endcap)
        } else {
            endcap
        };
        let cap_above = if i + 1 == rows && band == BandEdge::Top {
            rules.doping_overhang.min(endcap)
        } else {
            endcap
        };
        let geom = s.emit(rules, x0, y, side, cap_below, cap_above, cell, sems);
        // Per-row doping with the process overhang.
        let doped = geom
            .active
            .expanded(Dbu::from_lambda_int(rules.doping_overhang));
        let layer = match side {
            PullSide::Up => Layer::PDoping,
            PullSide::Down => Layer::NDoping,
        };
        cell.add_rect(layer, doped);
        sems.push(SemRect {
            rect: doped,
            kind: SemKind::Doped { side },
        });
        gates.extend(geom.gate_rects);
        active_area += geom.len_lambda as f64 * s.width_lambda as f64;
        y += s.width_lambda;
    }

    Ok(NetworkGeom {
        len: target,
        height: y - y0,
        active_area,
        vias: 0,
        gates,
        edges,
    })
}

// ---------------------------------------------------------------------------
// Old etched style
// ---------------------------------------------------------------------------

/// One series stage: parallel branches, each a plain chain of devices.
struct OldStage {
    branches: Vec<Vec<(VarId, i64)>>,
}

fn chain_of(net: &SizedNetwork) -> Option<Vec<(VarId, i64)>> {
    match net {
        SizedNetwork::Device { var, width_lambda } => Some(vec![(*var, *width_lambda)]),
        SizedNetwork::Series(ns) => {
            let mut out = Vec::new();
            for n in ns {
                match n {
                    SizedNetwork::Device { var, width_lambda } => out.push((*var, *width_lambda)),
                    _ => return None,
                }
            }
            Some(out)
        }
        SizedNetwork::Parallel(_) => None,
    }
}

fn old_stages(sized: &SizedNetwork) -> Result<Vec<OldStage>, GenerateError> {
    let mut stages = Vec::new();
    let mut pending: Vec<(VarId, i64)> = Vec::new();
    let children: Vec<&SizedNetwork> = match sized {
        SizedNetwork::Series(ns) => ns.iter().collect(),
        other => vec![other],
    };
    for child in children {
        match child {
            SizedNetwork::Device { var, width_lambda } => pending.push((*var, *width_lambda)),
            SizedNetwork::Parallel(branches) => {
                if !pending.is_empty() {
                    stages.push(OldStage {
                        branches: vec![std::mem::take(&mut pending)],
                    });
                }
                let mut bs = Vec::new();
                for b in branches {
                    bs.push(chain_of(b).ok_or_else(|| {
                        GenerateError::UnsupportedOldStyleBranch(format!("{b:?}"))
                    })?);
                }
                stages.push(OldStage { branches: bs });
            }
            SizedNetwork::Series(_) => {
                // Normalized networks have no nested series.
                return Err(GenerateError::UnsupportedOldStyleBranch(format!(
                    "{child:?}"
                )));
            }
        }
    }
    if !pending.is_empty() {
        stages.push(OldStage {
            branches: vec![pending],
        });
    }
    Ok(stages)
}

/// Emits an old-style network: stages left to right, each with stacked
/// branches separated by 2λ etched regions, buried gates flagged with
/// vertical-gating vias.
#[allow(clippy::too_many_arguments)]
fn emit_old_network(
    sized: &SizedNetwork,
    side: PullSide,
    source_net: &str,
    rules: &DesignRules,
    band: BandEdge,
    x0: i64,
    y0: i64,
    cell: &mut Cell,
    sems: &mut Vec<SemRect>,
) -> Result<NetworkGeom, GenerateError> {
    let stages = old_stages(sized)?;
    let lam = Dbu::from_lambda_int;
    let dope_layer = match side {
        PullSide::Up => Layer::PDoping,
        PullSide::Down => Layer::NDoping,
    };

    let mut x = x0;
    let mut vias = 0usize;
    let mut gates = Vec::new();
    let mut edges = Vec::new();
    let mut max_height = 0i64;
    let mut m_counter = 0usize;
    let mut x_counter = 0usize;
    let prefix = match side {
        PullSide::Up => "U",
        PullSide::Down => "D",
    };

    for (si, stage) in stages.iter().enumerate() {
        if si > 0 {
            x += rules.lgg;
        }
        let left_net = if si == 0 {
            source_net.to_string()
        } else {
            format!("m{prefix}{m_counter}")
        };
        let right_net = if si + 1 == stages.len() {
            "OUT".to_string()
        } else {
            m_counter += 1;
            format!("m{prefix}{m_counter}")
        };

        // Node-level devices of this stage.
        for branch in &stage.branches {
            let mut prev = left_net.clone();
            for (gi, (var, _)) in branch.iter().enumerate() {
                let next = if gi + 1 == branch.len() {
                    right_net.clone()
                } else {
                    x_counter += 1;
                    format!("i{prefix}x{x_counter}")
                };
                edges.push(SemEdge {
                    var: *var,
                    side,
                    a: prev.clone(),
                    b: next.clone(),
                });
                prev = next;
            }
        }

        let span = stage
            .branches
            .iter()
            .map(|b| b.len() as i64 * rules.lg + (b.len() as i64 - 1) * rules.lgg)
            .max()
            .expect("stage has branches");
        let len = 2 * rules.lc + 2 * rules.lgs + span;
        let k = stage.branches.len();
        let height: i64 = stage.branches.iter().map(|b| branch_width(b)).sum::<i64>()
            + (k as i64 - 1) * rules.etch;
        max_height = max_height.max(height);

        // Contact columns spanning the full stage height.
        for (cx, net) in [(x, &left_net), (x + len - rules.lc, &right_net)] {
            let r = Rect::new(lam(cx), lam(y0), lam(cx + rules.lc), lam(y0 + height));
            cell.add_rect(Layer::Contact, r);
            cell.add_text(Layer::Contact, r.center(), net);
            sems.push(SemRect {
                rect: r,
                kind: SemKind::Contact { net: net.clone() },
            });
        }

        // Active + doping for the whole stage.
        let active = Rect::new(lam(x), lam(y0), lam(x + len), lam(y0 + height));
        cell.add_rect(Layer::CntActive, active);
        let doped = active.expanded(lam(rules.doping_overhang));
        cell.add_rect(dope_layer, doped);
        sems.push(SemRect {
            rect: doped,
            kind: SemKind::Doped { side },
        });

        // Branch rows bottom-up.
        let mut y = y0;
        for (bi, branch) in stage.branches.iter().enumerate() {
            let w = branch_width(branch);
            if bi > 0 {
                // Etched region between rows (2λ), spanning between the
                // contact columns.
                let er = Rect::new(
                    lam(x + rules.lc),
                    lam(y),
                    lam(x + len - rules.lc),
                    lam(y + rules.etch),
                );
                cell.add_rect(Layer::Etch, er);
                sems.push(SemRect {
                    rect: er,
                    kind: SemKind::Etch,
                });
                y += rules.etch;
            }
            let buried = k >= 3 && bi > 0 && bi + 1 < k;
            let natural = branch.len() as i64 * rules.lg + (branch.len() as i64 - 1) * rules.lgg;
            let mut gx = x + rules.lc + rules.lgs;
            for (gi, (var, _)) in branch.iter().enumerate() {
                let mut glen = rules.lg;
                if gi + 1 == branch.len() {
                    glen += span - natural; // stretch last gate to align
                }
                let outer_below = if band == BandEdge::Bottom {
                    rules.doping_overhang
                } else {
                    rules.gate_endcap
                };
                let outer_above = if band == BandEdge::Top {
                    rules.doping_overhang
                } else {
                    rules.gate_endcap
                };
                let cap_below = if bi == 0 { outer_below } else { 0 };
                let cap_above = if bi + 1 == k { outer_above } else { 0 };
                let gr = Rect::new(
                    lam(gx),
                    lam(y - cap_below),
                    lam(gx + glen),
                    lam(y + w + cap_above),
                );
                cell.add_rect(Layer::Gate, gr);
                sems.push(SemRect {
                    rect: gr,
                    kind: SemKind::Gate { var: *var, side },
                });
                gates.push((*var, gr));
                if buried {
                    // Vertical gating: a via must land on the gate.
                    let cx = gx + glen / 2;
                    let cy = y + w / 2;
                    let h = rules.via;
                    let vr = Rect::new(
                        lam(cx - h / 2),
                        lam(cy - h / 2),
                        lam(cx - h / 2 + h),
                        lam(cy - h / 2 + h),
                    );
                    cell.add_rect(Layer::Via, vr);
                    vias += 1;
                }
                gx += glen + rules.lgg;
            }
            y += w;
        }
        x += len;
    }

    Ok(NetworkGeom {
        len: x - x0,
        height: max_height,
        // The paper's accounting: the old layout pays for its etched
        // regions and duplicated contact columns — bounding box area.
        active_area: (x - x0) as f64 * max_height as f64,
        vias,
        gates,
        edges,
    })
}

fn branch_width(branch: &[(VarId, i64)]) -> i64 {
    branch.iter().map(|(_, w)| *w).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(style: Style, scheme: Scheme, sizing: Sizing) -> GenerateOptions {
        GenerateOptions {
            style,
            scheme,
            sizing,
            ..GenerateOptions::default()
        }
    }

    fn matched(base: i64) -> Sizing {
        Sizing::Matched { base_lambda: base }
    }

    fn uniform(w: i64) -> Sizing {
        Sizing::Uniform { width_lambda: w }
    }

    #[test]
    fn nand3_new_matches_figure3b() {
        let c = generate_cell(
            StdCellKind::Nand(3),
            &opts(Style::NewImmune, Scheme::Scheme1, matched(4)),
        )
        .unwrap();
        // PUN: Euler strip 30λ × 4λ = 120 λ².
        assert_eq!(c.pun_active_area_l2, 120.0);
        // PDN: series strip 20λ × 12λ = 240 λ².
        assert_eq!(c.pdn_active_area_l2, 240.0);
        assert_eq!(c.via_on_gate_count, 0);
    }

    #[test]
    fn nand3_old_matches_figure3a() {
        let c = generate_cell(
            StdCellKind::Nand(3),
            &opts(Style::OldEtched, Scheme::Scheme1, matched(4)),
        )
        .unwrap();
        // PUN: 12λ stage × (3·4 + 2·2)λ = 12 × 16 = 192 λ².
        assert_eq!(c.pun_active_area_l2, 192.0);
        // PDN identical to the new style: 240 λ².
        assert_eq!(c.pdn_active_area_l2, 240.0);
        // Gate B is buried → exactly one vertical-gating via.
        assert_eq!(c.via_on_gate_count, 1);
    }

    #[test]
    fn table1_nand3_entry() {
        // (432 - 360) / 432 = 16.67%.
        let old = generate_cell(
            StdCellKind::Nand(3),
            &opts(Style::OldEtched, Scheme::Scheme1, matched(4)),
        )
        .unwrap();
        let new = generate_cell(
            StdCellKind::Nand(3),
            &opts(Style::NewImmune, Scheme::Scheme1, matched(4)),
        )
        .unwrap();
        let diff = (old.active_area_l2() - new.active_area_l2()) / old.active_area_l2();
        assert!((diff - 1.0 / 6.0).abs() < 1e-9, "{diff}");
    }

    #[test]
    fn inverter_styles_identical_area() {
        for style in [Style::NewImmune, Style::OldEtched] {
            let c =
                generate_cell(StdCellKind::Inv, &opts(style, Scheme::Scheme1, matched(4))).unwrap();
            assert_eq!(c.active_area_l2(), 96.0, "{style}: 12λ × 4λ × 2");
        }
    }

    #[test]
    fn aoi21_uniform_areas() {
        let old = generate_cell(
            StdCellKind::Aoi21,
            &opts(Style::OldEtched, Scheme::Scheme1, uniform(4)),
        )
        .unwrap();
        // PUN (A+B then C): stages 12+2+12 = 26λ × (2·4+2)λ = 260;
        // PDN (AB ∥ C): one stage 16λ... span = 2 gates = 6λ → len 16, height 2·4+2 = 10 → 160.
        assert_eq!(old.pun_active_area_l2, 260.0);
        assert_eq!(old.pdn_active_area_l2, 160.0);
        let new = generate_cell(
            StdCellKind::Aoi21,
            &opts(Style::NewImmune, Scheme::Scheme1, uniform(4)),
        )
        .unwrap();
        // PUN Euler strip (3 gates, 4 contacts) 30λ × 4 = 120;
        // PDN rows [GND A B OUT] and [GND C OUT→stretched] 16λ × 4 × 2 = 128.
        assert_eq!(new.pun_active_area_l2, 120.0);
        assert_eq!(new.pdn_active_area_l2, 128.0);
    }

    #[test]
    fn scheme2_shrinks_height() {
        let s1 = generate_cell(
            StdCellKind::Nand(2),
            &opts(Style::NewImmune, Scheme::Scheme1, matched(4)),
        )
        .unwrap();
        let s2 = generate_cell(
            StdCellKind::Nand(2),
            &opts(Style::NewImmune, Scheme::Scheme2, matched(4)),
        )
        .unwrap();
        assert!(s2.height_lambda < s1.height_lambda);
        assert!(s2.width_lambda > s1.width_lambda);
    }

    #[test]
    fn all_catalog_cells_generate_in_new_style() {
        for kind in StdCellKind::ALL {
            for sizing in [matched(4), uniform(4)] {
                for scheme in [Scheme::Scheme1, Scheme::Scheme2] {
                    let c = generate_cell(kind, &opts(Style::NewImmune, scheme, sizing));
                    assert!(c.is_ok(), "{kind} {sizing:?} {scheme}: {c:?}");
                    let c = c.unwrap();
                    assert!(c.active_area_l2() > 0.0);
                    assert_eq!(c.via_on_gate_count, 0, "{kind}");
                }
            }
        }
    }

    #[test]
    fn all_catalog_cells_generate_in_old_style() {
        for kind in StdCellKind::ALL {
            let c = generate_cell(kind, &opts(Style::OldEtched, Scheme::Scheme1, uniform(4)));
            assert!(c.is_ok(), "{kind}: {c:?}");
        }
    }

    #[test]
    fn pins_cover_all_inputs() {
        let c = generate_cell(
            StdCellKind::Aoi22,
            &opts(Style::NewImmune, Scheme::Scheme1, uniform(4)),
        )
        .unwrap();
        let names: Vec<&str> = c.pins.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["A", "B", "C", "D", "OUT", "VDD", "GND"] {
            assert!(names.contains(&expected), "missing pin {expected}");
        }
    }

    #[test]
    fn redundant_contacts_in_nand3_pun() {
        // The compact layout's signature: 4 contact columns for a 3-gate
        // parallel network (Vdd, Out, Vdd, Out).
        let c = generate_cell(
            StdCellKind::Nand(3),
            &opts(Style::NewImmune, Scheme::Scheme1, matched(4)),
        )
        .unwrap();
        let pun_contacts = c
            .semantics
            .rects
            .iter()
            .filter(|s| matches!(&s.kind, SemKind::Contact { net } if net == "VDD" || net == "OUT"))
            .count();
        // PUN contributes 4 (VDD, OUT, VDD, OUT); the PDN adds one OUT.
        assert_eq!(pun_contacts, 5);
    }

    #[test]
    fn old_style_has_etch_new_style_does_not() {
        let old = generate_cell(
            StdCellKind::Nand(3),
            &opts(Style::OldEtched, Scheme::Scheme1, matched(4)),
        )
        .unwrap();
        let new = generate_cell(
            StdCellKind::Nand(3),
            &opts(Style::NewImmune, Scheme::Scheme1, matched(4)),
        )
        .unwrap();
        let etch = |c: &GeneratedCell| {
            c.semantics
                .rects
                .iter()
                .filter(|s| matches!(s.kind, SemKind::Etch))
                .count()
        };
        assert_eq!(etch(&old), 2, "two etched regions between A-B and B-C");
        assert_eq!(etch(&new), 0, "new style uses redundant contacts instead");
    }
}
