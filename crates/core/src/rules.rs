//! The λ-convention design-rule deck.
//!
//! Values were recovered by solving the paper's Table 1 exactly (see
//! DESIGN.md §3): with `Lc = 3λ`, `Lg = 2λ`, `Lgs = Lgd = Lgg = 2λ` and 2λ
//! etched regions, every INV/NAND/NOR entry of Table 1 reproduces to the
//! printed precision.

/// Scalable design rules in integer λ.
///
/// # Example
///
/// ```
/// use cnfet_core::DesignRules;
/// let r = DesignRules::cnfet65();
/// // An Euler strip with k gates and k+1 contacts is 9k+3 λ long:
/// assert_eq!(r.euler_strip_len(3), 30);
/// // A series chain with end contacts only is 4k+8 λ long:
/// assert_eq!(r.series_strip_len(3), 20);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DesignRules {
    /// Gate length `Lg`.
    pub lg: i64,
    /// Gate-to-contact spacing `Lgs`/`Lgd`.
    pub lgs: i64,
    /// Contact column length `Ls`/`Ld`.
    pub lc: i64,
    /// Gate-to-gate spacing in a series chain.
    pub lgg: i64,
    /// Minimum etched-region size (the 65 nm lithography limit).
    pub etch: i64,
    /// Via edge length (larger than the gate length, as the paper notes).
    pub via: i64,
    /// Gate endcap past the CNT strip in immune layouts (must cover the
    /// doping overhang so tubes cannot dodge around gate ends).
    pub gate_endcap: i64,
    /// Doping-mask overhang past the active strip (process margin).
    pub doping_overhang: i64,
    /// Under-sized endcap used by the *vulnerable* CMOS-style layout; being
    /// smaller than the doping overhang it leaves conductive corridors
    /// around gate ends — the Figure 2(b) failure mechanism.
    pub vulnerable_endcap: i64,
    /// Vertical gap between stacked rows of the same network. Must be at
    /// least `2·gate_endcap + lgg` so that gate endcaps of adjacent rows
    /// keep poly spacing, and more than `2·doping_overhang` so an intrinsic
    /// (undoped) band separates rows — mispositioned tubes crossing rows
    /// die there, which is what makes multi-row layouts immune.
    pub row_gap: i64,
    /// PUN–PDN separation of CNFET cells (limited by the 6λ input pin).
    pub sep_cnfet: i64,
    /// PUN(n-well)–PDN separation of the CMOS baseline (10λ at 65 nm).
    pub sep_cmos: i64,
    /// Input pin edge length.
    pub pin: i64,
}

impl DesignRules {
    /// The paper's 65 nm CNFET rule set.
    pub fn cnfet65() -> DesignRules {
        DesignRules {
            lg: 2,
            lgs: 2,
            lc: 3,
            lgg: 2,
            etch: 2,
            via: 3,
            gate_endcap: 3,
            doping_overhang: 2,
            vulnerable_endcap: 1,
            row_gap: 8,
            sep_cnfet: 6,
            sep_cmos: 10,
            pin: 6,
        }
    }

    /// Length in λ of an alternating contact/gate Euler strip with `k`
    /// gates and `k+1` contact columns: `(k+1)·Lc + k·Lg + 2k·Lgs`.
    pub fn euler_strip_len(&self, k: i64) -> i64 {
        (k + 1) * self.lc + k * self.lg + 2 * k * self.lgs
    }

    /// Length in λ of a series chain with contacts only at the ends:
    /// `2·Lc + k·Lg + 2·Lgs + (k−1)·Lgg`.
    pub fn series_strip_len(&self, k: i64) -> i64 {
        2 * self.lc + k * self.lg + 2 * self.lgs + (k - 1) * self.lgg
    }

    /// Length in λ of one old-style stage column (one gate column between
    /// two contact columns).
    pub fn stage_len(&self) -> i64 {
        2 * self.lc + self.lg + 2 * self.lgs
    }
}

impl Default for DesignRules {
    fn default() -> Self {
        DesignRules::cnfet65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_length_formulas() {
        let r = DesignRules::cnfet65();
        // Inverter strip = 12λ in both forms.
        assert_eq!(r.euler_strip_len(1), 12);
        assert_eq!(r.series_strip_len(1), 12);
        // NAND2 PUN (Vdd-A-Out-B-Vdd) = 21λ; NAND3 PUN = 30λ.
        assert_eq!(r.euler_strip_len(2), 21);
        assert_eq!(r.euler_strip_len(3), 30);
        // NAND2 PDN = 16λ; NAND3 PDN = 20λ.
        assert_eq!(r.series_strip_len(2), 16);
        assert_eq!(r.series_strip_len(3), 20);
        // Old-style stage column = 12λ.
        assert_eq!(r.stage_len(), 12);
    }

    #[test]
    fn vulnerable_endcap_smaller_than_overhang() {
        // The vulnerability mechanism requires an ungated doped corridor.
        let r = DesignRules::cnfet65();
        assert!(r.vulnerable_endcap < r.doping_overhang);
        assert!(r.gate_endcap >= r.doping_overhang);
    }

    #[test]
    fn row_gap_consistency() {
        let r = DesignRules::cnfet65();
        assert!(r.row_gap >= 2 * r.gate_endcap + r.lgg);
        assert!(r.row_gap > 2 * r.doping_overhang);
    }

    #[test]
    fn etch_is_lithography_limit() {
        // 2λ = 65 nm at the 65 nm node.
        let r = DesignRules::cnfet65();
        assert_eq!(r.etch, 2);
    }
}
