//! CMOS baseline standard cells for the paper's area comparisons.
//!
//! The CMOS cells follow the same strip planning as the CNFET cells but
//! with the bulk-CMOS constraints the paper cites: `pMOS = 1.4 × nMOS` and
//! a 10λ n-well/p-diffusion separation between the networks (versus the
//! CNFET cell's pin-limited 6λ).

use crate::cells::StdCellKind;
use crate::generate::{plan_rows, RowPolicy};
use crate::rules::DesignRules;
use crate::sizing::{SizedNetwork, Sizing};
use crate::strip::StripElem;
use cnfet_geom::{Cell, Dbu, Layer, Rect};

/// PMOS/NMOS width ratio used by the paper's CMOS library.
pub const CMOS_PN_RATIO: f64 = 1.4;

/// A generated CMOS baseline cell (metrics plus display geometry).
#[derive(Clone, Debug)]
pub struct CmosCell {
    /// Cell name, e.g. `CMOS_NAND2_X4`.
    pub name: String,
    /// Function.
    pub kind: StdCellKind,
    /// Drawn geometry (display quality; CMOS cells are a baseline, not a
    /// DRC/immunity subject).
    pub cell: Cell,
    /// Footprint width, λ.
    pub width_lambda: f64,
    /// Footprint height, λ (PDN + 10λ separation + PUN).
    pub height_lambda: f64,
    /// Footprint area, λ².
    pub footprint_l2: f64,
}

/// Generates the CMOS baseline cell for a function at a given base NMOS
/// width (λ).
///
/// # Panics
///
/// Panics only if the catalog function cannot be planned as rows, which
/// does not happen for catalog cells.
pub fn cmos_cell(kind: StdCellKind, base_lambda: i64, rules: &DesignRules) -> CmosCell {
    let (pdn, pun, _vars) = kind.networks();
    let sizing = Sizing::Matched { base_lambda };
    let spdn = SizedNetwork::from_network(&pdn, sizing);
    let spun = SizedNetwork::from_network(&pun, sizing);

    let name = format!("CMOS_{}_X{base_lambda}", kind.name());
    let mut cell = Cell::new(name.clone());

    // PDN at the bottom (n-type, unscaled), PUN above (p-type, 1.4x).
    let pdn_h = emit_rows(&spdn, "GND", rules, 1.0, 0.0, &mut cell);
    let pdn_height = pdn_h.1;
    let y_pun = pdn_height + rules.sep_cmos as f64;
    let pun_m = emit_rows(&spun, "VDD", rules, CMOS_PN_RATIO, y_pun, &mut cell);

    let width = pdn_h.0.max(pun_m.0);
    let height = y_pun + pun_m.1;
    let boundary = Rect::new(
        Dbu::from_lambda(-1.0),
        Dbu::from_lambda(-1.0),
        Dbu::from_lambda(width + 1.0),
        Dbu::from_lambda(height + 1.0),
    );
    cell.add_rect(Layer::Boundary, boundary);

    CmosCell {
        name,
        kind,
        cell,
        width_lambda: width,
        height_lambda: height,
        footprint_l2: width * height,
    }
}

/// Emits the rows of one network, returning `(max length λ, total height λ)`.
fn emit_rows(
    sized: &SizedNetwork,
    source: &str,
    rules: &DesignRules,
    width_scale: f64,
    y0: f64,
    cell: &mut Cell,
) -> (f64, f64) {
    let (mut strips, _edges) = plan_rows(
        sized,
        crate::semantics::PullSide::Down,
        source,
        RowPolicy::PaperProductTerms,
    )
    .expect("catalog cells plan as rows");
    let target = strips
        .iter()
        .map(|s| s.length_lambda(rules))
        .max()
        .expect("at least one row");
    for s in &mut strips {
        s.stretch_to(target, rules);
    }

    let mut y = y0;
    for (i, s) in strips.iter().enumerate() {
        if i > 0 {
            y += rules.row_gap as f64;
        }
        let h = s.width_lambda as f64 * width_scale;
        let active = Rect::new(
            Dbu::from_lambda(0.0),
            Dbu::from_lambda(y),
            Dbu::from_lambda(target as f64),
            Dbu::from_lambda(y + h),
        );
        cell.add_rect(Layer::CntActive, active);
        for (x, len, e) in s.element_positions(rules) {
            match e {
                StripElem::Contact { net } => {
                    let r = Rect::new(
                        Dbu::from_lambda(x as f64),
                        Dbu::from_lambda(y),
                        Dbu::from_lambda((x + len) as f64),
                        Dbu::from_lambda(y + h),
                    );
                    cell.add_rect(Layer::Contact, r);
                    cell.add_text(Layer::Contact, r.center(), net);
                }
                StripElem::Gate { .. } => {
                    let r = Rect::new(
                        Dbu::from_lambda(x as f64),
                        Dbu::from_lambda(y - rules.gate_endcap as f64),
                        Dbu::from_lambda((x + len) as f64),
                        Dbu::from_lambda(y + h + rules.gate_endcap as f64),
                    );
                    cell.add_rect(Layer::Gate, r);
                }
            }
        }
        y += h;
    }
    (target as f64, y - y0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos_inverter_footprint_matches_paper_ratio_inputs() {
        // Wn = 4λ, Wp = 5.6λ, sep = 10λ, strip length 12λ → 235.2 λ².
        let c = cmos_cell(StdCellKind::Inv, 4, &DesignRules::cnfet65());
        assert!((c.footprint_l2 - 235.2).abs() < 1e-9, "{}", c.footprint_l2);
        assert!((c.height_lambda - 19.6).abs() < 1e-9);
        assert!((c.width_lambda - 12.0).abs() < 1e-9);
    }

    #[test]
    fn cmos_nand2_taller_than_inverter() {
        let inv = cmos_cell(StdCellKind::Inv, 4, &DesignRules::cnfet65());
        let nand = cmos_cell(StdCellKind::Nand(2), 4, &DesignRules::cnfet65());
        assert!(nand.height_lambda > inv.height_lambda);
        assert!(nand.width_lambda > inv.width_lambda);
    }

    #[test]
    fn geometry_is_drawn() {
        let c = cmos_cell(StdCellKind::Nand(2), 4, &DesignRules::cnfet65());
        assert!(c.cell.shapes_on(Layer::Gate).count() >= 4);
        assert!(c.cell.shapes_on(Layer::Contact).count() >= 4);
    }
}
