//! SVG rendering of layout cells for visual inspection.
//!
//! The examples and figure-regeneration binaries dump layouts as SVG so the
//! reproduced Figure 2/3/4/8 geometry can be eyeballed against the paper.

use crate::layer::Layer;
use crate::layout::Cell;
use std::fmt::Write as _;

/// Renders a cell's local shapes as a standalone SVG document.
///
/// The y-axis is flipped so that the layout's +y (up) matches the screen's
/// visual up. `scale` is pixels per database unit (0.5–2.0 works well for
/// standard cells).
///
/// # Example
///
/// ```
/// use cnfet_geom::{render_svg, Cell, Layer, Rect};
/// let mut c = Cell::new("demo");
/// c.add_rect(Layer::Gate, Rect::from_lambda(0.0, 0.0, 2.0, 4.0));
/// let svg = render_svg(&c, 1.0);
/// assert!(svg.starts_with("<svg") && svg.contains("</svg>"));
/// ```
pub fn render_svg(cell: &Cell, scale: f64) -> String {
    let bbox = cell.bbox();
    let (x0, y0, w, h) = match bbox {
        Some(b) => (
            b.x0().0 as f64,
            b.y0().0 as f64,
            b.width().0 as f64,
            b.height().0 as f64,
        ),
        None => (0.0, 0.0, 1.0, 1.0),
    };
    let margin = 10.0;
    let width = w * scale + 2.0 * margin;
    let height = h * scale + 2.0 * margin;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\">"
    );
    let _ = writeln!(
        svg,
        "<rect x=\"0\" y=\"0\" width=\"{width:.0}\" height=\"{height:.0}\" fill=\"white\"/>"
    );
    let _ = writeln!(svg, "<!-- cell: {} -->", cell.name());

    // Draw in a deterministic layer order so stacking is stable.
    for layer in Layer::ALL {
        for shape in cell.shapes_on(layer) {
            let r = shape.rect;
            let sx = (r.x0().0 as f64 - x0) * scale + margin;
            // Flip y: top of the SVG is max y of the layout.
            let sy = (y0 + h - r.y1().0 as f64) * scale + margin;
            let sw = r.width().0 as f64 * scale;
            let sh = r.height().0 as f64 * scale;
            let color = layer.svg_color();
            let stroke = if layer == Layer::Boundary {
                "stroke=\"#333\" stroke-dasharray=\"4 2\" fill=\"none\""
            } else {
                ""
            };
            if layer == Layer::Boundary {
                let _ = writeln!(
                    svg,
                    "<rect x=\"{sx:.1}\" y=\"{sy:.1}\" width=\"{sw:.1}\" height=\"{sh:.1}\" {stroke}/>"
                );
            } else {
                let _ = writeln!(
                    svg,
                    "<rect x=\"{sx:.1}\" y=\"{sy:.1}\" width=\"{sw:.1}\" height=\"{sh:.1}\" \
                     fill=\"{color}\" fill-opacity=\"{:.2}\" stroke=\"#222\" stroke-width=\"0.3\"><title>{}</title></rect>",
                    layer.svg_opacity(),
                    layer.name()
                );
            }
        }
    }

    for text in cell.texts() {
        let sx = (text.position.x.0 as f64 - x0) * scale + margin;
        let sy = (y0 + h - text.position.y.0 as f64) * scale + margin;
        let _ = writeln!(
            svg,
            "<text x=\"{sx:.1}\" y=\"{sy:.1}\" font-size=\"10\" font-family=\"monospace\" \
             fill=\"#000\">{}</text>",
            xml_escape(&text.string)
        );
    }

    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Point;
    use crate::rect::Rect;

    #[test]
    fn empty_cell_renders() {
        let svg = render_svg(&Cell::new("empty"), 1.0);
        assert!(svg.contains("<svg"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn shapes_and_texts_present() {
        let mut c = Cell::new("t");
        c.add_rect(Layer::Gate, Rect::from_lambda(0.0, 0.0, 2.0, 4.0));
        c.add_rect(Layer::Boundary, Rect::from_lambda(-1.0, -1.0, 3.0, 5.0));
        c.add_text(Layer::Pin, Point::from_lambda(1.0, 1.0), "A<&>");
        let svg = render_svg(&c, 2.0);
        assert!(svg.contains("fill=\"#cc2222\""), "gate fill missing");
        assert!(svg.contains("stroke-dasharray"), "boundary style missing");
        assert!(svg.contains("A&lt;&amp;&gt;"), "text not escaped");
    }

    #[test]
    fn y_axis_flipped() {
        let mut c = Cell::new("t");
        c.add_rect(Layer::Gate, Rect::from_lambda(0.0, 0.0, 1.0, 1.0));
        c.add_rect(Layer::Contact, Rect::from_lambda(0.0, 9.0, 1.0, 10.0));
        let svg = render_svg(&c, 1.0);
        // The higher-y contact must be drawn at a smaller svg y than the gate.
        let y_attr = |line: &str| -> f64 {
            line.split(" y=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let gate_line = svg.lines().find(|l| l.contains("#cc2222")).unwrap();
        let contact_line = svg.lines().find(|l| l.contains("#4444cc")).unwrap();
        let (gate_y, contact_y) = (y_attr(gate_line), y_attr(contact_line));
        assert!(
            contact_y < gate_y,
            "contact {contact_y} should be above gate {gate_y}"
        );
    }
}
