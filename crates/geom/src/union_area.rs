//! Sweep-line union area of rectangle sets.
//!
//! Layout generators freely overlap rectangles on the same layer (abutting
//! contacts, merged rails), so honest area accounting — which Table 1 of the
//! paper depends on — must measure the union, not the sum.

use crate::rect::Rect;

/// Computes the exact area of the union of `rects` in square database units.
///
/// Runs the classic x-sweep with interval merging per slab: `O(n² log n)`
/// worst case, which is ample for standard cells and small blocks.
///
/// # Example
///
/// ```
/// use cnfet_geom::{union_area, Rect, Dbu};
/// let a = Rect::new(Dbu(0), Dbu(0), Dbu(10), Dbu(10));
/// let b = Rect::new(Dbu(5), Dbu(0), Dbu(15), Dbu(10));
/// assert_eq!(union_area(&[a, b]), 150);
/// ```
pub fn union_area(rects: &[Rect]) -> i128 {
    let rects: Vec<&Rect> = rects.iter().filter(|r| !r.is_degenerate()).collect();
    if rects.is_empty() {
        return 0;
    }
    // Collect and sort the distinct x coordinates bounding the slabs.
    let mut xs: Vec<i64> = Vec::with_capacity(rects.len() * 2);
    for r in &rects {
        xs.push(r.x0().0);
        xs.push(r.x1().0);
    }
    xs.sort_unstable();
    xs.dedup();

    let mut total: i128 = 0;
    for w in xs.windows(2) {
        let (xa, xb) = (w[0], w[1]);
        if xa == xb {
            continue;
        }
        // Gather y-intervals of rectangles spanning this slab.
        let mut intervals: Vec<(i64, i64)> = rects
            .iter()
            .filter(|r| r.x0().0 <= xa && xb <= r.x1().0)
            .map(|r| (r.y0().0, r.y1().0))
            .collect();
        if intervals.is_empty() {
            continue;
        }
        intervals.sort_unstable();
        let covered = merged_length(&intervals);
        total += covered as i128 * (xb - xa) as i128;
    }
    total
}

/// Total length covered by a set of *sorted* half-open intervals.
fn merged_length(sorted: &[(i64, i64)]) -> i64 {
    let mut covered = 0;
    let mut cur_start = sorted[0].0;
    let mut cur_end = sorted[0].1;
    for &(s, e) in &sorted[1..] {
        if s > cur_end {
            covered += cur_end - cur_start;
            cur_start = s;
            cur_end = e;
        } else if e > cur_end {
            cur_end = e;
        }
    }
    covered + (cur_end - cur_start)
}

/// Merges a list of possibly-overlapping closed intervals into a minimal
/// sorted list of disjoint intervals.
///
/// Used by DRC width checks and by the immunity tracer to reason about gate
/// coverage along a CNT.
pub fn merge_intervals(mut intervals: Vec<(i64, i64)>) -> Vec<(i64, i64)> {
    intervals.retain(|(s, e)| e >= s);
    intervals.sort_unstable();
    let mut out: Vec<(i64, i64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match out.last_mut() {
            Some((_, last_e)) if s <= *last_e => {
                *last_e = (*last_e).max(e);
            }
            _ => out.push((s, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Dbu;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Dbu(x0), Dbu(y0), Dbu(x1), Dbu(y1))
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(union_area(&[]), 0);
        assert_eq!(union_area(&[r(0, 0, 0, 10)]), 0);
    }

    #[test]
    fn disjoint_sum() {
        assert_eq!(union_area(&[r(0, 0, 10, 10), r(20, 0, 30, 10)]), 200);
    }

    #[test]
    fn full_containment() {
        assert_eq!(union_area(&[r(0, 0, 10, 10), r(2, 2, 4, 4)]), 100);
    }

    #[test]
    fn partial_overlap() {
        assert_eq!(union_area(&[r(0, 0, 10, 10), r(5, 5, 15, 15)]), 175);
    }

    #[test]
    fn cross_shape() {
        // Vertical bar and horizontal bar crossing: 2*100 - 4 overlap.
        let v = r(4, 0, 6, 50);
        let h = r(0, 24, 50, 26);
        assert_eq!(union_area(&[v, h]), 100 + 100 - 4);
    }

    #[test]
    fn merge_interval_cases() {
        assert_eq!(
            merge_intervals(vec![(5, 7), (0, 2), (1, 3), (7, 9)]),
            vec![(0, 3), (5, 9)]
        );
        assert_eq!(merge_intervals(vec![]), vec![]);
        assert_eq!(merge_intervals(vec![(3, 3), (3, 4)]), vec![(3, 4)]);
        // Inverted intervals are dropped.
        assert_eq!(merge_intervals(vec![(5, 1)]), vec![]);
    }

    #[test]
    fn brute_force_agreement() {
        // Compare against per-unit-cell counting on a small grid.
        let rects = [
            r(0, 0, 7, 5),
            r(3, 2, 10, 9),
            r(-2, -2, 1, 1),
            r(6, 0, 8, 12),
        ];
        let mut count = 0i128;
        for x in -5..15 {
            for y in -5..15 {
                let cell = r(x, y, x + 1, y + 1);
                if rects.iter().any(|rc| rc.overlaps(&cell)) {
                    count += 1;
                }
            }
        }
        assert_eq!(union_area(&rects), count);
    }
}
