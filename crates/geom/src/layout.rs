//! Cells, instances and libraries: the layout database.

use crate::coord::{Dbu, Point};
use crate::layer::Layer;
use crate::rect::Rect;
use crate::transform::Transform;
use crate::union_area::union_area;
use std::collections::HashMap;
use std::fmt;

/// A rectangle on a process layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Process layer the rectangle is drawn on.
    pub layer: Layer,
    /// The geometry.
    pub rect: Rect,
}

/// A text label, used for pin names and net annotations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Text {
    /// Layer the label is attached to.
    pub layer: Layer,
    /// Anchor position.
    pub position: Point,
    /// Label string (net or pin name).
    pub string: String,
}

/// A placed reference to another cell in the same library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Name of the referenced cell.
    pub cell: String,
    /// Placement transform applied to the referenced cell's geometry.
    pub transform: Transform,
    /// Instance name (unique within the parent cell by convention).
    pub name: String,
}

/// A layout cell: a named bag of shapes, labels and instances.
///
/// # Example
///
/// ```
/// use cnfet_geom::{Cell, Layer, Rect};
/// let mut inv = Cell::new("INV_1X");
/// inv.add_rect(Layer::Gate, Rect::from_lambda(5.0, 0.0, 7.0, 4.0));
/// assert_eq!(inv.shapes_on(Layer::Gate).count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cell {
    name: String,
    shapes: Vec<Shape>,
    texts: Vec<Text>,
    instances: Vec<Instance>,
}

impl Cell {
    /// Creates an empty cell.
    pub fn new(name: impl Into<String>) -> Cell {
        Cell {
            name: name.into(),
            shapes: Vec::new(),
            texts: Vec::new(),
            instances: Vec::new(),
        }
    }

    /// The cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the cell.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a rectangle on a layer; degenerate rectangles are kept (they can
    /// be probes) but contribute no area.
    pub fn add_rect(&mut self, layer: Layer, rect: Rect) -> &mut Cell {
        self.shapes.push(Shape { layer, rect });
        self
    }

    /// Adds a pre-built shape.
    pub fn add_shape(&mut self, shape: Shape) -> &mut Cell {
        self.shapes.push(shape);
        self
    }

    /// Adds a text label.
    pub fn add_text(
        &mut self,
        layer: Layer,
        position: Point,
        string: impl Into<String>,
    ) -> &mut Cell {
        self.texts.push(Text {
            layer,
            position,
            string: string.into(),
        });
        self
    }

    /// Adds an instance of another cell.
    pub fn add_instance(&mut self, instance: Instance) -> &mut Cell {
        self.instances.push(instance);
        self
    }

    /// All shapes in insertion order.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// All text labels.
    pub fn texts(&self) -> &[Text] {
        &self.texts
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Iterator over shapes on one layer.
    pub fn shapes_on(&self, layer: Layer) -> impl Iterator<Item = &Shape> {
        self.shapes.iter().filter(move |s| s.layer == layer)
    }

    /// Rectangles on one layer.
    pub fn rects_on(&self, layer: Layer) -> Vec<Rect> {
        self.shapes_on(layer).map(|s| s.rect).collect()
    }

    /// Union area of one layer in square database units.
    pub fn area_on(&self, layer: Layer) -> i128 {
        union_area(&self.rects_on(layer))
    }

    /// Bounding box of all local shapes (instances excluded), if any.
    pub fn bbox(&self) -> Option<Rect> {
        self.shapes
            .iter()
            .map(|s| s.rect)
            .reduce(|a, b| a.union_bbox(&b))
    }

    /// Translates every shape, text and instance by `(dx, dy)`.
    pub fn translate(&mut self, dx: Dbu, dy: Dbu) {
        for s in &mut self.shapes {
            s.rect = s.rect.translated(dx, dy);
        }
        for t in &mut self.texts {
            t.position = t.position.translated(dx, dy);
        }
        for i in &mut self.instances {
            i.transform.dx += dx;
            i.transform.dy += dy;
        }
    }

    /// Merges another cell's local shapes and texts into this one under a
    /// transform (instances of `other` are *not* resolved; see
    /// [`Library::flatten`]).
    pub fn merge_transformed(&mut self, other: &Cell, t: &Transform) {
        for s in &other.shapes {
            self.shapes.push(Shape {
                layer: s.layer,
                rect: t.apply_rect(s.rect),
            });
        }
        for txt in &other.texts {
            self.texts.push(Text {
                layer: txt.layer,
                position: t.apply(txt.position),
                string: txt.string.clone(),
            });
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} ({} shapes, {} insts)",
            self.name,
            self.shapes.len(),
            self.instances.len()
        )
    }
}

/// Errors raised by library operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LibraryError {
    /// A referenced cell does not exist in the library.
    MissingCell(String),
    /// Instance graph contains a cycle through the named cell.
    RecursiveHierarchy(String),
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::MissingCell(name) => write!(f, "missing cell `{name}`"),
            LibraryError::RecursiveHierarchy(name) => {
                write!(f, "recursive hierarchy through `{name}`")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

/// A collection of cells forming a design library.
///
/// # Example
///
/// ```
/// use cnfet_geom::{Library, Cell};
/// let mut lib = Library::new("cnfet65");
/// lib.add_cell(Cell::new("INV_1X"));
/// assert!(lib.cell("INV_1X").is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
    by_name: HashMap<String, usize>,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Library {
        Library {
            name: name.into(),
            cells: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds (or replaces) a cell, returning its index.
    pub fn add_cell(&mut self, cell: Cell) -> usize {
        if let Some(&idx) = self.by_name.get(cell.name()) {
            self.cells[idx] = cell;
            idx
        } else {
            let idx = self.cells.len();
            self.by_name.insert(cell.name().to_string(), idx);
            self.cells.push(cell);
            idx
        }
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.by_name.get(name).map(|&i| &self.cells[i])
    }

    /// Mutable cell lookup.
    pub fn cell_mut(&mut self, name: &str) -> Option<&mut Cell> {
        self.by_name.get(name).map(|&i| &mut self.cells[i])
    }

    /// All cells in insertion order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Produces a new cell with the full hierarchy under `name` resolved to
    /// local shapes.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::MissingCell`] if `name` or any referenced cell
    /// is absent, and [`LibraryError::RecursiveHierarchy`] on instance
    /// cycles.
    pub fn flatten(&self, name: &str) -> Result<Cell, LibraryError> {
        let mut out = Cell::new(format!("{name}_flat"));
        let mut stack = vec![name.to_string()];
        self.flatten_into(name, &Transform::IDENTITY, &mut out, &mut stack)?;
        Ok(out)
    }

    fn flatten_into(
        &self,
        name: &str,
        t: &Transform,
        out: &mut Cell,
        stack: &mut Vec<String>,
    ) -> Result<(), LibraryError> {
        let cell = self
            .cell(name)
            .ok_or_else(|| LibraryError::MissingCell(name.to_string()))?;
        out.merge_transformed(cell, t);
        for inst in cell.instances() {
            if stack.iter().any(|n| n == &inst.cell) {
                return Err(LibraryError::RecursiveHierarchy(inst.cell.clone()));
            }
            stack.push(inst.cell.clone());
            let combined = t.compose(&inst.transform);
            self.flatten_into(&inst.cell, &combined, out, stack)?;
            stack.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::Orientation;

    fn rect(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Dbu(x0), Dbu(y0), Dbu(x1), Dbu(y1))
    }

    #[test]
    fn add_and_query_shapes() {
        let mut c = Cell::new("t");
        c.add_rect(Layer::Gate, rect(0, 0, 2, 10));
        c.add_rect(Layer::Contact, rect(4, 0, 7, 10));
        c.add_rect(Layer::Gate, rect(9, 0, 11, 10));
        assert_eq!(c.shapes_on(Layer::Gate).count(), 2);
        assert_eq!(c.area_on(Layer::Gate), 40);
        assert_eq!(c.bbox(), Some(rect(0, 0, 11, 10)));
    }

    #[test]
    fn overlapping_area_not_double_counted() {
        let mut c = Cell::new("t");
        c.add_rect(Layer::Contact, rect(0, 0, 10, 10));
        c.add_rect(Layer::Contact, rect(5, 0, 15, 10));
        assert_eq!(c.area_on(Layer::Contact), 150);
    }

    #[test]
    fn translate_moves_everything() {
        let mut c = Cell::new("t");
        c.add_rect(Layer::Gate, rect(0, 0, 2, 2));
        c.add_text(Layer::Pin, Point::new(Dbu(1), Dbu(1)), "A");
        c.translate(Dbu(10), Dbu(20));
        assert_eq!(c.shapes()[0].rect, rect(10, 20, 12, 22));
        assert_eq!(c.texts()[0].position, Point::new(Dbu(11), Dbu(21)));
    }

    #[test]
    fn library_flatten_two_levels() {
        let mut lib = Library::new("lib");
        let mut leaf = Cell::new("leaf");
        leaf.add_rect(Layer::Gate, rect(0, 0, 2, 4));
        lib.add_cell(leaf);

        let mut mid = Cell::new("mid");
        mid.add_instance(Instance {
            cell: "leaf".into(),
            transform: Transform::translate(Dbu(10), Dbu(0)),
            name: "u0".into(),
        });
        lib.add_cell(mid);

        let mut top = Cell::new("top");
        top.add_instance(Instance {
            cell: "mid".into(),
            transform: Transform::new(Orientation::MY, Dbu(100), Dbu(0)),
            name: "m".into(),
        });
        lib.add_cell(top);

        let flat = lib.flatten("top").unwrap();
        assert_eq!(flat.shapes().len(), 1);
        // leaf at x=[10,12] mirrored about y then +100 => x=[88,90]
        assert_eq!(flat.shapes()[0].rect, rect(88, 0, 90, 4));
    }

    #[test]
    fn flatten_detects_recursion() {
        let mut lib = Library::new("lib");
        let mut a = Cell::new("a");
        a.add_instance(Instance {
            cell: "b".into(),
            transform: Transform::IDENTITY,
            name: "u".into(),
        });
        lib.add_cell(a);
        let mut b = Cell::new("b");
        b.add_instance(Instance {
            cell: "a".into(),
            transform: Transform::IDENTITY,
            name: "v".into(),
        });
        lib.add_cell(b);
        assert!(matches!(
            lib.flatten("a"),
            Err(LibraryError::RecursiveHierarchy(_))
        ));
    }

    #[test]
    fn flatten_missing_cell() {
        let lib = Library::new("lib");
        assert_eq!(
            lib.flatten("nope"),
            Err(LibraryError::MissingCell("nope".into()))
        );
    }

    #[test]
    fn add_cell_replaces_same_name() {
        let mut lib = Library::new("lib");
        lib.add_cell(Cell::new("x"));
        let mut x2 = Cell::new("x");
        x2.add_rect(Layer::Gate, rect(0, 0, 1, 1));
        lib.add_cell(x2);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.cell("x").unwrap().shapes().len(), 1);
    }
}
