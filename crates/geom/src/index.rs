//! A simple uniform-grid spatial index used by design-rule checking.

use crate::coord::Dbu;
use crate::rect::Rect;
use std::collections::HashMap;

/// Uniform-grid spatial index over rectangles.
///
/// Rectangles are binned by the grid cells they overlap; window queries
/// return candidate indices (deduplicated, sorted) whose rectangles touch
/// the query window. Designed for the shape counts of standard cells and
/// small placed blocks where a uniform grid outperforms tree structures.
///
/// # Example
///
/// ```
/// use cnfet_geom::{GridIndex, Rect, Dbu};
/// let rects = vec![Rect::new(Dbu(0), Dbu(0), Dbu(10), Dbu(10))];
/// let idx = GridIndex::build(&rects, Dbu(64));
/// assert_eq!(idx.query(&Rect::new(Dbu(5), Dbu(5), Dbu(6), Dbu(6))), vec![0]);
/// ```
#[derive(Clone, Debug)]
pub struct GridIndex {
    cell_size: i64,
    bins: HashMap<(i64, i64), Vec<usize>>,
    rects: Vec<Rect>,
}

impl GridIndex {
    /// Builds an index over `rects` with the given grid pitch.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive.
    pub fn build(rects: &[Rect], cell_size: Dbu) -> GridIndex {
        assert!(cell_size.0 > 0, "grid cell size must be positive");
        let mut bins: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, r) in rects.iter().enumerate() {
            for key in Self::keys(r, cell_size.0) {
                bins.entry(key).or_default().push(i);
            }
        }
        GridIndex {
            cell_size: cell_size.0,
            bins,
            rects: rects.to_vec(),
        }
    }

    fn keys(r: &Rect, cs: i64) -> Vec<(i64, i64)> {
        let gx0 = r.x0().0.div_euclid(cs);
        let gx1 = r.x1().0.div_euclid(cs);
        let gy0 = r.y0().0.div_euclid(cs);
        let gy1 = r.y1().0.div_euclid(cs);
        let mut keys = Vec::with_capacity(((gx1 - gx0 + 1) * (gy1 - gy0 + 1)) as usize);
        for gx in gx0..=gx1 {
            for gy in gy0..=gy1 {
                keys.push((gx, gy));
            }
        }
        keys
    }

    /// Indices of rectangles that touch (overlap or abut) the window.
    pub fn query(&self, window: &Rect) -> Vec<usize> {
        let mut out: Vec<usize> = Self::keys(window, self.cell_size)
            .into_iter()
            .flat_map(|k| self.bins.get(&k).into_iter().flatten().copied())
            .filter(|&i| self.rects[i].touches(window))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The indexed rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Dbu(x0), Dbu(y0), Dbu(x1), Dbu(y1))
    }

    #[test]
    fn finds_touching_rects_only() {
        let rects = vec![r(0, 0, 10, 10), r(100, 100, 110, 110), r(8, 8, 20, 20)];
        let idx = GridIndex::build(&rects, Dbu(16));
        assert_eq!(idx.query(&r(9, 9, 12, 12)), vec![0, 2]);
        assert_eq!(idx.query(&r(50, 50, 60, 60)), Vec::<usize>::new());
        assert_eq!(idx.query(&r(105, 105, 106, 106)), vec![1]);
    }

    #[test]
    fn negative_coordinates() {
        let rects = vec![r(-30, -30, -20, -20)];
        let idx = GridIndex::build(&rects, Dbu(16));
        assert_eq!(idx.query(&r(-25, -25, -24, -24)), vec![0]);
        assert_eq!(idx.query(&r(0, 0, 5, 5)), Vec::<usize>::new());
    }

    #[test]
    fn abutting_counts_as_touch() {
        let rects = vec![r(0, 0, 10, 10)];
        let idx = GridIndex::build(&rects, Dbu(8));
        assert_eq!(idx.query(&r(10, 0, 20, 10)), vec![0]);
    }

    #[test]
    fn brute_force_agreement() {
        use cnfet_rng::{Rng, SeedableRng};
        let mut rng = cnfet_rng::rngs::StdRng::seed_from_u64(7);
        let rects: Vec<Rect> = (0..200)
            .map(|_| {
                let x = rng.gen_range(-500..500i64);
                let y = rng.gen_range(-500..500i64);
                r(
                    x,
                    y,
                    x + rng.gen_range(1..50i64),
                    y + rng.gen_range(1..50i64),
                )
            })
            .collect();
        let idx = GridIndex::build(&rects, Dbu(37));
        for _ in 0..50 {
            let x = rng.gen_range(-500..500i64);
            let y = rng.gen_range(-500..500i64);
            let w = r(
                x,
                y,
                x + rng.gen_range(1..80i64),
                y + rng.gen_range(1..80i64),
            );
            let mut expect: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, rc)| rc.touches(&w))
                .map(|(i, _)| i)
                .collect();
            expect.sort_unstable();
            assert_eq!(idx.query(&w), expect);
        }
    }
}
