//! Lambda-grid rectilinear geometry for CNFET standard-cell layouts.
//!
//! This crate is the layout database underlying the reproduction of
//! *"Design of Compact Imperfection-Immune CNFET Layouts for
//! Standard-Cell-Based Logic Synthesis"* (Bobba et al., DATE 2009). It plays
//! the role that the Cadence Virtuoso database plays in the paper's design
//! kit: cells hold rectangles on process layers, libraries hold cells and
//! instances, and layouts stream out to binary GDSII or to SVG for
//! inspection.
//!
//! All coordinates are integers in *database units* ([`Dbu`]); one lambda of
//! the scalable design-rule convention is [`DBU_PER_LAMBDA`] database units,
//! which leaves room for sub-lambda geometry such as the 1.4x-wide CMOS
//! pull-up devices the paper benchmarks against.
//!
//! # Example
//!
//! ```
//! use cnfet_geom::{Cell, Layer, Rect, Dbu};
//!
//! let mut cell = Cell::new("INV");
//! cell.add_rect(Layer::Gate, Rect::from_lambda(5.0, 0.0, 7.0, 4.0));
//! assert_eq!(cell.area_on(Layer::Gate), Dbu::from_lambda(2.0).0 as i128 * Dbu::from_lambda(4.0).0 as i128);
//! ```

pub mod coord;
pub mod gds;
pub mod index;
pub mod layer;
pub mod layout;
pub mod rect;
pub mod svg;
pub mod transform;
pub mod union_area;

pub use coord::{Dbu, Point, DBU_PER_LAMBDA, LAMBDA_NM};
pub use gds::{read_gds, write_gds, GdsError};
pub use index::GridIndex;
pub use layer::Layer;
pub use layout::{Cell, Instance, Library, Shape, Text};
pub use rect::Rect;
pub use svg::render_svg;
pub use transform::{Orientation, Transform};
pub use union_area::union_area;
