//! Placement transforms: the eight Manhattan orientations plus translation.

use crate::coord::{Dbu, Point};
use crate::rect::Rect;
use std::fmt;

/// One of the eight axis-aligned orientations (D4 symmetry group).
///
/// Names follow the usual EDA convention: `R*` are counter-clockwise
/// rotations, `M*` are mirrors about the named axis followed by the
/// rotation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// Rotate 90° CCW.
    R90,
    /// Rotate 180°.
    R180,
    /// Rotate 270° CCW.
    R270,
    /// Mirror about the x-axis (flip vertically).
    MX,
    /// Mirror about x, then rotate 90°.
    MX90,
    /// Mirror about the y-axis (flip horizontally).
    MY,
    /// Mirror about y, then rotate 90°.
    MY90,
}

impl Orientation {
    /// All eight orientations.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MX,
        Orientation::MX90,
        Orientation::MY,
        Orientation::MY90,
    ];

    /// Applies the orientation to a point about the origin.
    pub fn apply(self, p: Point) -> Point {
        let (x, y) = (p.x, p.y);
        let (nx, ny) = match self {
            Orientation::R0 => (x, y),
            Orientation::R90 => (-y, x),
            Orientation::R180 => (-x, -y),
            Orientation::R270 => (y, -x),
            Orientation::MX => (x, -y),
            Orientation::MX90 => (y, x),
            Orientation::MY => (-x, y),
            Orientation::MY90 => (-y, -x),
        };
        Point::new(nx, ny)
    }

    /// The orientation that undoes this one.
    pub fn inverse(self) -> Orientation {
        match self {
            Orientation::R90 => Orientation::R270,
            Orientation::R270 => Orientation::R90,
            other => other,
        }
    }

    /// Whether the orientation swaps the x and y extents of shapes.
    pub fn swaps_axes(self) -> bool {
        matches!(
            self,
            Orientation::R90 | Orientation::R270 | Orientation::MX90 | Orientation::MY90
        )
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An orientation followed by a translation, applied as
/// `T(p) = orient(p) + (dx, dy)`.
///
/// # Example
///
/// ```
/// use cnfet_geom::{Transform, Orientation, Point, Dbu};
/// let t = Transform::new(Orientation::MY, Dbu(100), Dbu(0));
/// assert_eq!(t.apply(Point::new(Dbu(10), Dbu(5))), Point::new(Dbu(90), Dbu(5)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Transform {
    /// Orientation applied before the translation.
    pub orientation: Orientation,
    /// Horizontal offset.
    pub dx: Dbu,
    /// Vertical offset.
    pub dy: Dbu,
}

impl Transform {
    /// The identity transform.
    pub const IDENTITY: Transform = Transform {
        orientation: Orientation::R0,
        dx: Dbu(0),
        dy: Dbu(0),
    };

    /// Creates a transform from its parts.
    pub fn new(orientation: Orientation, dx: Dbu, dy: Dbu) -> Transform {
        Transform {
            orientation,
            dx,
            dy,
        }
    }

    /// A pure translation.
    pub fn translate(dx: Dbu, dy: Dbu) -> Transform {
        Transform::new(Orientation::R0, dx, dy)
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point) -> Point {
        self.orientation.apply(p).translated(self.dx, self.dy)
    }

    /// Applies the transform to a rectangle (re-normalizing corners).
    pub fn apply_rect(&self, r: Rect) -> Rect {
        let a = self.apply(r.ll());
        let b = self.apply(r.ur());
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// The transform equivalent to applying `self` after `inner`
    /// (`(self ∘ inner)(p) = self(inner(p))`).
    pub fn compose(&self, inner: &Transform) -> Transform {
        // self(inner(p)) = O_s(O_i(p) + t_i) + t_s = (O_s∘O_i)(p) + O_s(t_i) + t_s
        let combined = compose_orientations(self.orientation, inner.orientation);
        let shifted = self
            .orientation
            .apply(Point::new(inner.dx, inner.dy))
            .translated(self.dx, self.dy);
        Transform::new(combined, shifted.x, shifted.y)
    }
}

/// Returns the orientation equivalent to applying `outer` after `inner`.
fn compose_orientations(outer: Orientation, inner: Orientation) -> Orientation {
    // Probe with two points that uniquely identify each of the 8 elements.
    let probe = |o: Orientation, p: Point| o.apply(p);
    let p1 = probe(outer, probe(inner, Point::new(Dbu(1), Dbu(0))));
    let p2 = probe(outer, probe(inner, Point::new(Dbu(0), Dbu(1))));
    for cand in Orientation::ALL {
        if probe(cand, Point::new(Dbu(1), Dbu(0))) == p1
            && probe(cand, Point::new(Dbu(0), Dbu(1))) == p2
        {
            return cand;
        }
    }
    unreachable!("orientation composition is closed");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_round_trip() {
        let p = Point::new(Dbu(7), Dbu(-3));
        for o in Orientation::ALL {
            assert_eq!(o.inverse().apply(o.apply(p)), p, "orientation {o}");
        }
    }

    #[test]
    fn rect_transform_preserves_area() {
        let r = Rect::new(Dbu(2), Dbu(3), Dbu(10), Dbu(8));
        for o in Orientation::ALL {
            let t = Transform::new(o, Dbu(100), Dbu(-50));
            assert_eq!(t.apply_rect(r).area(), r.area(), "orientation {o}");
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let p = Point::new(Dbu(5), Dbu(9));
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                let ta = Transform::new(a, Dbu(3), Dbu(-2));
                let tb = Transform::new(b, Dbu(-7), Dbu(11));
                let composed = ta.compose(&tb);
                assert_eq!(composed.apply(p), ta.apply(tb.apply(p)), "{a} ∘ {b}");
            }
        }
    }

    #[test]
    fn swaps_axes_consistent_with_extents() {
        let r = Rect::new(Dbu(0), Dbu(0), Dbu(4), Dbu(2));
        for o in Orientation::ALL {
            let t = Transform::new(o, Dbu(0), Dbu(0));
            let tr = t.apply_rect(r);
            if o.swaps_axes() {
                assert_eq!((tr.width(), tr.height()), (r.height(), r.width()));
            } else {
                assert_eq!((tr.width(), tr.height()), (r.width(), r.height()));
            }
        }
    }
}
