//! Binary GDSII stream format writer and reader.
//!
//! Implements the subset of GDSII needed for standard-cell libraries and
//! placed blocks: `BOUNDARY` elements (rectangles), `SREF` instances with
//! the eight Manhattan orientations, and `TEXT` labels. The reader exists
//! so round-trips can be verified in tests and so downstream tools can
//! re-import streamed layouts.

use crate::coord::{Dbu, Point, DBU_PER_LAMBDA, LAMBDA_NM};
use crate::layer::Layer;
use crate::layout::{Cell, Instance, Library};
use crate::rect::Rect;
use crate::transform::{Orientation, Transform};
use std::fmt;

/// Errors produced while reading a GDSII stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GdsError {
    /// Stream ended in the middle of a record.
    Truncated,
    /// Record had an unexpected length for its type.
    MalformedRecord(&'static str),
    /// A `BOUNDARY` polygon was not an axis-aligned rectangle.
    NonRectangular,
    /// Unknown layer number.
    UnknownLayer(i16),
    /// STRANS flags encode an orientation we do not support.
    UnsupportedTransform,
}

impl fmt::Display for GdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdsError::Truncated => write!(f, "truncated gds stream"),
            GdsError::MalformedRecord(what) => write!(f, "malformed {what} record"),
            GdsError::NonRectangular => write!(f, "non-rectangular boundary"),
            GdsError::UnknownLayer(n) => write!(f, "unknown layer number {n}"),
            GdsError::UnsupportedTransform => write!(f, "unsupported strans flags"),
        }
    }
}

impl std::error::Error for GdsError {}

// GDSII record types used here.
const HEADER: u8 = 0x00;
const BGNLIB: u8 = 0x01;
const LIBNAME: u8 = 0x02;
const UNITS: u8 = 0x03;
const ENDLIB: u8 = 0x04;
const BGNSTR: u8 = 0x05;
const STRNAME: u8 = 0x06;
const ENDSTR: u8 = 0x07;
const BOUNDARY: u8 = 0x08;
const SREF: u8 = 0x0a;
const TEXT_EL: u8 = 0x0c;
const LAYER_RT: u8 = 0x0d;
const DATATYPE: u8 = 0x0e;
const XY: u8 = 0x10;
const ENDEL: u8 = 0x11;
const SNAME: u8 = 0x12;
const STRING_RT: u8 = 0x19;
const STRANS: u8 = 0x1a;
const ANGLE: u8 = 0x1c;
const TEXTTYPE: u8 = 0x16;

// Record data types.
const DT_NONE: u8 = 0x00;
const DT_I16: u8 = 0x02;
const DT_I32: u8 = 0x03;
const DT_F64: u8 = 0x05;
const DT_ASCII: u8 = 0x06;

fn push_record(out: &mut Vec<u8>, rtype: u8, dtype: u8, data: &[u8]) {
    let len = 4 + data.len();
    assert!(len <= u16::MAX as usize, "gds record too long");
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.push(rtype);
    out.push(dtype);
    out.extend_from_slice(data);
}

fn push_i16s(out: &mut Vec<u8>, rtype: u8, vals: &[i16]) {
    let mut data = Vec::with_capacity(vals.len() * 2);
    for v in vals {
        data.extend_from_slice(&v.to_be_bytes());
    }
    push_record(out, rtype, DT_I16, &data);
}

fn push_i32s(out: &mut Vec<u8>, rtype: u8, vals: &[i32]) {
    let mut data = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        data.extend_from_slice(&v.to_be_bytes());
    }
    push_record(out, rtype, DT_I32, &data);
}

fn push_ascii(out: &mut Vec<u8>, rtype: u8, s: &str) {
    let mut data = s.as_bytes().to_vec();
    if data.len() % 2 == 1 {
        data.push(0);
    }
    push_record(out, rtype, DT_ASCII, &data);
}

/// Encodes an `f64` in GDSII 8-byte excess-64 floating point.
fn gds_f64(value: f64) -> [u8; 8] {
    if value == 0.0 {
        return [0; 8];
    }
    let sign: u8 = if value < 0.0 { 0x80 } else { 0x00 };
    let mut v = value.abs();
    let mut exp: i32 = 64;
    while v >= 1.0 {
        v /= 16.0;
        exp += 1;
    }
    while v < 1.0 / 16.0 {
        v *= 16.0;
        exp -= 1;
    }
    let mantissa = (v * 2f64.powi(56)) as u64;
    let mut out = [0u8; 8];
    out[0] = sign | (exp as u8);
    out[1..8].copy_from_slice(&mantissa.to_be_bytes()[1..8]);
    out
}

/// Decodes GDSII 8-byte real.
fn parse_gds_f64(b: &[u8]) -> f64 {
    let sign = if b[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let exp = (b[0] & 0x7f) as i32 - 64;
    let mut mantissa = 0u64;
    for &byte in &b[1..8] {
        mantissa = (mantissa << 8) | byte as u64;
    }
    sign * mantissa as f64 / 2f64.powi(56) * 16f64.powi(exp)
}

/// Serializes a library to a GDSII byte stream.
///
/// Database units are `λ / DBU_PER_LAMBDA` with `λ = 32.5 nm`, so one dbu is
/// 1.625 nm.
///
/// # Example
///
/// ```
/// use cnfet_geom::{write_gds, read_gds, Library, Cell, Layer, Rect};
/// let mut lib = Library::new("demo");
/// let mut c = Cell::new("INV");
/// c.add_rect(Layer::Gate, Rect::from_lambda(0.0, 0.0, 2.0, 4.0));
/// lib.add_cell(c);
/// let bytes = write_gds(&lib);
/// let back = read_gds(&bytes)?;
/// assert_eq!(back.cell("INV").unwrap().shapes().len(), 1);
/// # Ok::<(), cnfet_geom::GdsError>(())
/// ```
pub fn write_gds(lib: &Library) -> Vec<u8> {
    let mut out = Vec::new();
    push_i16s(&mut out, HEADER, &[600]);
    // Modification/access timestamps: fixed for reproducible streams.
    let ts = [2009i16, 3, 1, 0, 0, 0];
    let mut bgn = ts.to_vec();
    bgn.extend_from_slice(&ts);
    push_i16s(&mut out, BGNLIB, &bgn);
    push_ascii(&mut out, LIBNAME, lib.name());

    // UNITS: user units per dbu, metres per dbu.
    let meters_per_dbu = LAMBDA_NM * 1e-9 / DBU_PER_LAMBDA as f64;
    let user_per_dbu = 1.0 / DBU_PER_LAMBDA as f64; // user unit = 1 lambda
    let mut units = Vec::new();
    units.extend_from_slice(&gds_f64(user_per_dbu));
    units.extend_from_slice(&gds_f64(meters_per_dbu));
    push_record(&mut out, UNITS, DT_F64, &units);

    for cell in lib.cells() {
        push_i16s(&mut out, BGNSTR, &bgn);
        push_ascii(&mut out, STRNAME, cell.name());
        for shape in cell.shapes() {
            push_record(&mut out, BOUNDARY, DT_NONE, &[]);
            push_i16s(&mut out, LAYER_RT, &[shape.layer.gds_layer()]);
            push_i16s(&mut out, DATATYPE, &[0]);
            let r = shape.rect;
            let pts = [
                (r.x0(), r.y0()),
                (r.x1(), r.y0()),
                (r.x1(), r.y1()),
                (r.x0(), r.y1()),
                (r.x0(), r.y0()),
            ];
            let xy: Vec<i32> = pts
                .iter()
                .flat_map(|&(x, y)| [x.0 as i32, y.0 as i32])
                .collect();
            push_i32s(&mut out, XY, &xy);
            push_record(&mut out, ENDEL, DT_NONE, &[]);
        }
        for text in cell.texts() {
            push_record(&mut out, TEXT_EL, DT_NONE, &[]);
            push_i16s(&mut out, LAYER_RT, &[text.layer.gds_layer()]);
            push_i16s(&mut out, TEXTTYPE, &[0]);
            push_i32s(
                &mut out,
                XY,
                &[text.position.x.0 as i32, text.position.y.0 as i32],
            );
            push_ascii(&mut out, STRING_RT, &text.string);
            push_record(&mut out, ENDEL, DT_NONE, &[]);
        }
        for inst in cell.instances() {
            push_record(&mut out, SREF, DT_NONE, &[]);
            push_ascii(&mut out, SNAME, &inst.cell);
            let (mirror, angle) = orientation_to_strans(inst.transform.orientation);
            if mirror || angle != 0.0 {
                push_i16s(&mut out, STRANS, &[if mirror { -0x8000i16 } else { 0 }]);
                if angle != 0.0 {
                    let mut a = Vec::new();
                    a.extend_from_slice(&gds_f64(angle));
                    push_record(&mut out, ANGLE, DT_F64, &a);
                }
            }
            push_i32s(
                &mut out,
                XY,
                &[inst.transform.dx.0 as i32, inst.transform.dy.0 as i32],
            );
            push_record(&mut out, ENDEL, DT_NONE, &[]);
        }
        push_record(&mut out, ENDSTR, DT_NONE, &[]);
    }
    push_record(&mut out, ENDLIB, DT_NONE, &[]);
    out
}

/// GDS STRANS encoding: (mirror about x before rotation, CCW angle degrees).
fn orientation_to_strans(o: Orientation) -> (bool, f64) {
    match o {
        Orientation::R0 => (false, 0.0),
        Orientation::R90 => (false, 90.0),
        Orientation::R180 => (false, 180.0),
        Orientation::R270 => (false, 270.0),
        Orientation::MX => (true, 0.0),
        Orientation::MX90 => (true, 90.0),
        Orientation::MY => (true, 180.0),
        Orientation::MY90 => (true, 270.0),
    }
}

fn strans_to_orientation(mirror: bool, angle: f64) -> Result<Orientation, GdsError> {
    let a = ((angle % 360.0) + 360.0) % 360.0;
    let quarter = (a / 90.0).round() as i32 % 4;
    if (a - quarter as f64 * 90.0).abs() > 1e-6 {
        return Err(GdsError::UnsupportedTransform);
    }
    Ok(match (mirror, quarter) {
        (false, 0) => Orientation::R0,
        (false, 1) => Orientation::R90,
        (false, 2) => Orientation::R180,
        (false, 3) => Orientation::R270,
        (true, 0) => Orientation::MX,
        (true, 1) => Orientation::MX90,
        (true, 2) => Orientation::MY,
        (true, 3) => Orientation::MY90,
        _ => unreachable!(),
    })
}

struct Record<'a> {
    rtype: u8,
    data: &'a [u8],
}

fn records(bytes: &[u8]) -> Result<Vec<Record<'_>>, GdsError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 4 <= bytes.len() {
        let len = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]) as usize;
        if len < 4 || pos + len > bytes.len() {
            return Err(GdsError::Truncated);
        }
        out.push(Record {
            rtype: bytes[pos + 2],
            data: &bytes[pos + 4..pos + len],
        });
        if bytes[pos + 2] == ENDLIB {
            return Ok(out);
        }
        pos += len;
    }
    Err(GdsError::Truncated)
}

fn ascii(data: &[u8]) -> String {
    let end = data.iter().position(|&b| b == 0).unwrap_or(data.len());
    String::from_utf8_lossy(&data[..end]).into_owned()
}

fn i16_at(data: &[u8], idx: usize) -> Result<i16, GdsError> {
    data.get(idx * 2..idx * 2 + 2)
        .map(|b| i16::from_be_bytes([b[0], b[1]]))
        .ok_or(GdsError::MalformedRecord("i16"))
}

fn i32_list(data: &[u8]) -> Result<Vec<i32>, GdsError> {
    if !data.len().is_multiple_of(4) {
        return Err(GdsError::MalformedRecord("xy"));
    }
    Ok(data
        .chunks_exact(4)
        .map(|b| i32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .collect())
}

/// Parses a GDSII byte stream produced by [`write_gds`] (or any stream
/// restricted to rectangles, texts and SREFs on known layers).
///
/// # Errors
///
/// Returns a [`GdsError`] on truncated or malformed streams, unknown layer
/// numbers, non-rectangular boundaries or non-Manhattan transforms.
pub fn read_gds(bytes: &[u8]) -> Result<Library, GdsError> {
    let recs = records(bytes)?;
    let mut lib = Library::new("gds");
    let mut i = 0usize;
    let mut cur: Option<Cell> = None;

    while i < recs.len() {
        let rec = &recs[i];
        match rec.rtype {
            LIBNAME => lib = Library::new(ascii(rec.data)),
            BGNSTR => cur = Some(Cell::new("")),
            STRNAME => {
                if let Some(c) = cur.as_mut() {
                    c.set_name(ascii(rec.data));
                }
            }
            ENDSTR => {
                if let Some(c) = cur.take() {
                    lib.add_cell(c);
                }
            }
            BOUNDARY => {
                let (layer, xy, consumed) = parse_element(&recs, i)?;
                let rect = rect_from_xy(&xy)?;
                if let Some(c) = cur.as_mut() {
                    c.add_rect(layer, rect);
                }
                i += consumed;
                continue;
            }
            TEXT_EL => {
                let mut layer = None;
                let mut pos = None;
                let mut string = String::new();
                let mut j = i + 1;
                while recs[j].rtype != ENDEL {
                    match recs[j].rtype {
                        LAYER_RT => {
                            let n = i16_at(recs[j].data, 0)?;
                            layer =
                                Some(Layer::from_gds_layer(n).ok_or(GdsError::UnknownLayer(n))?);
                        }
                        XY => {
                            let v = i32_list(recs[j].data)?;
                            if v.len() < 2 {
                                return Err(GdsError::MalformedRecord("text xy"));
                            }
                            pos = Some(Point::new(Dbu(v[0] as i64), Dbu(v[1] as i64)));
                        }
                        STRING_RT => string = ascii(recs[j].data),
                        _ => {}
                    }
                    j += 1;
                }
                if let (Some(c), Some(layer), Some(position)) = (cur.as_mut(), layer, pos) {
                    c.add_text(layer, position, string);
                }
                i = j + 1;
                continue;
            }
            SREF => {
                let mut name = String::new();
                let mut mirror = false;
                let mut angle = 0.0;
                let mut dx = Dbu(0);
                let mut dy = Dbu(0);
                let mut j = i + 1;
                while recs[j].rtype != ENDEL {
                    match recs[j].rtype {
                        SNAME => name = ascii(recs[j].data),
                        STRANS => mirror = recs[j].data.first().is_some_and(|&b| b & 0x80 != 0),
                        ANGLE => {
                            if recs[j].data.len() != 8 {
                                return Err(GdsError::MalformedRecord("angle"));
                            }
                            angle = parse_gds_f64(recs[j].data);
                        }
                        XY => {
                            let v = i32_list(recs[j].data)?;
                            if v.len() < 2 {
                                return Err(GdsError::MalformedRecord("sref xy"));
                            }
                            dx = Dbu(v[0] as i64);
                            dy = Dbu(v[1] as i64);
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let orientation = strans_to_orientation(mirror, angle)?;
                if let Some(c) = cur.as_mut() {
                    let n = c.instances().len();
                    c.add_instance(Instance {
                        cell: name,
                        transform: Transform::new(orientation, dx, dy),
                        name: format!("u{n}"),
                    });
                }
                i = j + 1;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    Ok(lib)
}

/// Parses a BOUNDARY element starting at `recs[start]`; returns layer, xy
/// list and the number of records consumed.
fn parse_element(recs: &[Record<'_>], start: usize) -> Result<(Layer, Vec<i32>, usize), GdsError> {
    let mut layer = None;
    let mut xy = Vec::new();
    let mut j = start + 1;
    while j < recs.len() && recs[j].rtype != ENDEL {
        match recs[j].rtype {
            LAYER_RT => {
                let n = i16_at(recs[j].data, 0)?;
                layer = Some(Layer::from_gds_layer(n).ok_or(GdsError::UnknownLayer(n))?);
            }
            XY => xy = i32_list(recs[j].data)?,
            _ => {}
        }
        j += 1;
    }
    if j >= recs.len() {
        return Err(GdsError::Truncated);
    }
    let layer = layer.ok_or(GdsError::MalformedRecord("boundary missing layer"))?;
    Ok((layer, xy, j - start + 1))
}

fn rect_from_xy(xy: &[i32]) -> Result<Rect, GdsError> {
    if xy.len() != 10 {
        return Err(GdsError::NonRectangular);
    }
    let pts: Vec<(i64, i64)> = xy
        .chunks_exact(2)
        .map(|c| (c[0] as i64, c[1] as i64))
        .collect();
    if pts[0] != pts[4] {
        return Err(GdsError::NonRectangular);
    }
    let xs: Vec<i64> = pts[..4].iter().map(|p| p.0).collect();
    let ys: Vec<i64> = pts[..4].iter().map(|p| p.1).collect();
    let (x0, x1) = (*xs.iter().min().unwrap(), *xs.iter().max().unwrap());
    let (y0, y1) = (*ys.iter().min().unwrap(), *ys.iter().max().unwrap());
    // Verify all corners are corners of the bbox (axis-aligned rectangle).
    for &(x, y) in &pts[..4] {
        if (x != x0 && x != x1) || (y != y0 && y != y1) {
            return Err(GdsError::NonRectangular);
        }
    }
    Ok(Rect::new(Dbu(x0), Dbu(y0), Dbu(x1), Dbu(y1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        for v in [0.0, 1.0, -1.0, 0.05, 1e-9, 1.625e-9, 123456.789, -0.001] {
            let enc = gds_f64(v);
            let dec = parse_gds_f64(&enc);
            if v == 0.0 {
                assert_eq!(dec, 0.0);
            } else {
                assert!((dec - v).abs() / v.abs() < 1e-12, "{v} -> {dec}");
            }
        }
    }

    #[test]
    fn library_round_trip() {
        let mut lib = Library::new("rt_test");
        let mut inv = Cell::new("INV");
        inv.add_rect(Layer::Gate, Rect::from_lambda(5.0, 0.0, 7.0, 4.0));
        inv.add_rect(Layer::Contact, Rect::from_lambda(0.0, 0.0, 3.0, 4.0));
        inv.add_text(Layer::Pin, Point::from_lambda(1.0, 2.0), "A");
        lib.add_cell(inv);

        let mut top = Cell::new("TOP");
        for (i, o) in Orientation::ALL.iter().enumerate() {
            top.add_instance(Instance {
                cell: "INV".into(),
                transform: Transform::new(*o, Dbu(100 * i as i64), Dbu(0)),
                name: format!("u{i}"),
            });
        }
        lib.add_cell(top);

        let bytes = write_gds(&lib);
        let back = read_gds(&bytes).unwrap();
        assert_eq!(back.name(), "rt_test");
        let inv2 = back.cell("INV").unwrap();
        assert_eq!(inv2.shapes().len(), 2);
        assert_eq!(inv2.texts().len(), 1);
        assert_eq!(inv2.texts()[0].string, "A");
        let top2 = back.cell("TOP").unwrap();
        assert_eq!(top2.instances().len(), 8);
        for (a, b) in lib
            .cell("TOP")
            .unwrap()
            .instances()
            .iter()
            .zip(top2.instances())
        {
            assert_eq!(a.transform, b.transform);
            assert_eq!(a.cell, b.cell);
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut lib = Library::new("x");
        lib.add_cell(Cell::new("c"));
        let bytes = write_gds(&lib);
        assert!(matches!(
            read_gds(&bytes[..bytes.len() - 6]),
            Err(GdsError::Truncated)
        ));
    }

    #[test]
    fn strans_round_trip() {
        for o in Orientation::ALL {
            let (m, a) = orientation_to_strans(o);
            assert_eq!(strans_to_orientation(m, a).unwrap(), o);
        }
    }

    #[test]
    fn header_is_gds_version_600() {
        let lib = Library::new("x");
        let bytes = write_gds(&lib);
        assert_eq!(&bytes[..6], &[0x00, 0x06, 0x00, 0x02, 0x02, 0x58]);
    }
}
