//! Process layers of the CNFET design kit.
//!
//! The paper customizes an industrial 65 nm CMOS stack by replacing the
//! silicon active layer with a CNT plane over 10 µm of SiO2 and reusing
//! everything from polysilicon up to metal 7 for routing. The layers below
//! reflect that stack, plus the CNFET-specific doping and etch masks that
//! the imperfection-immune layout technique manipulates.

use std::fmt;

/// A mask layer in the CNFET (or baseline CMOS) process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// The CNT plane: region where carbon nanotubes are grown/transferred.
    /// Plays the role of the active/diffusion layer in CMOS.
    CntActive,
    /// Polysilicon gate strips (the paper validates poly gating with low-k
    /// dielectric against its technology partners).
    Gate,
    /// Source/drain metal contact strips sitting directly on the CNTs.
    Contact,
    /// First routing metal.
    Metal1,
    /// Second routing metal.
    Metal2,
    /// Contact-to-metal1 / metal1-to-metal2 cut.
    Via,
    /// p+ doping mask (pull-up network tubes).
    PDoping,
    /// n+ doping mask (pull-down network tubes).
    NDoping,
    /// Etched region: CNTs under this mask are cut away. Only the *old*
    /// immune layout style of Patil et al. [DAC'07] uses intra-cell etch.
    Etch,
    /// Cell abstract boundary (prBoundary analogue).
    Boundary,
    /// Pin shapes for router access.
    Pin,
}

impl Layer {
    /// Every layer, in stream-out order.
    pub const ALL: [Layer; 11] = [
        Layer::CntActive,
        Layer::Gate,
        Layer::Contact,
        Layer::Metal1,
        Layer::Metal2,
        Layer::Via,
        Layer::PDoping,
        Layer::NDoping,
        Layer::Etch,
        Layer::Boundary,
        Layer::Pin,
    ];

    /// GDSII layer number used on stream-out.
    pub fn gds_layer(self) -> i16 {
        match self {
            Layer::CntActive => 1,
            Layer::Gate => 2,
            Layer::Contact => 3,
            Layer::Metal1 => 4,
            Layer::Metal2 => 5,
            Layer::Via => 6,
            Layer::PDoping => 7,
            Layer::NDoping => 8,
            Layer::Etch => 9,
            Layer::Boundary => 10,
            Layer::Pin => 11,
        }
    }

    /// Inverse of [`Layer::gds_layer`].
    pub fn from_gds_layer(n: i16) -> Option<Layer> {
        Layer::ALL.into_iter().find(|l| l.gds_layer() == n)
    }

    /// Fill colour used by the SVG renderer.
    pub fn svg_color(self) -> &'static str {
        match self {
            Layer::CntActive => "#d9f2d9",
            Layer::Gate => "#cc2222",
            Layer::Contact => "#4444cc",
            Layer::Metal1 => "#3399ff",
            Layer::Metal2 => "#9966ff",
            Layer::Via => "#222222",
            Layer::PDoping => "#ff9999",
            Layer::NDoping => "#99ccff",
            Layer::Etch => "#666666",
            Layer::Boundary => "none",
            Layer::Pin => "#ffcc00",
        }
    }

    /// Fill opacity used by the SVG renderer.
    pub fn svg_opacity(self) -> f64 {
        match self {
            Layer::CntActive => 0.6,
            Layer::PDoping | Layer::NDoping => 0.35,
            Layer::Boundary => 0.0,
            _ => 0.8,
        }
    }

    /// Short name used in reports and SVG legends.
    pub fn name(self) -> &'static str {
        match self {
            Layer::CntActive => "cnt",
            Layer::Gate => "gate",
            Layer::Contact => "contact",
            Layer::Metal1 => "metal1",
            Layer::Metal2 => "metal2",
            Layer::Via => "via",
            Layer::PDoping => "pplus",
            Layer::NDoping => "nplus",
            Layer::Etch => "etch",
            Layer::Boundary => "boundary",
            Layer::Pin => "pin",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gds_numbers_round_trip() {
        for layer in Layer::ALL {
            assert_eq!(Layer::from_gds_layer(layer.gds_layer()), Some(layer));
        }
    }

    #[test]
    fn gds_numbers_unique() {
        let mut nums: Vec<i16> = Layer::ALL.iter().map(|l| l.gds_layer()).collect();
        nums.sort_unstable();
        nums.dedup();
        assert_eq!(nums.len(), Layer::ALL.len());
    }

    #[test]
    fn unknown_gds_layer() {
        assert_eq!(Layer::from_gds_layer(99), None);
    }

    #[test]
    fn names_unique_and_displayed() {
        let mut names: Vec<&str> = Layer::ALL.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Layer::ALL.len());
        assert_eq!(Layer::Gate.to_string(), "gate");
    }
}
