//! Axis-aligned rectangles, the only primitive shape in the layout database.
//!
//! CNFET standard cells in the paper are Manhattan: contact strips, gate
//! strips, etched regions and routing are all axis-aligned rectangles, so a
//! rectangle-only database (with union-area sweeps for overlap accounting)
//! is a faithful substitute for a full polygon database.

use crate::coord::{Dbu, Point};
use std::fmt;

/// A closed axis-aligned rectangle `[x0, x1] x [y0, y1]`.
///
/// Invariant: `x0 <= x1` and `y0 <= y1`; constructors normalize their
/// arguments so the invariant always holds. Degenerate (zero-width or
/// zero-height) rectangles are permitted: they are useful as cut lines and
/// measurement probes, and report zero area.
///
/// # Example
///
/// ```
/// use cnfet_geom::{Rect, Dbu};
/// let r = Rect::from_lambda(0.0, 0.0, 3.0, 4.0);
/// assert_eq!(r.width(), Dbu::from_lambda(3.0));
/// assert_eq!(r.area_lambda2(), 12.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rect {
    x0: Dbu,
    y0: Dbu,
    x1: Dbu,
    y1: Dbu,
}

impl Rect {
    /// Creates a rectangle from two corner coordinates (any order).
    pub fn new(xa: Dbu, ya: Dbu, xb: Dbu, yb: Dbu) -> Rect {
        Rect {
            x0: xa.min(xb),
            y0: ya.min(yb),
            x1: xa.max(xb),
            y1: ya.max(yb),
        }
    }

    /// Creates a rectangle from lambda corner coordinates.
    pub fn from_lambda(xa: f64, ya: f64, xb: f64, yb: f64) -> Rect {
        Rect::new(
            Dbu::from_lambda(xa),
            Dbu::from_lambda(ya),
            Dbu::from_lambda(xb),
            Dbu::from_lambda(yb),
        )
    }

    /// Creates a rectangle from its lower-left corner, width and height.
    pub fn from_wh(origin: Point, w: Dbu, h: Dbu) -> Rect {
        Rect::new(origin.x, origin.y, origin.x + w, origin.y + h)
    }

    /// Left edge.
    pub fn x0(&self) -> Dbu {
        self.x0
    }

    /// Bottom edge.
    pub fn y0(&self) -> Dbu {
        self.y0
    }

    /// Right edge.
    pub fn x1(&self) -> Dbu {
        self.x1
    }

    /// Top edge.
    pub fn y1(&self) -> Dbu {
        self.y1
    }

    /// Lower-left corner.
    pub fn ll(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    /// Upper-right corner.
    pub fn ur(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// Horizontal extent.
    pub fn width(&self) -> Dbu {
        self.x1 - self.x0
    }

    /// Vertical extent.
    pub fn height(&self) -> Dbu {
        self.y1 - self.y0
    }

    /// Centre point (rounded down to the grid).
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }

    /// Exact area in square database units.
    pub fn area(&self) -> i128 {
        self.width().0 as i128 * self.height().0 as i128
    }

    /// Area in square lambda.
    pub fn area_lambda2(&self) -> f64 {
        self.width().to_lambda() * self.height().to_lambda()
    }

    /// Whether the rectangle has zero area.
    pub fn is_degenerate(&self) -> bool {
        self.x0 == self.x1 || self.y0 == self.y1
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: Point) -> bool {
        self.x0 <= p.x && p.x <= self.x1 && self.y0 <= p.y && p.y <= self.y1
    }

    /// Whether `other` is entirely inside or on the boundary of `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && other.x1 <= self.x1 && self.y0 <= other.y0 && other.y1 <= self.y1
    }

    /// Whether the two rectangles share interior area (touching edges do not
    /// count as an overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Whether the two rectangles overlap or abut (share at least an edge
    /// point).
    pub fn touches(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// The overlapping region, if the rectangles share any area or edge.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.touches(other) {
            return None;
        }
        Some(Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        })
    }

    /// Smallest rectangle containing both inputs.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// The rectangle grown by `margin` on all four sides.
    ///
    /// A negative margin shrinks the rectangle; if it would invert, the
    /// result collapses to its centre point.
    pub fn expanded(&self, margin: Dbu) -> Rect {
        let x0 = self.x0 - margin;
        let x1 = self.x1 + margin;
        let y0 = self.y0 - margin;
        let y1 = self.y1 + margin;
        if x0 > x1 || y0 > y1 {
            let c = self.center();
            return Rect::new(c.x, c.y, c.x, c.y);
        }
        Rect { x0, y0, x1, y1 }
    }

    /// The rectangle shifted by `(dx, dy)`.
    pub fn translated(&self, dx: Dbu, dy: Dbu) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Euclidean-free Manhattan gap between two rectangles: the larger of
    /// the horizontal and vertical separations, or zero when they touch.
    ///
    /// This is the quantity spacing design rules constrain.
    pub fn spacing_to(&self, other: &Rect) -> Dbu {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(Dbu(0));
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(Dbu(0));
        // Diagonal separation: both gaps positive; the rule distance is the
        // larger component under the Manhattan convention.
        dx.max(dy)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]x[{}, {}]", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Dbu(x0), Dbu(y0), Dbu(x1), Dbu(y1))
    }

    #[test]
    fn normalizes_corners() {
        let a = r(10, 20, 0, 0);
        assert_eq!(a.x0(), Dbu(0));
        assert_eq!(a.y1(), Dbu(20));
    }

    #[test]
    fn area_and_extents() {
        let a = r(0, 0, 60, 80);
        assert_eq!(a.width(), Dbu(60));
        assert_eq!(a.height(), Dbu(80));
        assert_eq!(a.area(), 4800);
        assert_eq!(Rect::from_lambda(0.0, 0.0, 3.0, 4.0).area_lambda2(), 12.0);
    }

    #[test]
    fn overlap_vs_touch() {
        let a = r(0, 0, 10, 10);
        let abut = r(10, 0, 20, 10);
        let apart = r(11, 0, 20, 10);
        let inside = r(2, 2, 8, 8);
        assert!(!a.overlaps(&abut));
        assert!(a.touches(&abut));
        assert!(!a.touches(&apart));
        assert!(a.overlaps(&inside));
        assert!(a.contains_rect(&inside));
        assert!(!inside.contains_rect(&a));
    }

    #[test]
    fn intersection_cases() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.intersection(&r(5, 5, 15, 15)), Some(r(5, 5, 10, 10)));
        assert_eq!(a.intersection(&r(10, 0, 20, 10)), Some(r(10, 0, 10, 10)));
        assert_eq!(a.intersection(&r(12, 0, 20, 10)), None);
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = r(0, 0, 5, 5);
        let b = r(10, -5, 12, 2);
        let u = a.union_bbox(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, r(0, -5, 12, 5));
    }

    #[test]
    fn expand_and_collapse() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.expanded(Dbu(2)), r(-2, -2, 12, 12));
        let collapsed = a.expanded(Dbu(-6));
        assert!(collapsed.is_degenerate());
    }

    #[test]
    fn spacing() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.spacing_to(&r(14, 0, 20, 10)), Dbu(4));
        assert_eq!(a.spacing_to(&r(0, 13, 10, 20)), Dbu(3));
        assert_eq!(a.spacing_to(&r(14, 15, 20, 20)), Dbu(5));
        assert_eq!(a.spacing_to(&r(5, 5, 20, 20)), Dbu(0));
    }

    #[test]
    fn contains_point_boundary() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains_point(Point::new(Dbu(0), Dbu(10))));
        assert!(!a.contains_point(Point::new(Dbu(-1), Dbu(5))));
    }
}
