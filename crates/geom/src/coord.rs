//! Integer database-unit coordinates and points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// Number of database units per lambda of the scalable rule convention.
///
/// Twenty units per lambda keeps every rule in the paper on-grid, including
/// the 1.4x CMOS pull-up widening (`1.4 * 4λ = 5.6λ = 112 dbu`).
pub const DBU_PER_LAMBDA: i64 = 20;

/// Physical size of one lambda at the paper's 65 nm node, in nanometres.
///
/// The paper equates the minimum etched region, `2λ`, with the 65 nm
/// lithography limit, so `λ = 32.5 nm`.
pub const LAMBDA_NM: f64 = 32.5;

/// A coordinate or distance in database units.
///
/// `Dbu` is a plain integer newtype: arithmetic is exact, comparisons are
/// total, and conversion to lambda or nanometres is explicit.
///
/// # Example
///
/// ```
/// use cnfet_geom::Dbu;
/// let w = Dbu::from_lambda(4.0);
/// assert_eq!(w.0, 80);
/// assert_eq!(w.to_lambda(), 4.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dbu(pub i64);

impl Dbu {
    /// Zero-length distance.
    pub const ZERO: Dbu = Dbu(0);

    /// Converts a (possibly fractional) lambda count to database units.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` does not land on the database grid, which would
    /// silently corrupt design-rule arithmetic.
    pub fn from_lambda(lambda: f64) -> Dbu {
        let raw = lambda * DBU_PER_LAMBDA as f64;
        let rounded = raw.round();
        assert!(
            (raw - rounded).abs() < 1e-6,
            "off-grid lambda value: {lambda}"
        );
        Dbu(rounded as i64)
    }

    /// Exact conversion from an integer lambda count.
    pub const fn from_lambda_int(lambda: i64) -> Dbu {
        Dbu(lambda * DBU_PER_LAMBDA)
    }

    /// This distance expressed in lambda.
    pub fn to_lambda(self) -> f64 {
        self.0 as f64 / DBU_PER_LAMBDA as f64
    }

    /// This distance expressed in nanometres at the 65 nm node.
    pub fn to_nm(self) -> f64 {
        self.to_lambda() * LAMBDA_NM
    }

    /// Absolute value.
    pub fn abs(self) -> Dbu {
        Dbu(self.0.abs())
    }

    /// The smaller of two distances.
    pub fn min(self, other: Dbu) -> Dbu {
        Dbu(self.0.min(other.0))
    }

    /// The larger of two distances.
    pub fn max(self, other: Dbu) -> Dbu {
        Dbu(self.0.max(other.0))
    }
}

impl fmt::Display for Dbu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}λ", self.to_lambda())
    }
}

impl Add for Dbu {
    type Output = Dbu;
    fn add(self, rhs: Dbu) -> Dbu {
        Dbu(self.0 + rhs.0)
    }
}

impl AddAssign for Dbu {
    fn add_assign(&mut self, rhs: Dbu) {
        self.0 += rhs.0;
    }
}

impl Sub for Dbu {
    type Output = Dbu;
    fn sub(self, rhs: Dbu) -> Dbu {
        Dbu(self.0 - rhs.0)
    }
}

impl SubAssign for Dbu {
    fn sub_assign(&mut self, rhs: Dbu) {
        self.0 -= rhs.0;
    }
}

impl Neg for Dbu {
    type Output = Dbu;
    fn neg(self) -> Dbu {
        Dbu(-self.0)
    }
}

impl Mul<i64> for Dbu {
    type Output = Dbu;
    fn mul(self, rhs: i64) -> Dbu {
        Dbu(self.0 * rhs)
    }
}

impl Div<i64> for Dbu {
    type Output = Dbu;
    fn div(self, rhs: i64) -> Dbu {
        Dbu(self.0 / rhs)
    }
}

impl Rem<i64> for Dbu {
    type Output = Dbu;
    fn rem(self, rhs: i64) -> Dbu {
        Dbu(self.0 % rhs)
    }
}

impl std::iter::Sum for Dbu {
    fn sum<I: Iterator<Item = Dbu>>(iter: I) -> Dbu {
        Dbu(iter.map(|d| d.0).sum())
    }
}

/// A point on the database grid.
///
/// # Example
///
/// ```
/// use cnfet_geom::{Point, Dbu};
/// let p = Point::new(Dbu(10), Dbu(20));
/// let q = p.translated(Dbu(5), Dbu(-5));
/// assert_eq!(q, Point::new(Dbu(15), Dbu(15)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Dbu,
    /// Vertical coordinate.
    pub y: Dbu,
}

impl Point {
    /// Origin of the coordinate system.
    pub const ORIGIN: Point = Point {
        x: Dbu(0),
        y: Dbu(0),
    };

    /// Creates a point from two coordinates.
    pub const fn new(x: Dbu, y: Dbu) -> Point {
        Point { x, y }
    }

    /// Creates a point from lambda coordinates.
    pub fn from_lambda(x: f64, y: f64) -> Point {
        Point::new(Dbu::from_lambda(x), Dbu::from_lambda(y))
    }

    /// Returns this point shifted by `(dx, dy)`.
    pub fn translated(self, dx: Dbu, dy: Dbu) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_round_trip() {
        for l in [0.0, 1.0, 2.5, 4.0, 5.6, 10.0] {
            assert_eq!(Dbu::from_lambda(l).to_lambda(), l);
        }
    }

    #[test]
    #[should_panic(expected = "off-grid")]
    fn off_grid_rejected() {
        let _ = Dbu::from_lambda(0.001);
    }

    #[test]
    fn nm_conversion_matches_node() {
        // Gate length 2λ must be the node's 65 nm feature size.
        assert!((Dbu::from_lambda(2.0).to_nm() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Dbu(30);
        let b = Dbu(12);
        assert_eq!(a + b, Dbu(42));
        assert_eq!(a - b, Dbu(18));
        assert_eq!(-a, Dbu(-30));
        assert_eq!(a * 2, Dbu(60));
        assert_eq!(a / 3, Dbu(10));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(Dbu(-4).abs(), Dbu(4));
    }

    #[test]
    fn sum_iterator() {
        let total: Dbu = [Dbu(1), Dbu(2), Dbu(3)].into_iter().sum();
        assert_eq!(total, Dbu(6));
    }

    #[test]
    fn display_in_lambda() {
        assert_eq!(Dbu::from_lambda(4.0).to_string(), "4λ");
    }
}
