//! Per-die CNT defect maps and fault-tolerant cell assignment.
//!
//! The paper's immunity story is statistical: Monte-Carlo yield across
//! process corners. Deploying imperfection-immune layouts on a real die
//! needs the *per-instance* scenario instead — sample a concrete defect
//! population for one die, test every physical site against it, and
//! route the logical cells around the sites that fail. This crate
//! provides the three deterministic pieces of that story:
//!
//! * [`DefectMap`] — a seed-keyed sampler producing per-site,
//!   per-transistor CNT defects (surviving metallic tubes, open tubes,
//!   mispositioned tubes) from process parameters ([`DefectParams`]).
//!   Every die's map is a pure function of `(base seed, die index,
//!   parameters, site count)`, so overlapping die ranges share work.
//! * [`SiteTester`] — evaluates an immune layout against one site's
//!   concrete defects, reusing the immunity engine's verdict machinery
//!   ([`cnfet_immunity::trace_polyline`] over the layout's region
//!   decomposition with the full [`cnfet_immunity::Judge`] superset
//!   criterion).
//! * [`solve`] — the repair core: assign logical cells onto healthy
//!   physical sites with either Hopcroft–Karp bipartite matching
//!   ([`matching`]) or a small DPLL SAT solver with unit propagation
//!   and two watched literals per clause ([`sat`]) for adjacency
//!   constraints matching cannot express.
//!
//! [`repair_die`] ties the three together: one call samples a die,
//! tests every (cell, site) pair, solves the assignment, and returns a
//! [`DieOutcome`].
//!
//! # Example
//!
//! ```
//! use cnfet_core::{generate_cell, GenerateOptions, StdCellKind};
//! use cnfet_repair::{repair_die, DefectParams, DieSpec, Solver};
//!
//! let inv = generate_cell(StdCellKind::Inv, &GenerateOptions::default()).unwrap();
//! let layouts = [&inv.semantics, &inv.semantics];
//! let outcome = repair_die(&DieSpec {
//!     layouts: &layouts,
//!     die: 0,
//!     base_seed: 42,
//!     spares: 2,
//!     params: DefectParams::default(),
//!     solver: Solver::Auto,
//!     adjacent: &[],
//! });
//! assert_eq!(outcome.sites, 4, "two cells + two spares");
//! assert_eq!(outcome.assignment.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod assign;
pub mod defect;
pub mod matching;
pub mod sat;
pub mod site;

pub use assign::{solve, Assignment, Problem, Solver};
pub use defect::{mix_seed, DefectKind, DefectMap, DefectParams, SiteDefects, TubeDefect};
pub use matching::{max_matching, Matching};
pub use sat::{Cnf, SatResult};
pub use site::{SiteTester, SiteVerdict};

use cnfet_core::SemanticLayout;

/// Everything that determines one die's repair run: the logical cells'
/// layouts, the die's place in the seeded defect stream, and the solver
/// configuration.
#[derive(Clone, Copy, Debug)]
pub struct DieSpec<'a> {
    /// One semantic layout per logical cell to place.
    pub layouts: &'a [&'a SemanticLayout],
    /// Die index within the lot (keys this die's defect stream).
    pub die: u64,
    /// Lot-level base seed; per-die seeds derive from it via
    /// [`mix_seed`], so a die's map never depends on how many dies the
    /// surrounding request sampled.
    pub base_seed: u64,
    /// Spare physical sites beyond one per logical cell.
    pub spares: u32,
    /// Defect process parameters.
    pub params: DefectParams,
    /// Which repair solver to use.
    pub solver: Solver,
    /// Pairs of logical cells (by index) that must land on adjacent
    /// sites (`|site_a - site_b| == 1`; sites form one row).
    pub adjacent: &'a [(u32, u32)],
}

/// The result of repairing one die.
#[derive(Clone, Debug, PartialEq)]
pub struct DieOutcome {
    /// Die index.
    pub die: u64,
    /// Physical sites on the die (cells + spares).
    pub sites: u32,
    /// Sites whose defects break at least one of the logical cell
    /// layouts (the site is unusable for that cell).
    pub defective_sites: u32,
    /// Whether every logical cell found a healthy site (honoring any
    /// adjacency constraints).
    pub repaired: bool,
    /// Which solver produced the verdict (`"matching"` or `"sat"`).
    pub solver: &'static str,
    /// Assigned sites that are spare slots (index ≥ cell count).
    pub spares_used: u32,
    /// Per-cell assigned site, in cell order; all `Some` when
    /// `repaired`, all `None` otherwise.
    pub assignment: Vec<Option<u32>>,
}

/// Samples the die's [`DefectMap`], tests every (cell, site) pair with
/// a [`SiteTester`], and solves the assignment with the requested
/// [`Solver`]. Fully deterministic in the spec.
pub fn repair_die(spec: &DieSpec<'_>) -> DieOutcome {
    let cells = spec.layouts.len();
    let sites = cells as u32 + spec.spares;
    let map = DefectMap::sample(spec.base_seed, spec.die, sites, &spec.params);

    // Health matrix: compat[c][s] = cell c's layout survives site s.
    let mut compat = vec![vec![false; sites as usize]; cells];
    for (c, layout) in spec.layouts.iter().enumerate() {
        let mut tester = SiteTester::new(layout);
        for (s, site) in map.sites.iter().enumerate() {
            compat[c][s] = tester.test(site, &spec.params).functional;
        }
    }
    let defective_sites = (0..sites as usize)
        .filter(|&s| compat.iter().any(|row| !row[s]))
        .count() as u32;

    let adjacent: Vec<(usize, usize)> = spec
        .adjacent
        .iter()
        .map(|&(a, b)| (a as usize, b as usize))
        .collect();
    let answer = solve(
        &Problem {
            cells,
            sites: sites as usize,
            compat,
            adjacent,
        },
        spec.solver,
    );

    let spares_used = answer
        .sites
        .iter()
        .flatten()
        .filter(|&&s| s >= cells)
        .count() as u32;
    DieOutcome {
        die: spec.die,
        sites,
        defective_sites,
        repaired: answer.repaired,
        solver: answer.solver,
        spares_used,
        assignment: answer.sites.iter().map(|s| s.map(|s| s as u32)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_core::{generate_cell, GenerateOptions, StdCellKind};

    fn inv() -> cnfet_core::GeneratedCell {
        generate_cell(StdCellKind::Inv, &GenerateOptions::default()).unwrap()
    }

    #[test]
    fn clean_process_repairs_trivially() {
        let cell = inv();
        let layouts = [&cell.semantics, &cell.semantics];
        let outcome = repair_die(&DieSpec {
            layouts: &layouts,
            die: 7,
            base_seed: 1,
            spares: 1,
            params: DefectParams {
                metallic_fraction: 0.0,
                open_fraction: 0.0,
                misposition_fraction: 0.0,
                ..DefectParams::default()
            },
            solver: Solver::Auto,
            adjacent: &[],
        });
        assert!(outcome.repaired);
        assert_eq!(outcome.defective_sites, 0);
        assert_eq!(outcome.spares_used, 0);
        assert_eq!(outcome.solver, "matching");
    }

    #[test]
    fn deterministic_per_die() {
        let cell = inv();
        let layouts = [&cell.semantics];
        let spec = DieSpec {
            layouts: &layouts,
            die: 3,
            base_seed: 99,
            spares: 2,
            params: DefectParams::default(),
            solver: Solver::Auto,
            adjacent: &[],
        };
        assert_eq!(repair_die(&spec), repair_die(&spec));
    }

    #[test]
    fn die_outcome_is_independent_of_lot_size() {
        // The per-die stream derives from (base_seed, die), never from
        // how many dies a surrounding request sampled — the overlap
        // guarantee the engine's per-die memoization relies on.
        let cell = inv();
        let layouts = [&cell.semantics];
        let a = DefectMap::sample(5, 11, 4, &DefectParams::default());
        let b = DefectMap::sample(5, 11, 4, &DefectParams::default());
        assert_eq!(a, b);
        let _ = layouts;
    }
}
