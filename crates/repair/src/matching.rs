//! Hopcroft–Karp maximum bipartite matching.
//!
//! The fast path of the repair core: logical cells on the left,
//! physical sites on the right, an edge wherever the site's defects
//! leave the cell's layout functional. A die is repairable (absent
//! adjacency constraints) iff the maximum matching saturates the left
//! side. Hopcroft–Karp runs in `O(E √V)` — comfortably instant at
//! die scale, and deterministic: adjacency lists are scanned in order,
//! so equal inputs produce identical matchings.

/// A maximum matching: `pairs[u]` is the right vertex matched to left
/// vertex `u`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// Matched right vertex per left vertex.
    pub pairs: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

const NIL: usize = usize::MAX;
const INF: u32 = u32::MAX;

/// Computes a maximum matching of the bipartite graph with `left` left
/// vertices, `right` right vertices, and `adj[u]` listing the right
/// neighbors of left vertex `u`.
///
/// # Panics
///
/// Panics if an adjacency list names a right vertex `>= right`.
pub fn max_matching(left: usize, right: usize, adj: &[Vec<usize>]) -> Matching {
    assert_eq!(adj.len(), left, "one adjacency list per left vertex");
    let mut match_l = vec![NIL; left];
    let mut match_r = vec![NIL; right];
    let mut dist = vec![INF; left];
    let mut queue = Vec::with_capacity(left);

    // BFS phase: layer the left vertices by shortest alternating path
    // from a free vertex; returns whether an augmenting path exists.
    let bfs = |match_l: &[usize], match_r: &[usize], dist: &mut [u32], queue: &mut Vec<usize>| {
        queue.clear();
        for u in 0..left {
            if match_l[u] == NIL {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut found = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adj[u] {
                let w = match_r[v];
                if w == NIL {
                    found = true;
                } else if dist[w] == INF {
                    dist[w] = dist[u] + 1;
                    queue.push(w);
                }
            }
        }
        found
    };

    // DFS phase: augment along layered paths.
    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        match_l: &mut [usize],
        match_r: &mut [usize],
        dist: &mut [u32],
    ) -> bool {
        for i in 0..adj[u].len() {
            let v = adj[u][i];
            let w = match_r[v];
            if w == NIL || (dist[w] == dist[u] + 1 && dfs(w, adj, match_l, match_r, dist)) {
                match_l[u] = v;
                match_r[v] = u;
                return true;
            }
        }
        dist[u] = INF;
        false
    }

    let mut size = 0;
    while bfs(&match_l, &match_r, &mut dist, &mut queue) {
        for u in 0..left {
            if match_l[u] == NIL && dfs(u, adj, &mut match_l, &mut match_r, &mut dist) {
                size += 1;
            }
        }
    }

    Matching {
        pairs: match_l
            .into_iter()
            .map(|v| (v != NIL).then_some(v))
            .collect(),
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let adj = vec![vec![0], vec![1], vec![2]];
        let m = max_matching(3, 3, &adj);
        assert_eq!(m.size, 3);
        assert_eq!(m.pairs, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn augments_through_conflicts() {
        // Both cells prefer site 0; one must take site 1.
        let adj = vec![vec![0], vec![0, 1]];
        let m = max_matching(2, 2, &adj);
        assert_eq!(m.size, 2);
        assert_eq!(m.pairs[0], Some(0));
        assert_eq!(m.pairs[1], Some(1));
    }

    #[test]
    fn reports_deficit_when_sites_run_out() {
        let adj = vec![vec![0], vec![0], vec![0]];
        let m = max_matching(3, 1, &adj);
        assert_eq!(m.size, 1);
        assert_eq!(m.pairs.iter().flatten().count(), 1);
    }

    #[test]
    fn isolated_vertices_stay_unmatched() {
        let adj = vec![vec![], vec![1]];
        let m = max_matching(2, 2, &adj);
        assert_eq!(m.size, 1);
        assert_eq!(m.pairs, vec![None, Some(1)]);
    }

    #[test]
    fn crossing_chain_needs_full_augmentation() {
        // A classic alternating chain: greedy would strand the last
        // vertex; Hopcroft–Karp finds the perfect matching.
        let adj = vec![vec![0, 1], vec![0], vec![1, 2], vec![2]];
        let m = max_matching(4, 3, &adj);
        assert_eq!(m.size, 3);
    }
}
