//! The repair core: logical cells onto healthy physical sites.
//!
//! A [`Problem`] is the compatibility matrix a die's site testing
//! produced plus any adjacency constraints, and [`solve`] routes it to
//! one of two interchangeable solvers:
//!
//! * **Matching** ([`crate::matching`]) — Hopcroft–Karp maximum
//!   bipartite matching. Complete and fast for the unconstrained
//!   problem: a die is repairable iff the matching saturates the cells.
//!   Matching *cannot* express pairwise placement constraints, so it
//!   refuses problems with adjacency pairs.
//! * **SAT** ([`crate::sat`]) — a CNF encoding (one variable per
//!   compatible cell × site pair; at-least-one per cell, at-most-one
//!   per cell and per site, and an adjacency clause set) decided by the
//!   in-repo DPLL solver. Strictly more expressive; used automatically
//!   whenever adjacency constraints are present.
//!
//! [`Solver::Auto`] picks matching when it suffices and falls back to
//! SAT otherwise; both paths are deterministic, and on unconstrained
//! problems they always agree on repairability (matching is exact).

use crate::matching::max_matching;
use crate::sat::{Cnf, SatResult};

/// Which assignment solver to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Solver {
    /// Matching when the problem has no adjacency constraints, SAT
    /// otherwise.
    Auto,
    /// Force Hopcroft–Karp matching. Adjacency constraints make the
    /// problem inexpressible for matching; the die is then reported
    /// unrepairable by this solver (use [`Solver::Sat`] or
    /// [`Solver::Auto`]).
    Matching,
    /// Force the DPLL SAT solver.
    Sat,
}

/// One die's assignment problem.
#[derive(Clone, Debug, PartialEq)]
pub struct Problem {
    /// Logical cells to place.
    pub cells: usize,
    /// Physical sites available (≥ `cells` for any hope of repair).
    pub sites: usize,
    /// `compat[c][s]`: cell `c`'s layout survives site `s`'s defects.
    pub compat: Vec<Vec<bool>>,
    /// Cell-index pairs that must land on adjacent sites
    /// (`|site_a - site_b| == 1`).
    pub adjacent: Vec<(usize, usize)>,
}

/// The solved assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Whether every cell found a site (under all constraints).
    pub repaired: bool,
    /// Per-cell site, all `Some` when repaired, all `None` otherwise.
    pub sites: Vec<Option<usize>>,
    /// Which solver produced the verdict.
    pub solver: &'static str,
}

/// Solves a [`Problem`] with the requested [`Solver`].
pub fn solve(problem: &Problem, solver: Solver) -> Assignment {
    match solver {
        Solver::Matching => solve_matching(problem),
        Solver::Sat => solve_sat(problem),
        Solver::Auto if problem.adjacent.is_empty() => solve_matching(problem),
        Solver::Auto => solve_sat(problem),
    }
}

fn unrepaired(problem: &Problem, solver: &'static str) -> Assignment {
    Assignment {
        repaired: false,
        sites: vec![None; problem.cells],
        solver,
    }
}

fn solve_matching(problem: &Problem) -> Assignment {
    if !problem.adjacent.is_empty() {
        // Pairwise placement coupling is outside matching's model; an
        // honest "can't express it" beats a silently wrong assignment.
        return unrepaired(problem, "matching");
    }
    let adj: Vec<Vec<usize>> = problem
        .compat
        .iter()
        .map(|row| (0..problem.sites).filter(|&s| row[s]).collect())
        .collect();
    let matching = max_matching(problem.cells, problem.sites, &adj);
    if matching.size == problem.cells {
        Assignment {
            repaired: true,
            sites: matching.pairs,
            solver: "matching",
        }
    } else {
        unrepaired(problem, "matching")
    }
}

/// CNF: `x[c][s]` ⇔ cell `c` sits at site `s`, variables only for
/// compatible pairs.
fn solve_sat(problem: &Problem) -> Assignment {
    let (cells, sites) = (problem.cells, problem.sites);
    // Variable numbering: dense over compatible pairs, row-major.
    let mut var = vec![vec![0i32; sites]; cells];
    let mut count = 0usize;
    for (row, compat) in var.iter_mut().zip(&problem.compat) {
        for (v, &ok) in row.iter_mut().zip(compat) {
            if ok {
                count += 1;
                *v = count as i32;
            }
        }
    }
    let mut cnf = Cnf::new(count);

    // At least one site per cell, and at most one site per cell.
    for row in &var {
        let options: Vec<i32> = row.iter().copied().filter(|&v| v != 0).collect();
        if options.is_empty() {
            return unrepaired(problem, "sat");
        }
        for (i, &v1) in options.iter().enumerate() {
            for &v2 in &options[i + 1..] {
                cnf.add_clause([-v1, -v2]);
            }
        }
        cnf.add_clause(options);
    }
    // At most one cell per site.
    for s in 0..sites {
        let takers: Vec<i32> = var.iter().map(|row| row[s]).filter(|&v| v != 0).collect();
        for (i, &v1) in takers.iter().enumerate() {
            for &v2 in &takers[i + 1..] {
                cnf.add_clause([-v1, -v2]);
            }
        }
    }
    // Adjacency: if a sits at s, b must sit next door (and vice versa).
    for &(a, b) in &problem.adjacent {
        if a >= cells || b >= cells {
            return unrepaired(problem, "sat");
        }
        for (from, to) in [(a, b), (b, a)] {
            for s in 0..sites {
                if var[from][s] == 0 {
                    continue;
                }
                let mut clause = vec![-var[from][s]];
                if s > 0 && var[to][s - 1] != 0 {
                    clause.push(var[to][s - 1]);
                }
                if s + 1 < sites && var[to][s + 1] != 0 {
                    clause.push(var[to][s + 1]);
                }
                cnf.add_clause(clause);
            }
        }
    }

    match cnf.solve() {
        SatResult::Unsat => unrepaired(problem, "sat"),
        SatResult::Sat(model) => {
            let mut assigned = vec![None; cells];
            for c in 0..cells {
                for s in 0..sites {
                    if var[c][s] != 0 && model[(var[c][s] - 1) as usize] {
                        assigned[c] = Some(s);
                        break;
                    }
                }
            }
            let repaired = assigned.iter().all(Option::is_some);
            Assignment {
                repaired,
                sites: if repaired {
                    assigned
                } else {
                    vec![None; cells]
                },
                solver: "sat",
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(compat: Vec<Vec<bool>>, adjacent: Vec<(usize, usize)>) -> Problem {
        let cells = compat.len();
        let sites = compat.first().map_or(0, Vec::len);
        Problem {
            cells,
            sites,
            compat,
            adjacent,
        }
    }

    #[test]
    fn solvers_agree_on_unconstrained_problems() {
        let cases = [
            problem(vec![vec![true, true], vec![true, false]], vec![]),
            problem(vec![vec![false, true], vec![false, true]], vec![]),
            problem(
                vec![
                    vec![true, false, true],
                    vec![true, true, false],
                    vec![false, true, true],
                ],
                vec![],
            ),
        ];
        for p in &cases {
            let m = solve(p, Solver::Matching);
            let s = solve(p, Solver::Sat);
            assert_eq!(m.repaired, s.repaired, "{p:?}");
        }
    }

    #[test]
    fn auto_routes_by_constraint_presence() {
        let free = problem(vec![vec![true]], vec![]);
        assert_eq!(solve(&free, Solver::Auto).solver, "matching");
        let tied = problem(vec![vec![true, true], vec![true, true]], vec![(0, 1)]);
        assert_eq!(solve(&tied, Solver::Auto).solver, "sat");
    }

    #[test]
    fn sat_solves_a_constrained_fixture_matching_cannot() {
        // Sites 0..4; site 2 is dead for both cells. Cells 0 and 1 must
        // be adjacent: the only adjacent healthy pair is (0, 1) or
        // (3, 4)... here sites 0,1,3,4 healthy → SAT finds e.g. 0,1.
        let p = problem(
            vec![
                vec![true, true, false, true, true],
                vec![true, true, false, true, true],
            ],
            vec![(0, 1)],
        );
        let m = solve(&p, Solver::Matching);
        assert!(!m.repaired, "matching cannot express adjacency");
        let s = solve(&p, Solver::Sat);
        assert!(s.repaired);
        let (a, b) = (s.sites[0].unwrap(), s.sites[1].unwrap());
        assert_eq!(a.abs_diff(b), 1, "constraint honored: {a} vs {b}");
    }

    #[test]
    fn sat_reports_unsat_constraints() {
        // Healthy sites 0 and 2 only — never adjacent.
        let p = problem(
            vec![vec![true, false, true], vec![true, false, true]],
            vec![(0, 1)],
        );
        let s = solve(&p, Solver::Sat);
        assert!(!s.repaired);
        assert!(s.sites.iter().all(Option::is_none));
    }

    #[test]
    fn hopeless_cell_short_circuits_sat() {
        let p = problem(vec![vec![false, false]], vec![]);
        assert!(!solve(&p, Solver::Sat).repaired);
        assert!(!solve(&p, Solver::Matching).repaired);
    }

    #[test]
    fn out_of_range_adjacency_is_unrepairable_not_a_panic() {
        let p = problem(vec![vec![true]], vec![(0, 5)]);
        assert!(!solve(&p, Solver::Sat).repaired);
    }
}
