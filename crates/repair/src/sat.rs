//! A small DPLL SAT solver: unit propagation over two watched literals
//! per clause, chronological backtracking, deterministic branching.
//!
//! The repair core encodes constrained cell-to-site assignment as CNF
//! (see [`crate::assign`]); this solver decides it. No clause learning
//! or restarts — the instances are die-sized (tens of variables), and
//! determinism matters more than raw speed: branching always picks the
//! lowest unassigned variable, trying `true` first, so equal formulas
//! always produce the same model.
//!
//! Literals are non-zero `i32`s, DIMACS style: `v` is variable `v`
//! positive, `-v` negative; variables are numbered from 1.

/// A CNF formula under construction.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    vars: usize,
    clauses: Vec<Vec<i32>>,
    trivially_unsat: bool,
}

/// The solver's answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; `model[v - 1]` is the value of variable `v`.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl Cnf {
    /// An empty formula over `vars` variables (numbered `1..=vars`).
    pub fn new(vars: usize) -> Cnf {
        Cnf {
            vars,
            clauses: Vec::new(),
            trivially_unsat: false,
        }
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of clauses added so far.
    pub fn clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a disjunction of literals. An empty clause makes the
    /// formula trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics on a zero literal or a variable outside `1..=vars`.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = i32>) {
        let mut clause: Vec<i32> = lits.into_iter().collect();
        for &l in &clause {
            let v = l.unsigned_abs() as usize;
            assert!(l != 0 && v <= self.vars, "literal {l} out of range");
        }
        clause.sort_unstable();
        clause.dedup();
        // A tautology (v ∨ ¬v) constrains nothing.
        if clause.windows(2).any(|w| w[0] == -w[1]) {
            return;
        }
        if clause.is_empty() {
            self.trivially_unsat = true;
        }
        self.clauses.push(clause);
    }

    /// Decides the formula.
    pub fn solve(&self) -> SatResult {
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        Solver::new(self).run()
    }
}

/// Index into the per-literal watch lists: positive literals of `v` at
/// `2v`, negative at `2v + 1`.
fn widx(l: i32) -> usize {
    let v = l.unsigned_abs() as usize;
    2 * v + usize::from(l < 0)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Value {
    Unset,
    True,
    False,
}

struct Decision {
    /// The literal decided (always positive-first on a fresh variable).
    lit: i32,
    /// Trail length before the decision.
    trail_len: usize,
    /// Whether the complementary branch has already been explored.
    flipped: bool,
}

struct Solver {
    /// Clause literal arrays; positions 0 and 1 are the watched pair.
    clauses: Vec<Vec<i32>>,
    /// `watches[widx(l)]` = clauses currently watching literal `l`.
    watches: Vec<Vec<usize>>,
    values: Vec<Value>,
    trail: Vec<i32>,
    /// Next trail position to propagate.
    head: usize,
    decisions: Vec<Decision>,
    /// Level-0 units (from length-1 clauses).
    units: Vec<i32>,
    vars: usize,
}

impl Solver {
    fn new(cnf: &Cnf) -> Solver {
        let mut solver = Solver {
            clauses: Vec::with_capacity(cnf.clauses.len()),
            watches: vec![Vec::new(); 2 * cnf.vars + 2],
            values: vec![Value::Unset; cnf.vars + 1],
            trail: Vec::new(),
            head: 0,
            decisions: Vec::new(),
            units: Vec::new(),
            vars: cnf.vars,
        };
        for clause in &cnf.clauses {
            if clause.len() == 1 {
                solver.units.push(clause[0]);
                continue;
            }
            let ci = solver.clauses.len();
            solver.watches[widx(clause[0])].push(ci);
            solver.watches[widx(clause[1])].push(ci);
            solver.clauses.push(clause.clone());
        }
        solver
    }

    fn value(&self, l: i32) -> Value {
        match (self.values[l.unsigned_abs() as usize], l > 0) {
            (Value::Unset, _) => Value::Unset,
            (v, true) => v,
            (Value::True, false) => Value::False,
            (Value::False, false) => Value::True,
        }
    }

    /// Puts `l` on the trail as true. Returns false when `l` is already
    /// false (immediate conflict).
    fn assign(&mut self, l: i32) -> bool {
        match self.value(l) {
            Value::True => true,
            Value::False => false,
            Value::Unset => {
                self.values[l.unsigned_abs() as usize] =
                    if l > 0 { Value::True } else { Value::False };
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation from the current trail head. Returns false on
    /// conflict.
    fn propagate(&mut self) -> bool {
        while self.head < self.trail.len() {
            let falsified = -self.trail[self.head];
            self.head += 1;
            // Visit every clause watching the now-false literal; keep
            // the list compacted in place.
            let mut list = std::mem::take(&mut self.watches[widx(falsified)]);
            let mut keep = 0;
            let mut conflict = false;
            'clauses: for li in 0..list.len() {
                let ci = list[li];
                if conflict {
                    list[keep] = ci;
                    keep += 1;
                    continue;
                }
                // Normalize: the falsified watch sits at position 1.
                if self.clauses[ci][0] == falsified {
                    self.clauses[ci].swap(0, 1);
                }
                let other = self.clauses[ci][0];
                if self.value(other) == Value::True {
                    list[keep] = ci;
                    keep += 1;
                    continue;
                }
                // Find a replacement watch among the tail literals.
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != Value::False {
                        self.clauses[ci].swap(1, k);
                        let moved = self.clauses[ci][1];
                        self.watches[widx(moved)].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement: unit on `other`, or conflict.
                list[keep] = ci;
                keep += 1;
                if !self.assign(other) {
                    conflict = true;
                }
            }
            list.truncate(keep);
            debug_assert!(self.watches[widx(falsified)].is_empty());
            self.watches[widx(falsified)] = list;
            if conflict {
                return false;
            }
        }
        true
    }

    /// Undoes the trail past `len` and resets the propagation head.
    fn backtrack_to(&mut self, len: usize) {
        while self.trail.len() > len {
            let l = self.trail.pop().expect("trail shrinks to len");
            self.values[l.unsigned_abs() as usize] = Value::Unset;
        }
        self.head = len;
    }

    fn run(mut self) -> SatResult {
        for i in 0..self.units.len() {
            if !self.assign(self.units[i]) {
                return SatResult::Unsat;
            }
        }
        loop {
            if self.propagate() {
                // Branch: lowest unassigned variable, true first.
                match (1..=self.vars).find(|&v| self.values[v] == Value::Unset) {
                    Some(v) => {
                        self.decisions.push(Decision {
                            lit: v as i32,
                            trail_len: self.trail.len(),
                            flipped: false,
                        });
                        let ok = self.assign(v as i32);
                        debug_assert!(ok, "fresh variable cannot conflict");
                    }
                    None => {
                        return SatResult::Sat(
                            (1..=self.vars)
                                .map(|v| self.values[v] == Value::True)
                                .collect(),
                        );
                    }
                }
            } else {
                // Conflict: flip the deepest untried decision.
                loop {
                    match self.decisions.pop() {
                        None => return SatResult::Unsat,
                        Some(d) if d.flipped => continue,
                        Some(d) => {
                            self.backtrack_to(d.trail_len);
                            self.decisions.push(Decision {
                                lit: -d.lit,
                                trail_len: d.trail_len,
                                flipped: true,
                            });
                            let flipped = -d.lit;
                            let ok = self.assign(flipped);
                            debug_assert!(ok, "freshly unwound variable cannot conflict");
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(result: SatResult) -> Vec<bool> {
        match result {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn trivial_and_unit_cases() {
        let empty = Cnf::new(0);
        assert_eq!(empty.solve(), SatResult::Sat(vec![]));

        let mut unit = Cnf::new(1);
        unit.add_clause([-1]);
        assert_eq!(model(unit.solve()), vec![false]);

        let mut contradiction = Cnf::new(1);
        contradiction.add_clause([1]);
        contradiction.add_clause([-1]);
        assert_eq!(contradiction.solve(), SatResult::Unsat);

        let mut hollow = Cnf::new(1);
        hollow.add_clause([]);
        assert_eq!(hollow.solve(), SatResult::Unsat);
    }

    #[test]
    fn propagation_chases_implication_chains() {
        // 1 → 2 → 3 → 4, with 1 forced.
        let mut cnf = Cnf::new(4);
        cnf.add_clause([1]);
        cnf.add_clause([-1, 2]);
        cnf.add_clause([-2, 3]);
        cnf.add_clause([-3, 4]);
        assert_eq!(model(cnf.solve()), vec![true; 4]);
    }

    #[test]
    fn backtracking_explores_both_branches() {
        // (1 ∨ 2) ∧ (¬1 ∨ 2) ∧ (¬2 ∨ ¬1): forces 2, then ¬1 — but the
        // solver tries 1 = true first and must recover.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([1, 2]);
        cnf.add_clause([-1, 2]);
        cnf.add_clause([-2, -1]);
        assert_eq!(model(cnf.solve()), vec![false, true]);
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        // Pigeon p in hole h: var 2p + h + 1. Forces real search.
        let v = |p: i32, h: i32| 2 * p + h + 1;
        let mut cnf = Cnf::new(6);
        for p in 0..3 {
            cnf.add_clause([v(p, 0), v(p, 1)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    cnf.add_clause([-v(p1, h), -v(p2, h)]);
                }
            }
        }
        assert_eq!(cnf.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([1, -1]);
        assert_eq!(cnf.clauses(), 0);
        cnf.add_clause([2, 2]);
        // Variable 1 is unconstrained; branching tries true first.
        assert_eq!(model(cnf.solve()), vec![true, true]);
    }

    #[test]
    fn deterministic_model_choice() {
        // Two symmetric solutions; the lowest-variable-true-first rule
        // must always pick the same one.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([1, 2]);
        cnf.add_clause([-1, -2]);
        for _ in 0..3 {
            assert_eq!(model(cnf.solve()), vec![true, false]);
        }
    }
}
