//! Seed-keyed per-die defect sampling.
//!
//! A [`DefectMap`] is a concrete, reproducible defect population for
//! one die: every physical site grows [`DefectParams::tubes_per_site`]
//! CNTs, and each tube independently comes out *surviving metallic*
//! (grown metallic and missed by the removal etch), *open* (broken or
//! never grown), or *mispositioned* (a wavy tube at an arbitrary
//! offset, the paper's imperfection model). The draw for every tube is
//! keyed by `(base seed, die, site)` through [`mix_seed`], so a die's
//! map is identical no matter how many dies the surrounding request
//! samples — the overlap-reuse guarantee the engine's per-die
//! memoization is built on.

use cnfet_rng::rngs::StdRng;
use cnfet_rng::{Rng, SeedableRng};

/// CNT process parameters for defect sampling and site testing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DefectParams {
    /// Probability a grown tube is a surviving metallic tube.
    pub metallic_fraction: f64,
    /// Probability a tube site is open (tube broken or never grown).
    pub open_fraction: f64,
    /// Probability a tube grows mispositioned (wavy, arbitrary offset).
    pub misposition_fraction: f64,
    /// Tubes grown per physical site.
    pub tubes_per_site: u32,
    /// Largest tolerable fraction of open tubes per site: more and the
    /// site's drive is considered lost even without a short.
    pub open_tolerance: f64,
    /// Slope bound (`dy/dx`) per traced segment of a defective tube.
    pub tau: f64,
    /// Length (in x) of each straight traced sub-segment, λ.
    pub segment_len_lambda: f64,
}

impl Default for DefectParams {
    /// A mid-quality process: 2% surviving metallic, 4% open, 6%
    /// mispositioned over 8 tubes per site, tolerating up to a quarter
    /// of the tubes open, with the Monte-Carlo engine's default trace
    /// geometry.
    fn default() -> DefectParams {
        DefectParams {
            metallic_fraction: 0.02,
            open_fraction: 0.04,
            misposition_fraction: 0.06,
            tubes_per_site: 8,
            open_tolerance: 0.25,
            tau: 1.0,
            segment_len_lambda: 6.0,
        }
    }
}

/// What went wrong with one grown tube.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefectKind {
    /// Grown metallic and missed by the removal step: conducts with its
    /// gates stuck on.
    Metallic,
    /// Broken or never grown: contributes no conduction (drive loss).
    Open,
    /// Grown semiconducting but wavy at an arbitrary vertical offset.
    Mispositioned,
}

/// One defective tube of a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TubeDefect {
    /// Index of the tube within its site's grown population.
    pub tube: u32,
    /// The defect.
    pub kind: DefectKind,
    /// Seed for the tube's trace geometry (offset + slope walk),
    /// consumed by [`SiteTester`](crate::SiteTester) against a concrete
    /// layout.
    pub seed: u64,
}

/// The defect population of one physical site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteDefects {
    /// Site index on the die.
    pub site: u32,
    /// Tubes grown at this site.
    pub tubes: u32,
    /// The defective tubes, in tube order (healthy tubes are implicit).
    pub defects: Vec<TubeDefect>,
}

/// A whole die's sampled defect population.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefectMap {
    /// Die index within the lot.
    pub die: u64,
    /// The per-die seed every site stream derives from.
    pub seed: u64,
    /// One entry per physical site, in site order.
    pub sites: Vec<SiteDefects>,
}

/// Mixes two seeds into one (splitmix64 finalizer over the pair), the
/// derivation step behind per-die and per-site streams.
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a
        .rotate_left(17)
        .wrapping_add(b.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DefectMap {
    /// Samples the map of die `die` in the lot keyed by `base_seed`:
    /// `sites` sites of [`DefectParams::tubes_per_site`] tubes each.
    /// Deterministic in all four arguments and independent of any lot
    /// size.
    pub fn sample(base_seed: u64, die: u64, sites: u32, params: &DefectParams) -> DefectMap {
        let die_seed = mix_seed(base_seed, die);
        let sites = (0..sites)
            .map(|site| {
                let mut rng = StdRng::seed_from_u64(mix_seed(die_seed, site as u64));
                let mut defects = Vec::new();
                for tube in 0..params.tubes_per_site {
                    let draw = rng.gen_range(0.0..1.0);
                    let kind = if draw < params.metallic_fraction {
                        Some(DefectKind::Metallic)
                    } else if draw < params.metallic_fraction + params.open_fraction {
                        Some(DefectKind::Open)
                    } else if draw
                        < params.metallic_fraction
                            + params.open_fraction
                            + params.misposition_fraction
                    {
                        Some(DefectKind::Mispositioned)
                    } else {
                        None
                    };
                    // Every tube consumes exactly two draws (class +
                    // geometry seed) so the stream shape never depends
                    // on the sampled classes.
                    let seed = rng.next_u64();
                    if let Some(kind) = kind {
                        defects.push(TubeDefect { tube, kind, seed });
                    }
                }
                SiteDefects {
                    site,
                    tubes: params.tubes_per_site,
                    defects,
                }
            })
            .collect();
        DefectMap {
            die,
            seed: die_seed,
            sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_die_keyed() {
        let p = DefectParams::default();
        let a = DefectMap::sample(7, 3, 6, &p);
        let b = DefectMap::sample(7, 3, 6, &p);
        assert_eq!(a, b);
        let other_die = DefectMap::sample(7, 4, 6, &p);
        assert_ne!(a, other_die);
        let other_lot = DefectMap::sample(8, 3, 6, &p);
        assert_ne!(a, other_lot);
    }

    #[test]
    fn site_streams_do_not_depend_on_site_count() {
        let p = DefectParams::default();
        let small = DefectMap::sample(1, 0, 2, &p);
        let large = DefectMap::sample(1, 0, 5, &p);
        assert_eq!(small.sites[..], large.sites[..2]);
    }

    #[test]
    fn clean_process_has_no_defects() {
        let p = DefectParams {
            metallic_fraction: 0.0,
            open_fraction: 0.0,
            misposition_fraction: 0.0,
            ..DefectParams::default()
        };
        let map = DefectMap::sample(1, 0, 4, &p);
        assert!(map.sites.iter().all(|s| s.defects.is_empty()));
    }

    #[test]
    fn dirty_process_defects_classify_in_order() {
        let p = DefectParams {
            metallic_fraction: 1.0,
            ..DefectParams::default()
        };
        let map = DefectMap::sample(1, 0, 2, &p);
        for site in &map.sites {
            assert_eq!(site.defects.len() as u32, site.tubes);
            assert!(site.defects.iter().all(|d| d.kind == DefectKind::Metallic));
        }
    }

    #[test]
    fn mix_seed_separates_close_inputs() {
        assert_ne!(mix_seed(0, 0), mix_seed(0, 1));
        assert_ne!(mix_seed(0, 1), mix_seed(1, 0));
    }
}
