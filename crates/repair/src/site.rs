//! Site testing: one layout against one site's concrete defects.
//!
//! A [`SiteTester`] prepares a layout once (region decomposition +
//! verdict judge) and then evaluates any number of [`SiteDefects`]
//! against it. Metallic and mispositioned tubes are traced through the
//! decomposition with [`cnfet_immunity::trace_polyline`] — exactly the
//! conduction-segment machinery of the Monte-Carlo immunity engine —
//! so a "harmful" verdict here means precisely what it means there: the
//! tube creates a contact-to-contact conduction segment that can alter
//! the cell's function. Open tubes never short anything; they cost
//! drive, and a site whose open fraction exceeds
//! [`DefectParams::open_tolerance`](crate::DefectParams::open_tolerance)
//! fails on drive loss alone.

use crate::defect::{DefectKind, DefectParams, SiteDefects};
use cnfet_core::SemanticLayout;
use cnfet_geom::DBU_PER_LAMBDA;
use cnfet_immunity::{build_columns, trace_polyline, ColumnMap, Judge};
use cnfet_rng::rngs::StdRng;
use cnfet_rng::{Rng, SeedableRng};

/// The verdict of one (layout, site) evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteVerdict {
    /// Whether the layout survives this site's defects: no harmful
    /// short and an open fraction within tolerance.
    pub functional: bool,
    /// Defective tubes whose trace created a harmful conduction
    /// segment.
    pub harmful_shorts: u32,
    /// Open tubes at the site.
    pub open_tubes: u32,
}

/// A prepared per-layout tester: build once, test many sites.
pub struct SiteTester<'a> {
    cm: ColumnMap,
    judge: Judge<'a>,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
}

impl<'a> SiteTester<'a> {
    /// Prepares the region decomposition and verdict judge of `sem`.
    pub fn new(sem: &'a SemanticLayout) -> SiteTester<'a> {
        let bbox = sem.bbox;
        SiteTester {
            cm: build_columns(sem),
            judge: Judge::new(sem),
            x0: bbox.x0().0 as f64,
            x1: bbox.x1().0 as f64,
            y0: bbox.y0().0 as f64,
            y1: bbox.y1().0 as f64,
        }
    }

    /// Evaluates one site's defects against the prepared layout.
    ///
    /// Each metallic or mispositioned tube's geometry is an x-monotone
    /// polyline generated deterministically from the tube's recorded
    /// seed (offset uniform over the cell height, then a bounded-slope
    /// random walk — the Monte-Carlo engine's tube model), so the same
    /// defect record always traces the same path over a given layout.
    pub fn test(&mut self, site: &SiteDefects, params: &DefectParams) -> SiteVerdict {
        let mut harmful_shorts = 0u32;
        let mut open_tubes = 0u32;
        for defect in &site.defects {
            match defect.kind {
                DefectKind::Open => open_tubes += 1,
                DefectKind::Metallic | DefectKind::Mispositioned => {
                    let poly = self.polyline(defect.seed, params);
                    let metallic = defect.kind == DefectKind::Metallic;
                    if trace_polyline(&self.cm, &poly, &mut self.judge, metallic).is_some() {
                        harmful_shorts += 1;
                    }
                }
            }
        }
        let open_ok = site.tubes == 0
            || f64::from(open_tubes) <= params.open_tolerance * f64::from(site.tubes);
        SiteVerdict {
            functional: harmful_shorts == 0 && open_ok,
            harmful_shorts,
            open_tubes,
        }
    }

    /// The tube's trace: an x-monotone polyline spanning the cell, with
    /// a seeded vertical offset and bounded-slope segments of
    /// [`DefectParams::segment_len_lambda`].
    fn polyline(&self, seed: u64, params: &DefectParams) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let seg_dx = (params.segment_len_lambda * DBU_PER_LAMBDA as f64).max(1.0);
        let mut poly = Vec::new();
        let mut x = self.x0;
        let mut y = rng.gen_range(self.y0..=self.y1);
        poly.push((x, y));
        while x < self.x1 {
            let slope: f64 = rng.gen_range(-params.tau..=params.tau);
            let nx = (x + seg_dx).min(self.x1);
            y += slope * (nx - x);
            x = nx;
            poly.push((x, y));
        }
        poly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::{DefectMap, TubeDefect};
    use cnfet_core::{generate_cell, GenerateOptions, StdCellKind, Style};

    fn cell(style: Style) -> cnfet_core::GeneratedCell {
        generate_cell(
            StdCellKind::Nand(2),
            &GenerateOptions {
                style,
                ..GenerateOptions::default()
            },
        )
        .unwrap()
    }

    fn site_of(kind: DefectKind, tubes: u32, n: u32) -> SiteDefects {
        SiteDefects {
            site: 0,
            tubes,
            defects: (0..n)
                .map(|tube| TubeDefect {
                    tube,
                    kind,
                    seed: crate::mix_seed(0xFEED, tube as u64),
                })
                .collect(),
        }
    }

    #[test]
    fn immune_layout_shrugs_off_mispositioned_tubes() {
        let c = cell(Style::NewImmune);
        let mut tester = SiteTester::new(&c.semantics);
        let verdict = tester.test(
            &site_of(DefectKind::Mispositioned, 8, 8),
            &DefectParams::default(),
        );
        assert!(verdict.functional, "{verdict:?}");
        assert_eq!(verdict.harmful_shorts, 0);
    }

    #[test]
    fn vulnerable_layout_fails_under_enough_mispositioning() {
        let c = cell(Style::Vulnerable);
        let mut tester = SiteTester::new(&c.semantics);
        let failures: u32 = (0..64)
            .map(|i| {
                let site = SiteDefects {
                    site: i,
                    tubes: 8,
                    defects: vec![TubeDefect {
                        tube: 0,
                        kind: DefectKind::Mispositioned,
                        seed: crate::mix_seed(42, i as u64),
                    }],
                };
                tester.test(&site, &DefectParams::default()).harmful_shorts
            })
            .sum();
        assert!(failures > 0, "no harmful tube in 64 seeded sites");
    }

    #[test]
    fn metallic_tubes_can_break_even_immune_layouts() {
        let c = cell(Style::NewImmune);
        let mut tester = SiteTester::new(&c.semantics);
        let failures: u32 = (0..64)
            .map(|i| {
                let site = SiteDefects {
                    site: i,
                    tubes: 8,
                    defects: vec![TubeDefect {
                        tube: 0,
                        kind: DefectKind::Metallic,
                        seed: crate::mix_seed(7, i as u64),
                    }],
                };
                tester.test(&site, &DefectParams::default()).harmful_shorts
            })
            .sum();
        assert!(failures > 0, "no metallic short in 64 seeded sites");
    }

    #[test]
    fn open_tubes_fail_on_tolerance_not_shorts() {
        let c = cell(Style::NewImmune);
        let mut tester = SiteTester::new(&c.semantics);
        let params = DefectParams::default(); // tolerance 0.25 of 8 = 2
        let fine = tester.test(&site_of(DefectKind::Open, 8, 2), &params);
        assert!(fine.functional);
        assert_eq!(fine.open_tubes, 2);
        let dead = tester.test(&site_of(DefectKind::Open, 8, 3), &params);
        assert!(!dead.functional);
        assert_eq!(dead.harmful_shorts, 0);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let c = cell(Style::NewImmune);
        let params = DefectParams::default();
        let map = DefectMap::sample(11, 0, 8, &params);
        let mut a = SiteTester::new(&c.semantics);
        let mut b = SiteTester::new(&c.semantics);
        for site in &map.sites {
            assert_eq!(a.test(site, &params), b.test(site, &params));
        }
    }
}
