//! Piecewise-linear monotone lookup tables used for calibrated model
//! curves.

/// A piecewise-linear interpolation table over strictly increasing x.
///
/// Values outside the table are clamped to the end values (the screening
/// model handles sub-range extrapolation itself).
///
/// # Example
///
/// ```
/// use cnfet_device::LinearTable;
/// let t = LinearTable::new(vec![(0.0, 0.0), (10.0, 1.0)]);
/// assert_eq!(t.eval(5.0), 0.5);
/// assert_eq!(t.eval(-3.0), 0.0);
/// assert_eq!(t.eval(99.0), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinearTable {
    points: Vec<(f64, f64)>,
}

impl LinearTable {
    /// Builds a table from `(x, y)` control points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are supplied or x values are not
    /// strictly increasing.
    pub fn new(points: Vec<(f64, f64)>) -> LinearTable {
        assert!(points.len() >= 2, "need at least two control points");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "x values must be strictly increasing"
        );
        LinearTable { points }
    }

    /// Interpolated value at `x`, clamped to the table's range.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let mut lo = 0;
        let mut hi = pts.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (x0, y0) = pts[lo];
        let (x1, y1) = pts[hi];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Whether the table's y values are monotonically non-decreasing.
    pub fn is_monotone(&self) -> bool {
        self.points.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// The control points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_control_points_exactly() {
        let t = LinearTable::new(vec![(1.0, 2.0), (3.0, 7.0), (10.0, 7.5)]);
        assert_eq!(t.eval(1.0), 2.0);
        assert_eq!(t.eval(3.0), 7.0);
        assert_eq!(t.eval(10.0), 7.5);
    }

    #[test]
    fn interpolates_between() {
        let t = LinearTable::new(vec![(0.0, 0.0), (4.0, 8.0)]);
        assert_eq!(t.eval(1.0), 2.0);
        assert_eq!(t.eval(3.0), 6.0);
    }

    #[test]
    fn clamps_outside() {
        let t = LinearTable::new(vec![(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(t.eval(-5.0), 1.0);
        assert_eq!(t.eval(5.0), 2.0);
    }

    #[test]
    fn monotonicity_check() {
        assert!(LinearTable::new(vec![(0.0, 0.0), (1.0, 1.0)]).is_monotone());
        assert!(!LinearTable::new(vec![(0.0, 1.0), (1.0, 0.0)]).is_monotone());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted() {
        let _ = LinearTable::new(vec![(1.0, 0.0), (1.0, 1.0)]);
    }
}
