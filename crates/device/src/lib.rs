//! Device models for the CNFET design kit: CNT physics, a Deng–Wong-style
//! CNFET compact model with inter-CNT screening, and an industrial-65nm-like
//! CMOS baseline.
//!
//! This crate substitutes for the Stanford CNFET HSPICE model and the
//! proprietary 65 nm library used by the paper. The models are *compact and
//! calibrated*: their functional forms encode the physical mechanisms the
//! paper describes (per-tube drive, gate-to-CNT capacitance reduced by
//! inter-CNT charge screening, per-width contact parasitics), and their
//! constants are calibrated so the published anchor points of Section V
//! hold:
//!
//! * 1 CNT/device: FO4 delay gain ≈ 2.75x, energy/cycle gain ≈ 6.3x;
//! * optimal pitch 5 nm: delay gain ≈ 4.2x, energy gain ≈ 2.0x;
//! * ≤1% FO4 delay variation across the 4.5–5.5 nm pitch window.
//!
//! # Example
//!
//! ```
//! use cnfet_device::{CnfetModel, CmosModel, fo4};
//!
//! let cnfet = CnfetModel::poly_65nm();
//! let cmos = CmosModel::industrial_65nm();
//! let curve = fo4::gain_curve(&cnfet, &cmos, 32);
//! let peak = curve.iter().max_by(|a, b| a.delay_gain.total_cmp(&b.delay_gain)).unwrap();
//! assert_eq!(peak.n_tubes, 26); // 5 nm pitch in a 4λ-wide device
//! ```

pub mod alpha_power;
pub mod cmos;
pub mod cnfet;
pub mod cnt;
pub mod fo4;
pub mod interp;

pub use alpha_power::AlphaPowerLaw;
pub use cmos::CmosModel;
pub use cnfet::CnfetModel;
pub use cnt::Chirality;
pub use interp::LinearTable;

/// Channel polarity of a FET.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// n-type (pull-down) device.
    N,
    /// p-type (pull-up) device.
    P,
}

/// A quasi-static large-signal FET description, sufficient for transient
/// simulation: drain current surface plus lumped terminal capacitances.
///
/// Currents follow the n-type convention: `ids(vgs, vds)` is the current
/// from drain to source for an n-device with the given terminal voltages;
/// p-devices are handled by the simulator mirroring voltages.
pub trait FetModel {
    /// Drain-source current of the *n-convention* device in amperes.
    fn ids(&self, vgs: f64, vds: f64) -> f64;
    /// Total gate capacitance (farads); the simulator splits it between
    /// gate-source and gate-drain.
    fn cgate(&self) -> f64;
    /// Drain-to-bulk (ground) parasitic capacitance in farads.
    fn cdrain(&self) -> f64;
    /// Channel polarity.
    fn polarity(&self) -> Polarity;
}
