//! Sakurai–Newton alpha-power-law I–V surface shared by both technologies.

/// Normalized Sakurai–Newton alpha-power-law drain-current model.
///
/// The surface is expressed for an n-type device and normalized so that
/// `id(vdd, vdd) == 1`; callers scale by their on-current. The model is
/// C¹-continuous across the triode/saturation boundary and has zero current
/// (not merely small) below threshold — simulators add a `gmin` shunt for
/// convergence.
///
/// # Example
///
/// ```
/// use cnfet_device::AlphaPowerLaw;
/// let m = AlphaPowerLaw::new(0.22, 1.25, 0.8, 1.0);
/// assert!((m.id(1.0, 1.0) - 1.0).abs() < 1e-12);
/// assert_eq!(m.id(0.1, 1.0), 0.0); // below threshold
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlphaPowerLaw {
    /// Threshold voltage (V).
    pub vth: f64,
    /// Velocity-saturation index `α` (2 = long channel, →1 = fully
    /// velocity-saturated).
    pub alpha: f64,
    /// Saturation-voltage coefficient: `Vdsat = vd0·(Vgs−Vth)^(α/2)`.
    pub vd0: f64,
    /// Supply voltage the normalization refers to.
    pub vdd: f64,
}

impl AlphaPowerLaw {
    /// Creates a normalized alpha-power surface.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < vth < vdd` and `alpha >= 1`.
    pub fn new(vth: f64, alpha: f64, vd0: f64, vdd: f64) -> AlphaPowerLaw {
        assert!(vth > 0.0 && vth < vdd, "vth must lie inside (0, vdd)");
        assert!(alpha >= 1.0, "alpha must be >= 1");
        AlphaPowerLaw {
            vth,
            alpha,
            vd0,
            vdd,
        }
    }

    /// Saturation current factor at gate overdrive `vgs` (before vds
    /// shaping), normalized to the factor at `vgs = vdd`.
    fn sat_factor(&self, vgs: f64) -> f64 {
        let vov = vgs - self.vth;
        if vov <= 0.0 {
            return 0.0;
        }
        let full = (self.vdd - self.vth).powf(self.alpha);
        vov.powf(self.alpha) / full
    }

    /// Saturation drain voltage at the given gate voltage.
    pub fn vdsat(&self, vgs: f64) -> f64 {
        let vov = (vgs - self.vth).max(0.0);
        self.vd0 * vov.powf(self.alpha / 2.0)
    }

    /// Normalized drain current `id(vgs, vds)`; negative `vds` is handled
    /// by source/drain symmetry (`id(vgs, -v) = -id(vgs - (-v)·0 …)` is the
    /// caller's concern — this surface requires `vds >= 0`).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `vds` is negative.
    pub fn id(&self, vgs: f64, vds: f64) -> f64 {
        debug_assert!(vds >= -1e-12, "alpha-power surface needs vds >= 0");
        let sat = self.sat_factor(vgs);
        if sat == 0.0 {
            return 0.0;
        }
        let vdsat = self.vdsat(vgs);
        if vds >= vdsat || vdsat == 0.0 {
            sat
        } else {
            let v = vds / vdsat;
            sat * (2.0 - v) * v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AlphaPowerLaw {
        AlphaPowerLaw::new(0.22, 1.25, 0.8, 1.0)
    }

    #[test]
    fn normalized_on_current() {
        assert!((model().id(1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_below_threshold() {
        let m = model();
        assert_eq!(m.id(0.0, 1.0), 0.0);
        assert_eq!(m.id(0.22, 0.5), 0.0);
    }

    #[test]
    fn monotone_in_vgs_and_vds() {
        let m = model();
        let mut prev = -1.0;
        for i in 0..=20 {
            let vgs = i as f64 / 20.0;
            let id = m.id(vgs, 1.0);
            assert!(id >= prev, "not monotone in vgs at {vgs}");
            prev = id;
        }
        let mut prev = -1.0;
        for i in 0..=20 {
            let vds = i as f64 / 20.0;
            let id = m.id(1.0, vds);
            assert!(id >= prev - 1e-12, "not monotone in vds at {vds}");
            prev = id;
        }
    }

    #[test]
    fn continuous_at_vdsat() {
        let m = model();
        let vdsat = m.vdsat(1.0);
        let below = m.id(1.0, vdsat - 1e-9);
        let above = m.id(1.0, vdsat + 1e-9);
        assert!((below - above).abs() < 1e-6);
        // First derivative in vds approaches zero from the triode side.
        let d = (m.id(1.0, vdsat - 1e-6) - m.id(1.0, vdsat - 2e-6)) / 1e-6;
        assert!(d.abs() < 1e-2, "triode slope {d} not flattening at vdsat");
    }

    #[test]
    fn triode_region_resistive() {
        let m = model();
        // Deep triode: approximately linear in vds.
        let i1 = m.id(1.0, 0.01);
        let i2 = m.id(1.0, 0.02);
        assert!((i2 / i1 - 2.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "vth")]
    fn invalid_vth_rejected() {
        let _ = AlphaPowerLaw::new(1.5, 1.25, 0.8, 1.0);
    }
}
