//! The CNFET compact model: per-tube drive and capacitance with inter-CNT
//! screening, after Deng & Wong [14, 15] as used in the paper's design kit.

use crate::alpha_power::AlphaPowerLaw;
use crate::cnt::Chirality;
use crate::interp::LinearTable;
use crate::{FetModel, Polarity};

/// Technology parameters of the MOSFET-like CNFET at the paper's 65 nm
/// poly-gate / low-k node.
///
/// The paper stresses that the optimal CNT pitch is a *technology
/// parameter*; these constants are for its 65 nm assumption (polysilicon
/// gating, low-k dielectric), calibrated to the published Section V anchor
/// points (see crate docs). n- and p-CNFETs have near-identical drive
/// ("due to similar electrical characteristics"), so a single parameter set
/// serves both polarities.
#[derive(Clone, Debug)]
pub struct CnfetModel {
    /// Reference semiconducting tube.
    pub chirality: Chirality,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Threshold voltage (V).
    pub vth: f64,
    /// On-current of one *unscreened* tube at `vgs = vds = vdd`, amperes.
    pub ion_per_tube: f64,
    /// Gate capacitance of one unscreened tube over the gate length
    /// (electrostatic ∥ quantum, plus fringe), farads.
    pub cgate_per_tube: f64,
    /// Source/drain contact-strip parasitic capacitance per metre of device
    /// width (unscreened — metal strips see the full field), F/m.
    pub cpar_per_width: f64,
    /// Alpha-power saturation index (≈1 for quasi-ballistic transport).
    pub alpha: f64,
    /// Alpha-power `vd0` saturation-voltage coefficient.
    pub vd0: f64,
    /// Charge-screening factor on gate-to-channel *capacitance* versus
    /// pitch: `s_c(p) = p / (p + pitch_cap_nm)`.
    pub pitch_cap_nm: f64,
    /// Calibrated charge-screening factor on per-tube *drive current*
    /// versus pitch (nm → factor in (0, 1]).
    pub current_screening: LinearTable,
}

impl CnfetModel {
    /// The paper's 65 nm CNFET technology: poly gate, low-k dielectric,
    /// (19,0) tubes, 1 V supply.
    pub fn poly_65nm() -> CnfetModel {
        CnfetModel {
            chirality: Chirality::new(19, 0),
            vdd: 1.0,
            vth: 0.22,
            ion_per_tube: 34e-6,
            cgate_per_tube: 4.5e-18,
            cpar_per_width: 1.0e-9, // 1 aF per nm of device width
            alpha: 1.1,
            vd0: 0.6,
            pitch_cap_nm: 1.923,
            current_screening: LinearTable::new(vec![
                (2.0, 0.08),
                (3.0, 0.115),
                (4.0625, 0.1536),
                (4.483, 0.1716),
                (4.5, 0.1746),
                (5.0, 0.1853),
                (5.5, 0.1922),
                (5.652, 0.1941),
                (6.5, 0.2049),
                (8.125, 0.2251),
                (10.0, 0.246),
                (13.0, 0.2777),
                (16.25, 0.3092),
                (26.0, 0.393),
                (32.5, 0.4427),
                (43.33, 0.52),
                (65.0, 0.647),
                (130.0, 1.0),
            ]),
        }
    }

    /// Capacitance screening factor at a given inter-CNT pitch.
    ///
    /// Tends to 1 for widely spaced tubes and collapses as neighbouring
    /// tubes steal field lines — the effect the paper blames for the
    /// delay worsening beyond the optimal pitch.
    pub fn cap_screening(&self, pitch_nm: f64) -> f64 {
        assert!(pitch_nm > 0.0, "pitch must be positive");
        pitch_nm / (pitch_nm + self.pitch_cap_nm)
    }

    /// Drive-current screening factor at a given pitch (calibrated table).
    pub fn drive_screening(&self, pitch_nm: f64) -> f64 {
        assert!(pitch_nm > 0.0, "pitch must be positive");
        if pitch_nm >= 130.0 {
            1.0
        } else if pitch_nm < 2.0 {
            (0.08 * pitch_nm / 2.0).max(1e-3)
        } else {
            self.current_screening.eval(pitch_nm)
        }
    }

    /// Builds a device of `n_tubes` tubes in a gate of width
    /// `width_m` metres. One tube is treated as unscreened; `n ≥ 2` tubes
    /// are evenly pitched at `width / n`.
    ///
    /// # Panics
    ///
    /// Panics if `n_tubes == 0` or the width is not positive.
    pub fn device(&self, polarity: Polarity, n_tubes: u32, width_m: f64) -> CnfetDevice {
        assert!(n_tubes > 0, "a CNFET needs at least one tube");
        assert!(width_m > 0.0, "width must be positive");
        let (sc, si) = if n_tubes == 1 {
            (1.0, 1.0)
        } else {
            let pitch_nm = width_m * 1e9 / n_tubes as f64;
            (self.cap_screening(pitch_nm), self.drive_screening(pitch_nm))
        };
        let curve = AlphaPowerLaw::new(self.vth, self.alpha, self.vd0, self.vdd);
        CnfetDevice {
            polarity,
            n_tubes,
            width_m,
            ion: self.ion_per_tube * n_tubes as f64 * si,
            cgate: self.cgate_per_tube * n_tubes as f64 * sc,
            cdrain: self.cpar_per_width * width_m,
            curve,
        }
    }

    /// Inter-CNT pitch for `n` tubes in a device of the given width, nm.
    pub fn pitch_nm(&self, n_tubes: u32, width_m: f64) -> f64 {
        width_m * 1e9 / n_tubes as f64
    }
}

/// A sized CNFET instance: `n` tubes under one gate.
#[derive(Clone, Debug)]
pub struct CnfetDevice {
    polarity: Polarity,
    n_tubes: u32,
    width_m: f64,
    ion: f64,
    cgate: f64,
    cdrain: f64,
    curve: AlphaPowerLaw,
}

impl CnfetDevice {
    /// Number of tubes.
    pub fn n_tubes(&self) -> u32 {
        self.n_tubes
    }

    /// Drawn gate width in metres.
    pub fn width_m(&self) -> f64 {
        self.width_m
    }

    /// On-current at full gate and drain bias, amperes (screening applied).
    pub fn ion(&self) -> f64 {
        self.ion
    }
}

impl FetModel for CnfetDevice {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.ion * self.curve.id(vgs, vds)
    }

    fn cgate(&self) -> f64 {
        self.cgate
    }

    fn cdrain(&self) -> f64 {
        self.cdrain
    }

    fn polarity(&self) -> Polarity {
        self.polarity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W4L: f64 = 130e-9; // 4λ at λ = 32.5 nm

    #[test]
    fn screening_factors_bounded_and_monotone() {
        let m = CnfetModel::poly_65nm();
        let mut prev_c = 0.0;
        let mut prev_i = 0.0;
        for p in [2.0, 3.0, 4.0, 5.0, 6.5, 10.0, 20.0, 50.0, 100.0, 129.0] {
            let sc = m.cap_screening(p);
            let si = m.drive_screening(p);
            assert!(sc > prev_c && sc <= 1.0, "cap screening at {p}");
            assert!(si >= prev_i && si <= 1.0, "drive screening at {p}");
            prev_c = sc;
            prev_i = si;
        }
    }

    #[test]
    fn single_tube_unscreened() {
        let m = CnfetModel::poly_65nm();
        let d = m.device(Polarity::N, 1, W4L);
        assert!((d.ion() - m.ion_per_tube).abs() / m.ion_per_tube < 1e-12);
        assert!((d.cgate() - m.cgate_per_tube).abs() < 1e-24);
    }

    #[test]
    fn optimal_pitch_is_26_tubes_in_4_lambda() {
        let m = CnfetModel::poly_65nm();
        assert!((m.pitch_nm(26, W4L) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ion_scales_sublinearly_with_tubes() {
        let m = CnfetModel::poly_65nm();
        let i1 = m.device(Polarity::N, 1, W4L).ion();
        let i26 = m.device(Polarity::N, 26, W4L).ion();
        assert!(i26 > i1, "more tubes must drive more");
        assert!(i26 < 26.0 * i1, "screening must bite");
    }

    #[test]
    fn iv_surface_reasonable() {
        let m = CnfetModel::poly_65nm();
        let d = m.device(Polarity::N, 4, W4L);
        assert_eq!(d.ids(0.0, 1.0), 0.0);
        assert!((d.ids(1.0, 1.0) - d.ion()).abs() / d.ion() < 1e-12);
        assert!(d.ids(1.0, 0.1) < d.ids(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one tube")]
    fn zero_tubes_rejected() {
        let m = CnfetModel::poly_65nm();
        let _ = m.device(Polarity::N, 0, W4L);
    }
}
