//! Carbon nanotube physics: chirality, diameter, band gap, metallicity.

use std::fmt;

/// Graphene lattice constant in nanometres (`a = √3 · a_cc`).
pub const GRAPHENE_LATTICE_NM: f64 = 0.246;

/// Empirical band-gap prefactor: `Eg ≈ 0.84 eV·nm / d` for semiconducting
/// tubes (tight-binding estimate `2 a_cc γ0 / d`).
pub const BANDGAP_EV_NM: f64 = 0.84;

/// A single-walled CNT chirality `(n, m)`.
///
/// Chirality fixes everything this library needs about a tube: its
/// diameter, whether it is metallic (the imperfection the paper assumes is
/// removed during manufacturing) and its band gap.
///
/// # Example
///
/// ```
/// use cnfet_device::Chirality;
/// let tube = Chirality::new(19, 0);
/// assert!(!tube.is_metallic());
/// assert!((tube.diameter_nm() - 1.49).abs() < 0.01);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Chirality {
    n: u32,
    m: u32,
}

impl Chirality {
    /// Creates a chirality vector.
    ///
    /// # Panics
    ///
    /// Panics if both indices are zero.
    pub fn new(n: u32, m: u32) -> Chirality {
        assert!(n + m > 0, "chirality (0,0) is not a tube");
        Chirality { n, m }
    }

    /// The `n` index.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The `m` index.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Tube diameter in nanometres:
    /// `d = a·√(n² + nm + m²) / π`.
    pub fn diameter_nm(&self) -> f64 {
        let (n, m) = (self.n as f64, self.m as f64);
        GRAPHENE_LATTICE_NM * (n * n + n * m + m * m).sqrt() / std::f64::consts::PI
    }

    /// A tube is metallic when `(n − m) mod 3 == 0`; roughly one third of
    /// as-grown tubes. Metallic tubes short source to drain and must be
    /// removed (Section II; Zhang et al. \[9\]).
    pub fn is_metallic(&self) -> bool {
        (self.n as i64 - self.m as i64).rem_euclid(3) == 0
    }

    /// Band gap in eV (zero for metallic tubes).
    pub fn bandgap_ev(&self) -> f64 {
        if self.is_metallic() {
            0.0
        } else {
            BANDGAP_EV_NM / self.diameter_nm()
        }
    }
}

impl fmt::Display for Chirality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.n, self.m)
    }
}

/// Fraction of chiralities that are metallic under uniform growth: 1/3.
pub const METALLIC_FRACTION: f64 = 1.0 / 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armchair_is_metallic() {
        assert!(Chirality::new(10, 10).is_metallic());
        assert!(Chirality::new(5, 5).is_metallic());
    }

    #[test]
    fn zigzag_metallicity_rule() {
        assert!(Chirality::new(9, 0).is_metallic());
        assert!(!Chirality::new(19, 0).is_metallic());
        assert!(!Chirality::new(10, 0).is_metallic());
        assert!(Chirality::new(12, 0).is_metallic());
    }

    #[test]
    fn diameter_of_19_0() {
        // d = 0.246 * 19 / π ≈ 1.4878 nm — the Deng–Wong reference tube.
        let d = Chirality::new(19, 0).diameter_nm();
        assert!((d - 1.4878).abs() < 1e-3, "{d}");
    }

    #[test]
    fn bandgap_inverse_with_diameter() {
        let small = Chirality::new(10, 0);
        let large = Chirality::new(22, 0);
        assert!(small.bandgap_ev() > large.bandgap_ev());
        assert_eq!(Chirality::new(9, 0).bandgap_ev(), 0.0);
    }

    #[test]
    fn metallic_fraction_over_enumeration() {
        // Over a uniform enumeration of (n,m), about 1/3 are metallic.
        let mut metallic = 0usize;
        let mut total = 0usize;
        for n in 1..40u32 {
            for m in 0..=n {
                total += 1;
                if Chirality::new(n, m).is_metallic() {
                    metallic += 1;
                }
            }
        }
        let frac = metallic as f64 / total as f64;
        assert!((frac - METALLIC_FRACTION).abs() < 0.02, "{frac}");
    }

    #[test]
    #[should_panic(expected = "not a tube")]
    fn zero_chirality_panics() {
        let _ = Chirality::new(0, 0);
    }
}
