//! Industrial-65nm-like CMOS baseline model.
//!
//! Stands in for the commercial 65 nm design library the paper benchmarks
//! against. Parameters are representative of a 65 nm poly/SiON general-
//! purpose process; what matters for reproduction is that the *ratios*
//! against the CNFET model land on the paper's published gains.

use crate::alpha_power::AlphaPowerLaw;
use crate::{FetModel, Polarity};

/// Per-micron CMOS technology parameters.
#[derive(Clone, Debug)]
pub struct CmosModel {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Threshold voltage (V), shared by both polarities for simplicity.
    pub vth: f64,
    /// NMOS on-current per metre of width at full bias (A/m).
    pub ion_n_per_width: f64,
    /// PMOS/NMOS drive ratio; the paper sizes `pMOS = 1.4 × nMOS`, implying
    /// this mobility ratio.
    pub pn_drive_ratio: f64,
    /// Gate capacitance per metre of width (F/m), including overlap.
    pub cgate_per_width: f64,
    /// Drain junction capacitance per metre of width (F/m).
    pub cj_per_width: f64,
    /// Alpha-power saturation index.
    pub alpha: f64,
    /// Alpha-power saturation-voltage coefficient.
    pub vd0: f64,
    /// Minimum NMOS width of the standard-cell library (m) — 4λ.
    pub wmin_n: f64,
}

impl CmosModel {
    /// Representative industrial 65 nm general-purpose process.
    pub fn industrial_65nm() -> CmosModel {
        CmosModel {
            vdd: 1.0,
            vth: 0.22,
            ion_n_per_width: 600.0, // 600 µA/µm = 600 A/m
            pn_drive_ratio: 1.4,
            cgate_per_width: 1.3e-15 / 1e-6, // 1.3 fF/µm
            cj_per_width: 0.8e-15 / 1e-6,    // 0.8 fF/µm
            alpha: 1.25,
            vd0: 0.8,
            wmin_n: 130e-9, // 4λ
        }
    }

    /// Builds a MOSFET of drawn width `width_m`. P-devices are weaker by
    /// `pn_drive_ratio`, which the 1.4x sizing compensates.
    ///
    /// # Panics
    ///
    /// Panics unless the width is positive.
    pub fn device(&self, polarity: Polarity, width_m: f64) -> MosDevice {
        assert!(width_m > 0.0, "width must be positive");
        let drive = match polarity {
            Polarity::N => self.ion_n_per_width,
            Polarity::P => self.ion_n_per_width / self.pn_drive_ratio,
        };
        MosDevice {
            polarity,
            width_m,
            ion: drive * width_m,
            cgate: self.cgate_per_width * width_m,
            cdrain: self.cj_per_width * width_m,
            curve: AlphaPowerLaw::new(self.vth, self.alpha, self.vd0, self.vdd),
        }
    }

    /// The drawn PMOS width paired with a given NMOS width under the
    /// paper's 1.4x convention.
    pub fn paired_pmos_width(&self, wn: f64) -> f64 {
        wn * self.pn_drive_ratio
    }
}

/// A sized bulk MOSFET instance.
#[derive(Clone, Debug)]
pub struct MosDevice {
    polarity: Polarity,
    width_m: f64,
    ion: f64,
    cgate: f64,
    cdrain: f64,
    curve: AlphaPowerLaw,
}

impl MosDevice {
    /// Drawn width in metres.
    pub fn width_m(&self) -> f64 {
        self.width_m
    }

    /// On-current at full bias, amperes.
    pub fn ion(&self) -> f64 {
        self.ion
    }
}

impl FetModel for MosDevice {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.ion * self.curve.id(vgs, vds)
    }

    fn cgate(&self) -> f64 {
        self.cgate
    }

    fn cdrain(&self) -> f64 {
        self.cdrain
    }

    fn polarity(&self) -> Polarity {
        self.polarity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmos_weaker_by_ratio() {
        let m = CmosModel::industrial_65nm();
        let n = m.device(Polarity::N, 1e-6);
        let p = m.device(Polarity::P, 1e-6);
        assert!((n.ion() / p.ion() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn sizing_compensates_drive() {
        let m = CmosModel::industrial_65nm();
        let wn = m.wmin_n;
        let n = m.device(Polarity::N, wn);
        let p = m.device(Polarity::P, m.paired_pmos_width(wn));
        assert!((n.ion() - p.ion()).abs() / n.ion() < 1e-12);
    }

    #[test]
    fn min_inverter_input_cap() {
        // 4λ NMOS + 1.4x PMOS at 1.3 fF/µm ≈ 0.406 fF.
        let m = CmosModel::industrial_65nm();
        let cin = m.cgate_per_width * (m.wmin_n + m.paired_pmos_width(m.wmin_n));
        assert!((cin - 0.4056e-15).abs() < 1e-20, "{cin}");
    }

    #[test]
    fn iv_surface() {
        let m = CmosModel::industrial_65nm();
        let d = m.device(Polarity::N, 1e-6);
        assert_eq!(d.ids(0.1, 1.0), 0.0);
        assert!((d.ids(1.0, 1.0) - 600e-6).abs() < 1e-12);
    }
}
