//! Analytic FO4 inverter-chain estimator — the workhorse behind Figure 7
//! and Case study 1.
//!
//! A fanout-of-4 stage drives four copies of itself; its delay is estimated
//! with the symmetric effective-current model
//! `t = (C_self + 4·C_in) · Vdd / (2·I_on)` and its switching energy per
//! cycle as `E = C_total · Vdd²`. Both technologies go through the *same*
//! estimator, so the reported gains are insensitive to the estimator's
//! absolute calibration — exactly the property the paper relies on when
//! comparing CNFET and CMOS at a common node.

use crate::cmos::CmosModel;
use crate::cnfet::CnfetModel;
use crate::{FetModel, Polarity};

/// FO4 metrics of one inverter design.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fo4Metrics {
    /// Stage delay, seconds.
    pub delay_s: f64,
    /// Switching energy per cycle, joules.
    pub energy_j: f64,
    /// Input capacitance of one inverter, farads.
    pub cin_f: f64,
    /// Effective drive current, amperes.
    pub idrive_a: f64,
}

/// One point of the Figure 7 sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GainPoint {
    /// CNTs per device.
    pub n_tubes: u32,
    /// Inter-CNT pitch, nm (device width / n).
    pub pitch_nm: f64,
    /// CMOS FO4 delay / CNFET FO4 delay.
    pub delay_gain: f64,
    /// CMOS energy per cycle / CNFET energy per cycle.
    pub energy_gain: f64,
}

/// FO4 metrics of the minimum CMOS inverter (`Wn = 4λ`, `Wp = 1.4·Wn`).
pub fn cmos_fo4(model: &CmosModel) -> Fo4Metrics {
    let wn = model.wmin_n;
    let wp = model.paired_pmos_width(wn);
    let n = model.device(Polarity::N, wn);
    let p = model.device(Polarity::P, wp);
    let cin = n.cgate() + p.cgate();
    let cself = n.cdrain() + p.cdrain();
    // Pull-up and pull-down drives are equal by construction of the 1.4x
    // sizing, so either polarity's on-current serves as the effective drive.
    let idrive = n.ion();
    metrics(cself, cin, idrive, model.vdd)
}

/// FO4 metrics of a CNFET inverter with `n_tubes` per device, both devices
/// `width_m` wide (`n = p` per the paper).
pub fn cnfet_fo4(model: &CnfetModel, n_tubes: u32, width_m: f64) -> Fo4Metrics {
    let d = model.device(Polarity::N, n_tubes, width_m);
    let cin = 2.0 * d.cgate();
    let cself = 2.0 * d.cdrain();
    let idrive = d.ion();
    metrics(cself, cin, idrive, model.vdd)
}

fn metrics(cself: f64, cin: f64, idrive: f64, vdd: f64) -> Fo4Metrics {
    let cload = cself + 4.0 * cin;
    Fo4Metrics {
        delay_s: cload * vdd / (2.0 * idrive),
        energy_j: cload * vdd * vdd,
        cin_f: cin,
        idrive_a: idrive,
    }
}

/// The Figure 7 sweep: delay and energy gains of a 4λ-wide CNFET inverter
/// over the minimum CMOS inverter, as the number of tubes per device grows.
pub fn gain_curve(cnfet: &CnfetModel, cmos: &CmosModel, max_tubes: u32) -> Vec<GainPoint> {
    let width = cmos.wmin_n; // both compared at a 4λ device width
    let base = cmos_fo4(cmos);
    (1..=max_tubes)
        .map(|n| {
            let m = cnfet_fo4(cnfet, n, width);
            GainPoint {
                n_tubes: n,
                pitch_nm: cnfet.pitch_nm(n, width),
                delay_gain: base.delay_s / m.delay_s,
                energy_gain: base.energy_j / m.energy_j,
            }
        })
        .collect()
}

/// FO4 delay at a *continuous* pitch (fractional tube count), used to
/// verify the paper's "1% variation across 4.5–5.5 nm" claim.
pub fn cnfet_fo4_delay_at_pitch(cnfet: &CnfetModel, pitch_nm: f64, width_m: f64) -> f64 {
    let n = width_m * 1e9 / pitch_nm;
    let sc = cnfet.cap_screening(pitch_nm);
    let si = cnfet.drive_screening(pitch_nm);
    let cin = 2.0 * n * cnfet.cgate_per_tube * sc;
    let cself = 2.0 * cnfet.cpar_per_width * width_m;
    let idrive = n * cnfet.ion_per_tube * si;
    (cself + 4.0 * cin) * cnfet.vdd / (2.0 * idrive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (CnfetModel, CmosModel) {
        (CnfetModel::poly_65nm(), CmosModel::industrial_65nm())
    }

    #[test]
    fn cmos_fo4_near_12ps() {
        let (_, cmos) = models();
        let m = cmos_fo4(&cmos);
        assert!((m.delay_s - 12.0e-12).abs() < 0.2e-12, "{}", m.delay_s);
        assert!((m.energy_j - 1.872e-15).abs() < 0.05e-15, "{}", m.energy_j);
    }

    #[test]
    fn single_tube_anchors() {
        // Paper: 1 CNT/device → ~2.75x faster, ~6.3x lower energy/cycle.
        let (cnfet, cmos) = models();
        let curve = gain_curve(&cnfet, &cmos, 1);
        assert!(
            (curve[0].delay_gain - 2.75).abs() < 0.05,
            "{}",
            curve[0].delay_gain
        );
        assert!(
            (curve[0].energy_gain - 6.3).abs() < 0.15,
            "{}",
            curve[0].energy_gain
        );
    }

    #[test]
    fn peak_at_5nm_pitch_with_paper_gains() {
        // Paper: optimal pitch 5 nm → 4.2x delay, 2x energy.
        let (cnfet, cmos) = models();
        let curve = gain_curve(&cnfet, &cmos, 32);
        let peak = curve
            .iter()
            .max_by(|a, b| a.delay_gain.total_cmp(&b.delay_gain))
            .unwrap();
        assert_eq!(peak.n_tubes, 26, "peak at {} tubes", peak.n_tubes);
        assert!((peak.pitch_nm - 5.0).abs() < 1e-9);
        assert!((peak.delay_gain - 4.2).abs() < 0.05, "{}", peak.delay_gain);
        assert!((peak.energy_gain - 2.0).abs() < 0.1, "{}", peak.energy_gain);
    }

    #[test]
    fn gain_curve_rises_then_falls() {
        let (cnfet, cmos) = models();
        let curve = gain_curve(&cnfet, &cmos, 32);
        // Monotone non-decreasing up to the peak...
        for w in curve[..26].windows(2) {
            assert!(
                w[1].delay_gain >= w[0].delay_gain - 1e-9,
                "dip before peak at {} tubes",
                w[1].n_tubes
            );
        }
        // ...and strictly lower past it.
        assert!(curve[31].delay_gain < curve[25].delay_gain - 0.2);
    }

    #[test]
    fn energy_gain_monotonically_decreasing() {
        let (cnfet, cmos) = models();
        let curve = gain_curve(&cnfet, &cmos, 32);
        for w in curve.windows(2) {
            assert!(
                w[1].energy_gain <= w[0].energy_gain + 1e-9,
                "energy gain rose at {} tubes",
                w[1].n_tubes
            );
        }
    }

    #[test]
    fn one_percent_window_around_optimum() {
        // Paper: pitch in [4.5, 5.5] nm keeps FO4 delay within 1%.
        let (cnfet, _) = models();
        let w = 130e-9;
        let dmin = cnfet_fo4_delay_at_pitch(&cnfet, 5.0, w);
        for i in 0..=20 {
            let p = 4.5 + i as f64 * 0.05;
            let d = cnfet_fo4_delay_at_pitch(&cnfet, p, w);
            assert!(
                (d - dmin) / dmin <= 0.011,
                "delay at pitch {p} is {:.2}% above minimum",
                (d - dmin) / dmin * 100.0
            );
        }
        // And clearly worse outside the window.
        let d4 = cnfet_fo4_delay_at_pitch(&cnfet, 4.0, w);
        assert!((d4 - dmin) / dmin > 0.02, "no penalty below the window");
    }

    #[test]
    fn edp_gain_at_optimum_matches_conclusions() {
        // delay 4.2x × energy 2.0x ≈ 8.4x EDP; with the 1.4x area gain the
        // paper's "~12x EDAP" follows.
        let (cnfet, cmos) = models();
        let curve = gain_curve(&cnfet, &cmos, 32);
        let peak = &curve[25];
        let edp = peak.delay_gain * peak.energy_gain;
        assert!(edp > 8.0 && edp < 9.0, "EDP gain {edp}");
        let edap = edp * 1.4;
        assert!((edap - 12.0).abs() < 1.0, "EDAP gain {edap}");
    }
}
