//! Gate-level netlists over the design-kit library.

use cnfet_core::StdCellKind;
use std::collections::{BTreeMap, BTreeSet};

/// Port direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortDir {
    /// Primary input.
    Input,
    /// Primary output.
    Output,
}

/// One placed-library-cell instance.
#[derive(Clone, Debug)]
pub struct GateInst {
    /// Instance name.
    pub name: String,
    /// Cell function.
    pub kind: StdCellKind,
    /// Drive strength.
    pub strength: u8,
    /// Input pin → net, in pin order (`A`, `B`, …).
    pub inputs: Vec<String>,
    /// Output net.
    pub output: String,
}

/// A combinational gate-level netlist.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    /// Primary ports.
    pub ports: Vec<(String, PortDir)>,
    /// Instances in topological order (drivers before loads by
    /// construction in this crate's builders).
    pub instances: Vec<GateInst>,
}

impl Netlist {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ports: Vec::new(),
            instances: Vec::new(),
        }
    }

    /// Declares a primary port.
    pub fn add_port(&mut self, name: impl Into<String>, dir: PortDir) -> &mut Netlist {
        self.ports.push((name.into(), dir));
        self
    }

    /// Adds an instance.
    pub fn add_gate(
        &mut self,
        kind: StdCellKind,
        strength: u8,
        inputs: &[&str],
        output: &str,
    ) -> &mut Netlist {
        let name = format!("u{}", self.instances.len());
        self.instances.push(GateInst {
            name,
            kind,
            strength,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.to_string(),
        });
        self
    }

    /// All nets (sorted, deduplicated).
    pub fn nets(&self) -> Vec<String> {
        let mut set: BTreeSet<String> = BTreeSet::new();
        for (p, _) in &self.ports {
            set.insert(p.clone());
        }
        for inst in &self.instances {
            set.insert(inst.output.clone());
            for i in &inst.inputs {
                set.insert(i.clone());
            }
        }
        set.into_iter().collect()
    }

    /// Net → number of gate input pins it drives.
    pub fn fanout(&self) -> BTreeMap<String, usize> {
        let mut map = BTreeMap::new();
        for inst in &self.instances {
            for i in &inst.inputs {
                *map.entry(i.clone()).or_insert(0) += 1;
            }
        }
        map
    }

    /// Evaluates the netlist on a primary-input assignment, returning net
    /// values. Instances must be in topological order.
    ///
    /// # Panics
    ///
    /// Panics if an instance reads an undriven net.
    pub fn evaluate(&self, inputs: &BTreeMap<String, bool>) -> BTreeMap<String, bool> {
        let mut values: BTreeMap<String, bool> = inputs.clone();
        for inst in &self.instances {
            let (f, vars) = inst.kind.function();
            let mut mask = 0u64;
            for (i, net) in inst.inputs.iter().enumerate() {
                let v = *values
                    .get(net)
                    .unwrap_or_else(|| panic!("undriven net `{net}` read by {}", inst.name));
                if v {
                    mask |= 1 << i;
                }
            }
            let _ = vars;
            values.insert(inst.output.clone(), f.eval(mask));
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Netlist {
        // XOR via 4 NAND2.
        let mut n = Netlist::new("xor2");
        n.add_port("a", PortDir::Input)
            .add_port("b", PortDir::Input)
            .add_port("y", PortDir::Output);
        n.add_gate(StdCellKind::Nand(2), 1, &["a", "b"], "n1");
        n.add_gate(StdCellKind::Nand(2), 1, &["a", "n1"], "n2");
        n.add_gate(StdCellKind::Nand(2), 1, &["b", "n1"], "n3");
        n.add_gate(StdCellKind::Nand(2), 1, &["n2", "n3"], "y");
        n
    }

    #[test]
    fn evaluate_xor() {
        let n = xor2();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut inputs = BTreeMap::new();
            inputs.insert("a".to_string(), a);
            inputs.insert("b".to_string(), b);
            let v = n.evaluate(&inputs);
            assert_eq!(v["y"], a ^ b, "a={a} b={b}");
        }
    }

    #[test]
    fn nets_and_fanout() {
        let n = xor2();
        assert!(n.nets().contains(&"n1".to_string()));
        let fanout = n.fanout();
        assert_eq!(fanout["n1"], 2);
        assert_eq!(fanout["a"], 2);
    }
}
