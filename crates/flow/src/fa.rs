//! The Figure 8(a) full adder: nine NAND2 gates plus output inverter
//! chains at the drive strengths the paper draws (2X NANDs; 4X/7X/9X
//! inverters).

use crate::netlist::{Netlist, PortDir};
use cnfet_core::StdCellKind;

/// Builds the paper's full adder netlist.
///
/// The logic core is the classic nine-NAND2 full adder; `sum` and `carry`
/// are buffered by 4X→9X inverter pairs and the carry-path also feeds a
/// 4X→7X pair, matching the cell mix visible in Figure 8(b)/(c)
/// (2X NAND2s and inverters sized 4X, 7X, 4X, 9X, 4X, 9X).
pub fn full_adder() -> Netlist {
    let mut n = Netlist::new("full_adder");
    n.add_port("a", PortDir::Input)
        .add_port("b", PortDir::Input)
        .add_port("cin", PortDir::Input)
        .add_port("sum", PortDir::Output)
        .add_port("carry", PortDir::Output);

    let nand = StdCellKind::Nand(2);
    let inv = StdCellKind::Inv;

    // Nine-NAND2 full adder.
    n.add_gate(nand, 2, &["a", "b"], "s1");
    n.add_gate(nand, 2, &["a", "s1"], "s2");
    n.add_gate(nand, 2, &["b", "s1"], "s3");
    n.add_gate(nand, 2, &["s2", "s3"], "axb"); // a ⊕ b
    n.add_gate(nand, 2, &["axb", "cin"], "s5");
    n.add_gate(nand, 2, &["axb", "s5"], "s6");
    n.add_gate(nand, 2, &["cin", "s5"], "s7");
    n.add_gate(nand, 2, &["s6", "s7"], "sum_raw"); // a ⊕ b ⊕ cin
    n.add_gate(nand, 2, &["s5", "s1"], "carry_raw"); // majority

    // Output buffering at the figure's drive strengths.
    n.add_gate(inv, 4, &["sum_raw"], "sum_n");
    n.add_gate(inv, 9, &["sum_n"], "sum");
    n.add_gate(inv, 4, &["carry_raw"], "carry_n");
    n.add_gate(inv, 9, &["carry_n"], "carry");
    n.add_gate(inv, 4, &["carry_raw"], "carry_aux_n");
    n.add_gate(inv, 7, &["carry_aux_n"], "carry_aux");
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn truth_table() {
        let fa = full_adder();
        for m in 0..8u32 {
            let (a, b, cin) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            let mut inputs = BTreeMap::new();
            inputs.insert("a".into(), a);
            inputs.insert("b".into(), b);
            inputs.insert("cin".into(), cin);
            let v = fa.evaluate(&inputs);
            let total = u8::from(a) + u8::from(b) + u8::from(cin);
            assert_eq!(v["sum"], total & 1 == 1, "sum at {m:03b}");
            assert_eq!(v["carry"], total >= 2, "carry at {m:03b}");
        }
    }

    #[test]
    fn cell_mix_matches_figure8() {
        let fa = full_adder();
        let nands = fa
            .instances
            .iter()
            .filter(|i| i.kind == StdCellKind::Nand(2))
            .count();
        assert_eq!(nands, 9);
        let mut inv_strengths: Vec<u8> = fa
            .instances
            .iter()
            .filter(|i| i.kind == StdCellKind::Inv)
            .map(|i| i.strength)
            .collect();
        inv_strengths.sort_unstable();
        assert_eq!(inv_strengths, vec![4, 4, 4, 7, 9, 9]);
    }
}
