//! The logic-to-GDSII flow of the CNFET design kit.
//!
//! Covers the path the paper's Section IV describes on top of the design
//! kit: gate-level netlists ([`Netlist`]), a small technology mapper from
//! boolean expressions to NAND2/INV ([`synth`]), the Figure 8 full adder
//! ([`full_adder`]), standard-cell placement in the CMOS baseline and the
//! two CNFET schemes ([`place`]), transistor-level netlist simulation with
//! wire loads ([`sim`]), and final GDS assembly ([`assemble_gds_with`]).
//!
//! # Example: place the paper's full adder in both schemes
//!
//! ```
//! use cnfet_core::Scheme;
//! use cnfet_dk::{build_library, DesignKit};
//! use cnfet_flow::{full_adder, place_cnfet_with};
//!
//! let kit = DesignKit::cnfet65();
//! let fa = full_adder();
//! let s1 = place_cnfet_with(&fa, &build_library(&kit, Scheme::Scheme1).unwrap());
//! let s2 = place_cnfet_with(&fa, &build_library(&kit, Scheme::Scheme2).unwrap());
//! assert!(s2.area_l2 < s1.area_l2, "Scheme 2 is the denser arrangement");
//! ```
//!
//! Production callers should prefer the umbrella crate's `cnfet::Session`,
//! which caches the library build behind typed `FlowRequest`s.

pub mod assemble;
pub mod fa;
pub mod hier;
pub mod netlist;
pub mod place;
pub mod sim;
pub mod synth;
pub mod verilog;

pub use assemble::assemble_gds_with;
pub use fa::full_adder;
pub use hier::{assemble_macro_gds, place_macro, MacroAdder, MacroPlacement, SliceRef};
pub use netlist::{GateInst, Netlist, PortDir};
pub use place::{place_cmos_with, place_cnfet_with, Placement};
pub use sim::{simulate_netlist, simulate_netlist_with, NetlistMetrics, Tech};
pub use synth::synthesize;
pub use verilog::{parse_verilog, VerilogError};
