//! Hierarchical arithmetic macros: multi-bit adders composed from the
//! Figure 8 full adder by *reference instantiation*.
//!
//! Where [`crate::fa::full_adder`] and the flat flow treat one cell as
//! the unit of work, this module composes `width` full-adder slices into
//! 8/32/64-bit ripple-carry and carry-look-ahead adders without ever
//! flattening the sub-cell: every slice holds an `Arc` to the *same*
//! [`Netlist`], the placement places the slice as one block with the
//! full adder's own placed footprint, and GDS assembly emits one
//! `full_adder` cell definition referenced by `width` [`Instance`]s —
//! the reference-instantiation contract the session layer's sub-cell
//! memoization relies on (characterize the full adder once, reuse it per
//! slice).
//!
//! The carry organization comes from [`cnfet_logic::adder::AdderPlan`]:
//! ripple chains the slice carries, CLA materializes the plan's
//! Kogge–Stone prefix tree as NAND2/INV glue (`AND(x,y) = INV(NAND(x,y))`,
//! `OR(x,y) = NAND(INV(x), INV(y))`) that drives each slice's carry-in
//! directly.

use crate::netlist::Netlist;
use crate::place::{place_cnfet_with, PlacedInst, CELL_SPACING_LAMBDA, RAIL_LAMBDA};
use cnfet_core::StdCellKind;
use cnfet_dk::CellLibrary;
use cnfet_geom::{write_gds, Cell, Dbu, Instance, Layer, Library, Rect, Transform};
use cnfet_logic::adder::{AdderKind, AdderPlan};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Port-to-net bindings of one full-adder slice (an `Arc` reference to
/// the shared sub-cell netlist, never a flattened copy).
#[derive(Clone, Debug)]
pub struct SliceRef {
    /// Instance name (`fa0`, `fa1`, …).
    pub name: String,
    /// Net driving the slice's `a` port.
    pub a: String,
    /// Net driving the slice's `b` port.
    pub b: String,
    /// Net driving the slice's `cin` port.
    pub cin: String,
    /// Net the slice's `sum` port drives.
    pub sum: String,
    /// Net the slice's `carry` port drives (dangles in CLA mode, where
    /// the prefix tree computes every carry).
    pub carry: String,
}

/// A hierarchical multi-bit adder: `width` full-adder slices referencing
/// one shared sub-cell, plus the carry glue the [`AdderPlan`] calls for.
#[derive(Clone, Debug)]
pub struct MacroAdder {
    /// Macro name (`adder_cla8`, `adder_ripple64`, …).
    pub name: String,
    /// Carry organization.
    pub kind: AdderKind,
    /// Operand width in bits.
    pub width: u32,
    /// The shared full-adder sub-cell, instantiated by reference.
    pub fa: Arc<Netlist>,
    /// Per-bit slice bindings.
    pub slices: Vec<SliceRef>,
    /// Carry glue gates (empty for ripple).
    pub glue: Netlist,
    /// The carry plan the glue materializes.
    pub plan: AdderPlan,
}

/// Glue-gate builder state: allocates AND/OR macros from NAND2/INV at
/// the drive strengths the full adder's own logic core uses.
struct GlueBuilder {
    netlist: Netlist,
    tmp: usize,
}

impl GlueBuilder {
    const NAND: StdCellKind = StdCellKind::Nand(2);
    const INV: StdCellKind = StdCellKind::Inv;

    fn new(name: &str) -> GlueBuilder {
        GlueBuilder {
            netlist: Netlist::new(format!("{name}_glue")),
            tmp: 0,
        }
    }

    fn fresh(&mut self) -> String {
        let n = self.tmp;
        self.tmp += 1;
        format!("t{n}")
    }

    /// `out = x & y` as INV(NAND(x, y)).
    fn and2(&mut self, x: &str, y: &str, out: &str) {
        let mid = self.fresh();
        self.netlist.add_gate(Self::NAND, 2, &[x, y], &mid);
        self.netlist.add_gate(Self::INV, 4, &[&mid], out);
    }

    /// `out = x | y` as NAND(INV(x), INV(y)).
    fn or2(&mut self, x: &str, y: &str, out: &str) {
        let (nx, ny) = (self.fresh(), self.fresh());
        self.netlist.add_gate(Self::INV, 4, &[x], &nx);
        self.netlist.add_gate(Self::INV, 4, &[y], &ny);
        self.netlist.add_gate(Self::NAND, 2, &[&nx, &ny], out);
    }

    /// `out = g_hi | (t_hi & g_lo)` — the generate half of a prefix
    /// combine.
    fn combine_g(&mut self, g_hi: &str, t_hi: &str, g_lo: &str, out: &str) {
        let conj = self.fresh();
        self.and2(t_hi, g_lo, &conj);
        self.or2(g_hi, &conj, out);
    }
}

impl MacroAdder {
    /// Composes a `width`-bit adder of the given kind around the shared
    /// full-adder sub-cell. Primary nets are `a{i}`/`b{i}`/`cin` in and
    /// `s{i}`/`cout` out; internal carries are `c{i}` (carry *into* bit
    /// `i`).
    pub fn new(kind: AdderKind, width: u32) -> MacroAdder {
        let width = width.max(1);
        let plan = AdderPlan::new(kind, width);
        let name = format!("adder_{}{}", kind.name(), width);
        let fa = Arc::new(crate::fa::full_adder());

        let carry_in = |i: u32| {
            if i == 0 {
                "cin".to_string()
            } else {
                format!("c{i}")
            }
        };

        let mut glue = GlueBuilder::new(&name);
        if kind == AdderKind::Cla {
            // Per-bit generate/transmit off the primary inputs.
            let mut g: Vec<String> = Vec::with_capacity(width as usize);
            let mut t: Vec<String> = Vec::with_capacity(width as usize);
            for i in 0..width {
                let (gi, ti) = (format!("g0_{i}"), format!("t0_{i}"));
                glue.and2(&format!("a{i}"), &format!("b{i}"), &gi);
                glue.or2(&format!("a{i}"), &format!("b{i}"), &ti);
                g.push(gi);
                t.push(ti);
            }
            // Prefix combines in plan order; (g[i], t[i]) ends up
            // spanning [0 ..= i].
            for node in &plan.nodes {
                let (hi, lo) = (node.bit as usize, (node.bit - node.distance) as usize);
                let (gn, tn) = (
                    format!("g{}_{}", node.level, node.bit),
                    format!("t{}_{}", node.level, node.bit),
                );
                glue.combine_g(&g[hi].clone(), &t[hi].clone(), &g[lo].clone(), &gn);
                glue.and2(&t[hi].clone(), &t[lo].clone(), &tn);
                g[hi] = gn;
                t[hi] = tn;
            }
            // Carry into bit i (and the macro carry-out) from the spans.
            for i in 1..=width {
                let out = if i == width {
                    "cout".to_string()
                } else {
                    carry_in(i)
                };
                let span = (i - 1) as usize;
                let conj = glue.fresh();
                glue.and2(&t[span].clone(), "cin", &conj);
                glue.or2(&g[span].clone(), &conj, &out);
            }
        }

        let slices: Vec<SliceRef> = (0..width)
            .map(|i| SliceRef {
                name: format!("fa{i}"),
                a: format!("a{i}"),
                b: format!("b{i}"),
                cin: carry_in(i),
                sum: format!("s{i}"),
                // Ripple chains the slice carries; in CLA mode the tree
                // drives every carry-in and the slice outputs dangle.
                carry: match kind {
                    AdderKind::Ripple if i + 1 == width => "cout".to_string(),
                    AdderKind::Ripple => carry_in(i + 1),
                    AdderKind::Cla => format!("fc{i}"),
                },
            })
            .collect();

        MacroAdder {
            name,
            kind,
            width,
            fa,
            slices,
            glue: glue.netlist,
            plan,
        }
    }

    /// Library-cell instances across the hierarchy: `width` copies of the
    /// sub-cell's gates plus the glue.
    pub fn gate_count(&self) -> usize {
        self.slices.len() * self.fa.instances.len() + self.glue.instances.len()
    }

    /// Evaluates the composed structure bit-accurately — glue gates
    /// simulated gate-by-gate, each slice through the *shared* sub-cell's
    /// own evaluator — returning `(sum, carry_out)`.
    pub fn evaluate(&self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        let bit = |x: u64, i: u32| (x >> i) & 1 == 1;
        let mut nets: BTreeMap<String, bool> = BTreeMap::new();
        nets.insert("cin".into(), cin);
        for i in 0..self.width {
            nets.insert(format!("a{i}"), bit(a, i));
            nets.insert(format!("b{i}"), bit(b, i));
        }
        if self.kind == AdderKind::Cla {
            nets = self.glue.evaluate(&nets);
        }

        let mut sum = 0u64;
        for (i, slice) in self.slices.iter().enumerate() {
            let mut ports = BTreeMap::new();
            ports.insert("a".to_string(), nets[&slice.a]);
            ports.insert("b".to_string(), nets[&slice.b]);
            ports.insert("cin".to_string(), nets[&slice.cin]);
            let v = self.fa.evaluate(&ports);
            if v["sum"] {
                sum |= 1 << i;
            }
            nets.insert(slice.sum.clone(), v["sum"]);
            nets.insert(slice.carry.clone(), v["carry"]);
        }
        (sum, nets["cout"])
    }

    /// Renders the hierarchy as a structural SPICE deck: one
    /// `.subckt full_adder` definition, the top subckt instantiating it
    /// `width` times by reference (`Xfa{i} … full_adder`) around the
    /// glue gates. Deterministic, byte for byte.
    pub fn to_spice(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "* {}: hierarchical {} adder, {} bits, {} slice instances",
            self.name,
            self.kind.name(),
            self.width,
            self.slices.len()
        );
        let _ = writeln!(s, ".subckt full_adder a b cin sum carry");
        for inst in &self.fa.instances {
            let _ = writeln!(
                s,
                "X{} {} {} {}",
                inst.name,
                inst.inputs.join(" "),
                inst.output,
                CellLibrary::cell_name(inst.kind, inst.strength)
            );
        }
        let _ = writeln!(s, ".ends full_adder");

        let mut ports: Vec<String> = Vec::new();
        for i in 0..self.width {
            ports.push(format!("a{i}"));
        }
        for i in 0..self.width {
            ports.push(format!("b{i}"));
        }
        ports.push("cin".into());
        for i in 0..self.width {
            ports.push(format!("s{i}"));
        }
        ports.push("cout".into());
        let _ = writeln!(s, ".subckt {} {}", self.name, ports.join(" "));
        for inst in &self.glue.instances {
            let _ = writeln!(
                s,
                "X{} {} {} {}",
                inst.name,
                inst.inputs.join(" "),
                inst.output,
                CellLibrary::cell_name(inst.kind, inst.strength)
            );
        }
        for slice in &self.slices {
            let _ = writeln!(
                s,
                "X{} {} {} {} {} {} full_adder",
                slice.name, slice.a, slice.b, slice.cin, slice.sum, slice.carry
            );
        }
        let _ = writeln!(s, ".ends {}", self.name);
        s.push_str(".end\n");
        s
    }
}

/// A hierarchical placement: the sub-cell's internal placement (shared by
/// every slice), the slice blocks, and the glue cells.
#[derive(Clone, Debug)]
pub struct MacroPlacement {
    /// The full adder's own internal placement — one copy, referenced by
    /// every slice block.
    pub fa: crate::place::Placement,
    /// Slice blocks (cell `full_adder`), one per bit.
    pub slices: Vec<PlacedInst>,
    /// Glue-gate placements (library cells).
    pub glue: Vec<PlacedInst>,
    /// Block width, λ.
    pub width_l: f64,
    /// Block height, λ.
    pub height_l: f64,
    /// Block area, λ².
    pub area_l2: f64,
}

/// Places a macro adder: full-adder slice blocks on a near-square grid
/// (each block carrying the sub-cell's placed footprint), glue cells
/// packed in rows above. Deterministic for a given macro and library.
///
/// # Panics
///
/// Panics if the sub-cell or glue references cells missing from the
/// library.
pub fn place_macro(adder: &MacroAdder, lib: &CellLibrary) -> MacroPlacement {
    let fa = place_cnfet_with(&adder.fa, lib);
    let (fa_w, fa_h) = (fa.width_l, fa.height_l);
    let pitch_x = fa_w + CELL_SPACING_LAMBDA;
    let pitch_y = fa_h + 2.0 * RAIL_LAMBDA;

    let n = adder.slices.len();
    let cols = (n as f64).sqrt().ceil() as usize;
    let mut slices = Vec::with_capacity(n);
    for (i, slice) in adder.slices.iter().enumerate() {
        let (col, row) = (i % cols, i / cols);
        slices.push(PlacedInst {
            name: slice.name.clone(),
            cell: "full_adder".to_string(),
            x: col as f64 * pitch_x,
            y: row as f64 * pitch_y,
            w: fa_w,
            h: fa_h,
        });
    }
    let rows = n.div_ceil(cols);
    let grid_w = cols as f64 * pitch_x;
    let grid_h = rows as f64 * pitch_y;

    // Glue rows above the slice grid, wrapped at the grid width.
    let mut glue = Vec::with_capacity(adder.glue.instances.len());
    let (mut x, mut y) = (0.0f64, grid_h);
    let mut row_h = 0.0f64;
    let mut max_x = grid_w;
    for inst in &adder.glue.instances {
        let cell = CellLibrary::cell_name(inst.kind, inst.strength);
        let c = lib
            .cell(&cell)
            .unwrap_or_else(|| panic!("glue cell {cell} not in library"));
        let (w, h) = (c.layout.width_lambda, c.layout.height_lambda);
        if x + w > grid_w && x > 0.0 {
            y += row_h + RAIL_LAMBDA;
            x = 0.0;
            row_h = 0.0;
        }
        glue.push(PlacedInst {
            name: inst.name.clone(),
            cell,
            x,
            y,
            w,
            h,
        });
        x += w + CELL_SPACING_LAMBDA;
        row_h = row_h.max(h);
        max_x = max_x.max(x);
    }
    let height = if adder.glue.instances.is_empty() {
        grid_h
    } else {
        y + row_h + RAIL_LAMBDA
    };

    MacroPlacement {
        fa,
        slices,
        glue,
        width_l: max_x,
        height_l: height,
        area_l2: max_x * height,
    }
}

/// Assembles a placed macro into a two-deep GDS stream: library cell
/// definitions, one `full_adder` cell composed of placed library cells,
/// and the top cell referencing `full_adder` once per slice (plus glue
/// instances) — never a flattened copy of the sub-cell.
///
/// # Panics
///
/// Panics if a referenced cell is missing from the library.
pub fn assemble_macro_gds(
    adder: &MacroAdder,
    placement: &MacroPlacement,
    lib: &CellLibrary,
) -> Vec<u8> {
    let mut gds = Library::new(format!("{}_{}", adder.name, lib.scheme));

    let mut used: Vec<&str> = placement
        .fa
        .instances
        .iter()
        .chain(&placement.glue)
        .map(|p| p.cell.as_str())
        .collect();
    used.sort_unstable();
    used.dedup();
    for name in used {
        let cell = lib.cell(name).expect("placed cell exists in library");
        let mut c = cell.layout.cell.clone();
        c.set_name(name);
        gds.add_cell(c);
    }

    // The shared sub-cell: defined once, referenced per slice.
    let mut fa_cell = Cell::new("full_adder");
    for p in &placement.fa.instances {
        fa_cell.add_instance(Instance {
            cell: p.cell.clone(),
            transform: Transform::translate(Dbu::from_lambda(p.x), Dbu::from_lambda(p.y)),
            name: p.name.clone(),
        });
    }
    fa_cell.add_rect(
        Layer::Boundary,
        Rect::new(
            Dbu(0),
            Dbu(0),
            Dbu::from_lambda(placement.fa.width_l),
            Dbu::from_lambda(placement.fa.height_l),
        ),
    );
    gds.add_cell(fa_cell);

    let mut top = Cell::new(adder.name.as_str());
    for p in placement.slices.iter().chain(&placement.glue) {
        top.add_instance(Instance {
            cell: p.cell.clone(),
            transform: Transform::translate(Dbu::from_lambda(p.x), Dbu::from_lambda(p.y)),
            name: p.name.clone(),
        });
    }
    top.add_rect(
        Layer::Boundary,
        Rect::new(
            Dbu(0),
            Dbu(0),
            Dbu::from_lambda(placement.width_l),
            Dbu::from_lambda(placement.height_l),
        ),
    );
    gds.add_cell(top);
    write_gds(&gds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_core::Scheme;
    use cnfet_dk::DesignKit;
    use cnfet_geom::read_gds;

    fn lib() -> CellLibrary {
        cnfet_dk::build_library(&DesignKit::cnfet65(), Scheme::Scheme2).unwrap()
    }

    #[test]
    fn macros_add_correctly() {
        for kind in [AdderKind::Ripple, AdderKind::Cla] {
            let adder = MacroAdder::new(kind, 8);
            for (a, b, cin) in [
                (0u64, 0u64, false),
                (255, 1, false),
                (0x5a, 0xa5, true),
                (200, 100, false),
                (255, 255, true),
            ] {
                let (sum, cout) = adder.evaluate(a, b, cin);
                let wide = a + b + u64::from(cin);
                assert_eq!(sum, wide & 0xff, "{kind:?} {a}+{b}+{cin}");
                assert_eq!(cout, wide > 0xff, "{kind:?} cout");
            }
        }
    }

    #[test]
    fn slices_share_one_subcell() {
        let adder = MacroAdder::new(AdderKind::Cla, 64);
        assert_eq!(adder.slices.len(), 64);
        assert_eq!(Arc::strong_count(&adder.fa), 1, "one netlist, 64 refs");
        assert_eq!(
            adder.gate_count(),
            64 * adder.fa.instances.len() + adder.glue.instances.len()
        );
    }

    #[test]
    fn ripple_needs_no_glue() {
        let adder = MacroAdder::new(AdderKind::Ripple, 32);
        assert!(adder.glue.instances.is_empty());
        assert_eq!(adder.slices[0].cin, "cin");
        assert_eq!(adder.slices[1].cin, "c1");
        assert_eq!(adder.slices[31].carry, "cout");
    }

    #[test]
    fn spice_deck_is_hierarchical() {
        let adder = MacroAdder::new(AdderKind::Cla, 8);
        let deck = adder.to_spice();
        assert_eq!(deck.matches(".subckt full_adder").count(), 1);
        // Eight slice references plus the `.ends full_adder` line.
        assert_eq!(deck.matches("full_adder\n").count(), 8 + 1);
        assert!(deck.contains("Xfa7 a7 b7 c7 s7 fc7 full_adder"));
        assert!(deck.ends_with(".end\n"));
        assert_eq!(adder.to_spice(), deck, "rendering is deterministic");
    }

    #[test]
    fn gds_keeps_the_hierarchy() {
        let adder = MacroAdder::new(AdderKind::Cla, 8);
        let lib = lib();
        let placement = place_macro(&adder, &lib);
        let bytes = assemble_macro_gds(&adder, &placement, &lib);
        let gds = read_gds(&bytes).unwrap();
        let top = gds.cell("adder_cla8").expect("top cell present");
        let refs = top
            .instances()
            .iter()
            .filter(|i| i.cell == "full_adder")
            .count();
        assert_eq!(refs, 8, "slices are references, not flattened copies");
        let flat = gds.flatten("adder_cla8").unwrap();
        assert!(
            flat.shapes_on(Layer::Gate).count() >= 8 * (9 * 4 + 6),
            "two-deep flatten reaches every slice's gates"
        );
    }

    #[test]
    fn macro_placement_has_no_slice_overlaps() {
        let adder = MacroAdder::new(AdderKind::Cla, 32);
        let placement = place_macro(&adder, &lib());
        let blocks: Vec<&PlacedInst> = placement.slices.iter().chain(&placement.glue).collect();
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                let (a, b) = (blocks[i], blocks[j]);
                let overlap_x = a.x < b.x + b.w && b.x < a.x + a.w;
                let overlap_y = a.y < b.y + b.h && b.y < a.y + a.h;
                assert!(!(overlap_x && overlap_y), "{} overlaps {}", a.name, b.name);
            }
        }
        assert!(placement.area_l2 > 0.0);
    }
}
