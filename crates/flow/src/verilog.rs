//! Structural Verilog front-end: the RTL entry point of the
//! logic-to-GDSII flow.
//!
//! Supports the combinational structural subset a mapped netlist needs:
//! `module`/`endmodule`, `input`/`output`/`wire` declarations, library
//! cell instantiations with named port connections, and `assign` of
//! boolean expressions (which are synthesized through [`crate::synth`]).

use crate::netlist::{Netlist, PortDir};
use crate::synth::synthesize;
use cnfet_core::StdCellKind;
use cnfet_logic::Expr;
use std::fmt;

/// Verilog parse error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerilogError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verilog error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VerilogError {}

/// Parses a structural Verilog module into a [`Netlist`].
///
/// # Errors
///
/// Returns [`VerilogError`] on unsupported constructs or malformed input.
///
/// # Example
///
/// ```
/// use cnfet_flow::verilog::parse_verilog;
/// let src = r#"
///   module majority (input a, input b, input c, output y);
///     wire ab, bc, ac;
///     NAND2_X1 u0 (.A(a), .B(b), .OUT(ab));
///     NAND2_X1 u1 (.A(b), .B(c), .OUT(bc));
///     NAND2_X1 u2 (.A(a), .B(c), .OUT(ac));
///     assign y = !(ab * bc * ac);
///   endmodule
/// "#;
/// let netlist = parse_verilog(src)?;
/// assert_eq!(netlist.name, "majority");
/// # Ok::<(), cnfet_flow::verilog::VerilogError>(())
/// ```
pub fn parse_verilog(src: &str) -> Result<Netlist, VerilogError> {
    let mut netlist = Netlist::new("");
    let mut in_module = false;
    let mut assigns: Vec<(usize, String, String)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |message: &str| VerilogError {
            line: lineno + 1,
            message: message.to_string(),
        };

        if let Some(rest) = line.strip_prefix("module") {
            in_module = true;
            let (name, ports) = parse_module_header(rest).map_err(|m| err(&m))?;
            netlist.name = name;
            for (port, dir) in ports {
                netlist.add_port(&port, dir);
            }
        } else if line.starts_with("endmodule") {
            in_module = false;
        } else if !in_module {
            return Err(err("statement outside module"));
        } else if let Some(rest) = line.strip_prefix("input") {
            for p in parse_ident_list(rest) {
                netlist.add_port(&p, PortDir::Input);
            }
        } else if let Some(rest) = line.strip_prefix("output") {
            for p in parse_ident_list(rest) {
                netlist.add_port(&p, PortDir::Output);
            }
        } else if line.starts_with("wire") {
            // Declarations are implicit in our netlist model.
        } else if let Some(rest) = line.strip_prefix("assign") {
            let body = rest.trim().trim_end_matches(';');
            let (lhs, rhs) = body
                .split_once('=')
                .ok_or_else(|| err("assign without `=`"))?;
            assigns.push((lineno + 1, lhs.trim().to_string(), rhs.trim().to_string()));
        } else {
            parse_instance(&line, &mut netlist).map_err(|m| err(&m))?;
        }
    }

    // Synthesize assigns after all structure is known.
    for (lineno, lhs, rhs) in assigns {
        let parsed = Expr::parse(&rhs).map_err(|e| VerilogError {
            line: lineno,
            message: format!("bad expression `{rhs}`: {e}"),
        })?;
        let sub = synthesize("assign", &parsed.expr, &parsed.vars, &lhs);
        // Merge sub-netlist instances, renaming to stay unique.
        for (k, mut inst) in sub.instances.into_iter().enumerate() {
            inst.name = format!("a{lineno}_{k}");
            // Internal nets of the sub-netlist get a unique prefix; ports
            // (primary inputs of the expression and the lhs) keep their
            // names so they connect to the surrounding structure.
            let is_local =
                |n: &str| n.starts_with('t') && n[1..].chars().all(|c| c.is_ascii_digit());
            for net in inst.inputs.iter_mut() {
                if is_local(net) {
                    *net = format!("a{lineno}_{net}");
                }
            }
            if is_local(&inst.output) {
                inst.output = format!("a{lineno}_{}", inst.output);
            }
            netlist.instances.push(inst);
        }
    }
    if netlist.name.is_empty() {
        return Err(VerilogError {
            line: 1,
            message: "no module found".to_string(),
        });
    }
    Ok(netlist)
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_module_header(rest: &str) -> Result<(String, Vec<(String, PortDir)>), String> {
    let rest = rest.trim().trim_end_matches(';');
    let (name, ports) = match rest.split_once('(') {
        Some((n, p)) => (n.trim(), p.trim_end_matches(')')),
        None => (rest, ""),
    };
    if name.is_empty() {
        return Err("module needs a name".to_string());
    }
    let mut out = Vec::new();
    for item in ports.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if let Some(p) = item.strip_prefix("input") {
            out.push((p.trim().to_string(), PortDir::Input));
        } else if let Some(p) = item.strip_prefix("output") {
            out.push((p.trim().to_string(), PortDir::Output));
        }
        // Bare names: declared by body `input`/`output` statements.
    }
    Ok((name.to_string(), out))
}

fn parse_ident_list(rest: &str) -> Vec<String> {
    rest.trim()
        .trim_end_matches(';')
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Parses `CELL_Xk name (.A(net), .B(net), .OUT(net));`.
fn parse_instance(line: &str, netlist: &mut Netlist) -> Result<(), String> {
    let line = line.trim_end_matches(';');
    let open = line.find('(').ok_or("expected `(` in instantiation")?;
    let head: Vec<&str> = line[..open].split_whitespace().collect();
    if head.len() != 2 {
        return Err(format!("expected `CELL name (...)`, got `{line}`"));
    }
    let (cell, inst_name) = (head[0], head[1]);
    let (kind, strength) = parse_cell_name(cell)?;

    let body = &line[open + 1..line.rfind(')').ok_or("expected `)`")?];
    let mut pins: Vec<(String, String)> = Vec::new();
    for conn in split_top_level(body) {
        let conn = conn.trim();
        if conn.is_empty() {
            continue;
        }
        let conn = conn
            .strip_prefix('.')
            .ok_or("only named port connections are supported")?;
        let (pin, net) = conn.split_once('(').ok_or("expected `.PIN(net)`")?;
        pins.push((
            pin.trim().to_string(),
            net.trim_end_matches(')').trim().to_string(),
        ));
    }
    let output = pins
        .iter()
        .find(|(p, _)| p == "OUT" || p == "Y" || p == "Z")
        .ok_or("instance needs an OUT connection")?
        .1
        .clone();
    let mut inputs: Vec<(String, String)> = pins
        .into_iter()
        .filter(|(p, _)| p != "OUT" && p != "Y" && p != "Z")
        .collect();
    inputs.sort_by(|a, b| a.0.cmp(&b.0));
    let input_nets: Vec<&str> = inputs.iter().map(|(_, n)| n.as_str()).collect();

    netlist.add_gate(kind, strength, &input_nets, &output);
    // Keep the user's instance name.
    let idx = netlist.instances.len() - 1;
    netlist.instances[idx].name = inst_name.to_string();
    Ok(())
}

fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn parse_cell_name(cell: &str) -> Result<(StdCellKind, u8), String> {
    let (base, strength) = match cell.rsplit_once("_X") {
        Some((b, s)) => (
            b,
            s.parse::<u8>()
                .map_err(|_| format!("bad strength in `{cell}`"))?,
        ),
        None => (cell, 1),
    };
    let kind = match base {
        "INV" => StdCellKind::Inv,
        "NAND2" => StdCellKind::Nand(2),
        "NAND3" => StdCellKind::Nand(3),
        "NAND4" => StdCellKind::Nand(4),
        "NOR2" => StdCellKind::Nor(2),
        "NOR3" => StdCellKind::Nor(3),
        "NOR4" => StdCellKind::Nor(4),
        "AOI21" => StdCellKind::Aoi21,
        "AOI22" => StdCellKind::Aoi22,
        "AOI31" => StdCellKind::Aoi31,
        "OAI21" => StdCellKind::Oai21,
        "OAI22" => StdCellKind::Oai22,
        other => return Err(format!("unknown cell `{other}`")),
    };
    Ok((kind, strength))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    const XOR_SRC: &str = r#"
        // 4-NAND xor
        module xor2 (input a, input b, output y);
          wire n1, n2, n3;
          NAND2_X1 u0 (.A(a), .B(b), .OUT(n1));
          NAND2_X1 u1 (.A(a), .B(n1), .OUT(n2));
          NAND2_X1 u2 (.A(b), .B(n1), .OUT(n3));
          NAND2_X2 u3 (.A(n2), .B(n3), .OUT(y));
        endmodule
    "#;

    #[test]
    fn parses_and_evaluates_structural() {
        let n = parse_verilog(XOR_SRC).unwrap();
        assert_eq!(n.name, "xor2");
        assert_eq!(n.instances.len(), 4);
        assert_eq!(n.instances[3].strength, 2);
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut inputs = BTreeMap::new();
            inputs.insert("a".to_string(), a);
            inputs.insert("b".to_string(), b);
            assert_eq!(n.evaluate(&inputs)["y"], a ^ b);
        }
    }

    #[test]
    fn assigns_are_synthesized() {
        let src = r#"
            module f (input a, input b, input c, output y);
              assign y = a*b + !c;
            endmodule
        "#;
        let n = parse_verilog(src).unwrap();
        assert!(n.instances.len() >= 3);
        for m in 0..8u32 {
            let (a, b, c) = (m & 1 == 1, m & 2 == 2, m & 4 == 4);
            let mut inputs = BTreeMap::new();
            inputs.insert("a".to_string(), a);
            inputs.insert("b".to_string(), b);
            inputs.insert("c".to_string(), c);
            assert_eq!(n.evaluate(&inputs)["y"], (a && b) || !c, "{m:03b}");
        }
    }

    #[test]
    fn errors_are_located() {
        let err = parse_verilog("module m (input a);\n  BOGUS u (.A(a), .OUT(y));\nendmodule")
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("BOGUS"));
        assert!(parse_verilog("wire x;").is_err());
        assert!(parse_verilog("").is_err());
    }

    #[test]
    fn verilog_to_placement_end_to_end() {
        let n = parse_verilog(XOR_SRC).unwrap();
        let lib =
            cnfet_dk::build_library(&cnfet_dk::DesignKit::cnfet65(), cnfet_core::Scheme::Scheme2)
                .unwrap();
        let p = crate::place::place_cnfet_with(&n, &lib);
        assert_eq!(p.instances.len(), 4);
        assert!(p.area_l2 > 0.0);
    }
}
