//! Transistor-level simulation of placed gate netlists with wire loads —
//! the engine behind Case study 2's delay/energy comparison.

use crate::netlist::Netlist;
use crate::place::Placement;
use cnfet_core::{SizedNetwork, Sizing};
use cnfet_device::{FetModel, Polarity};
use cnfet_dk::DesignKit;
use cnfet_logic::{NodeKind, PullGraph};
use cnfet_spice::{
    energy_from_supply, propagation_delay, transient, Circuit, Edge, Node, SimError, Waveform,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Target technology for simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tech {
    /// CNFET design kit at the optimal pitch.
    Cnfet,
    /// The industrial-65nm-like CMOS baseline.
    Cmos,
}

/// Metal wire capacitance per λ of estimated length (0.2 fF/µm at λ =
/// 32.5 nm), identical for both technologies.
pub const WIRE_CAP_PER_LAMBDA: f64 = 0.2e-15 * 32.5e-3;

/// Simulation result of one netlist run.
#[derive(Clone, Debug)]
pub struct NetlistMetrics {
    /// Propagation delay from the toggled input to the watched output, s.
    pub delay_s: f64,
    /// Energy per full switching cycle drawn from the supply, J.
    pub energy_j: f64,
}

/// Simulates a placed netlist: input `toggle_in` gets a full-cycle pulse,
/// other primary inputs are tied to `tie_values`, and delay is measured to
/// `watch_out`.
///
/// # Errors
///
/// Returns [`SimError`] when the transient fails.
///
/// # Panics
///
/// Panics if `toggle_in`/`watch_out` are not primary ports of the netlist.
pub fn simulate_netlist(
    netlist: &Netlist,
    placement: &Placement,
    tech: Tech,
    toggle_in: &str,
    tie_values: &BTreeMap<String, bool>,
    watch_out: &str,
) -> Result<NetlistMetrics, SimError> {
    simulate_netlist_with(
        &DesignKit::cnfet65(),
        netlist,
        placement,
        tech,
        toggle_in,
        tie_values,
        watch_out,
    )
}

/// [`simulate_netlist`] against an explicit design kit (device models,
/// supply voltage, base widths) — the form `cnfet::Session` uses so a
/// custom kit flows through simulation too.
///
/// # Errors
///
/// Returns [`SimError`] when the transient fails.
///
/// # Panics
///
/// Panics if `toggle_in`/`watch_out` are not primary ports of the netlist.
pub fn simulate_netlist_with(
    kit: &DesignKit,
    netlist: &Netlist,
    placement: &Placement,
    tech: Tech,
    toggle_in: &str,
    tie_values: &BTreeMap<String, bool>,
    watch_out: &str,
) -> Result<NetlistMetrics, SimError> {
    let vdd_v = kit.cnfet.vdd;
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let supply = ckt.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(vdd_v));

    let period = 6e-9;
    let vin = ckt.node(toggle_in);
    ckt.add_vsource(
        vin,
        Circuit::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: vdd_v,
            delay: 0.5e-9,
            rise: 10e-12,
            fall: 10e-12,
            width: period / 2.0,
            period,
        },
    );
    for (net, value) in tie_values {
        let node = ckt.node(net);
        ckt.add_vsource(
            node,
            Circuit::GROUND,
            Waveform::Dc(if *value { vdd_v } else { 0.0 }),
        );
    }

    // Wire load per net from the placement's per-net HPWL.
    for net in netlist.nets() {
        let node = ckt.node(&net);
        let wl = placement.net_hpwl(netlist, &net);
        ckt.add_load(node, wl * WIRE_CAP_PER_LAMBDA);
    }

    // Expand every instance to transistors.
    for inst in &netlist.instances {
        let (pdn, pun, _) = inst.kind.networks();
        let out = ckt.node(&inst.output);
        let inputs: Vec<Node> = inst.inputs.iter().map(|n| ckt.node(n)).collect();
        add_network(
            kit,
            &mut ckt,
            tech,
            &pdn,
            Polarity::N,
            Circuit::GROUND,
            out,
            &inputs,
            inst,
        );
        add_network(
            kit,
            &mut ckt,
            tech,
            &pun,
            Polarity::P,
            vdd,
            out,
            &inputs,
            inst,
        );
    }

    let out_node = ckt.node(watch_out);
    let tran = transient(&ckt, 4e-12, period * 1.05)?;
    let d1 = propagation_delay(&tran, vin, out_node, vdd_v, Edge::Rising, 0.0);
    let d2 = propagation_delay(
        &tran,
        vin,
        out_node,
        vdd_v,
        Edge::Falling,
        0.5e-9 + period / 2.0 - 0.1e-9,
    );
    let delay = match (d1, d2) {
        (Some(a), Some(b)) => (a + b) / 2.0,
        (Some(a), None) | (None, Some(a)) => a,
        (None, None) => 0.0,
    };
    let energy = energy_from_supply(&tran, supply, vdd_v, 0.0, period * 1.05);
    Ok(NetlistMetrics {
        delay_s: delay,
        energy_j: energy,
    })
}

#[allow(clippy::too_many_arguments)]
fn add_network(
    kit: &DesignKit,
    ckt: &mut Circuit,
    tech: Tech,
    net: &cnfet_logic::SpNetwork,
    polarity: Polarity,
    source: Node,
    out: Node,
    inputs: &[Node],
    inst: &crate::netlist::GateInst,
) {
    let sized = SizedNetwork::from_network(
        net,
        Sizing::Matched {
            base_lambda: kit.base_width_lambda,
        },
    );
    let widths = sized.widths();
    let graph = PullGraph::from_network(net);
    let mut nodes = Vec::with_capacity(graph.node_count());
    for n in 0..graph.node_count() {
        let node = match graph.kind(cnfet_logic::NodeId(n as u32)) {
            NodeKind::Source => source,
            NodeKind::Drain => out,
            NodeKind::Internal => ckt.node(&format!("{}_{polarity:?}_i{n}", inst.name)),
        };
        nodes.push(node);
    }
    for (ei, e) in graph.edges().iter().enumerate() {
        let w_lambda =
            widths.get(ei).copied().unwrap_or(kit.base_width_lambda) * inst.strength as i64;
        let width_m = w_lambda as f64 * 32.5e-9;
        let model: Arc<dyn FetModel + Send + Sync> = match tech {
            Tech::Cnfet => {
                let tubes = (kit.tubes_per_4lambda as f64 * w_lambda as f64
                    / kit.base_width_lambda as f64)
                    .round()
                    .max(1.0) as u32;
                Arc::new(kit.cnfet.device(polarity, tubes, width_m))
            }
            Tech::Cmos => {
                let w = match polarity {
                    Polarity::N => width_m,
                    Polarity::P => kit.cmos.paired_pmos_width(width_m),
                };
                Arc::new(kit.cmos.device(polarity, w))
            }
        };
        ckt.add_fet(
            nodes[e.b.0 as usize],
            inputs[e.gate.index()],
            nodes[e.a.0 as usize],
            model,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fa::full_adder;
    use crate::place::{place_cmos_with, place_cnfet_with};
    use cnfet_core::Scheme;
    use cnfet_dk::CellLibrary;

    fn lib(scheme: Scheme) -> CellLibrary {
        cnfet_dk::build_library(&DesignKit::cnfet65(), scheme).unwrap()
    }

    fn fa_ties() -> BTreeMap<String, bool> {
        // Toggle `a` with b=1, cin=0: sum = !a (toggles), carry = a.
        let mut ties = BTreeMap::new();
        ties.insert("b".to_string(), true);
        ties.insert("cin".to_string(), false);
        ties
    }

    #[test]
    fn fa_simulates_in_both_technologies() {
        let fa = full_adder();
        let l1 = lib(Scheme::Scheme1);
        let p = place_cnfet_with(&fa, &l1);
        let cnfet = simulate_netlist(&fa, &p, Tech::Cnfet, "a", &fa_ties(), "carry").unwrap();
        let pc = place_cmos_with(&DesignKit::cnfet65(), &fa, &l1);
        let cmos = simulate_netlist(&fa, &pc, Tech::Cmos, "a", &fa_ties(), "carry").unwrap();
        assert!(cnfet.delay_s > 0.0 && cmos.delay_s > 0.0);
        assert!(cnfet.energy_j > 0.0 && cmos.energy_j > 0.0);
        // Case study 2's direction: CNFET faster and lower energy.
        assert!(cmos.delay_s > cnfet.delay_s);
        assert!(cmos.energy_j > cnfet.energy_j);
    }

    #[test]
    fn fa_gains_near_case_study_2() {
        // Paper: ~3.5x average delay and ~1.5x energy improvement. The
        // shape requirement: gains well above 1 and below the inverter's
        // 4.2x/2.0x (wires dilute CNFET's advantage).
        let fa = full_adder();
        let l1 = lib(Scheme::Scheme1);
        let p = place_cnfet_with(&fa, &l1);
        let pc = place_cmos_with(&DesignKit::cnfet65(), &fa, &l1);
        let cnfet = simulate_netlist(&fa, &p, Tech::Cnfet, "a", &fa_ties(), "sum").unwrap();
        let cmos = simulate_netlist(&fa, &pc, Tech::Cmos, "a", &fa_ties(), "sum").unwrap();
        let delay_gain = cmos.delay_s / cnfet.delay_s;
        let energy_gain = cmos.energy_j / cnfet.energy_j;
        assert!(
            (2.0..4.5).contains(&delay_gain),
            "delay gain {delay_gain} out of plausible range"
        );
        assert!(
            (1.1..2.2).contains(&energy_gain),
            "energy gain {energy_gain} out of plausible range"
        );
    }
}
