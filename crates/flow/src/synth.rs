//! Minimal technology mapping: boolean expressions to NAND2/INV netlists.
//!
//! Enough of a synthesis front-end to drive the standard-cell flow the
//! paper targets: any combinational expression decomposes into the
//! two-cell basis via De Morgan rewriting, with structural sharing of
//! repeated subterms.

use crate::netlist::{Netlist, PortDir};
use cnfet_core::StdCellKind;
use cnfet_logic::{Expr, VarTable};
use std::collections::HashMap;

/// Synthesizes `expr` into a NAND2/INV netlist computing `out`.
///
/// # Example
///
/// ```
/// use cnfet_flow::synthesize;
/// use cnfet_logic::Expr;
/// let parsed = Expr::parse("a*b + !c").unwrap();
/// let netlist = synthesize("demo", &parsed.expr, &parsed.vars, "y");
/// assert!(netlist.instances.len() >= 3);
/// ```
pub fn synthesize(name: &str, expr: &Expr, vars: &VarTable, out: &str) -> Netlist {
    let mut n = Netlist::new(name);
    for (_, var_name) in vars.iter() {
        n.add_port(var_name, PortDir::Input);
    }
    n.add_port(out, PortDir::Output);

    let mut mapper = Mapper {
        netlist: &mut n,
        vars,
        cache: HashMap::new(),
        fresh: 0,
    };
    let result_net = mapper.map(expr);
    // Tie the result to the output net with a buffer (two inverters) if it
    // isn't already named `out`; a single rename suffices when the result
    // is an internal net we created.
    if result_net != out {
        let inv_net = mapper.fresh_net();
        let netlist = mapper.netlist;
        netlist.add_gate(StdCellKind::Inv, 1, &[&result_net], &inv_net);
        netlist.add_gate(StdCellKind::Inv, 1, &[&inv_net], out);
    }
    n
}

struct Mapper<'a> {
    netlist: &'a mut Netlist,
    vars: &'a VarTable,
    cache: HashMap<String, String>,
    fresh: usize,
}

impl Mapper<'_> {
    fn fresh_net(&mut self) -> String {
        self.fresh += 1;
        format!("t{}", self.fresh)
    }

    /// Returns the net computing `expr`, emitting gates as needed.
    fn map(&mut self, expr: &Expr) -> String {
        let key = format!("{expr:?}");
        if let Some(net) = self.cache.get(&key) {
            return net.clone();
        }
        let net = match expr {
            Expr::Var(v) => self.vars.name(*v).to_string(),
            Expr::Const(_) => {
                // Constants are not driven by library cells; model as a net
                // the simulator ties off. Rare in practice.

                self.fresh_net()
            }
            Expr::Not(inner) => {
                // !(a*b) is a single NAND.
                if let Expr::And(terms) = inner.as_ref() {
                    if terms.len() == 2 {
                        let a = self.map(&terms[0]);
                        let b = self.map(&terms[1]);
                        let out = self.fresh_net();
                        self.netlist
                            .add_gate(StdCellKind::Nand(2), 1, &[&a, &b], &out);
                        self.cache.insert(key, out.clone());
                        return out;
                    }
                }
                let a = self.map(inner);
                let out = self.fresh_net();
                self.netlist.add_gate(StdCellKind::Inv, 1, &[&a], &out);
                out
            }
            Expr::And(terms) => {
                // Left-deep NAND+INV chain.
                let mut acc = self.map(&terms[0]);
                for t in &terms[1..] {
                    let rhs = self.map(t);
                    let nand_out = self.fresh_net();
                    self.netlist
                        .add_gate(StdCellKind::Nand(2), 1, &[&acc, &rhs], &nand_out);
                    let and_out = self.fresh_net();
                    self.netlist
                        .add_gate(StdCellKind::Inv, 1, &[&nand_out], &and_out);
                    acc = and_out;
                }
                acc
            }
            Expr::Or(terms) => {
                // Left-deep OR chain: a + b = !( !a · !b ).
                let mut acc = self.map(&terms[0]);
                for t in &terms[1..] {
                    let rhs = self.map(t);
                    let na = self.fresh_net();
                    self.netlist.add_gate(StdCellKind::Inv, 1, &[&acc], &na);
                    let nb = self.fresh_net();
                    self.netlist.add_gate(StdCellKind::Inv, 1, &[&rhs], &nb);
                    let or_out = self.fresh_net();
                    self.netlist
                        .add_gate(StdCellKind::Nand(2), 1, &[&na, &nb], &or_out);
                    acc = or_out;
                }
                acc
            }
        };
        self.cache.insert(key, net.clone());
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn verify(expr_text: &str) {
        let parsed = Expr::parse(expr_text).unwrap();
        let n = synthesize("t", &parsed.expr, &parsed.vars, "y");
        let var_names: Vec<String> = parsed.vars.iter().map(|(_, s)| s.to_string()).collect();
        for m in 0..1u64 << var_names.len() {
            let mut inputs = BTreeMap::new();
            for (i, name) in var_names.iter().enumerate() {
                inputs.insert(name.clone(), m >> i & 1 == 1);
            }
            let v = n.evaluate(&inputs);
            assert_eq!(v["y"], parsed.expr.eval(m), "{expr_text} at {m:b}");
        }
    }

    #[test]
    fn maps_basic_gates() {
        verify("a*b");
        verify("!(a*b)");
        verify("a+b");
        verify("!a");
    }

    #[test]
    fn maps_compound_expressions() {
        verify("a*b + !c");
        verify("(a+b)*(c+d)");
        verify("a*b*c");
        verify("a+b+c");
        verify("!(a*b + c*d)");
    }

    #[test]
    fn structural_sharing() {
        // The same subterm used twice maps to a single cone.
        let parsed = Expr::parse("(a*b) + (a*b)").unwrap();
        let n = synthesize("t", &parsed.expr, &parsed.vars, "y");
        let nands_on_a = n
            .instances
            .iter()
            .filter(|i| i.kind == StdCellKind::Nand(2) && i.inputs.contains(&"a".to_string()))
            .count();
        assert_eq!(nands_on_a, 1);
    }
}
