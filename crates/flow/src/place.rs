//! Standard-cell placement: CMOS rows, CNFET Scheme-1 rows, and the
//! Scheme-2 compact shelf arrangement of Figure 8(c).
//!
//! Heights include the physical overheads each technology pays:
//! both technologies add 3λ power rails top and bottom of a row; the CMOS
//! baseline additionally pays a 4λ n-well enclosure margin per cell row —
//! the "one p-well" constraint the paper says CNFET technology does not
//! have.

use crate::netlist::Netlist;
use cnfet_core::{cmos_cell, Scheme};
use cnfet_dk::{CellLibrary, DesignKit};
use std::collections::HashMap;

/// Power-rail height per row edge, λ.
pub const RAIL_LAMBDA: f64 = 3.0;
/// CMOS n-well enclosure margin per row, λ.
pub const WELL_MARGIN_LAMBDA: f64 = 4.0;
/// Spacing between abutted cells, λ.
pub const CELL_SPACING_LAMBDA: f64 = 2.0;

/// A placed instance.
#[derive(Clone, Debug)]
pub struct PlacedInst {
    /// Instance name.
    pub name: String,
    /// Library cell name.
    pub cell: String,
    /// Lower-left x, λ.
    pub x: f64,
    /// Lower-left y, λ.
    pub y: f64,
    /// Cell width, λ.
    pub w: f64,
    /// Cell height, λ.
    pub h: f64,
}

/// A placement result.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Placed instances.
    pub instances: Vec<PlacedInst>,
    /// Block width, λ.
    pub width_l: f64,
    /// Block height, λ.
    pub height_l: f64,
    /// Block area, λ².
    pub area_l2: f64,
    /// Σ cell areas / block area.
    pub utilization: f64,
}

impl Placement {
    /// Half-perimeter wirelength estimate over the netlist, λ.
    pub fn hpwl(&self, netlist: &Netlist) -> f64 {
        let centers: HashMap<&str, (f64, f64)> = self
            .instances
            .iter()
            .map(|p| (p.name.as_str(), (p.x + p.w / 2.0, p.y + p.h / 2.0)))
            .collect();
        let mut net_boxes: HashMap<String, (f64, f64, f64, f64)> = HashMap::new();
        let touch =
            |net: &str, x: f64, y: f64, boxes: &mut HashMap<String, (f64, f64, f64, f64)>| {
                let e = boxes.entry(net.to_string()).or_insert((x, y, x, y));
                let (x0, y0, x1, y1) = *e;
                *e = (x0.min(x), y0.min(y), x1.max(x), y1.max(y));
            };
        for inst in &netlist.instances {
            if let Some(&(cx, cy)) = centers.get(inst.name.as_str()) {
                touch(&inst.output, cx, cy, &mut net_boxes);
                for i in &inst.inputs {
                    touch(i, cx, cy, &mut net_boxes);
                }
            }
        }
        net_boxes
            .values()
            .map(|(x0, y0, x1, y1)| (x1 - x0) + (y1 - y0))
            .sum()
    }

    /// Wirelength of one net, λ (HPWL of its pins' cells).
    pub fn net_hpwl(&self, netlist: &Netlist, net: &str) -> f64 {
        let mut b: Option<(f64, f64, f64, f64)> = None;
        for inst in &netlist.instances {
            if inst.output == net || inst.inputs.iter().any(|i| i == net) {
                if let Some(p) = self.instances.iter().find(|p| p.name == inst.name) {
                    let (cx, cy) = (p.x + p.w / 2.0, p.y + p.h / 2.0);
                    b = Some(match b {
                        None => (cx, cy, cx, cy),
                        Some((x0, y0, x1, y1)) => (x0.min(cx), y0.min(cy), x1.max(cx), y1.max(cy)),
                    });
                }
            }
        }
        b.map_or(0.0, |(x0, y0, x1, y1)| (x1 - x0) + (y1 - y0))
    }
}

/// Footprint provider: cell name → (width λ, height λ).
type Footprints = HashMap<String, (f64, f64)>;

fn cnfet_footprints(netlist: &Netlist, lib: &CellLibrary) -> Footprints {
    let mut map = HashMap::new();
    for inst in &netlist.instances {
        let name = CellLibrary::cell_name(inst.kind, inst.strength);
        let cell = lib
            .cell(&name)
            .unwrap_or_else(|| panic!("cell {name} not in library"));
        map.insert(name, (cell.layout.width_lambda, cell.layout.height_lambda));
    }
    map
}

/// Places a netlist with an already-built CNFET library.
///
/// Scheme 1 uses standardized-height rows (like CMOS); Scheme 2 packs the
/// natural-height cells onto shelves, "built using the original sizes of
/// each cell thereby having an optimum area utilization factor". The
/// scheme is taken from the library.
///
/// # Panics
///
/// Panics if the netlist references a cell missing from the library.
pub fn place_cnfet_with(netlist: &Netlist, lib: &CellLibrary) -> Placement {
    let fp = cnfet_footprints(netlist, lib);
    let rail = 2.0 * RAIL_LAMBDA;
    match lib.scheme {
        Scheme::Scheme1 => place_rows(netlist, &fp, rail),
        Scheme::Scheme2 => place_shelves(netlist, &fp, RAIL_LAMBDA),
    }
}

/// Places the netlist with the CMOS baseline, deriving widths from an
/// already-built CNFET library (any scheme).
///
/// # Panics
///
/// Panics if the netlist references a cell missing from the library.
pub fn place_cmos_with(kit: &DesignKit, netlist: &Netlist, lib: &CellLibrary) -> Placement {
    let rules = kit.rules;
    // CMOS widths equal the CNFET strip widths (same λ rules); heights pay
    // the 10λ well separation, scaled PMOS, rails and well margin.
    let mut fp: Footprints = HashMap::new();
    for inst in &netlist.instances {
        let name = CellLibrary::cell_name(inst.kind, inst.strength);
        let cell = lib.cell(&name).expect("cell in library");
        let cmos = cmos_cell(inst.kind, kit.base_width_lambda, &rules);
        // Fingered width follows the CNFET fingered strip; height is the
        // 1X CMOS height (fingering widens, never heightens).
        fp.insert(name, (cell.layout.width_lambda, cmos.height_lambda));
    }
    place_rows(netlist, &fp, 2.0 * RAIL_LAMBDA + WELL_MARGIN_LAMBDA)
}

/// Standardized-height row placement: every row is as tall as the tallest
/// cell plus overhead; the row count minimizing block area is chosen.
fn place_rows(netlist: &Netlist, fp: &Footprints, height_overhead: f64) -> Placement {
    let items = gather(netlist, fp);
    let row_h = items.iter().map(|(_, _, _, h)| *h).fold(0.0f64, f64::max) + height_overhead;
    best_over_counts(&items, |items, rows| {
        let total_w: f64 = items
            .iter()
            .map(|(_, _, w, _)| w + CELL_SPACING_LAMBDA)
            .sum();
        let target_row_w = total_w / rows as f64;
        let mut placed = Vec::new();
        let mut x = 0.0;
        let mut row = 0usize;
        let mut max_w = 0.0f64;
        for (name, cell, w, h) in items.iter().cloned() {
            if x >= target_row_w && row + 1 < rows {
                max_w = max_w.max(x);
                row += 1;
                x = 0.0;
            }
            placed.push(PlacedInst {
                name,
                cell,
                x,
                y: row as f64 * row_h,
                w,
                h,
            });
            x += w + CELL_SPACING_LAMBDA;
        }
        max_w = max_w.max(x);
        finish(placed, max_w, (row + 1) as f64 * row_h)
    })
}

/// Shelf packing for Scheme 2: cells sorted by height so each shelf is as
/// tall as its tallest member only; the shelf count minimizing block area
/// is chosen. This realizes Figure 8(c)'s "optimum area utilization
/// factor" from non-standardized cell heights.
fn place_shelves(netlist: &Netlist, fp: &Footprints, shelf_overhead: f64) -> Placement {
    let mut items = gather(netlist, fp);
    items.sort_by(|a, b| b.3.total_cmp(&a.3).then(a.0.cmp(&b.0)));
    best_over_counts(&items, |items, shelves| {
        let total_w: f64 = items
            .iter()
            .map(|(_, _, w, _)| w + CELL_SPACING_LAMBDA)
            .sum();
        let target_w = total_w / shelves as f64;
        let mut placed = Vec::new();
        let mut x = 0.0;
        let mut y = 0.0;
        let mut shelf_h = 0.0f64;
        let mut max_w = 0.0f64;
        let mut shelf = 0usize;
        for (name, cell, w, h) in items.iter().cloned() {
            if x >= target_w && shelf + 1 < shelves {
                max_w = max_w.max(x);
                y += shelf_h + shelf_overhead;
                x = 0.0;
                shelf_h = 0.0;
                shelf += 1;
            }
            shelf_h = shelf_h.max(h);
            placed.push(PlacedInst {
                name,
                cell,
                x,
                y,
                w,
                h,
            });
            x += w + CELL_SPACING_LAMBDA;
        }
        max_w = max_w.max(x);
        finish(placed, max_w, y + shelf_h + shelf_overhead)
    })
}

/// Runs a placement strategy for 1..=8 row/shelf counts and keeps the
/// lowest-area result.
fn best_over_counts(
    items: &[(String, String, f64, f64)],
    strategy: impl Fn(&[(String, String, f64, f64)], usize) -> Placement,
) -> Placement {
    (1..=8)
        .map(|n| strategy(items, n))
        .min_by(|a, b| a.area_l2.total_cmp(&b.area_l2))
        .expect("at least one candidate")
}

fn gather(netlist: &Netlist, fp: &Footprints) -> Vec<(String, String, f64, f64)> {
    netlist
        .instances
        .iter()
        .map(|inst| {
            let cell = CellLibrary::cell_name(inst.kind, inst.strength);
            let &(w, h) = fp.get(&cell).expect("footprint known");
            (inst.name.clone(), cell, w, h)
        })
        .collect()
}

fn finish(instances: Vec<PlacedInst>, width: f64, height: f64) -> Placement {
    let cell_area: f64 = instances.iter().map(|p| p.w * p.h).sum();
    let area = width * height;
    Placement {
        instances,
        width_l: width,
        height_l: height,
        area_l2: area,
        utilization: cell_area / area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fa::full_adder;

    fn lib(scheme: Scheme) -> CellLibrary {
        cnfet_dk::build_library(&DesignKit::cnfet65(), scheme).unwrap()
    }

    #[test]
    fn fa_places_in_all_targets() {
        let fa = full_adder();
        let cmos = place_cmos_with(&DesignKit::cnfet65(), &fa, &lib(Scheme::Scheme1));
        let s1 = place_cnfet_with(&fa, &lib(Scheme::Scheme1));
        let s2 = place_cnfet_with(&fa, &lib(Scheme::Scheme2));
        assert_eq!(cmos.instances.len(), fa.instances.len());
        assert!(
            cmos.area_l2 > s1.area_l2,
            "CMOS {} vs S1 {}",
            cmos.area_l2,
            s1.area_l2
        );
        assert!(
            s1.area_l2 > s2.area_l2,
            "S1 {} vs S2 {}",
            s1.area_l2,
            s2.area_l2
        );
    }

    #[test]
    fn fa_area_gains_match_case_study_2() {
        // Paper: ~1.4x (Scheme 1) and ~1.6x (Scheme 2) over CMOS.
        let fa = full_adder();
        let cmos = place_cmos_with(&DesignKit::cnfet65(), &fa, &lib(Scheme::Scheme1));
        let s1 = place_cnfet_with(&fa, &lib(Scheme::Scheme1));
        let s2 = place_cnfet_with(&fa, &lib(Scheme::Scheme2));
        let g1 = cmos.area_l2 / s1.area_l2;
        let g2 = cmos.area_l2 / s2.area_l2;
        assert!((1.2..1.7).contains(&g1), "scheme 1 gain {g1}");
        assert!((1.4..2.4).contains(&g2), "scheme 2 gain {g2}");
        assert!(g2 > g1, "scheme 2 must beat scheme 1");
    }

    #[test]
    fn no_overlaps() {
        let fa = full_adder();
        for placement in [
            place_cmos_with(&DesignKit::cnfet65(), &fa, &lib(Scheme::Scheme1)),
            place_cnfet_with(&fa, &lib(Scheme::Scheme1)),
            place_cnfet_with(&fa, &lib(Scheme::Scheme2)),
        ] {
            let insts = &placement.instances;
            for i in 0..insts.len() {
                for j in i + 1..insts.len() {
                    let (a, b) = (&insts[i], &insts[j]);
                    let overlap_x = a.x < b.x + b.w && b.x < a.x + a.w;
                    let overlap_y = a.y < b.y + b.h && b.y < a.y + a.h;
                    assert!(!(overlap_x && overlap_y), "{} overlaps {}", a.name, b.name);
                }
            }
        }
    }

    #[test]
    fn hpwl_positive_and_consistent() {
        let fa = full_adder();
        let p = place_cnfet_with(&fa, &lib(Scheme::Scheme1));
        assert!(p.hpwl(&fa) > 0.0);
        assert!(p.net_hpwl(&fa, "s1") > 0.0);
        assert_eq!(p.net_hpwl(&fa, "no_such_net"), 0.0);
    }

    #[test]
    fn utilization_below_one() {
        let fa = full_adder();
        let p = place_cnfet_with(&fa, &lib(Scheme::Scheme2));
        assert!(
            p.utilization > 0.2 && p.utilization <= 1.0,
            "{}",
            p.utilization
        );
    }
}
