//! Final GDS assembly of a placed design — the flow's "to-GDSII" step.

use crate::place::Placement;
use cnfet_dk::CellLibrary;
use cnfet_geom::{write_gds, Cell, Dbu, Instance, Layer, Library, Rect, Transform};

/// Assembles a placed design into a GDS stream from an already-built
/// library: one top cell instantiating the library cells at their placed
/// positions, plus the cell definitions.
///
/// # Panics
///
/// Panics if the placement references cells missing from the library.
pub fn assemble_gds_with(design_name: &str, placement: &Placement, lib: &CellLibrary) -> Vec<u8> {
    let scheme = lib.scheme;
    let mut gds = Library::new(format!("{design_name}_{scheme}"));

    let mut used: Vec<&str> = placement
        .instances
        .iter()
        .map(|p| p.cell.as_str())
        .collect();
    used.sort_unstable();
    used.dedup();
    for name in used {
        let cell = lib.cell(name).expect("placed cell exists in library");
        let mut c = cell.layout.cell.clone();
        c.set_name(name);
        gds.add_cell(c);
    }

    let mut top = Cell::new(design_name);
    for p in &placement.instances {
        top.add_instance(Instance {
            cell: p.cell.clone(),
            transform: Transform::translate(Dbu::from_lambda(p.x), Dbu::from_lambda(p.y)),
            name: p.name.clone(),
        });
    }
    // Block outline.
    top.add_rect(
        Layer::Boundary,
        Rect::new(
            Dbu(0),
            Dbu(0),
            Dbu::from_lambda(placement.width_l),
            Dbu::from_lambda(placement.height_l),
        ),
    );
    gds.add_cell(top);
    write_gds(&gds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fa::full_adder;
    use crate::place::place_cnfet_with;
    use cnfet_core::Scheme;
    use cnfet_dk::DesignKit;
    use cnfet_geom::read_gds;

    #[test]
    fn fa_assembles_and_flattens() {
        let fa = full_adder();
        let lib = cnfet_dk::build_library(&DesignKit::cnfet65(), Scheme::Scheme2).unwrap();
        let placement = place_cnfet_with(&fa, &lib);
        let bytes = assemble_gds_with("full_adder", &placement, &lib);
        let lib = read_gds(&bytes).unwrap();
        let flat = lib.flatten("full_adder").unwrap();
        assert!(
            flat.shapes_on(Layer::Gate).count() >= 2 * (9 * 4 + 6),
            "flattened FA must contain every instance's gates"
        );
    }
}
