//! Measurement probes: threshold crossings, propagation delay, switching
//! energy — the `.measure` statements of the paper's HSPICE decks.

use crate::sim::Transient;

pub use cnfet_mna::measure::Edge;

/// Time at which `signal` crosses `threshold` with the given edge,
/// starting the search at `t_from`. Linearly interpolates between samples.
///
/// Returns `None` when no such crossing exists.
///
/// # Example
///
/// ```
/// use cnfet_spice::{crossing_time, Edge};
/// // A waveform sampled at 1 s ticks rising from 0 to 1:
/// let time = vec![0.0, 1.0, 2.0];
/// let v = vec![0.0, 0.4, 1.0];
/// let t = crossing_time(&time, &v, 0.5, Edge::Rising, 0.0).unwrap();
/// assert!((t - 1.1666).abs() < 1e-3);
/// ```
pub fn crossing_time(
    time: &[f64],
    signal: &[f64],
    threshold: f64,
    edge: Edge,
    t_from: f64,
) -> Option<f64> {
    assert_eq!(time.len(), signal.len(), "waveform length mismatch");
    cnfet_mna::measure::crossing_time(time, signal, threshold, edge, t_from)
}

/// Propagation delay from `input` crossing mid-rail to the *next* `output`
/// mid-rail crossing, both thresholds at `vdd/2`.
///
/// Returns `None` if either crossing is missing.
pub fn propagation_delay(
    tran: &Transient,
    input: crate::netlist::Node,
    output: crate::netlist::Node,
    vdd: f64,
    input_edge: Edge,
    t_from: f64,
) -> Option<f64> {
    let half = vdd / 2.0;
    let t_in = crossing_time(&tran.time, tran.voltage(input), half, input_edge, t_from)?;
    let t_out = crossing_time(&tran.time, tran.voltage(output), half, Edge::Any, t_in)?;
    Some(t_out - t_in)
}

/// Energy drawn from the `idx`-th voltage source over `[t0, t1]`:
/// `E = ∫ V·(−I_branch) dt` (branch current flows into the positive
/// terminal, so supplies see negative current).
///
/// Trapezoidal integration over the recorded samples.
pub fn energy_from_supply(tran: &Transient, idx: usize, vdd: f64, t0: f64, t1: f64) -> f64 {
    let i = tran.source_current(idx);
    let mut energy = 0.0;
    for k in 1..tran.time.len() {
        let (ta, tb) = (tran.time[k - 1], tran.time[k]);
        if tb <= t0 || ta >= t1 {
            continue;
        }
        let dt = tb.min(t1) - ta.max(t0);
        let p = vdd * (-(i[k - 1] + i[k]) / 2.0);
        energy += p * dt;
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Circuit, Waveform};
    use crate::sim::transient;

    #[test]
    fn crossing_interpolation() {
        let time = [0.0, 1.0, 2.0, 3.0];
        let v = [0.0, 1.0, 1.0, 0.0];
        assert!((crossing_time(&time, &v, 0.5, Edge::Rising, 0.0).unwrap() - 0.5).abs() < 1e-12);
        assert!((crossing_time(&time, &v, 0.5, Edge::Falling, 0.0).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(crossing_time(&time, &v, 0.5, Edge::Rising, 1.0), None);
        assert!((crossing_time(&time, &v, 0.5, Edge::Any, 1.0).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn no_crossing_returns_none() {
        let time = [0.0, 1.0];
        let v = [0.0, 0.2];
        assert_eq!(crossing_time(&time, &v, 0.5, Edge::Any, 0.0), None);
    }

    #[test]
    fn rc_charge_energy() {
        // Charging C to V through R draws E = C·V² from the supply
        // (half stored, half dissipated).
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        let src = c.add_vsource(
            vin,
            Circuit::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]),
        );
        c.add_resistor(vin, vout, 1e3);
        c.add_capacitor(vout, Circuit::GROUND, 1e-12);
        let tran = transient(&c, 1e-12, 12e-9).unwrap();
        let e = energy_from_supply(&tran, src, 1.0, 0.0, 12e-9);
        assert!((e - 1e-12).abs() < 0.03e-12, "expected ~1 pJ, got {e:e}");
    }
}
