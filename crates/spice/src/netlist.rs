//! Circuit netlists: nodes, passive elements, sources and FETs.

use cnfet_device::FetModel;
use std::collections::HashMap;
use std::sync::Arc;

/// A circuit node. Node 0 is ground.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub usize);

/// A time-dependent independent source value.
#[derive(Clone, Debug, PartialEq)]
pub enum Waveform {
    /// Constant voltage.
    Dc(f64),
    /// Periodic trapezoidal pulse (SPICE `PULSE` semantics).
    Pulse {
        /// Initial level (V).
        v0: f64,
        /// Pulsed level (V).
        v1: f64,
        /// Delay before the first edge (s).
        delay: f64,
        /// Rise time (s).
        rise: f64,
        /// Fall time (s).
        fall: f64,
        /// Pulse width at `v1` (s).
        width: f64,
        /// Period (s); 0 disables repetition.
        period: f64,
    },
    /// Piecewise-linear waveform through `(time, value)` points.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// The source value at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tt = t - delay;
                if *period > 0.0 {
                    tt %= period;
                }
                if tt < *rise {
                    v0 + (v1 - v0) * tt / rise
                } else if tt < rise + width {
                    *v1
                } else if tt < rise + width + fall {
                    v1 + (v0 - v1) * (tt - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t <= t1 {
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

/// A netlist element.
#[derive(Clone)]
pub enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor between two nodes.
    Capacitor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Linear inductor between two nodes.
    Inductor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Inductance in henries.
        henries: f64,
    },
    /// Independent voltage source from `p` to `n`.
    VSource {
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Source waveform.
        wave: Waveform,
    },
    /// Quasi-static FET (current element only; add terminal capacitors via
    /// [`Circuit::add_fet`], which does both).
    Fet {
        /// Drain terminal.
        d: Node,
        /// Gate terminal.
        g: Node,
        /// Source terminal.
        s: Node,
        /// Large-signal device model.
        model: Arc<dyn FetModel + Send + Sync>,
    },
}

impl std::fmt::Debug for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Element::Resistor { a, b, ohms } => write!(f, "R({a:?},{b:?},{ohms})"),
            Element::Capacitor { a, b, farads } => write!(f, "C({a:?},{b:?},{farads})"),
            Element::Inductor { a, b, henries } => write!(f, "L({a:?},{b:?},{henries})"),
            Element::VSource { p, n, .. } => write!(f, "V({p:?},{n:?})"),
            Element::Fet { d, g, s, .. } => write!(f, "FET(d={d:?},g={g:?},s={s:?})"),
        }
    }
}

/// A circuit under construction.
///
/// # Example
///
/// ```
/// use cnfet_spice::{Circuit, Waveform};
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add_vsource(a, Circuit::GROUND, Waveform::Dc(1.0));
/// ckt.add_resistor(a, Circuit::GROUND, 50.0);
/// assert_eq!(ckt.node_count(), 2); // ground + a
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    names: Vec<String>,
    by_name: HashMap<String, Node>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node (always node 0).
    pub const GROUND: Node = Node(0);

    /// Creates a circuit containing only the ground node.
    pub fn new() -> Circuit {
        let mut c = Circuit {
            names: Vec::new(),
            by_name: HashMap::new(),
            elements: Vec::new(),
        };
        let g = c.intern("0");
        debug_assert_eq!(g, Circuit::GROUND);
        c
    }

    fn intern(&mut self, name: &str) -> Node {
        if let Some(&n) = self.by_name.get(name) {
            return n;
        }
        let n = Node(self.names.len());
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), n);
        n
    }

    /// Returns (creating if needed) the node with the given name. The names
    /// `"0"` and `"gnd"` both refer to ground.
    pub fn node(&mut self, name: &str) -> Node {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Circuit::GROUND;
        }
        self.intern(name)
    }

    /// Name of a node.
    pub fn node_name(&self, node: Node) -> &str {
        &self.names[node.0]
    }

    /// Looks up a node by name without creating it (honoring the `"0"` /
    /// `"gnd"` ground aliases).
    pub fn find_node(&self, name: &str) -> Option<Node> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Circuit::GROUND);
        }
        self.by_name.get(name).copied()
    }

    /// Total node count including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// All elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics unless the resistance is positive and finite.
    pub fn add_resistor(&mut self, a: Node, b: Node, ohms: f64) -> &mut Circuit {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        self.elements.push(Element::Resistor { a, b, ohms });
        self
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics unless the capacitance is non-negative and finite.
    pub fn add_capacitor(&mut self, a: Node, b: Node, farads: f64) -> &mut Circuit {
        assert!(
            farads.is_finite() && farads >= 0.0,
            "capacitance must be non-negative"
        );
        if farads > 0.0 {
            self.elements.push(Element::Capacitor { a, b, farads });
        }
        self
    }

    /// Adds an inductor.
    ///
    /// # Panics
    ///
    /// Panics unless the inductance is positive and finite.
    pub fn add_inductor(&mut self, a: Node, b: Node, henries: f64) -> &mut Circuit {
        assert!(
            henries.is_finite() && henries > 0.0,
            "inductance must be positive"
        );
        self.elements.push(Element::Inductor { a, b, henries });
        self
    }

    /// Adds an independent voltage source and returns its index among
    /// sources (usable with [`crate::Transient::source_current`]).
    pub fn add_vsource(&mut self, p: Node, n: Node, wave: Waveform) -> usize {
        let idx = self
            .elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count();
        self.elements.push(Element::VSource { p, n, wave });
        idx
    }

    /// Adds a FET plus its terminal capacitances (gate capacitance split
    /// half to source, half to drain; drain parasitic to ground).
    pub fn add_fet(
        &mut self,
        d: Node,
        g: Node,
        s: Node,
        model: Arc<dyn FetModel + Send + Sync>,
    ) -> &mut Circuit {
        let cg = model.cgate();
        let cd = model.cdrain();
        self.add_capacitor(g, s, cg / 2.0);
        self.add_capacitor(g, d, cg / 2.0);
        self.add_capacitor(d, Circuit::GROUND, cd);
        self.elements.push(Element::Fet { d, g, s, model });
        self
    }

    /// Adds a load capacitor to ground (no-op when zero), a convenience for
    /// characterization sweeps.
    pub fn add_load(&mut self, node: Node, farads: f64) -> &mut Circuit {
        self.add_capacitor(node, Circuit::GROUND, farads)
    }

    /// Renders the circuit as a SPICE-like deck: one line per element in
    /// insertion order, node names as interned, values in scientific
    /// notation. The rendering is **deterministic** — equal circuits
    /// render byte-identically — so it doubles as a canonical form for
    /// golden-file tests and cache keys. FETs render as `M` cards carrying
    /// the model quantities the in-repo simulator actually uses (polarity,
    /// gate and drain capacitance).
    pub fn to_spice(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "* {title}");
        let (mut nr, mut nc, mut nl, mut nv, mut nm) = (0u32, 0u32, 0u32, 0u32, 0u32);
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, ohms } => {
                    nr += 1;
                    let _ = writeln!(
                        out,
                        "R{nr} {} {} {ohms:.6e}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                }
                Element::Capacitor { a, b, farads } => {
                    nc += 1;
                    let _ = writeln!(
                        out,
                        "C{nc} {} {} {farads:.6e}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                }
                Element::Inductor { a, b, henries } => {
                    nl += 1;
                    let _ = writeln!(
                        out,
                        "L{nl} {} {} {henries:.6e}",
                        self.node_name(*a),
                        self.node_name(*b)
                    );
                }
                Element::VSource { p, n, wave } => {
                    nv += 1;
                    let _ = write!(out, "V{nv} {} {} ", self.node_name(*p), self.node_name(*n));
                    match wave {
                        Waveform::Dc(v) => {
                            let _ = writeln!(out, "DC {v:.6e}");
                        }
                        Waveform::Pulse {
                            v0,
                            v1,
                            delay,
                            rise,
                            fall,
                            width,
                            period,
                        } => {
                            let _ = writeln!(
                                out,
                                "PULSE({v0:.6e} {v1:.6e} {delay:.6e} {rise:.6e} {fall:.6e} {width:.6e} {period:.6e})"
                            );
                        }
                        Waveform::Pwl(points) => {
                            let _ = write!(out, "PWL(");
                            for (i, (t, v)) in points.iter().enumerate() {
                                let sep = if i == 0 { "" } else { " " };
                                let _ = write!(out, "{sep}{t:.6e} {v:.6e}");
                            }
                            let _ = writeln!(out, ")");
                        }
                    }
                }
                Element::Fet { d, g, s, model } => {
                    nm += 1;
                    let polarity = match model.polarity() {
                        cnfet_device::Polarity::N => "cnfet_n",
                        cnfet_device::Polarity::P => "cnfet_p",
                    };
                    let _ = writeln!(
                        out,
                        "M{nm} {} {} {} {polarity} cg={:.6e} cd={:.6e}",
                        self.node_name(*d),
                        self.node_name(*g),
                        self.node_name(*s),
                        model.cgate(),
                        model.cdrain()
                    );
                }
            }
        }
        out.push_str(".end\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
        let a = c.node("a");
        assert_ne!(a, Circuit::GROUND);
        assert_eq!(c.node("a"), a);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 10.0,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(1.5), 0.5);
        assert_eq!(w.value_at(3.0), 1.0);
        assert_eq!(w.value_at(4.5), 0.5);
        assert_eq!(w.value_at(6.0), 0.0);
        // Periodicity.
        assert_eq!(w.value_at(11.5), 0.5);
    }

    #[test]
    fn pwl_waveform() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 0.5);
        assert_eq!(w.value_at(1.5), 0.75);
        assert_eq!(w.value_at(5.0), 0.5);
    }

    #[test]
    fn zero_capacitor_skipped() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_capacitor(a, Circuit::GROUND, 0.0);
        assert!(c.elements().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor(a, Circuit::GROUND, -5.0);
    }

    #[test]
    fn to_spice_renders_deterministically() {
        let build = || {
            let mut c = Circuit::new();
            let a = c.node("in");
            let b = c.node("out");
            c.add_vsource(
                a,
                Circuit::GROUND,
                Waveform::Pulse {
                    v0: 0.0,
                    v1: 1.0,
                    delay: 1e-10,
                    rise: 1e-11,
                    fall: 1e-11,
                    width: 1e-9,
                    period: 2e-9,
                },
            );
            c.add_resistor(a, b, 1e3);
            c.add_capacitor(b, Circuit::GROUND, 1e-15);
            c
        };
        let deck = build().to_spice("rc");
        assert_eq!(deck, build().to_spice("rc"), "byte-identical rendering");
        assert!(deck.starts_with("* rc\n"));
        assert!(deck.contains("V1 in 0 PULSE("));
        assert!(deck.contains("R1 in out 1.000000e3"));
        assert!(deck.contains("C1 out 0 1.000000e-15"));
        assert!(deck.ends_with(".end\n"));
    }

    #[test]
    fn vsource_indices_count_up() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(c.add_vsource(a, Circuit::GROUND, Waveform::Dc(1.0)), 0);
        assert_eq!(c.add_vsource(b, Circuit::GROUND, Waveform::Dc(2.0)), 1);
    }
}
