//! Parsing SPICE-like decks back into [`Circuit`]s — the inverse of
//! [`Circuit::to_spice`] for the element cards the engine supports.
//!
//! The grammar is deliberately small: `R`/`C`/`L` cards (`name a b
//! value`), `V` cards (`DC x`, `PULSE(...)`, `PWL(...)`), `*` comments,
//! and `.end`. Values accept scientific notation plus the common SPICE
//! magnitude suffixes (`f p n u m k meg g`). Transistor (`M`) cards are
//! rejected: device models carry behavior a text card cannot round-trip.

use crate::netlist::{Circuit, Waveform};
use std::fmt;

/// A deck parse failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeckError {
    /// 1-based line number of the offending card; `0` when the failure
    /// is about the deck as a whole (a bad analysis spec or probe name)
    /// rather than one card.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "deck: {}", self.message)
        } else {
            write!(f, "deck line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for DeckError {}

fn err(line: usize, message: impl Into<String>) -> DeckError {
    DeckError {
        line,
        message: message.into(),
    }
}

/// Parses a value token: plain float, scientific notation, or a float
/// with a SPICE magnitude suffix (`2.5k`, `10p`, `1meg`).
fn parse_value(tok: &str, line: usize) -> Result<f64, DeckError> {
    if let Ok(v) = tok.parse::<f64>() {
        return Ok(v);
    }
    let lower = tok.to_ascii_lowercase();
    let (scale, digits) = if let Some(d) = lower.strip_suffix("meg") {
        (1e6, d)
    } else if let Some(d) = lower.strip_suffix('f') {
        (1e-15, d)
    } else if let Some(d) = lower.strip_suffix('p') {
        (1e-12, d)
    } else if let Some(d) = lower.strip_suffix('n') {
        (1e-9, d)
    } else if let Some(d) = lower.strip_suffix('u') {
        (1e-6, d)
    } else if let Some(d) = lower.strip_suffix('m') {
        (1e-3, d)
    } else if let Some(d) = lower.strip_suffix('k') {
        (1e3, d)
    } else if let Some(d) = lower.strip_suffix('g') {
        (1e9, d)
    } else {
        return Err(err(line, format!("invalid value `{tok}`")));
    };
    digits
        .parse::<f64>()
        .map(|v| v * scale)
        .map_err(|_| err(line, format!("invalid value `{tok}`")))
}

/// Splits a source specification like `PULSE(a b c)` into its keyword
/// and argument values.
fn parse_call(spec: &str, line: usize) -> Result<(String, Vec<f64>), DeckError> {
    let open = spec
        .find('(')
        .ok_or_else(|| err(line, "expected `(` in source specification"))?;
    let close = spec
        .rfind(')')
        .ok_or_else(|| err(line, "expected `)` in source specification"))?;
    let keyword = spec[..open].trim().to_ascii_uppercase();
    let mut args = Vec::new();
    for tok in spec[open + 1..close].split_whitespace() {
        args.push(parse_value(tok, line)?);
    }
    Ok((keyword, args))
}

fn parse_source(spec: &str, line: usize) -> Result<Waveform, DeckError> {
    let upper = spec.trim().to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("DC") {
        let tok = rest.trim();
        if tok.is_empty() {
            return Err(err(line, "DC source missing value"));
        }
        return Ok(Waveform::Dc(parse_value(tok, line)?));
    }
    let (keyword, args) = parse_call(spec, line)?;
    match keyword.as_str() {
        "PULSE" => {
            if args.len() != 7 {
                return Err(err(
                    line,
                    format!("PULSE needs 7 arguments, got {}", args.len()),
                ));
            }
            Ok(Waveform::Pulse {
                v0: args[0],
                v1: args[1],
                delay: args[2],
                rise: args[3],
                fall: args[4],
                width: args[5],
                period: args[6],
            })
        }
        "PWL" => {
            if args.len() < 2 || args.len() % 2 != 0 {
                return Err(err(line, "PWL needs an even, non-zero argument count"));
            }
            let points: Vec<(f64, f64)> = args.chunks(2).map(|p| (p[0], p[1])).collect();
            if points.windows(2).any(|w| w[1].0 <= w[0].0) {
                return Err(err(line, "PWL times must strictly increase"));
            }
            Ok(Waveform::Pwl(points))
        }
        other => Err(err(line, format!("unsupported source kind `{other}`"))),
    }
}

impl Circuit {
    /// Parses a SPICE-like deck (the dialect [`Circuit::to_spice`]
    /// renders) into a circuit. Node names are interned in order of first
    /// appearance; `0` and `gnd` are ground.
    ///
    /// # Errors
    ///
    /// Returns a [`DeckError`] naming the offending line for malformed
    /// cards, bad values (negative resistance, non-increasing PWL times),
    /// unsupported directives, and `M` (transistor) cards.
    pub fn from_spice(text: &str) -> Result<Circuit, DeckError> {
        let mut circuit = Circuit::new();
        for (k, raw) in text.lines().enumerate() {
            let line = k + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('*') {
                continue;
            }
            if trimmed.eq_ignore_ascii_case(".end") {
                break;
            }
            if trimmed.starts_with('.') {
                let directive = trimmed.split_whitespace().next().unwrap_or(trimmed);
                return Err(err(line, format!("unsupported directive `{directive}`")));
            }
            let kind = trimmed.chars().next().unwrap().to_ascii_uppercase();
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            match kind {
                'R' | 'C' | 'L' => {
                    if fields.len() != 4 {
                        return Err(err(line, format!("{kind} card needs `name a b value`")));
                    }
                    let a = circuit.node(fields[1]);
                    let b = circuit.node(fields[2]);
                    let value = parse_value(fields[3], line)?;
                    match kind {
                        'R' => {
                            if !(value.is_finite() && value > 0.0) {
                                return Err(err(line, "resistance must be positive"));
                            }
                            circuit.add_resistor(a, b, value);
                        }
                        'C' => {
                            if !(value.is_finite() && value >= 0.0) {
                                return Err(err(line, "capacitance must be non-negative"));
                            }
                            circuit.add_capacitor(a, b, value);
                        }
                        _ => {
                            if !(value.is_finite() && value > 0.0) {
                                return Err(err(line, "inductance must be positive"));
                            }
                            circuit.add_inductor(a, b, value);
                        }
                    }
                }
                'V' => {
                    if fields.len() < 4 {
                        return Err(err(line, "V card needs `name p n spec`"));
                    }
                    let p = circuit.node(fields[1]);
                    let n = circuit.node(fields[2]);
                    let spec_start = trimmed
                        .match_indices(char::is_whitespace)
                        .nth(2)
                        .map(|(i, _)| i)
                        .unwrap();
                    let wave = parse_source(&trimmed[spec_start..], line)?;
                    circuit.add_vsource(p, n, wave);
                }
                'M' => {
                    return Err(err(
                        line,
                        "transistor cards are not supported (device models are not text)",
                    ));
                }
                other => {
                    return Err(err(line, format!("unsupported card `{other}`")));
                }
            }
        }
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_rendered_deck() {
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.add_vsource(
            a,
            Circuit::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-10,
                rise: 1e-11,
                fall: 1e-11,
                width: 1e-9,
                period: 2e-9,
            },
        );
        c.add_resistor(a, b, 1e3);
        c.add_inductor(b, Circuit::GROUND, 1e-9);
        c.add_capacitor(b, Circuit::GROUND, 1e-15);
        let rendered = c.to_spice("rlc");
        let reparsed = Circuit::from_spice(&rendered).unwrap();
        assert_eq!(reparsed.to_spice("rlc"), rendered);
    }

    #[test]
    fn parses_si_suffixes_and_aliases() {
        use crate::netlist::Element;
        let c = Circuit::from_spice(
            "V1 a gnd DC 1.0\nR1 a b 2.5k\nC1 b 0 10p\nL1 b 0 1n\nR2 b 0 1meg\n.end\n",
        )
        .unwrap();
        let value = |e: &Element| match e {
            Element::Resistor { ohms, .. } => *ohms,
            Element::Capacitor { farads, .. } => *farads,
            Element::Inductor { henries, .. } => *henries,
            _ => panic!("unexpected element"),
        };
        let close = |got: f64, want: f64| (got - want).abs() <= want * 1e-12;
        assert!(close(value(&c.elements()[1]), 2.5e3));
        assert!(close(value(&c.elements()[2]), 1e-11));
        assert!(close(value(&c.elements()[3]), 1e-9));
        assert!(close(value(&c.elements()[4]), 1e6));
        assert!(matches!(
            &c.elements()[0],
            Element::VSource { n, .. } if *n == Circuit::GROUND
        ));
    }

    #[test]
    fn pwl_and_comments() {
        let c = Circuit::from_spice(
            "* a comment\n\nV1 in 0 PWL(0.0 0.0 1e-9 1.0)\nR1 in 0 50\n.end\nignored garbage",
        )
        .unwrap();
        assert_eq!(c.elements().len(), 2);
        assert_eq!(
            Circuit::from_spice("V1 in 0 PWL(1e-9 1.0 0.0 0.0)\n.end")
                .unwrap_err()
                .message,
            "PWL times must strictly increase"
        );
    }

    #[test]
    fn rejects_bad_cards_with_line_numbers() {
        let e = Circuit::from_spice("R1 a 0 1k\nR2 a 0 -5\n.end").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("positive"));
        assert!(e.to_string().starts_with("deck line 2:"));

        let e = Circuit::from_spice("M1 d g s cnfet_n\n.end").unwrap_err();
        assert!(e.message.contains("transistor"));

        let e = Circuit::from_spice(".tran 1n 10n\n.end").unwrap_err();
        assert!(e.message.contains(".tran"));

        let e = Circuit::from_spice("X1 a b sub\n.end").unwrap_err();
        assert!(e.message.contains('X'));

        let e = Circuit::from_spice("V1 a 0 SIN(0 1 1k)\n.end").unwrap_err();
        assert!(e.message.contains("SIN"));
    }
}
