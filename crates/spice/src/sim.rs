//! DC operating point and transient simulation.

use crate::netlist::{Circuit, Element, Node, Waveform};
use crate::solve::Matrix;
use std::fmt;

/// Final conductance from every FET terminal to ground, keeping the
/// Jacobian well-conditioned when devices are off.
const GMIN: f64 = 1e-9;
/// Gmin-stepping ladder used to coax large circuits into their DC
/// operating point: solve with heavy shunts first, then tighten.
const GMIN_STEPS: [f64; 4] = [1e-3, 1e-5, 1e-7, GMIN];
/// Newton–Raphson convergence tolerance on node voltages (volts).
const NR_TOL: f64 = 1e-7;
/// Maximum Newton iterations per solve.
const NR_MAX_ITERS: usize = 400;

/// Simulation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Simulation time at which convergence failed.
        at_step: usize,
    },
    /// The MNA matrix was singular (floating node or source loop).
    Singular,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoConvergence { at_step } => {
                write!(f, "newton iteration did not converge at step {at_step}")
            }
            SimError::Singular => write!(f, "singular MNA matrix (floating node?)"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a transient run: waveforms for every node and every source
/// branch current.
#[derive(Clone, Debug)]
pub struct Transient {
    /// Sample times (s).
    pub time: Vec<f64>,
    /// `voltages[node][k]` is node's voltage at `time[k]`.
    voltages: Vec<Vec<f64>>,
    /// `currents[src][k]` is the branch current of voltage source `src`
    /// (positive current flows *into* the positive terminal through the
    /// source, SPICE convention).
    currents: Vec<Vec<f64>>,
}

impl Transient {
    /// Voltage waveform of a node.
    ///
    /// # Panics
    ///
    /// Panics on a node from a different circuit.
    pub fn voltage(&self, node: Node) -> &[f64] {
        &self.voltages[node.0]
    }

    /// Branch-current waveform of the `idx`-th voltage source (insertion
    /// order, as returned by [`Circuit::add_vsource`]).
    pub fn source_current(&self, idx: usize) -> &[f64] {
        &self.currents[idx]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }
}

/// The system being assembled: nodes 1..n map to unknowns 0..n-1, then one
/// unknown per voltage source branch current.
struct Assembler<'a> {
    circuit: &'a Circuit,
    n_nodes: usize, // excluding ground
    n_sources: usize,
}

impl<'a> Assembler<'a> {
    fn new(circuit: &'a Circuit) -> Assembler<'a> {
        let n_sources = circuit
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count();
        Assembler {
            circuit,
            n_nodes: circuit.node_count() - 1,
            n_sources,
        }
    }

    fn dim(&self) -> usize {
        self.n_nodes + self.n_sources
    }

    /// Unknown index of a node (None for ground).
    fn node_idx(&self, n: Node) -> Option<usize> {
        if n == Circuit::GROUND {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    fn voltage_of(&self, x: &[f64], n: Node) -> f64 {
        match self.node_idx(n) {
            None => 0.0,
            Some(i) => x[i],
        }
    }

    /// Assembles the linearized MNA system about the candidate solution `x`.
    ///
    /// `dt` of `None` means DC (capacitors open); otherwise backward-Euler
    /// companion models reference `prev` (the solution at the previous
    /// timestep).
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        a: &mut Matrix,
        b: &mut [f64],
        x: &[f64],
        prev: Option<&[f64]>,
        dt: Option<f64>,
        t: f64,
        gmin: f64,
    ) {
        a.clear();
        b.fill(0.0);
        let mut src_idx = 0usize;

        for elem in self.circuit.elements() {
            match elem {
                Element::Resistor { a: na, b: nb, ohms } => {
                    self.stamp_conductance(a, *na, *nb, 1.0 / ohms);
                }
                Element::Capacitor {
                    a: na,
                    b: nb,
                    farads,
                } => {
                    if let Some(dt) = dt {
                        // Backward Euler companion: i = C/dt (v - v_prev).
                        let g = farads / dt;
                        self.stamp_conductance(a, *na, *nb, g);
                        let prev = prev.expect("transient step requires previous state");
                        let vprev = self.voltage_of(prev, *na) - self.voltage_of(prev, *nb);
                        let ieq = g * vprev;
                        if let Some(i) = self.node_idx(*na) {
                            b[i] += ieq;
                        }
                        if let Some(i) = self.node_idx(*nb) {
                            b[i] -= ieq;
                        }
                    }
                    // DC: open circuit — no stamp.
                }
                Element::VSource { p, n, wave } => {
                    let row = self.n_nodes + src_idx;
                    if let Some(i) = self.node_idx(*p) {
                        a.stamp(i, row, 1.0);
                        a.stamp(row, i, 1.0);
                    }
                    if let Some(i) = self.node_idx(*n) {
                        a.stamp(i, row, -1.0);
                        a.stamp(row, i, -1.0);
                    }
                    b[row] = wave.value_at(t);
                    src_idx += 1;
                }
                Element::Fet { d, g, s, model } => {
                    self.stamp_fet(a, b, x, *d, *g, *s, model.as_ref(), gmin);
                }
            }
        }
    }

    fn stamp_conductance(&self, a: &mut Matrix, na: Node, nb: Node, g: f64) {
        if let Some(i) = self.node_idx(na) {
            a.stamp(i, i, g);
        }
        if let Some(j) = self.node_idx(nb) {
            a.stamp(j, j, g);
        }
        if let (Some(i), Some(j)) = (self.node_idx(na), self.node_idx(nb)) {
            a.stamp(i, j, -g);
            a.stamp(j, i, -g);
        }
    }

    /// Drain current (into the drain) of the device at the given terminal
    /// voltages, with polarity and source/drain symmetry handled.
    fn fet_current(model: &dyn cnfet_device::FetModel, vd: f64, vg: f64, vs: f64) -> f64 {
        use cnfet_device::Polarity;
        match model.polarity() {
            Polarity::N => {
                if vd >= vs {
                    model.ids(vg - vs, vd - vs)
                } else {
                    -model.ids(vg - vd, vs - vd)
                }
            }
            // A p-device is the n-device under voltage mirroring.
            Polarity::P => {
                if vd <= vs {
                    -model.ids(vs - vg, vs - vd)
                } else {
                    model.ids(vd - vg, vd - vs)
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn stamp_fet(
        &self,
        a: &mut Matrix,
        b: &mut [f64],
        x: &[f64],
        d: Node,
        g: Node,
        s: Node,
        model: &dyn cnfet_device::FetModel,
        gmin: f64,
    ) {
        let vd = self.voltage_of(x, d);
        let vg = self.voltage_of(x, g);
        let vs = self.voltage_of(x, s);

        let id0 = Self::fet_current(model, vd, vg, vs);
        // Numerical differentiation: robust against any model kinks.
        let h = 1e-6;
        let gds = (Self::fet_current(model, vd + h, vg, vs) - id0) / h;
        let gm = (Self::fet_current(model, vd, vg + h, vs) - id0) / h;
        let gs = (Self::fet_current(model, vd, vg, vs + h) - id0) / h;

        // Linearized: i_d(v) ≈ id0 + gds·Δvd + gm·Δvg + gs·Δvs.
        // Equivalent current source: ieq = id0 - gds·vd - gm·vg - gs·vs.
        let ieq = id0 - gds * vd - gm * vg - gs * vs;

        // Current leaves the drain node and enters the source node.
        if let Some(i) = self.node_idx(d) {
            if let Some(jd) = self.node_idx(d) {
                a.stamp(i, jd, gds);
            }
            if let Some(jg) = self.node_idx(g) {
                a.stamp(i, jg, gm);
            }
            if let Some(js) = self.node_idx(s) {
                a.stamp(i, js, gs);
            }
            b[i] -= ieq;
        }
        if let Some(i) = self.node_idx(s) {
            if let Some(jd) = self.node_idx(d) {
                a.stamp(i, jd, -gds);
            }
            if let Some(jg) = self.node_idx(g) {
                a.stamp(i, jg, -gm);
            }
            if let Some(js) = self.node_idx(s) {
                a.stamp(i, js, -gs);
            }
            b[i] += ieq;
        }

        // Convergence aids: gmin from drain and source to ground.
        if let Some(i) = self.node_idx(d) {
            a.stamp(i, i, gmin);
        }
        if let Some(i) = self.node_idx(s) {
            a.stamp(i, i, gmin);
        }
    }

    /// One Newton solve at time `t`; `x` holds the initial guess and the
    /// converged solution.
    fn newton(
        &self,
        x: &mut [f64],
        prev: Option<&[f64]>,
        dt: Option<f64>,
        t: f64,
        step: usize,
        gmin: f64,
    ) -> Result<(), SimError> {
        let dim = self.dim();
        let mut a = Matrix::zeros(dim);
        let mut b = vec![0.0; dim];
        for _ in 0..NR_MAX_ITERS {
            self.assemble(&mut a, &mut b, x, prev, dt, t, gmin);
            let next = a.solve(&b).ok_or(SimError::Singular)?;
            let mut delta: f64 = 0.0;
            for i in 0..self.n_nodes {
                delta = delta.max((next[i] - x[i]).abs());
            }
            // Damped update for large steps keeps the FET linearization in
            // its region of validity.
            let relax = if delta > 0.5 { 0.5 / delta } else { 1.0 };
            for i in 0..dim {
                x[i] += (next[i] - x[i]) * relax;
            }
            if delta < NR_TOL {
                return Ok(());
            }
        }
        Err(SimError::NoConvergence { at_step: step })
    }
}

/// Solves the DC operating point at `t = 0` with source ramping, returning
/// node voltages indexed by [`Node`] (`result[0]` is ground, 0 V).
///
/// # Errors
///
/// Returns [`SimError`] when the Newton iteration cannot converge or the
/// system is singular.
pub fn dc_operating_point(circuit: &Circuit) -> Result<Vec<f64>, SimError> {
    let asm = Assembler::new(circuit);
    let mut x = vec![0.0; asm.dim()];

    // Source stepping: ramp all sources from 0 to their t=0 value.
    let ramped = |fraction: f64| -> Circuit {
        let mut c = circuit.clone();
        for e in c.elements_mut() {
            if let Element::VSource { wave, .. } = e {
                let v = wave.value_at(0.0) * fraction;
                *wave = Waveform::Dc(v);
            }
        }
        c
    };
    // Source stepping at heavy gmin, then gmin stepping at full sources.
    for step in 1..=4 {
        let frac = step as f64 / 4.0;
        let c = ramped(frac);
        let asm_step = Assembler::new(&c);
        asm_step.newton(&mut x, None, None, 0.0, 0, GMIN_STEPS[0])?;
    }
    for &gmin in &GMIN_STEPS[1..] {
        let c = ramped(1.0);
        let asm_step = Assembler::new(&c);
        asm_step.newton(&mut x, None, None, 0.0, 0, gmin)?;
    }

    let mut volts = vec![0.0; circuit.node_count()];
    let n = circuit.node_count();
    volts[1..n].copy_from_slice(&x[..n - 1]);
    Ok(volts)
}

/// Runs a fixed-step backward-Euler transient from the DC operating point.
///
/// # Errors
///
/// Returns [`SimError`] on convergence failure at any timestep.
///
/// # Panics
///
/// Panics unless `dt` and `t_stop` are positive.
pub fn transient(circuit: &Circuit, dt: f64, t_stop: f64) -> Result<Transient, SimError> {
    assert!(dt > 0.0 && t_stop > 0.0, "dt and t_stop must be positive");
    let asm = Assembler::new(circuit);
    let dim = asm.dim();

    // Initial condition: DC operating point at t=0.
    let dc = dc_operating_point(circuit)?;
    let mut x = vec![0.0; dim];
    let n = circuit.node_count();
    x[..n - 1].copy_from_slice(&dc[1..n]);

    let steps = (t_stop / dt).ceil() as usize;
    let mut time = Vec::with_capacity(steps + 1);
    let mut voltages = vec![Vec::with_capacity(steps + 1); circuit.node_count()];
    let mut currents = vec![Vec::with_capacity(steps + 1); asm.n_sources];

    let record = |x: &[f64],
                  t: f64,
                  time: &mut Vec<f64>,
                  voltages: &mut Vec<Vec<f64>>,
                  currents: &mut Vec<Vec<f64>>| {
        time.push(t);
        voltages[0].push(0.0);
        for n in 1..circuit.node_count() {
            voltages[n].push(x[n - 1]);
        }
        for (s, current) in currents.iter_mut().enumerate() {
            current.push(x[asm.n_nodes + s]);
        }
    };
    record(&x, 0.0, &mut time, &mut voltages, &mut currents);

    let mut prev = x.clone();
    for k in 1..=steps {
        let t = k as f64 * dt;
        asm.newton(&mut x, Some(&prev), Some(dt), t, k, GMIN)?;
        record(&x, t, &mut time, &mut voltages, &mut currents);
        prev.copy_from_slice(&x);
    }

    Ok(Transient {
        time,
        voltages,
        currents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_device::{CnfetModel, Polarity};
    use std::sync::Arc;

    #[test]
    fn resistive_divider_dc() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let mid = c.node("mid");
        c.add_vsource(a, Circuit::GROUND, Waveform::Dc(2.0));
        c.add_resistor(a, mid, 1e3);
        c.add_resistor(mid, Circuit::GROUND, 3e3);
        let v = dc_operating_point(&c).unwrap();
        assert!((v[mid.0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rc_step_matches_analytic() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource(
            vin,
            Circuit::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]),
        );
        c.add_resistor(vin, vout, 1e3);
        c.add_capacitor(vout, Circuit::GROUND, 1e-12); // tau = 1 ns
        let tran = transient(&c, 2e-12, 5e-9).unwrap();
        for (k, &t) in tran.time.iter().enumerate() {
            if t < 1e-10 {
                continue;
            }
            let expected = 1.0 - (-(t - 1e-12) / 1e-9).exp();
            let got = tran.voltage(vout)[k];
            assert!(
                (got - expected).abs() < 0.01,
                "t={t}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn cnfet_inverter_dc_transfer() {
        let model = CnfetModel::poly_65nm();
        let nd = Arc::new(model.device(Polarity::N, 4, 130e-9));
        let pd = Arc::new(model.device(Polarity::P, 4, 130e-9));
        for (vin_val, expect_high) in [(0.0, true), (1.0, false)] {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let vin = c.node("in");
            let vout = c.node("out");
            c.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(1.0));
            c.add_vsource(vin, Circuit::GROUND, Waveform::Dc(vin_val));
            c.add_fet(vout, vin, vdd, pd.clone());
            c.add_fet(vout, vin, Circuit::GROUND, nd.clone());
            let v = dc_operating_point(&c).unwrap();
            let vo = v[vout.0];
            if expect_high {
                assert!(vo > 0.95, "in={vin_val} → out={vo}");
            } else {
                assert!(vo < 0.05, "in={vin_val} → out={vo}");
            }
        }
    }

    #[test]
    fn inverter_transient_switches() {
        let model = CnfetModel::poly_65nm();
        let nd = Arc::new(model.device(Polarity::N, 4, 130e-9));
        let pd = Arc::new(model.device(Polarity::P, 4, 130e-9));
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(1.0));
        c.add_vsource(
            vin,
            Circuit::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 10e-12,
                rise: 2e-12,
                fall: 2e-12,
                width: 100e-12,
                period: 0.0,
            },
        );
        c.add_fet(vout, vin, vdd, pd);
        c.add_fet(vout, vin, Circuit::GROUND, nd);
        c.add_load(vout, 50e-18);
        let tran = transient(&c, 0.25e-12, 80e-12).unwrap();
        let v = tran.voltage(vout);
        assert!(v[0] > 0.95, "initial output should be high, got {}", v[0]);
        assert!(
            *v.last().unwrap() < 0.05,
            "final output should be low, got {}",
            v.last().unwrap()
        );
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(a, Circuit::GROUND, Waveform::Dc(1.0));
        c.add_resistor(a, Circuit::GROUND, 1e3);
        // A node with no elements at all: its matrix row is empty.
        let _floating = c.node("floating");
        assert_eq!(dc_operating_point(&c), Err(SimError::Singular));
    }

    #[test]
    fn supply_current_recorded() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let src = c.add_vsource(a, Circuit::GROUND, Waveform::Dc(1.0));
        c.add_resistor(a, Circuit::GROUND, 1e3);
        let tran = transient(&c, 1e-12, 1e-11).unwrap();
        // 1 mA flows out of the source (SPICE sign: negative branch current).
        let i = tran.source_current(src);
        assert!((i.last().unwrap().abs() - 1e-3).abs() < 1e-6);
    }
}
