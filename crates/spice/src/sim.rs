//! DC operating point and transient simulation.
//!
//! This module is a thin compatibility layer over the [`cnfet_mna`]
//! engine: the netlist is lowered ([`crate::lower::to_mna`]), a symbolic
//! [`cnfet_mna::Pattern`] is analyzed, and the reusable-factorization
//! [`cnfet_mna::Engine`] runs the solve. The historical API — node-indexed
//! voltages, [`Transient`] with per-source branch currents, [`SimError`] —
//! is preserved; callers needing waveform probes, trapezoidal
//! integration, adaptive stepping or AC analysis should use the engine
//! directly.

use crate::lower::to_mna;
use crate::netlist::{Circuit, Node};
use cnfet_mna::{Engine, MnaError, Pattern, TranSpec};
use std::fmt;
use std::sync::Arc;

/// Simulation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Simulation time at which convergence failed.
        at_step: usize,
    },
    /// The MNA matrix was singular (floating node or source loop).
    Singular,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoConvergence { at_step } => {
                write!(f, "newton iteration did not converge at step {at_step}")
            }
            SimError::Singular => write!(f, "singular MNA matrix (floating node?)"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MnaError> for SimError {
    fn from(e: MnaError) -> SimError {
        match e {
            MnaError::NoConvergence { at_step } => SimError::NoConvergence { at_step },
            MnaError::Singular => SimError::Singular,
        }
    }
}

/// Result of a transient run: waveforms for every node and every source
/// branch current.
#[derive(Clone, Debug)]
pub struct Transient {
    /// Sample times (s).
    pub time: Vec<f64>,
    /// `voltages[node][k]` is node's voltage at `time[k]`.
    voltages: Vec<Vec<f64>>,
    /// `currents[src][k]` is the branch current of voltage source `src`
    /// (positive current flows *into* the positive terminal through the
    /// source, SPICE convention).
    currents: Vec<Vec<f64>>,
}

impl Transient {
    /// Voltage waveform of a node.
    ///
    /// # Panics
    ///
    /// Panics on a node from a different circuit.
    pub fn voltage(&self, node: Node) -> &[f64] {
        &self.voltages[node.0]
    }

    /// Branch-current waveform of the `idx`-th voltage source (insertion
    /// order, as returned by [`Circuit::add_vsource`]).
    pub fn source_current(&self, idx: usize) -> &[f64] {
        &self.currents[idx]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }
}

/// Solves the DC operating point at `t = 0` with source ramping, returning
/// node voltages indexed by [`Node`] (`result[0]` is ground, 0 V).
///
/// # Errors
///
/// Returns [`SimError`] when the Newton iteration cannot converge or the
/// system is singular.
pub fn dc_operating_point(circuit: &Circuit) -> Result<Vec<f64>, SimError> {
    let mna = to_mna(circuit);
    let pattern = Arc::new(Pattern::analyze(&mna));
    Ok(Engine::new(pattern).dc(&mna)?)
}

/// Runs a fixed-step backward-Euler transient from the DC operating point.
///
/// # Errors
///
/// Returns [`SimError`] on convergence failure at any timestep.
///
/// # Panics
///
/// Panics unless `dt` and `t_stop` are positive.
pub fn transient(circuit: &Circuit, dt: f64, t_stop: f64) -> Result<Transient, SimError> {
    assert!(dt > 0.0 && t_stop > 0.0, "dt and t_stop must be positive");
    let mna = to_mna(circuit);
    let pattern = Arc::new(Pattern::analyze(&mna));
    let n_sources = pattern.n_vsources();
    let mut engine = Engine::new(pattern);
    // max_halvings(0): the historical contract is a fixed uniform grid.
    let wave = engine.tran(&mna, &TranSpec::new(dt, t_stop).max_halvings(0))?;
    let voltages = (0..circuit.node_count())
        .map(|n| wave.voltage(n).to_vec())
        .collect();
    let currents = (0..n_sources)
        .map(|s| wave.source_current(s).to_vec())
        .collect();
    Ok(Transient {
        time: wave.time().to_vec(),
        voltages,
        currents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;
    use cnfet_device::{CnfetModel, Polarity};
    use std::sync::Arc;

    #[test]
    fn resistive_divider_dc() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let mid = c.node("mid");
        c.add_vsource(a, Circuit::GROUND, Waveform::Dc(2.0));
        c.add_resistor(a, mid, 1e3);
        c.add_resistor(mid, Circuit::GROUND, 3e3);
        let v = dc_operating_point(&c).unwrap();
        assert!((v[mid.0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rc_step_matches_analytic() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource(
            vin,
            Circuit::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]),
        );
        c.add_resistor(vin, vout, 1e3);
        c.add_capacitor(vout, Circuit::GROUND, 1e-12); // tau = 1 ns
        let tran = transient(&c, 2e-12, 5e-9).unwrap();
        for (k, &t) in tran.time.iter().enumerate() {
            if t < 1e-10 {
                continue;
            }
            let expected = 1.0 - (-(t - 1e-12) / 1e-9).exp();
            let got = tran.voltage(vout)[k];
            assert!(
                (got - expected).abs() < 0.01,
                "t={t}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn rlc_inductor_reaches_dc_current() {
        // V — R — L: the inductor is a DC short, so the steady current is
        // V/R and the inductor node settles at ground.
        let mut c = Circuit::new();
        let a = c.node("a");
        let mid = c.node("mid");
        c.add_vsource(a, Circuit::GROUND, Waveform::Dc(1.0));
        c.add_resistor(a, mid, 1e3);
        c.add_inductor(mid, Circuit::GROUND, 1e-9);
        let v = dc_operating_point(&c).unwrap();
        assert!(v[mid.0].abs() < 1e-9);
        let tran = transient(&c, 1e-12, 1e-11).unwrap();
        let i = tran.source_current(0);
        assert!((i.last().unwrap().abs() - 1e-3).abs() < 1e-6);
    }

    #[test]
    fn cnfet_inverter_dc_transfer() {
        let model = CnfetModel::poly_65nm();
        let nd = Arc::new(model.device(Polarity::N, 4, 130e-9));
        let pd = Arc::new(model.device(Polarity::P, 4, 130e-9));
        for (vin_val, expect_high) in [(0.0, true), (1.0, false)] {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let vin = c.node("in");
            let vout = c.node("out");
            c.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(1.0));
            c.add_vsource(vin, Circuit::GROUND, Waveform::Dc(vin_val));
            c.add_fet(vout, vin, vdd, pd.clone());
            c.add_fet(vout, vin, Circuit::GROUND, nd.clone());
            let v = dc_operating_point(&c).unwrap();
            let vo = v[vout.0];
            if expect_high {
                assert!(vo > 0.95, "in={vin_val} → out={vo}");
            } else {
                assert!(vo < 0.05, "in={vin_val} → out={vo}");
            }
        }
    }

    #[test]
    fn inverter_transient_switches() {
        let model = CnfetModel::poly_65nm();
        let nd = Arc::new(model.device(Polarity::N, 4, 130e-9));
        let pd = Arc::new(model.device(Polarity::P, 4, 130e-9));
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let vout = c.node("out");
        c.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(1.0));
        c.add_vsource(
            vin,
            Circuit::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 10e-12,
                rise: 2e-12,
                fall: 2e-12,
                width: 100e-12,
                period: 0.0,
            },
        );
        c.add_fet(vout, vin, vdd, pd);
        c.add_fet(vout, vin, Circuit::GROUND, nd);
        c.add_load(vout, 50e-18);
        let tran = transient(&c, 0.25e-12, 80e-12).unwrap();
        let v = tran.voltage(vout);
        assert!(v[0] > 0.95, "initial output should be high, got {}", v[0]);
        assert!(
            *v.last().unwrap() < 0.05,
            "final output should be low, got {}",
            v.last().unwrap()
        );
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(a, Circuit::GROUND, Waveform::Dc(1.0));
        c.add_resistor(a, Circuit::GROUND, 1e3);
        // A node with no elements at all: its matrix row is empty.
        let _floating = c.node("floating");
        assert_eq!(dc_operating_point(&c), Err(SimError::Singular));
    }

    #[test]
    fn supply_current_recorded() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let src = c.add_vsource(a, Circuit::GROUND, Waveform::Dc(1.0));
        c.add_resistor(a, Circuit::GROUND, 1e3);
        let tran = transient(&c, 1e-12, 1e-11).unwrap();
        // 1 mA flows out of the source (SPICE sign: negative branch current).
        let i = tran.source_current(src);
        assert!((i.last().unwrap().abs() - 1e-3).abs() < 1e-6);
    }
}
