//! A small SPICE: netlists, deck parsing/rendering, and simulation over
//! the reusable-factorization [`cnfet_mna`] engine.
//!
//! This crate replaces HSPICE in the paper's design kit. It supports
//! exactly what the paper's experiments need — resistors, capacitors,
//! inductors, independent voltage sources (DC / pulse / PWL) and
//! quasi-static FETs driven by the [`cnfet_device::FetModel`] trait —
//! plus the delay and energy probes of Section V. Netlists render to a
//! deterministic SPICE dialect ([`Circuit::to_spice`]) and parse back
//! ([`Circuit::from_spice`]); simulation lowers into [`cnfet_mna`]
//! ([`lower::to_mna`]), where one symbolic analysis and one pivot order
//! are reused across timesteps and same-topology corners.
//!
//! # Example: an RC low-pass step response
//!
//! ```
//! use cnfet_spice::{Circuit, Waveform, transient};
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource(vin, Circuit::GROUND, Waveform::Dc(1.0));
//! ckt.add_resistor(vin, vout, 1e3);
//! ckt.add_capacitor(vout, Circuit::GROUND, 1e-12);
//! let tran = transient(&ckt, 1e-11, 10e-9).unwrap();
//! let v_end = *tran.voltage(vout).last().unwrap();
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 10 RC
//! ```

pub mod deck;
pub mod lower;
pub mod measure;
pub mod netlist;
pub mod sim;
pub mod solve;

pub use deck::DeckError;
pub use lower::to_mna;
pub use measure::{crossing_time, energy_from_supply, propagation_delay, Edge};
pub use netlist::{Circuit, Element, Node, Waveform};
pub use sim::{dc_operating_point, transient, SimError, Transient};
