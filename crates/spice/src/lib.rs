//! A small SPICE: modified nodal analysis, Newton–Raphson DC, and
//! backward-Euler transient simulation.
//!
//! This crate replaces HSPICE in the paper's design kit. It supports
//! exactly what the paper's experiments need — resistors, capacitors,
//! independent voltage sources (DC / pulse / PWL) and quasi-static FETs
//! driven by the [`cnfet_device::FetModel`] trait — plus the delay and
//! energy probes of Section V.
//!
//! # Example: an RC low-pass step response
//!
//! ```
//! use cnfet_spice::{Circuit, Waveform, transient};
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource(vin, Circuit::GROUND, Waveform::Dc(1.0));
//! ckt.add_resistor(vin, vout, 1e3);
//! ckt.add_capacitor(vout, Circuit::GROUND, 1e-12);
//! let tran = transient(&ckt, 1e-11, 10e-9).unwrap();
//! let v_end = *tran.voltage(vout).last().unwrap();
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 10 RC
//! ```

pub mod measure;
pub mod netlist;
pub mod sim;
pub mod solve;

pub use measure::{crossing_time, energy_from_supply, propagation_delay, Edge};
pub use netlist::{Circuit, Element, Node, Waveform};
pub use sim::{dc_operating_point, transient, SimError, Transient};
