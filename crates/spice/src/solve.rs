//! Dense linear algebra: LU factorization with partial pivoting.
//!
//! The paper's circuits (inverter chains, a full adder) have tens of nodes,
//! where a dense solver is both simplest and fastest.
//!
//! [`Matrix::solve`] is the historical convenience path (factor + solve in
//! one call); [`Matrix::factor`] / [`Factorization::resolve`] split the
//! expensive pivoting from the cheap triangular solves when several
//! right-hand sides share one matrix. The heavy lifting — in-place
//! refactorization with pivot-order reuse across timesteps and sweep
//! corners — lives in [`cnfet_mna::LuFactor`], which the simulator now
//! runs on.

/// A dense square matrix stored row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

/// An LU factorization of a [`Matrix`], reusable across right-hand sides.
#[derive(Clone, Debug)]
pub struct Factorization {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl Factorization {
    /// Solves `A x = b` against the stored factors — no pivoting, no
    /// matrix copy, just two triangular substitutions.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn resolve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        let (n, lu, perm) = (self.n, &self.lu, &self.perm);
        // Forward substitution (L has implicit unit diagonal).
        let mut y = vec![0.0; n];
        for (i, &row) in perm.iter().enumerate() {
            let mut sum = b[row];
            for (j, yj) in y.iter().enumerate().take(i) {
                sum -= lu[row * n + j] * yj;
            }
            y[i] = sum;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let row = perm[i];
            let mut sum = y[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                sum -= lu[row * n + j] * xj;
            }
            x[i] = sum / lu[row * n + i];
        }
        x
    }
}

impl Matrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Adds `v` to element `(r, c)` — the MNA "stamp" operation.
    #[inline]
    pub fn stamp(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Factors the matrix via LU with partial pivoting, for reuse across
    /// several right-hand sides.
    ///
    /// Returns `None` when the matrix is numerically singular.
    pub fn factor(&self) -> Option<Factorization> {
        let n = self.n;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu[perm[col] * n + col].abs();
            for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
                let v = lu[pr * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            perm.swap(col, pivot_row);
            let prow = perm[col];
            let pval = lu[prow * n + col];
            for &row in &perm[col + 1..] {
                let factor = lu[row * n + col] / pval;
                lu[row * n + col] = factor;
                for c in col + 1..n {
                    lu[row * n + c] -= factor * lu[prow * n + c];
                }
            }
        }
        Some(Factorization { n, lu, perm })
    }

    /// Solves `A x = b` via LU with partial pivoting (one-shot: factors
    /// and discards; use [`Matrix::factor`] to reuse the factorization).
    ///
    /// Returns `None` when the matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        Some(self.factor()?.resolve(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.stamp(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_requiring_pivot() {
        // First pivot is zero; naive elimination would fail.
        let mut m = Matrix::zeros(2);
        m.stamp(0, 1, 1.0);
        m.stamp(1, 0, 1.0);
        let x = m.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let mut m = Matrix::zeros(2);
        m.stamp(0, 0, 1.0);
        m.stamp(0, 1, 2.0);
        m.stamp(1, 0, 2.0);
        m.stamp(1, 1, 4.0);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn random_round_trip() {
        use cnfet_rng::{Rng, SeedableRng};
        let mut rng = cnfet_rng::rngs::StdRng::seed_from_u64(42);
        for n in [1, 2, 5, 12, 30] {
            let mut m = Matrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    m.stamp(r, c, rng.gen_range(-1.0..1.0));
                }
                m.stamp(r, r, 3.0); // diagonally dominant => nonsingular
            }
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
            let b: Vec<f64> = (0..n)
                .map(|r| (0..n).map(|c| m.at(r, c) * x_true[c]).sum())
                .collect();
            let x = m.solve(&b).unwrap();
            for (a, e) in x.iter().zip(&x_true) {
                assert!((a - e).abs() < 1e-9, "n={n}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn factorization_resolves_many_rhs() {
        let mut m = Matrix::zeros(2);
        m.stamp(0, 1, 1.0);
        m.stamp(1, 0, 2.0);
        let f = m.factor().unwrap();
        let x = f.resolve(&[3.0, 8.0]);
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        let x = f.resolve(&[1.0, 0.0]);
        assert!(x[0].abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        // Matches the one-shot path.
        assert_eq!(f.resolve(&[5.0, 6.0]), m.solve(&[5.0, 6.0]).unwrap());
    }

    #[test]
    fn singular_matrix_does_not_factor() {
        let mut m = Matrix::zeros(2);
        m.stamp(0, 0, 1.0);
        m.stamp(0, 1, 2.0);
        m.stamp(1, 0, 2.0);
        m.stamp(1, 1, 4.0);
        assert!(m.factor().is_none());
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut m = Matrix::zeros(2);
        m.stamp(0, 0, 5.0);
        m.clear();
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.n(), 2);
    }
}
