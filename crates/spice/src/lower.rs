//! Lowering a netlist [`Circuit`] into the MNA engine's circuit form.
//!
//! The mapping is an identity on nodes (`Node(i)` → `i`, ground stays
//! `0`) and one-to-one on elements, so waveform probes and source
//! indices carry over unchanged: the i-th voltage source of the netlist
//! is the i-th source branch of the lowered circuit.

use crate::netlist::{Circuit, Element, Waveform};
use cnfet_mna::{MnaCircuit, SourceWave};

/// Converts a source waveform to its engine twin (same semantics, same
/// `value_at` shape).
fn lower_wave(wave: &Waveform) -> SourceWave {
    match wave {
        Waveform::Dc(v) => SourceWave::Dc(*v),
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => SourceWave::Pulse {
            v0: *v0,
            v1: *v1,
            delay: *delay,
            rise: *rise,
            fall: *fall,
            width: *width,
            period: *period,
        },
        Waveform::Pwl(points) => SourceWave::Pwl(points.clone()),
    }
}

/// Lowers a netlist into an [`MnaCircuit`] with identity node numbering.
pub fn to_mna(circuit: &Circuit) -> MnaCircuit {
    let mut mna = MnaCircuit::new();
    // Interned-but-unconnected nodes must stay in the system so they
    // surface as the floating-node (singular) diagnostic.
    mna.reserve_nodes(circuit.node_count());
    for e in circuit.elements() {
        match e {
            Element::Resistor { a, b, ohms } => {
                mna.resistor(a.0, b.0, *ohms);
            }
            Element::Capacitor { a, b, farads } => {
                mna.capacitor(a.0, b.0, *farads);
            }
            Element::Inductor { a, b, henries } => {
                mna.inductor(a.0, b.0, *henries);
            }
            Element::VSource { p, n, wave } => {
                mna.vsource(p.0, n.0, lower_wave(wave));
            }
            Element::Fet { d, g, s, model } => {
                mna.fet(d.0, g.0, s.0, model.clone());
            }
        }
    }
    mna
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_preserves_nodes_and_source_order() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let v0 = c.add_vsource(a, Circuit::GROUND, Waveform::Dc(1.0));
        c.add_resistor(a, b, 1e3);
        c.add_capacitor(b, Circuit::GROUND, 1e-15);
        c.add_inductor(b, Circuit::GROUND, 1e-9);
        let v1 = c.add_vsource(b, Circuit::GROUND, Waveform::Dc(0.0));
        let mna = to_mna(&c);
        assert_eq!(mna.node_count(), c.node_count());
        assert_eq!(mna.vsource_count(), 2);
        assert_eq!((v0, v1), (0, 1));
        assert_eq!(mna.elements().len(), c.elements().len());
    }
}
