//! Integration tests for the wire layer: a real server on an ephemeral
//! port, driven over TCP by the bundled [`Client`].

use cnfet_serve::json::Json;
use cnfet_serve::{encode, Client, Format, ServeConfig, Server, StreamEvent};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server() -> Server {
    Server::start(ServeConfig::default().addr("127.0.0.1:0")).expect("bind ephemeral port")
}

fn cell(kind: &str) -> Json {
    Json::obj([("type", Json::str("cell")), ("kind", Json::str(kind))])
}

fn small_sweep(seed: u64) -> Json {
    Json::obj([
        ("type", Json::str("sweep")),
        (
            "cells",
            Json::Arr(vec![cell_fields("inv"), cell_fields("nand2")]),
        ),
        (
            "grid",
            Json::obj([
                ("tube_counts", [26u64, 10].into_iter().collect::<Json>()),
                ("seeds", [seed].into_iter().collect::<Json>()),
            ]),
        ),
        ("metrics", Json::str("immunity")),
        ("mc", Json::obj([("tubes", Json::from(100u64))])),
    ])
}

fn cell_fields(kind: &str) -> Json {
    Json::obj([("kind", Json::str(kind))])
}

fn class_stat(stats: &Json, class: &str, counter: &str) -> u64 {
    stats
        .get("classes")
        .and_then(|c| c.get(class))
        .and_then(|c| c.get(counter))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing classes.{class}.{counter}"))
}

#[test]
fn healthz_run_and_stats_round_trip() {
    let server = server();
    let mut client = Client::new(server.addr());

    let health = client
        .request("GET", "/v1/healthz")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));

    let first = client
        .request("POST", "/v1/run")
        .body(&cell("nand3"))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(first.get("type").unwrap().as_str(), Some("cell"));
    assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
    // The paper's Figure 3(b) accounting survives the wire.
    assert_eq!(
        first.get("pun_active_area_l2").unwrap().as_f64(),
        Some(120.0)
    );

    let again = client
        .request("POST", "/v1/run")
        .body(&cell("nand3"))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(again.get("cached").unwrap().as_bool(), Some(true));

    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(class_stat(&stats, "cell", "hits"), 1);
    assert_eq!(class_stat(&stats, "cell", "misses"), 1);
    assert_eq!(class_stat(&stats, "cell", "entries"), 1);
    assert!(
        stats
            .get("server")
            .unwrap()
            .get("requests")
            .unwrap()
            .as_u64()
            >= Some(3)
    );

    let report = server.shutdown();
    assert!(report.requests_served >= 4);
    assert_eq!(report.jobs_canceled, 0);
}

#[test]
fn batch_preserves_order_and_carries_item_errors() {
    let server = server();
    let mut client = Client::new(server.addr());
    let body = Json::obj([(
        "requests",
        Json::Arr(vec![
            cell("inv"),
            Json::obj([
                ("type", Json::str("flow")),
                (
                    "source",
                    Json::obj([("verilog", Json::str("this is not verilog"))]),
                ),
                ("target", Json::str("s1")),
            ]),
            Json::obj([
                ("type", Json::str("immunity")),
                ("cell", cell_fields("inv")),
            ]),
        ]),
    )]);
    let results = client
        .request("POST", "/v1/batch")
        .body(&body)
        .send()
        .unwrap()
        .expect_status(200);
    let results = results.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[0].get("ok").unwrap().get("type").unwrap().as_str(),
        Some("cell")
    );
    // The failing flow answers in place, structured.
    let error = results[1].get("error").expect("error payload");
    assert_eq!(error.get("kind").unwrap().as_str(), Some("verilog"));
    assert_eq!(
        results[2]
            .get("ok")
            .unwrap()
            .get("immune")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    server.shutdown();
}

#[test]
fn submit_poll_and_job_expiry() {
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .job_ttl(Duration::from_millis(100)),
    )
    .unwrap();
    let mut client = Client::new(server.addr());

    let submitted = client
        .request("POST", "/v1/submit")
        .body(&small_sweep(7))
        .send()
        .unwrap()
        .expect_status(202);
    let jobs = submitted.get("jobs").unwrap().as_arr().unwrap();
    assert_eq!(jobs.len(), 1);
    let id = jobs[0].as_u64().unwrap();

    let done = loop {
        let poll = client
            .request("GET", &format!("/v1/jobs/{id}"))
            .send()
            .unwrap()
            .expect_status(200);
        match poll.get("status").unwrap().as_str() {
            Some("pending") => std::thread::sleep(Duration::from_millis(5)),
            Some("done") => break poll,
            other => panic!("unexpected job status {other:?}"),
        }
    };
    let result = done.get("result").unwrap();
    assert_eq!(result.get("type").unwrap().as_str(), Some("sweep"));
    assert_eq!(result.get("rows").unwrap().as_arr().unwrap().len(), 4);

    // Past the ttl the id answers a distinct `410 Gone` — the job was
    // real, its result just expired — while an id that was never issued
    // stays a plain 404.
    std::thread::sleep(Duration::from_millis(150));
    let expired = client
        .request("GET", &format!("/v1/jobs/{id}"))
        .send()
        .unwrap();
    assert_eq!(expired.status, 410);
    assert_eq!(
        expired
            .body
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("job_expired")
    );
    let missing = client.request("GET", "/v1/jobs/424242").send().unwrap();
    assert_eq!(missing.status, 404);
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_warm_cache() {
    let server = server();

    // Client A pays for the sweep...
    let mut a = Client::new(server.addr());
    let first = a
        .request("POST", "/v1/run")
        .body(&small_sweep(1))
        .send()
        .unwrap()
        .expect_status(200);
    let stats = a
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    let misses_after_first = class_stat(&stats, "sweeps", "misses");
    let hits_after_first = class_stat(&stats, "sweeps", "hits");

    // ...and client B, a separate TCP connection, replays it for free.
    let mut b = Client::new(server.addr());
    let second = b
        .request("POST", "/v1/run")
        .body(&small_sweep(1))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(second.render(), first.render(), "identical replay");
    let stats = b
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(
        class_stat(&stats, "sweeps", "misses"),
        misses_after_first,
        "client B's sweep executed nothing"
    );
    assert_eq!(
        class_stat(&stats, "sweeps", "hits"),
        hits_after_first + 1,
        "client B's sweep was one pure whole-sweep hit"
    );
    server.shutdown();
}

#[test]
fn tran_requests_run_the_mna_engine_over_the_wire() {
    let server = server();
    let mut client = Client::new(server.addr());

    // An RC charge through one time constant: out ≈ 1 − e⁻¹.
    let request = Json::obj([
        ("type", Json::str("tran")),
        (
            "deck",
            Json::str("V1 in 0 PWL(0 0 1e-12 1)\nR1 in out 1k\nC1 out 0 1p\n.end"),
        ),
        ("dt", Json::from(1e-11)),
        ("t_stop", Json::from(1e-9)),
        ("probes", Json::Arr(vec![Json::str("out")])),
    ]);
    let result = client
        .request("POST", "/v1/run")
        .body(&request)
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(result.get("type").unwrap().as_str(), Some("tran"));
    let points = result.get("points").unwrap().as_u64().unwrap();
    assert!(points > 10, "a real waveform came back ({points} points)");
    let out = result
        .get("probes")
        .unwrap()
        .get("out")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(out.len(), points as usize);
    let last = out.last().unwrap().as_f64().unwrap();
    assert!((last - 0.63).abs() < 0.01, "1τ RC charge, got {last}");

    // A deliberately singular deck — two voltage sources fighting over
    // one node — answers 422 with the structured singular kind.
    let singular = Json::obj([
        ("type", Json::str("tran")),
        ("deck", Json::str("V1 a 0 DC 1\nV2 a 0 DC 2\n.end")),
        ("dt", Json::from(1e-11)),
        ("t_stop", Json::from(1e-10)),
    ]);
    let refused = client
        .request("POST", "/v1/run")
        .body(&singular)
        .send()
        .unwrap();
    assert_eq!(refused.status, 422);
    let error = refused.body.get("error").unwrap();
    assert_eq!(error.get("kind").unwrap().as_str(), Some("sim_singular"));

    // An unknown probe name is a deck-level failure, kind `deck`.
    let bad_probe = Json::obj([
        ("type", Json::str("tran")),
        ("deck", Json::str("V1 a 0 DC 1\nR1 a 0 1k\n.end")),
        ("dt", Json::from(1e-11)),
        ("t_stop", Json::from(1e-10)),
        ("probes", Json::Arr(vec![Json::str("nope")])),
    ]);
    let refused = client
        .request("POST", "/v1/run")
        .body(&bad_probe)
        .send()
        .unwrap();
    assert_eq!(refused.status, 422);
    let error = refused.body.get("error").unwrap();
    assert_eq!(error.get("kind").unwrap().as_str(), Some("deck"));
    assert!(error
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("nope"));
    server.shutdown();
}

#[test]
fn json_escaping_survives_the_round_trip() {
    let server = server();
    let mut client = Client::new(server.addr());
    // A cell name exercising quotes, backslashes, control characters,
    // and non-ASCII — it must come back byte-identical.
    let name = "INV \"quoted\" back\\slash\nnewline\ttab λ→😀";
    let request = Json::obj([
        ("type", Json::str("cell")),
        ("kind", Json::str("inv")),
        ("name", Json::str(name)),
    ]);
    let result = client
        .request("POST", "/v1/run")
        .body(&request)
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(result.get("name").unwrap().as_str(), Some(name));
    server.shutdown();
}

#[test]
fn malformed_requests_answer_structured_400s() {
    let server = server();
    let mut client = Client::new(server.addr());

    // Broken JSON: the error names the byte position.
    let response = client
        .request("POST", "/v1/run")
        .body(&Json::str("placeholder"))
        .send()
        .unwrap();
    assert_eq!(response.status, 400, "a bare string is not a request");
    let raw = raw_request(
        server.addr(),
        "POST /v1/run HTTP/1.1\r\nconnection: close\r\ncontent-length: 9\r\n\r\n{\"type\": ",
    );
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("\"position\":9"), "{raw}");

    // Well-formed JSON, semantically wrong: the error names the field.
    let response = client
        .request("POST", "/v1/run")
        .body(&Json::obj([
            ("type", Json::str("cell")),
            ("kind", Json::str("frob")),
        ]))
        .send()
        .unwrap();
    assert_eq!(response.status, 400);
    let message = response
        .body
        .get("error")
        .unwrap()
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(message.starts_with("kind:"), "{message}");

    // Unknown routes and unsupported methods.
    assert_eq!(
        client
            .request("GET", "/v1/frobnicate")
            .send()
            .unwrap()
            .status,
        404
    );
    assert_eq!(client.request("GET", "/v1/run").send().unwrap().status, 405);
    assert_eq!(
        client
            .request("POST", "/v1/healthz")
            .body(&Json::Null)
            .send()
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        client
            .request("GET", "/v1/jobs/notanumber")
            .send()
            .unwrap()
            .status,
        400
    );

    // A request that is not HTTP at all.
    let raw = raw_request(server.addr(), "EHLO wire\r\n\r\n");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    // Chunked framing is refused rather than half-parsed (which would
    // desync the keep-alive stream).
    let raw = raw_request(
        server.addr(),
        "POST /v1/run HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("transfer-encoding"), "{raw}");
    server.shutdown();
}

#[test]
fn head_and_foreign_methods_route_sanely() {
    let server = server();
    // HEAD answers like GET with no payload — the load-balancer probe.
    let raw = raw_request(
        server.addr(),
        "HEAD /v1/healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains("content-length: 0"), "{raw}");
    // Unsupported methods on known routes are 405, not 404.
    for request in [
        "PUT /v1/run HTTP/1.1\r\nconnection: close\r\n\r\n",
        "DELETE /v1/stats HTTP/1.1\r\nconnection: close\r\n\r\n",
        "POST /v1/jobs/1 HTTP/1.1\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
    ] {
        let raw = raw_request(server.addr(), request);
        assert!(raw.starts_with("HTTP/1.1 405"), "{request} -> {raw}");
    }
    server.shutdown();
}

#[test]
fn expect_100_continue_clients_get_their_nod() {
    // curl defaults to `Expect: 100-continue` for larger bodies and
    // holds the body until the server answers the interim 100.
    let server = server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = cell("nand2").render();
    let head = format!(
        "POST /v1/run HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    // Wait for the interim response before sending a single body byte.
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).unwrap();
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(body.as_bytes()).unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let response = String::from_utf8_lossy(&response);
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"kind\":\"nand2\""), "{response}");
    server.shutdown();
}

#[test]
fn submit_backpressure_answers_429_and_recovers() {
    // Capacity zero: always refused — deterministic backpressure.
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").job_capacity(0)).unwrap();
    let mut client = Client::new(server.addr());
    let refused = client
        .request("POST", "/v1/submit")
        .body(&cell("inv"))
        .send()
        .unwrap();
    assert_eq!(refused.status, 429);
    assert_eq!(
        refused
            .body
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("backpressure")
    );
    server.shutdown();

    // Capacity one: refusals stop once the pending job settles.
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").job_capacity(1)).unwrap();
    let mut client = Client::new(server.addr());
    let first = client
        .request("POST", "/v1/submit")
        .body(&small_sweep(2))
        .send()
        .unwrap()
        .expect_status(202);
    let id = first.get("jobs").unwrap().as_arr().unwrap()[0]
        .as_u64()
        .unwrap();
    // Poll the job to completion, then the table has room again.
    loop {
        let poll = client
            .request("GET", &format!("/v1/jobs/{id}"))
            .send()
            .unwrap()
            .expect_status(200);
        if poll.get("status").unwrap().as_str() != Some("pending") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    client
        .request("POST", "/v1/submit")
        .body(&cell("inv"))
        .send()
        .unwrap()
        .expect_status(202);
    server.shutdown();
}

#[test]
fn graceful_shutdown_cancels_queued_jobs() {
    // One engine worker and a queue of slow, distinct sweeps: shutdown
    // must complete promptly, and the jobs that never ran settle as
    // canceled rather than hanging anything.
    let server =
        Server::start(ServeConfig::default().addr("127.0.0.1:0").engine_workers(1)).unwrap();
    let mut client = Client::new(server.addr());
    for seed in 100..106 {
        let slow = Json::obj([
            ("type", Json::str("sweep")),
            ("cells", Json::Arr(vec![cell_fields("aoi22")])),
            (
                "grid",
                Json::obj([("seeds", [seed as u64].into_iter().collect::<Json>())]),
            ),
            ("metrics", Json::str("immunity")),
            ("mc", Json::obj([("tubes", Json::from(50_000u64))])),
        ]);
        client
            .request("POST", "/v1/submit")
            .body(&slow)
            .send()
            .unwrap()
            .expect_status(202);
    }
    let report = server.shutdown();
    assert!(
        report.jobs_canceled >= 1,
        "queued jobs settle as canceled on shutdown (got {report:?})"
    );
}

#[test]
fn shutdown_refuses_new_connections() {
    let server = server();
    let addr = server.addr();
    let mut client = Client::new(addr);
    client
        .request("GET", "/v1/healthz")
        .send()
        .unwrap()
        .expect_status(200);
    server.shutdown();
    // The listener is gone: connects fail outright (or are reset before
    // a response arrives).
    let after = TcpStream::connect(addr).and_then(|mut stream| {
        stream.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n")?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut buf = [0u8; 1];
        match stream.read(&mut buf) {
            Ok(0) => Err(std::io::Error::other("closed")),
            Ok(_) => Ok(()),
            Err(e) => Err(e),
        }
    });
    assert!(after.is_err(), "no server behind the address anymore");
}

#[test]
fn streamed_sweep_matches_the_buffered_report() {
    let server = server();
    let mut client = Client::new(server.addr());

    // Cold sweep: every row must arrive as its own event, in report
    // order, strictly before the terminal `done`.
    let mut events = Vec::new();
    client
        .submit_and_stream(&small_sweep(11), Format::Json, |event| events.push(event))
        .unwrap();
    let mut streamed_rows = Vec::new();
    let mut total = 0;
    let mut done = None;
    for (at, event) in events.iter().enumerate() {
        match event {
            StreamEvent::Start { total: t, .. } => {
                assert_eq!(at, 0, "start comes first");
                total = *t;
            }
            StreamEvent::Row { index, row } => {
                assert!(done.is_none(), "rows precede the terminal event");
                assert_eq!(*index, streamed_rows.len() as u64, "rows are in order");
                streamed_rows.push(row.clone());
            }
            StreamEvent::Done(result) => done = Some(result.clone()),
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(total, 4);
    assert_eq!(streamed_rows.len(), 4, "every corner row was streamed");
    let done = done.expect("terminal done event");

    // The buffered report — a pure cache hit now — is row-identical to
    // what was streamed, and to the `done` payload.
    let buffered = client
        .request("POST", "/v1/run")
        .body(&small_sweep(11))
        .send()
        .unwrap()
        .expect_status(200);
    let buffered_rows = buffered.get("rows").unwrap().as_arr().unwrap();
    for (streamed, buffered) in streamed_rows.iter().zip(buffered_rows) {
        assert_eq!(streamed.render(), buffered.render());
    }
    assert_eq!(
        done.get("rows").unwrap().as_arr().unwrap().len(),
        4,
        "the done payload carries the full report"
    );

    // Streaming a whole-report cache hit back-fills the same rows.
    let mut replayed = Vec::new();
    client
        .submit_and_stream(&small_sweep(11), Format::Json, |event| {
            if let StreamEvent::Row { row, .. } = event {
                replayed.push(row);
            }
        })
        .unwrap();
    assert_eq!(replayed.len(), 4);
    for (replayed, streamed) in replayed.iter().zip(&streamed_rows) {
        assert_eq!(replayed.render(), streamed.render());
    }
    server.shutdown();
}

#[test]
fn binary_rows_reassemble_identical_to_json() {
    let server = server();
    let mut client = Client::new(server.addr());

    // Buffered: the binary row table decodes to exactly the JSON rows.
    let json_report = client
        .request("POST", "/v1/run")
        .body(&small_sweep(12))
        .send()
        .unwrap()
        .expect_status(200);
    let json_rows = json_report.get("rows").unwrap().as_arr().unwrap();
    let binary = client
        .request("POST", "/v1/run")
        .body(&small_sweep(12))
        .accept(Format::Binary)
        .send()
        .unwrap();
    assert_eq!(binary.status, 200);
    assert_eq!(binary.content_type, "application/x-cnfet-rows");
    assert_eq!(binary.body, Json::Null, "binary responses skip the parser");
    let decoded = encode::decode_row_table(&binary.bytes).unwrap();
    assert_eq!(decoded.len(), json_rows.len());
    for (decoded, json) in decoded.iter().zip(json_rows) {
        assert_eq!(decoded.render(), json.render());
    }

    // Streamed: binary frames decode to the same rows too.
    let mut streamed = Vec::new();
    client
        .submit_and_stream(&small_sweep(12), Format::Binary, |event| {
            if let StreamEvent::Row { row, .. } = event {
                streamed.push(row);
            }
        })
        .unwrap();
    assert_eq!(streamed.len(), json_rows.len());
    for (streamed, json) in streamed.iter().zip(json_rows) {
        assert_eq!(streamed.render(), json.render());
    }
    server.shutdown();
}

#[test]
fn format_negotiation_answers_406_when_it_cannot_deliver() {
    let server = server();
    let mut client = Client::new(server.addr());

    // An Accept naming no supported format.
    let raw = raw_request(
        server.addr(),
        "GET /v1/stats HTTP/1.1\r\naccept: text/html\r\nconnection: close\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 406"), "{raw}");
    assert!(raw.contains("not_acceptable"), "{raw}");

    // The binary encoding is defined only for sweep results: asking for
    // it on stats, or on a non-sweep run, is also 406.
    let raw = raw_request(
        server.addr(),
        "GET /v1/stats HTTP/1.1\r\naccept: application/x-cnfet-rows\r\nconnection: close\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 406"), "{raw}");
    let refused = client
        .request("POST", "/v1/run")
        .body(&cell("inv"))
        .accept(Format::Binary)
        .send()
        .unwrap();
    assert_eq!(refused.status, 406);

    // A wildcard or weighted JSON Accept still negotiates fine — curl's
    // default `*/*` must keep working.
    let raw = raw_request(
        server.addr(),
        "GET /v1/healthz HTTP/1.1\r\naccept: */*\r\nconnection: close\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let raw = raw_request(
        server.addr(),
        "GET /v1/healthz HTTP/1.1\r\naccept: application/json;q=0.9, text/html\r\nconnection: close\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_frees_the_worker() {
    // One engine worker: if a dropped stream connection pinned it, the
    // follow-up requests below would hang.
    let server =
        Server::start(ServeConfig::default().addr("127.0.0.1:0").engine_workers(1)).unwrap();
    let mut client = Client::new(server.addr());
    let slow = Json::obj([
        ("type", Json::str("sweep")),
        ("cells", Json::Arr(vec![cell_fields("aoi22")])),
        (
            "grid",
            Json::obj([("seeds", [31u64, 32].into_iter().collect::<Json>())]),
        ),
        ("metrics", Json::str("immunity")),
        ("mc", Json::obj([("tubes", Json::from(20_000u64))])),
    ]);
    let submitted = client
        .request("POST", "/v1/submit")
        .body(&slow)
        .send()
        .unwrap()
        .expect_status(202);
    let id = submitted.get("jobs").unwrap().as_arr().unwrap()[0]
        .as_u64()
        .unwrap();

    // While the only worker grinds on the sweep, a queued poll reports
    // pending with its backoff metadata.
    let poll = client
        .request("GET", &format!("/v1/jobs/{id}"))
        .send()
        .unwrap()
        .expect_status(200);
    if poll.get("status").unwrap().as_str() == Some("pending") {
        assert!(poll.get("age_ms").and_then(Json::as_u64).is_some());
        assert!(poll.get("queued").and_then(Json::as_u64).is_some());
    }

    // Open the stream raw, read the head + first bytes, then vanish.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(
            format!("GET /v1/jobs/{id}/stream HTTP/1.1\r\ncontent-length: 0\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut first = [0u8; 64];
    stream.read_exact(&mut first).unwrap();
    assert!(first.starts_with(b"HTTP/1.1 200"));
    drop(stream);

    // The server stays responsive and the job still settles.
    client
        .request("GET", "/v1/healthz")
        .send()
        .unwrap()
        .expect_status(200);
    loop {
        let poll = client
            .request("GET", &format!("/v1/jobs/{id}"))
            .send()
            .unwrap()
            .expect_status(200);
        match poll.get("status").unwrap().as_str() {
            Some("pending") => std::thread::sleep(Duration::from_millis(10)),
            Some("done") => break,
            other => panic!("job ended {other:?}"),
        }
    }
    server.shutdown();
}

/// A fresh path in the target dir for snapshot files — unique per test
/// so parallel runs never collide.
fn scratch_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cnfet-wire-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn snapshot_warm_boot_replays_as_pure_hits() {
    let path = scratch_path("warm.snap");
    let _ = std::fs::remove_file(&path);

    // Server 1 pays for the sweep, then persists it on shutdown.
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").snapshot(&path)).unwrap();
    let mut client = Client::new(server.addr());
    let report = client
        .request("POST", "/v1/run")
        .body(&small_sweep(21))
        .send()
        .unwrap()
        .expect_status(200);
    server.shutdown();
    assert!(path.exists(), "graceful shutdown wrote the snapshot");

    // Server 2 warm-boots from it: the same sweep replays without a
    // single new miss, byte-identical.
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").snapshot(&path)).unwrap();
    let mut client = Client::new(server.addr());
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    let misses_at_boot = class_stat(&stats, "sweeps", "misses");
    let replay = client
        .request("POST", "/v1/run")
        .body(&small_sweep(21))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(replay.render(), report.render(), "deterministic replay");
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(
        class_stat(&stats, "sweeps", "misses"),
        misses_at_boot,
        "the warm-booted sweep executed nothing"
    );
    assert!(class_stat(&stats, "sweeps", "hits") >= 1);
    server.shutdown();

    // A corrupt snapshot degrades to a cold boot, never a crash.
    let corrupt = scratch_path("corrupt.snap");
    std::fs::write(&corrupt, b"not a snapshot at all").unwrap();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .snapshot(&corrupt),
    )
    .unwrap();
    let mut client = Client::new(server.addr());
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(class_stat(&stats, "sweeps", "entries"), 0, "cold boot");
    server.shutdown();

    // So does a version-mismatched one (future format rev).
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let future = scratch_path("future.snap");
    std::fs::write(&future, bytes).unwrap();
    let server =
        Server::start(ServeConfig::default().addr("127.0.0.1:0").snapshot(&future)).unwrap();
    let mut client = Client::new(server.addr());
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(class_stat(&stats, "sweeps", "entries"), 0, "cold boot");
    server.shutdown();
}

#[test]
fn periodic_flush_warm_boots_while_the_first_server_still_runs() {
    let path = scratch_path("midrun.snap");
    let _ = std::fs::remove_file(&path);

    // Server 1 flushes on a tight cadence; pay for a sweep, then wait
    // for the background flusher — not shutdown — to persist it.
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .snapshot(&path)
            .snapshot_interval(Duration::from_millis(50)),
    )
    .unwrap();
    let mut client = Client::new(server.addr());
    let report = client
        .request("POST", "/v1/run")
        .body(&small_sweep(23))
        .send()
        .unwrap()
        .expect_status(200);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !path.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "periodic flusher never wrote {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Server 2 warm-boots from the mid-run flush while server 1 is
    // still alive — the abrupt-death story: whatever was flushed last
    // is enough to replay the sweep without re-executing it.
    let warm = Server::start(ServeConfig::default().addr("127.0.0.1:0").snapshot(&path)).unwrap();
    let mut warm_client = Client::new(warm.addr());
    let stats = warm_client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert!(
        class_stat(&stats, "sweeps", "entries") > 0,
        "warm boot restored the flushed sweep cache"
    );
    let misses_at_boot = class_stat(&stats, "sweeps", "misses");
    let replay = warm_client
        .request("POST", "/v1/run")
        .body(&small_sweep(23))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(replay.render(), report.render(), "deterministic replay");
    let stats = warm_client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(
        class_stat(&stats, "sweeps", "misses"),
        misses_at_boot,
        "the warm-booted sweep executed nothing"
    );
    warm.shutdown();
    server.shutdown();
}

fn repair_lot(dies: u64) -> Json {
    Json::obj([
        ("type", Json::str("repair")),
        (
            "cells",
            Json::Arr(vec![cell_fields("inv"), cell_fields("nand2")]),
        ),
        ("dies", Json::from(dies)),
        ("seed", Json::from(0xB0BBAu64)),
        ("spares", Json::from(2u64)),
        (
            "params",
            Json::obj([
                ("metallic_fraction", Json::from(0.05)),
                ("misposition_fraction", Json::from(0.2)),
            ]),
        ),
    ])
}

#[test]
fn repair_lot_streams_dies_and_reuses_overlap() {
    let server = server();
    let mut client = Client::new(server.addr());

    // A 1000-die lot over the wire: the start event announces the lot
    // size, every die arrives as its own row in order, and the terminal
    // payload carries the assembled report.
    let mut total = 0;
    let mut rows = 0u64;
    let mut done = None;
    client
        .submit_and_stream(&repair_lot(1000), Format::Json, |event| match event {
            StreamEvent::Start { total: t, .. } => total = t,
            StreamEvent::Row { index, row } => {
                assert_eq!(index, rows, "dies stream in order");
                assert_eq!(row.get("die").and_then(Json::as_u64), Some(rows));
                rows += 1;
            }
            StreamEvent::Done(result) => done = Some(result),
            other => panic!("unexpected event {other:?}"),
        })
        .unwrap();
    assert_eq!(total, 1000);
    assert_eq!(rows, 1000, "every die was streamed");
    let done = done.expect("terminal done event");
    assert_eq!(done.get("type").unwrap().as_str(), Some("repair"));
    assert_eq!(done.get("dies").unwrap().as_arr().unwrap().len(), 1000);

    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    let hits = class_stat(&stats, "repairs", "hits");
    let misses = class_stat(&stats, "repairs", "misses");

    // Replaying the identical lot is one pure whole-report hit.
    let replay = client
        .request("POST", "/v1/run")
        .body(&repair_lot(1000))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(replay.get("dies").unwrap().as_arr().unwrap().len(), 1000);
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(class_stat(&stats, "repairs", "hits"), hits + 1);
    assert_eq!(
        class_stat(&stats, "repairs", "misses"),
        misses,
        "no die re-ran"
    );

    // Growing the lot to 1200 dies reuses all 1000 cached dies and
    // executes only the 200 new ones (plus the grown report itself).
    let grown = client
        .request("POST", "/v1/run")
        .body(&repair_lot(1200))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(grown.get("dies").unwrap().as_arr().unwrap().len(), 1200);
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(
        class_stat(&stats, "repairs", "hits"),
        hits + 1 + 1000,
        "the grown lot reused every previously repaired die"
    );
    assert_eq!(
        class_stat(&stats, "repairs", "misses"),
        misses + 200 + 1,
        "only the added dies (and the new report key) executed"
    );
    server.shutdown();
}

#[test]
fn binary_die_tables_reassemble_identical_to_json() {
    let server = server();
    let mut client = Client::new(server.addr());

    // Buffered: the binary die table decodes to exactly the JSON dies.
    let json_report = client
        .request("POST", "/v1/run")
        .body(&repair_lot(6))
        .send()
        .unwrap()
        .expect_status(200);
    let json_dies = json_report.get("dies").unwrap().as_arr().unwrap();
    let binary = client
        .request("POST", "/v1/run")
        .body(&repair_lot(6))
        .accept(Format::Binary)
        .send()
        .unwrap();
    assert_eq!(binary.status, 200);
    assert_eq!(binary.content_type, "application/x-cnfet-rows");
    let decoded = encode::decode_die_table(&binary.bytes).unwrap();
    assert_eq!(decoded.len(), json_dies.len());
    for (decoded, json) in decoded.iter().zip(json_dies) {
        assert_eq!(decoded.render(), json.render());
    }

    // Streamed: FRAME_DIE frames decode to the same dies too.
    let mut streamed = Vec::new();
    client
        .submit_and_stream(&repair_lot(6), Format::Binary, |event| {
            if let StreamEvent::Row { row, .. } = event {
                streamed.push(row);
            }
        })
        .unwrap();
    assert_eq!(streamed.len(), json_dies.len());
    for (streamed, json) in streamed.iter().zip(json_dies) {
        assert_eq!(streamed.render(), json.render());
    }
    server.shutdown();
}

/// A small co-optimization body: one cell, a 2-value tube axis,
/// fixed-seed cheap Monte-Carlo — 4 candidate evaluations per pass.
fn small_optimize(min_yield: f64) -> Json {
    Json::obj([
        ("type", Json::str("optimize")),
        ("cells", Json::Arr(vec![cell_fields("inv")])),
        (
            "grid",
            Json::obj([
                ("tube_counts", [6u64, 26].into_iter().collect::<Json>()),
                ("seeds", [7u64].into_iter().collect::<Json>()),
            ]),
        ),
        ("target", Json::obj([("min_yield", Json::from(min_yield))])),
        ("passes", Json::from(1u64)),
        ("metrics", Json::str("immunity")),
        ("mc", Json::obj([("tubes", Json::from(60u64))])),
    ])
}

#[test]
fn optimize_runs_streams_and_reuses_over_the_wire() {
    let server = server();
    let mut client = Client::new(server.addr());

    // Synchronous run: the buffered report carries the full trajectory.
    let report = client
        .request("POST", "/v1/run")
        .body(&small_optimize(0.9))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(report.get("type").unwrap().as_str(), Some("optimize"));
    let candidates = report.get("candidates").unwrap().as_arr().unwrap();
    assert_eq!(candidates.len(), 4, "2 tubes + 1 pitch + 1 metallic");
    assert!(report.get("best_index").unwrap().as_u64().is_some());

    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    let opt_misses = class_stat(&stats, "optimizations", "misses");
    let sweep_misses = class_stat(&stats, "sweeps", "misses");
    assert!(opt_misses > 0, "the search populated its class");

    // Streaming the identical search: the trajectory is a pure cache
    // hit, and every candidate back-fills as a row before `done`.
    let mut rows = 0u64;
    let mut done = None;
    client
        .submit_and_stream(&small_optimize(0.9), Format::Json, |event| match event {
            StreamEvent::Start { total, .. } => assert_eq!(total, 4),
            StreamEvent::Row { index, row } => {
                assert_eq!(index, rows, "candidates stream in schedule order");
                assert_eq!(row.get("index").and_then(Json::as_u64), Some(rows));
                assert!(row.get("axis").unwrap().as_str().is_some());
                rows += 1;
            }
            StreamEvent::Done(result) => done = Some(result),
            other => panic!("unexpected event {other:?}"),
        })
        .unwrap();
    assert_eq!(rows, 4, "every candidate was streamed");
    let done = done.expect("terminal done event");
    assert_eq!(
        done.render(),
        report.render(),
        "the streamed terminal payload is the buffered report"
    );

    // A widened-target search misses only its new trajectory key: every
    // candidate outcome is target-free, so no sweep corner re-executes —
    // the acceptance check, observed entirely through `/v1/stats`.
    client
        .request("POST", "/v1/run")
        .body(&small_optimize(0.5))
        .send()
        .unwrap()
        .expect_status(200);
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(
        class_stat(&stats, "optimizations", "misses"),
        opt_misses + 1,
        "only the widened trajectory key is new"
    );
    assert_eq!(
        class_stat(&stats, "sweeps", "misses"),
        sweep_misses,
        "no sweep corner re-executed"
    );

    // Non-finite / negative grid axes are a structured 400 naming the
    // offending element — never a cache entry.
    let bad = Json::obj([
        ("type", Json::str("optimize")),
        ("cells", Json::Arr(vec![cell_fields("inv")])),
        (
            "grid",
            Json::obj([(
                "pitch_scales",
                Json::Arr(vec![Json::from(1.0), Json::from(-2.0)]),
            )]),
        ),
    ]);
    let response = client.request("POST", "/v1/run").body(&bad).send().unwrap();
    assert_eq!(response.status, 400);
    let message = response
        .body
        .get("error")
        .unwrap()
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(
        message.starts_with("grid.pitch_scales[1]:"),
        "the 400 names the offending element: {message}"
    );
    server.shutdown();
}

/// A hierarchical adder-macro body: kind ∈ ripple|cla, width ∈ 8|32|64.
fn adder_macro(kind: &str, width: u64, seed: u64) -> Json {
    Json::obj([
        ("type", Json::str("macro")),
        ("kind", Json::str(kind)),
        ("width", Json::from(width)),
        ("seed", Json::from(seed)),
    ])
}

#[test]
fn adder_macros_round_trip_run_batch_and_submit() {
    let server = server();
    let mut client = Client::new(server.addr());

    // Synchronous run: the buffered report carries every bit slice plus
    // the hierarchical artifact sizes.
    let report = client
        .request("POST", "/v1/run")
        .body(&adder_macro("cla", 8, 5))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(report.get("type").unwrap().as_str(), Some("macro"));
    assert_eq!(report.get("kind").unwrap().as_str(), Some("cla"));
    assert_eq!(report.get("width").unwrap().as_u64(), Some(8));
    assert_eq!(report.get("fa_instances").unwrap().as_u64(), Some(8));
    let slices = report.get("slices").unwrap().as_arr().unwrap();
    assert_eq!(slices.len(), 8, "one row per bit");
    for (bit, slice) in slices.iter().enumerate() {
        assert_eq!(slice.get("bit").and_then(Json::as_u64), Some(bit as u64));
        assert!(slice.get("carry_delay_s").unwrap().as_f64().unwrap() > 0.0);
    }
    assert!(report.get("critical_path_s").unwrap().as_f64().unwrap() > 0.0);
    assert!(report.get("spice_len").unwrap().as_u64().unwrap() > 0);
    assert!(report.get("gds_len").unwrap().as_u64().unwrap() > 0);

    // Batch: a macro rides alongside other request types, in order.
    let results = client
        .request("POST", "/v1/batch")
        .body(&Json::obj([(
            "requests",
            Json::Arr(vec![cell("inv"), adder_macro("ripple", 8, 5)]),
        )]))
        .send()
        .unwrap()
        .expect_status(200);
    let results = results.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 2);
    let ripple = results[1].get("ok").expect("macro result");
    assert_eq!(ripple.get("type").unwrap().as_str(), Some("macro"));
    assert_eq!(ripple.get("kind").unwrap().as_str(), Some("ripple"));

    // Submit + poll: the non-blocking shape settles with the same report
    // (a pure cache hit now — the sync run above already paid for it).
    let submitted = client
        .request("POST", "/v1/submit")
        .body(&adder_macro("cla", 8, 5))
        .send()
        .unwrap()
        .expect_status(202);
    let id = submitted.get("jobs").unwrap().as_arr().unwrap()[0]
        .as_u64()
        .unwrap();
    let done = loop {
        let poll = client
            .request("GET", &format!("/v1/jobs/{id}"))
            .send()
            .unwrap()
            .expect_status(200);
        match poll.get("status").unwrap().as_str() {
            Some("pending") => std::thread::sleep(Duration::from_millis(5)),
            Some("done") => break poll,
            other => panic!("unexpected job status {other:?}"),
        }
    };
    assert_eq!(
        done.get("result").unwrap().render(),
        report.render(),
        "the submitted macro settles byte-identical to the buffered run"
    );

    // A width outside 8|32|64 is a structured 400 naming the field —
    // never a cache entry.
    let refused = client
        .request("POST", "/v1/run")
        .body(&adder_macro("cla", 7, 0))
        .send()
        .unwrap();
    assert_eq!(refused.status, 400);
    let message = refused
        .body
        .get("error")
        .unwrap()
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(
        message.starts_with("width: expected one of 8|32|64"),
        "the 400 names the offending field: {message}"
    );
    server.shutdown();
}

#[test]
fn macro_slices_stream_and_subcells_memoize() {
    let server = server();
    let mut client = Client::new(server.addr());

    // Cold stream: the start event announces the bit count, every slice
    // arrives as its own row in bit order, strictly before `done`.
    let mut total = 0;
    let mut rows = Vec::new();
    let mut done = None;
    client
        .submit_and_stream(
            &adder_macro("cla", 8, 99),
            Format::Json,
            |event| match event {
                StreamEvent::Start { total: t, .. } => total = t,
                StreamEvent::Row { index, row } => {
                    assert!(done.is_none(), "rows precede the terminal event");
                    assert_eq!(index, rows.len() as u64, "slices stream in order");
                    assert_eq!(row.get("bit").and_then(Json::as_u64), Some(index));
                    rows.push(row);
                }
                StreamEvent::Done(result) => done = Some(result),
                other => panic!("unexpected event {other:?}"),
            },
        )
        .unwrap();
    assert_eq!(total, 8);
    assert_eq!(rows.len(), 8, "every bit slice was streamed");
    let done = done.expect("terminal done event");

    // The buffered replay — a pure whole-macro hit now — matches the
    // streamed terminal payload, and a second stream back-fills the
    // same rows from the cache instead of re-executing slices.
    let buffered = client
        .request("POST", "/v1/run")
        .body(&adder_macro("cla", 8, 99))
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(buffered.render(), done.render());
    let mut replayed = Vec::new();
    client
        .submit_and_stream(&adder_macro("cla", 8, 99), Format::Json, |event| {
            if let StreamEvent::Row { row, .. } = event {
                replayed.push(row);
            }
        })
        .unwrap();
    assert_eq!(replayed.len(), 8);
    for (replayed, streamed) in replayed.iter().zip(&rows) {
        assert_eq!(replayed.render(), streamed.render());
    }

    // Sub-cell memoization, observed entirely through `/v1/stats`: the
    // first 64-bit macro pays for its sub-cell layouts; a second,
    // different 64-bit macro re-executes its own slices but generates
    // zero new cells — every sub-cell request is a hit on the shared
    // cell class.
    client
        .request("POST", "/v1/run")
        .body(&adder_macro("cla", 64, 99))
        .send()
        .unwrap()
        .expect_status(200);
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    let cell_misses = class_stat(&stats, "cell", "misses");
    let macro_misses = class_stat(&stats, "macros", "misses");
    client
        .request("POST", "/v1/run")
        .body(&adder_macro("ripple", 64, 99))
        .send()
        .unwrap()
        .expect_status(200);
    let stats = client
        .request("GET", "/v1/stats")
        .send()
        .unwrap()
        .expect_status(200);
    assert_eq!(
        class_stat(&stats, "cell", "misses"),
        cell_misses,
        "the second 64-bit macro generated zero new cells"
    );
    assert!(
        class_stat(&stats, "macros", "misses") > macro_misses,
        "the second macro was not a whole-report replay"
    );
    server.shutdown();
}

/// Sends raw bytes and returns the raw response — for malformed-HTTP
/// cases the [`Client`] cannot produce.
fn raw_request(addr: std::net::SocketAddr, bytes: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(bytes.as_bytes()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}
