//! Integration tests for the wire layer: a real server on an ephemeral
//! port, driven over TCP by the bundled [`Client`].

use cnfet_serve::json::Json;
use cnfet_serve::{Client, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server() -> Server {
    Server::start(ServeConfig::default().addr("127.0.0.1:0")).expect("bind ephemeral port")
}

fn cell(kind: &str) -> Json {
    Json::obj([("type", Json::str("cell")), ("kind", Json::str(kind))])
}

fn small_sweep(seed: u64) -> Json {
    Json::obj([
        ("type", Json::str("sweep")),
        (
            "cells",
            Json::Arr(vec![cell_fields("inv"), cell_fields("nand2")]),
        ),
        (
            "grid",
            Json::obj([
                ("tube_counts", [26u64, 10].into_iter().collect::<Json>()),
                ("seeds", [seed].into_iter().collect::<Json>()),
            ]),
        ),
        ("metrics", Json::str("immunity")),
        ("mc", Json::obj([("tubes", Json::from(100u64))])),
    ])
}

fn cell_fields(kind: &str) -> Json {
    Json::obj([("kind", Json::str(kind))])
}

fn class_stat(stats: &Json, class: &str, counter: &str) -> u64 {
    stats
        .get("classes")
        .and_then(|c| c.get(class))
        .and_then(|c| c.get(counter))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing classes.{class}.{counter}"))
}

#[test]
fn healthz_run_and_stats_round_trip() {
    let server = server();
    let mut client = Client::new(server.addr());

    let health = client.get("/v1/healthz").unwrap().expect_status(200);
    assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));

    let first = client
        .post("/v1/run", &cell("nand3"))
        .unwrap()
        .expect_status(200);
    assert_eq!(first.get("type").unwrap().as_str(), Some("cell"));
    assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
    // The paper's Figure 3(b) accounting survives the wire.
    assert_eq!(
        first.get("pun_active_area_l2").unwrap().as_f64(),
        Some(120.0)
    );

    let again = client
        .post("/v1/run", &cell("nand3"))
        .unwrap()
        .expect_status(200);
    assert_eq!(again.get("cached").unwrap().as_bool(), Some(true));

    let stats = client.get("/v1/stats").unwrap().expect_status(200);
    assert_eq!(class_stat(&stats, "cell", "hits"), 1);
    assert_eq!(class_stat(&stats, "cell", "misses"), 1);
    assert_eq!(class_stat(&stats, "cell", "entries"), 1);
    assert!(
        stats
            .get("server")
            .unwrap()
            .get("requests")
            .unwrap()
            .as_u64()
            >= Some(3)
    );

    let report = server.shutdown();
    assert!(report.requests_served >= 4);
    assert_eq!(report.jobs_canceled, 0);
}

#[test]
fn batch_preserves_order_and_carries_item_errors() {
    let server = server();
    let mut client = Client::new(server.addr());
    let body = Json::obj([(
        "requests",
        Json::Arr(vec![
            cell("inv"),
            Json::obj([
                ("type", Json::str("flow")),
                (
                    "source",
                    Json::obj([("verilog", Json::str("this is not verilog"))]),
                ),
                ("target", Json::str("s1")),
            ]),
            Json::obj([
                ("type", Json::str("immunity")),
                ("cell", cell_fields("inv")),
            ]),
        ]),
    )]);
    let results = client.post("/v1/batch", &body).unwrap().expect_status(200);
    let results = results.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[0].get("ok").unwrap().get("type").unwrap().as_str(),
        Some("cell")
    );
    // The failing flow answers in place, structured.
    let error = results[1].get("error").expect("error payload");
    assert_eq!(error.get("kind").unwrap().as_str(), Some("verilog"));
    assert_eq!(
        results[2]
            .get("ok")
            .unwrap()
            .get("immune")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    server.shutdown();
}

#[test]
fn submit_poll_and_job_expiry() {
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .job_ttl(Duration::from_millis(100)),
    )
    .unwrap();
    let mut client = Client::new(server.addr());

    let submitted = client
        .post("/v1/submit", &small_sweep(7))
        .unwrap()
        .expect_status(202);
    let jobs = submitted.get("jobs").unwrap().as_arr().unwrap();
    assert_eq!(jobs.len(), 1);
    let id = jobs[0].as_u64().unwrap();

    let done = loop {
        let poll = client
            .get(&format!("/v1/jobs/{id}"))
            .unwrap()
            .expect_status(200);
        match poll.get("status").unwrap().as_str() {
            Some("pending") => std::thread::sleep(Duration::from_millis(5)),
            Some("done") => break poll,
            other => panic!("unexpected job status {other:?}"),
        }
    };
    let result = done.get("result").unwrap();
    assert_eq!(result.get("type").unwrap().as_str(), Some("sweep"));
    assert_eq!(result.get("rows").unwrap().as_arr().unwrap().len(), 4);

    // Past the ttl the id is gone, exactly like one that never existed.
    std::thread::sleep(Duration::from_millis(150));
    let expired = client.get(&format!("/v1/jobs/{id}")).unwrap();
    assert_eq!(expired.status, 404);
    let missing = client.get("/v1/jobs/424242").unwrap();
    assert_eq!(missing.status, 404);
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_warm_cache() {
    let server = server();

    // Client A pays for the sweep...
    let mut a = Client::new(server.addr());
    let first = a
        .post("/v1/run", &small_sweep(1))
        .unwrap()
        .expect_status(200);
    let stats = a.get("/v1/stats").unwrap().expect_status(200);
    let misses_after_first = class_stat(&stats, "sweeps", "misses");
    let hits_after_first = class_stat(&stats, "sweeps", "hits");

    // ...and client B, a separate TCP connection, replays it for free.
    let mut b = Client::new(server.addr());
    let second = b
        .post("/v1/run", &small_sweep(1))
        .unwrap()
        .expect_status(200);
    assert_eq!(second.render(), first.render(), "identical replay");
    let stats = b.get("/v1/stats").unwrap().expect_status(200);
    assert_eq!(
        class_stat(&stats, "sweeps", "misses"),
        misses_after_first,
        "client B's sweep executed nothing"
    );
    assert_eq!(
        class_stat(&stats, "sweeps", "hits"),
        hits_after_first + 1,
        "client B's sweep was one pure whole-sweep hit"
    );
    server.shutdown();
}

#[test]
fn tran_requests_run_the_mna_engine_over_the_wire() {
    let server = server();
    let mut client = Client::new(server.addr());

    // An RC charge through one time constant: out ≈ 1 − e⁻¹.
    let request = Json::obj([
        ("type", Json::str("tran")),
        (
            "deck",
            Json::str("V1 in 0 PWL(0 0 1e-12 1)\nR1 in out 1k\nC1 out 0 1p\n.end"),
        ),
        ("dt", Json::from(1e-11)),
        ("t_stop", Json::from(1e-9)),
        ("probes", Json::Arr(vec![Json::str("out")])),
    ]);
    let result = client.post("/v1/run", &request).unwrap().expect_status(200);
    assert_eq!(result.get("type").unwrap().as_str(), Some("tran"));
    let points = result.get("points").unwrap().as_u64().unwrap();
    assert!(points > 10, "a real waveform came back ({points} points)");
    let out = result
        .get("probes")
        .unwrap()
        .get("out")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(out.len(), points as usize);
    let last = out.last().unwrap().as_f64().unwrap();
    assert!((last - 0.63).abs() < 0.01, "1τ RC charge, got {last}");

    // A deliberately singular deck — two voltage sources fighting over
    // one node — answers 422 with the structured singular kind.
    let singular = Json::obj([
        ("type", Json::str("tran")),
        ("deck", Json::str("V1 a 0 DC 1\nV2 a 0 DC 2\n.end")),
        ("dt", Json::from(1e-11)),
        ("t_stop", Json::from(1e-10)),
    ]);
    let refused = client.post("/v1/run", &singular).unwrap();
    assert_eq!(refused.status, 422);
    let error = refused.body.get("error").unwrap();
    assert_eq!(error.get("kind").unwrap().as_str(), Some("sim_singular"));

    // An unknown probe name is a deck-level failure, kind `deck`.
    let bad_probe = Json::obj([
        ("type", Json::str("tran")),
        ("deck", Json::str("V1 a 0 DC 1\nR1 a 0 1k\n.end")),
        ("dt", Json::from(1e-11)),
        ("t_stop", Json::from(1e-10)),
        ("probes", Json::Arr(vec![Json::str("nope")])),
    ]);
    let refused = client.post("/v1/run", &bad_probe).unwrap();
    assert_eq!(refused.status, 422);
    let error = refused.body.get("error").unwrap();
    assert_eq!(error.get("kind").unwrap().as_str(), Some("deck"));
    assert!(error
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("nope"));
    server.shutdown();
}

#[test]
fn json_escaping_survives_the_round_trip() {
    let server = server();
    let mut client = Client::new(server.addr());
    // A cell name exercising quotes, backslashes, control characters,
    // and non-ASCII — it must come back byte-identical.
    let name = "INV \"quoted\" back\\slash\nnewline\ttab λ→😀";
    let request = Json::obj([
        ("type", Json::str("cell")),
        ("kind", Json::str("inv")),
        ("name", Json::str(name)),
    ]);
    let result = client.post("/v1/run", &request).unwrap().expect_status(200);
    assert_eq!(result.get("name").unwrap().as_str(), Some(name));
    server.shutdown();
}

#[test]
fn malformed_requests_answer_structured_400s() {
    let server = server();
    let mut client = Client::new(server.addr());

    // Broken JSON: the error names the byte position.
    let response = client.post("/v1/run", &Json::str("placeholder")).unwrap();
    assert_eq!(response.status, 400, "a bare string is not a request");
    let raw = raw_request(
        server.addr(),
        "POST /v1/run HTTP/1.1\r\nconnection: close\r\ncontent-length: 9\r\n\r\n{\"type\": ",
    );
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("\"position\":9"), "{raw}");

    // Well-formed JSON, semantically wrong: the error names the field.
    let response = client
        .post(
            "/v1/run",
            &Json::obj([("type", Json::str("cell")), ("kind", Json::str("frob"))]),
        )
        .unwrap();
    assert_eq!(response.status, 400);
    let message = response
        .body
        .get("error")
        .unwrap()
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(message.starts_with("kind:"), "{message}");

    // Unknown routes and unsupported methods.
    assert_eq!(client.get("/v1/frobnicate").unwrap().status, 404);
    assert_eq!(client.get("/v1/run").unwrap().status, 405);
    assert_eq!(client.post("/v1/healthz", &Json::Null).unwrap().status, 405);
    assert_eq!(client.get("/v1/jobs/notanumber").unwrap().status, 400);

    // A request that is not HTTP at all.
    let raw = raw_request(server.addr(), "EHLO wire\r\n\r\n");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    // Chunked framing is refused rather than half-parsed (which would
    // desync the keep-alive stream).
    let raw = raw_request(
        server.addr(),
        "POST /v1/run HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("transfer-encoding"), "{raw}");
    server.shutdown();
}

#[test]
fn head_and_foreign_methods_route_sanely() {
    let server = server();
    // HEAD answers like GET with no payload — the load-balancer probe.
    let raw = raw_request(
        server.addr(),
        "HEAD /v1/healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains("content-length: 0"), "{raw}");
    // Unsupported methods on known routes are 405, not 404.
    for request in [
        "PUT /v1/run HTTP/1.1\r\nconnection: close\r\n\r\n",
        "DELETE /v1/stats HTTP/1.1\r\nconnection: close\r\n\r\n",
        "POST /v1/jobs/1 HTTP/1.1\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
    ] {
        let raw = raw_request(server.addr(), request);
        assert!(raw.starts_with("HTTP/1.1 405"), "{request} -> {raw}");
    }
    server.shutdown();
}

#[test]
fn expect_100_continue_clients_get_their_nod() {
    // curl defaults to `Expect: 100-continue` for larger bodies and
    // holds the body until the server answers the interim 100.
    let server = server();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = cell("nand2").render();
    let head = format!(
        "POST /v1/run HTTP/1.1\r\nexpect: 100-continue\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    // Wait for the interim response before sending a single body byte.
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).unwrap();
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(body.as_bytes()).unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let response = String::from_utf8_lossy(&response);
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"kind\":\"nand2\""), "{response}");
    server.shutdown();
}

#[test]
fn submit_backpressure_answers_429_and_recovers() {
    // Capacity zero: always refused — deterministic backpressure.
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").job_capacity(0)).unwrap();
    let mut client = Client::new(server.addr());
    let refused = client.post("/v1/submit", &cell("inv")).unwrap();
    assert_eq!(refused.status, 429);
    assert_eq!(
        refused
            .body
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("backpressure")
    );
    server.shutdown();

    // Capacity one: refusals stop once the pending job settles.
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").job_capacity(1)).unwrap();
    let mut client = Client::new(server.addr());
    let first = client
        .post("/v1/submit", &small_sweep(2))
        .unwrap()
        .expect_status(202);
    let id = first.get("jobs").unwrap().as_arr().unwrap()[0]
        .as_u64()
        .unwrap();
    // Poll the job to completion, then the table has room again.
    loop {
        let poll = client
            .get(&format!("/v1/jobs/{id}"))
            .unwrap()
            .expect_status(200);
        if poll.get("status").unwrap().as_str() != Some("pending") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    client
        .post("/v1/submit", &cell("inv"))
        .unwrap()
        .expect_status(202);
    server.shutdown();
}

#[test]
fn graceful_shutdown_cancels_queued_jobs() {
    // One engine worker and a queue of slow, distinct sweeps: shutdown
    // must complete promptly, and the jobs that never ran settle as
    // canceled rather than hanging anything.
    let server =
        Server::start(ServeConfig::default().addr("127.0.0.1:0").engine_workers(1)).unwrap();
    let mut client = Client::new(server.addr());
    for seed in 100..106 {
        let slow = Json::obj([
            ("type", Json::str("sweep")),
            ("cells", Json::Arr(vec![cell_fields("aoi22")])),
            (
                "grid",
                Json::obj([("seeds", [seed as u64].into_iter().collect::<Json>())]),
            ),
            ("metrics", Json::str("immunity")),
            ("mc", Json::obj([("tubes", Json::from(50_000u64))])),
        ]);
        client.post("/v1/submit", &slow).unwrap().expect_status(202);
    }
    let report = server.shutdown();
    assert!(
        report.jobs_canceled >= 1,
        "queued jobs settle as canceled on shutdown (got {report:?})"
    );
}

#[test]
fn shutdown_refuses_new_connections() {
    let server = server();
    let addr = server.addr();
    let mut client = Client::new(addr);
    client.get("/v1/healthz").unwrap().expect_status(200);
    server.shutdown();
    // The listener is gone: connects fail outright (or are reset before
    // a response arrives).
    let after = TcpStream::connect(addr).and_then(|mut stream| {
        stream.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n")?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut buf = [0u8; 1];
        match stream.read(&mut buf) {
            Ok(0) => Err(std::io::Error::other("closed")),
            Ok(_) => Ok(()),
            Err(e) => Err(e),
        }
    });
    assert!(after.is_err(), "no server behind the address anymore");
}

/// Sends raw bytes and returns the raw response — for malformed-HTTP
/// cases the [`Client`] cannot produce.
fn raw_request(addr: std::net::SocketAddr, bytes: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(bytes.as_bytes()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}
