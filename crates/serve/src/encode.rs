//! The negotiated binary result encoding: length-prefixed corner rows
//! for bulk sweep responses and the frame format of
//! `GET /v1/jobs/{id}/stream`.
//!
//! JSON stays the protocol's default; a client opts in per request with
//! `Accept: application/x-cnfet-rows`. Binary form is defined **only**
//! for sweep and repair results (the thousands-of-rows payloads worth
//! compacting); requesting it anywhere else answers `406`.
//!
//! # Row table (`application/x-cnfet-rows`)
//!
//! A buffered binary sweep response (`POST /v1/run`) is a *row table*:
//!
//! ```text
//! magic   4 bytes  "CNR1"
//! count   u32 LE   number of rows
//! row*    u32 LE   payload length, then the row payload
//! ```
//!
//! A buffered binary repair response is a *die table* with the same
//! shape under its own magic:
//!
//! ```text
//! magic   4 bytes  "CND1"
//! count   u32 LE   number of dies
//! die*    u32 LE   payload length, then the die payload
//! ```
//!
//! # Row payload
//!
//! Little-endian throughout; strings are `u32` length + UTF-8 bytes;
//! optional fields are a presence byte (`0`/`1`) followed by the value
//! when present. Fields appear in exactly the order of the JSON row
//! object, derived metrics included, so either encoding of a row carries
//! the same information:
//!
//! ```text
//! cell str · kind str · strength u8 · corner (tubes u32, pitch f64,
//! metallic f64, seed u64) · mc_tubes ?u64 · mc_failures ?u64 ·
//! immune ?u8 · metallic_yield ?f64 · delay_s ?f64 · energy_j ?f64 ·
//! yield ?f64 · liberty ?str · waveform ?str
//! ```
//!
//! # Die payload
//!
//! Same conventions; `assignment` is a `u32` count of per-cell entries,
//! each an optional `u32` site index:
//!
//! ```text
//! die u64 · sites u32 · defective_sites u32 · repaired u8 ·
//! solver str · spares_used u32 · assignment (count u32, ?u32*)
//! ```
//!
//! Floats are raw IEEE-754 bits, so binary responses inherit the
//! engine's byte-for-byte determinism contract directly.
//!
//! # Stream frames
//!
//! A `/stream` response is a sequence of frames, each
//! `[u8 tag][u32 LE length][payload]`:
//!
//! * [`FRAME_EVENT`] (`0x01`) — a JSON event object (`start`, `done`,
//!   `error`, `canceled`, and optimize-candidate `row` events, which
//!   have no dedicated binary payload), exactly the ndjson line of the
//!   JSON stream;
//! * [`FRAME_ROW`] (`0x02`) — one binary corner-row payload;
//! * [`FRAME_DIE`] (`0x03`) — one binary die payload.
//!
//! [`decode_row`] / [`decode_die`] reconstruct the *same* [`Json`]
//! object [`crate::wire`] renders, so a client can consume either
//! encoding through one code path — and a reassembled binary stream is
//! field-for-field identical to the buffered JSON report.

use crate::json::Json;
use crate::wire;
use cnfet::repair::DieOutcome;
use cnfet::sweep::{CornerRow, VariationCorner};

/// Magic prefix of a binary row table.
pub const ROW_TABLE_MAGIC: [u8; 4] = *b"CNR1";

/// Magic prefix of a binary die table.
pub const DIE_TABLE_MAGIC: [u8; 4] = *b"CND1";

/// Stream frame tag: JSON event payload.
pub const FRAME_EVENT: u8 = 0x01;

/// Stream frame tag: binary corner-row payload.
pub const FRAME_ROW: u8 = 0x02;

/// Stream frame tag: binary die payload.
pub const FRAME_DIE: u8 = 0x03;

/// The content type of binary row tables and binary stream frames.
pub const BINARY_CONTENT_TYPE: &str = "application/x-cnfet-rows";

/// The negotiated result format of one request.
///
/// [`Json`](Format::Json) is the protocol default (an absent or
/// wildcard `Accept` header selects it); [`Binary`](Format::Binary) is
/// the row-table/frame encoding of this module, selected with
/// `Accept: application/x-cnfet-rows`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// JSON bodies; `/stream` responses are ndjson event lines.
    Json,
    /// Length-prefixed binary rows; `/stream` responses are frames.
    Binary,
}

impl Format {
    /// The `Accept`/`Content-Type` media type naming this format.
    pub fn media_type(self) -> &'static str {
        match self {
            Format::Json => "application/json",
            Format::Binary => BINARY_CONTENT_TYPE,
        }
    }
}

/// Why a binary payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong, with the offending byte offset where useful.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DecodeError {}

fn corrupt(message: impl Into<String>) -> DecodeError {
    DecodeError {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt<T>(buf: &mut Vec<u8>, value: Option<T>, put: impl FnOnce(&mut Vec<u8>, T)) {
    match value {
        Some(v) => {
            buf.push(1);
            put(buf, v);
        }
        None => buf.push(0),
    }
}

/// Encodes one row payload (no length prefix — the table and the frame
/// formats add their own).
pub fn encode_row(row: &CornerRow) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_str(&mut buf, &row.cell);
    put_str(&mut buf, &wire::kind_name(row.kind));
    buf.push(row.strength);
    put_u32(&mut buf, row.corner.tubes_per_4lambda);
    put_f64(&mut buf, row.corner.pitch_scale);
    put_f64(&mut buf, row.corner.metallic_fraction);
    put_u64(&mut buf, row.corner.seed);
    put_opt(&mut buf, row.mc_tubes, |b, v| put_u64(b, v as u64));
    put_opt(&mut buf, row.mc_failures, |b, v| put_u64(b, v as u64));
    put_opt(&mut buf, row.immune, |b, v| b.push(v as u8));
    put_opt(&mut buf, row.metallic_yield, put_f64);
    put_opt(&mut buf, row.delay_s(), put_f64);
    put_opt(&mut buf, row.energy_j(), put_f64);
    put_opt(&mut buf, row.yield_frac(), put_f64);
    put_opt(&mut buf, row.liberty.as_deref(), put_str);
    put_opt(&mut buf, row.waveform.as_deref(), put_str);
    buf
}

/// Encodes a whole sweep's rows as a row table.
pub fn encode_row_table(rows: &[CornerRow]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&ROW_TABLE_MAGIC);
    put_u32(&mut buf, rows.len() as u32);
    for row in rows {
        let payload = encode_row(row);
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(&payload);
    }
    buf
}

/// Encodes one die payload (no length prefix — the table and the frame
/// formats add their own).
pub fn encode_die(outcome: &DieOutcome) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    put_u64(&mut buf, outcome.die);
    put_u32(&mut buf, outcome.sites);
    put_u32(&mut buf, outcome.defective_sites);
    buf.push(outcome.repaired as u8);
    put_str(&mut buf, outcome.solver);
    put_u32(&mut buf, outcome.spares_used);
    put_u32(&mut buf, outcome.assignment.len() as u32);
    for &site in &outcome.assignment {
        put_opt(&mut buf, site, put_u32);
    }
    buf
}

/// Encodes a whole repair lot's die outcomes as a die table.
pub fn encode_die_table(dies: &[DieOutcome]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&DIE_TABLE_MAGIC);
    put_u32(&mut buf, dies.len() as u32);
    for outcome in dies {
        let payload = encode_die(outcome);
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(&payload);
    }
    buf
}

/// Wraps a payload as one stream frame.
pub fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.push(tag);
    put_u32(&mut buf, payload.len() as u32);
    buf.extend_from_slice(payload);
    buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("truncated at byte {}", self.at)))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => read(self).map(Some),
            b => Err(corrupt(format!("invalid presence byte {b}"))),
        }
    }
}

/// Decodes one row payload into the same [`Json`] object the JSON
/// encoding renders for that row.
pub fn decode_row(bytes: &[u8]) -> Result<Json, DecodeError> {
    let mut r = Reader { bytes, at: 0 };
    let cell = r.string()?;
    let kind = r.string()?;
    let strength = r.u8()?;
    let corner = VariationCorner {
        tubes_per_4lambda: r.u32()?,
        pitch_scale: r.f64()?,
        metallic_fraction: r.f64()?,
        seed: r.u64()?,
    };
    let row = Json::obj([
        ("cell", Json::str(cell)),
        ("kind", Json::str(kind)),
        ("strength", Json::from(u64::from(strength))),
        ("corner", wire::render_corner(&corner)),
        ("mc_tubes", Json::from(r.opt(Reader::u64)?)),
        ("mc_failures", Json::from(r.opt(Reader::u64)?)),
        (
            "immune",
            Json::from(r.opt(|r| match r.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                b => Err(corrupt(format!("invalid bool byte {b}"))),
            })?),
        ),
        ("metallic_yield", Json::from(r.opt(Reader::f64)?)),
        ("delay_s", Json::from(r.opt(Reader::f64)?)),
        ("energy_j", Json::from(r.opt(Reader::f64)?)),
        ("yield", Json::from(r.opt(Reader::f64)?)),
        ("liberty", Json::from(r.opt(Reader::string)?)),
        ("waveform", Json::from(r.opt(Reader::string)?)),
    ]);
    if r.at != bytes.len() {
        return Err(corrupt(format!(
            "{} trailing bytes in row",
            bytes.len() - r.at
        )));
    }
    Ok(row)
}

/// Decodes a row table into the JSON row objects it encodes.
pub fn decode_row_table(bytes: &[u8]) -> Result<Vec<Json>, DecodeError> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != ROW_TABLE_MAGIC {
        return Err(corrupt("bad row table magic"));
    }
    let count = r.u32()? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let len = r.u32()? as usize;
        rows.push(decode_row(r.take(len)?)?);
    }
    if r.at != bytes.len() {
        return Err(corrupt("trailing bytes after row table"));
    }
    Ok(rows)
}

/// Decodes one die payload into the same [`Json`] object the JSON
/// encoding renders for that die.
pub fn decode_die(bytes: &[u8]) -> Result<Json, DecodeError> {
    let mut r = Reader { bytes, at: 0 };
    let die = r.u64()?;
    let sites = r.u32()?;
    let defective_sites = r.u32()?;
    let repaired = match r.u8()? {
        0 => false,
        1 => true,
        b => return Err(corrupt(format!("invalid bool byte {b}"))),
    };
    let solver = r.string()?;
    let spares_used = r.u32()?;
    let count = r.u32()? as usize;
    let mut assignment = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        assignment.push(Json::from(r.opt(Reader::u32)?.map(u64::from)));
    }
    let row = Json::obj([
        ("die", Json::from(die)),
        ("sites", Json::from(u64::from(sites))),
        ("defective_sites", Json::from(u64::from(defective_sites))),
        ("repaired", Json::from(repaired)),
        ("solver", Json::str(solver)),
        ("spares_used", Json::from(u64::from(spares_used))),
        ("assignment", Json::Arr(assignment)),
    ]);
    if r.at != bytes.len() {
        return Err(corrupt(format!(
            "{} trailing bytes in die",
            bytes.len() - r.at
        )));
    }
    Ok(row)
}

/// Decodes a die table into the JSON die objects it encodes.
pub fn decode_die_table(bytes: &[u8]) -> Result<Vec<Json>, DecodeError> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != DIE_TABLE_MAGIC {
        return Err(corrupt("bad die table magic"));
    }
    let count = r.u32()? as usize;
    let mut dies = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let len = r.u32()? as usize;
        dies.push(decode_die(r.take(len)?)?);
    }
    if r.at != bytes.len() {
        return Err(corrupt("trailing bytes after die table"));
    }
    Ok(dies)
}

/// Splits one complete frame off the front of `buf`, returning
/// `(tag, payload, bytes_consumed)`; `None` while the frame is still
/// arriving. Malformed tags surface on decode of the payload, not here —
/// the framing itself is only lengths.
pub fn read_frame(buf: &[u8]) -> Option<(u8, &[u8], usize)> {
    if buf.len() < 5 {
        return None;
    }
    let len = u32::from_le_bytes(buf[1..5].try_into().unwrap()) as usize;
    let end = 5usize.checked_add(len)?;
    if buf.len() < end {
        return None;
    }
    Some((buf[0], &buf[5..end], end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet::core::StdCellKind;
    use cnfet::dk::TimingTable;

    fn row(seed: u64) -> CornerRow {
        CornerRow {
            cell: "AOI22_X1".into(),
            kind: StdCellKind::Aoi22,
            strength: 1,
            corner: VariationCorner {
                tubes_per_4lambda: 10,
                pitch_scale: 1.3,
                metallic_fraction: 0.02,
                seed,
            },
            mc_tubes: Some(200),
            mc_failures: Some(7),
            immune: Some(true),
            metallic_yield: Some(0.93),
            timing: Some(TimingTable {
                loads_f: vec![1e-15],
                delays_s: vec![2.5e-12],
                energy_j: 3e-16,
            }),
            liberty: None,
            waveform: Some("0 0.0\n1e-12 0.4\n".into()),
        }
    }

    #[test]
    fn binary_row_decodes_to_the_json_rendering() {
        for seed in [0, 7, u64::from(u32::MAX)] {
            let row = row(seed);
            let decoded = decode_row(&encode_row(&row)).expect("row decodes");
            assert_eq!(decoded.render(), wire::render_row(&row).render());
        }
    }

    #[test]
    fn row_tables_round_trip_and_refuse_garbage() {
        let rows = vec![row(1), row(2), row(3)];
        let table = encode_row_table(&rows);
        let decoded = decode_row_table(&table).expect("table decodes");
        assert_eq!(decoded.len(), 3);
        for (json, row) in decoded.iter().zip(&rows) {
            assert_eq!(json.render(), wire::render_row(row).render());
        }
        assert!(decode_row_table(&table[..table.len() - 1]).is_err());
        assert!(decode_row_table(b"NOPE").is_err());
        let mut trailing = table.clone();
        trailing.push(0);
        assert!(decode_row_table(&trailing).is_err());
    }

    fn die(index: u64, repaired: bool) -> DieOutcome {
        DieOutcome {
            die: index,
            sites: 4,
            defective_sites: 1,
            repaired,
            solver: if repaired { "matching" } else { "sat" },
            spares_used: u32::from(repaired),
            assignment: if repaired {
                vec![Some(0), Some(2), Some(3)]
            } else {
                vec![None, None, None]
            },
        }
    }

    #[test]
    fn binary_die_decodes_to_the_json_rendering() {
        for (index, repaired) in [(0, true), (7, false), (u64::MAX, true)] {
            let outcome = die(index, repaired);
            let decoded = decode_die(&encode_die(&outcome)).expect("die decodes");
            assert_eq!(decoded.render(), wire::render_die_row(&outcome).render());
        }
    }

    #[test]
    fn die_tables_round_trip_and_refuse_garbage() {
        let dies = vec![die(0, true), die(1, false), die(2, true)];
        let table = encode_die_table(&dies);
        let decoded = decode_die_table(&table).expect("table decodes");
        assert_eq!(decoded.len(), 3);
        for (json, outcome) in decoded.iter().zip(&dies) {
            assert_eq!(json.render(), wire::render_die_row(outcome).render());
        }
        assert!(decode_die_table(&table[..table.len() - 1]).is_err());
        assert!(decode_die_table(b"NOPE").is_err());
        // A row table is not a die table, and vice versa.
        assert!(decode_die_table(&encode_row_table(&[row(1)])).is_err());
        assert!(decode_row_table(&table).is_err());
    }

    #[test]
    fn frames_reassemble_across_arbitrary_splits() {
        let event = br#"{"event":"start","total":3}"#;
        let payload = encode_row(&row(9));
        let mut wire_bytes = frame(FRAME_EVENT, event);
        wire_bytes.extend_from_slice(&frame(FRAME_ROW, &payload));

        // Feed the stream one byte at a time through a reassembly buffer.
        let mut buf = Vec::new();
        let mut frames = Vec::new();
        for &b in &wire_bytes {
            buf.push(b);
            while let Some((tag, body, consumed)) = read_frame(&buf) {
                frames.push((tag, body.to_vec()));
                buf.drain(..consumed);
            }
        }
        assert!(buf.is_empty());
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], (FRAME_EVENT, event.to_vec()));
        assert_eq!(frames[1].0, FRAME_ROW);
        assert_eq!(
            decode_row(&frames[1].1).unwrap().render(),
            wire::render_row(&row(9)).render()
        );
    }
}
