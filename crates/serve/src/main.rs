//! The `cnfet-serve` binary: flag parsing around
//! [`Server::start`](cnfet_serve::Server::start), serving until SIGINT
//! terminates the process.

use cnfet_serve::{ServeConfig, Server};
use std::time::Duration;

const USAGE: &str = "\
cnfet-serve — serve the cnfet Session engine over HTTP/1.1 + JSON

USAGE:
    cnfet-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>        listen address        [default: 127.0.0.1:8373]
    --cache-capacity <N>      per-class cache bound [default: 4096]
    --cache-shards <N>        cache lock stripes    [default: 16]
    --workers <N>             HTTP worker threads   [default: available cores]
    --engine-workers <N>      engine pool threads   [default: available cores]
    --job-capacity <N>        pending submit bound  [default: 1024]
    --job-ttl-secs <N>        settled-job expiry    [default: 300]
    --snapshot <PATH>         warm-boot from PATH and persist the sweep
                              cache there periodically and on shutdown
    --snapshot-interval-secs <N>
                              periodic snapshot flush cadence [default: 60]
    -h, --help                print this help
";

fn parse_flags(args: impl Iterator<Item = String>) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if flag == "-h" || flag == "--help" {
            return Err(String::new());
        }
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--cache-capacity" => config.cache_capacity = parse(&value("--cache-capacity")?)?,
            "--cache-shards" => config.cache_shards = parse(&value("--cache-shards")?)?,
            "--workers" => config.workers = parse(&value("--workers")?)?,
            "--engine-workers" => config.engine_workers = parse(&value("--engine-workers")?)?,
            "--job-capacity" => config.job_capacity = parse(&value("--job-capacity")?)?,
            "--job-ttl-secs" => {
                config.job_ttl = Duration::from_secs(parse(&value("--job-ttl-secs")?)? as u64);
            }
            "--snapshot" => config.snapshot = Some(value("--snapshot")?.into()),
            "--snapshot-interval-secs" => {
                config.snapshot_interval =
                    Duration::from_secs(parse(&value("--snapshot-interval-secs")?)? as u64);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(config)
}

fn parse(value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("expected a number, got `{value}`"))
}

fn main() {
    let config = match parse_flags(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!("cnfet-serve listening on http://{}", server.addr());
    println!(
        "  POST /v1/run /v1/batch /v1/submit · GET /v1/jobs/{{id}} /v1/jobs/{{id}}/stream /v1/stats /v1/healthz"
    );
    // Serve until the process is terminated; the worker threads (and,
    // with --snapshot, the server's own periodic flusher) do the rest.
    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<ServeConfig, String> {
        parse_flags(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_every_flag() {
        let config = flags(&[
            "--addr",
            "0.0.0.0:9000",
            "--cache-capacity",
            "128",
            "--cache-shards",
            "4",
            "--workers",
            "3",
            "--engine-workers",
            "2",
            "--job-capacity",
            "7",
            "--job-ttl-secs",
            "60",
            "--snapshot",
            "/tmp/sweeps.snap",
            "--snapshot-interval-secs",
            "5",
        ])
        .unwrap();
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.cache_capacity, 128);
        assert_eq!(config.cache_shards, 4);
        assert_eq!(config.workers, 3);
        assert_eq!(config.engine_workers, 2);
        assert_eq!(config.job_capacity, 7);
        assert_eq!(config.job_ttl, Duration::from_secs(60));
        assert_eq!(
            config.snapshot.as_deref(),
            Some(std::path::Path::new("/tmp/sweeps.snap"))
        );
        assert_eq!(config.snapshot_interval, Duration::from_secs(5));
    }

    #[test]
    fn rejects_unknown_and_valueless_flags() {
        assert!(flags(&["--frobnicate"]).unwrap_err().contains("unknown"));
        assert!(flags(&["--workers"]).unwrap_err().contains("missing value"));
        assert!(flags(&["--workers", "lots"])
            .unwrap_err()
            .contains("expected a number"));
        assert_eq!(flags(&["--help"]).unwrap_err(), "");
    }
}
