//! A hand-rolled, serde-free JSON module: a [`Json`] value tree, a
//! recursive-descent parser with byte-accurate error positions, and a
//! compact serializer with full string escaping.
//!
//! The workspace builds offline with zero external dependencies, so the
//! wire layer cannot lean on `serde`/`serde_json`. This module covers
//! exactly what the protocol needs:
//!
//! * every JSON type (`null`, booleans, numbers, strings, arrays,
//!   objects), objects preserving insertion order;
//! * parse errors that carry the byte offset they occurred at, surfaced
//!   to clients in `400` payloads as `error.position`;
//! * escaping on output (`"` `\` control characters) and un-escaping on
//!   input, including `\uXXXX` with surrogate pairs — liberty snippets
//!   and user-supplied cell names survive a round trip byte-exactly.
//!
//! Numbers are IEEE `f64` throughout (the JSON data model): integers are
//! exact up to 2^53, which comfortably covers every id, seed, and
//! counter the protocol carries.

use std::fmt;

/// A parsed JSON value. Object members keep their insertion order, so
/// serializing a freshly-built object renders fields in the order they
/// were pushed.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (IEEE `f64`; integers exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks a member up by key (objects only; first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a number
    /// with an exact non-negative integral value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes the value compactly (no whitespace). Non-finite
    /// numbers, which JSON cannot represent, render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

/// JSON numbers cannot be `NaN`/`±inf`; render those as `null` so the
/// output always parses.
fn write_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

/// Writes `s` quoted, escaping `"` `\` and all control characters (the
/// named short escapes where JSON has them, `\u00XX` otherwise).
fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parse failure, carrying the byte offset it occurred at. Surfaced to
/// HTTP clients as the `error.position` field of a `400` payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

/// Nesting bound: a hostile request cannot blow the parse stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err(format!("invalid number `{text}`")))
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes is copied as one UTF-8 slice.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let scalar = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a `\uXXXX` low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("expected low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(scalar).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            _ => return Err(self.err(format!("invalid escape `\\{}`", c as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let doc = r#"{"a":null,"b":true,"c":-1500.5,"d":"x","e":[1,2],"f":{"g":0}}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.render(), doc, "insertion order survives");
        assert_eq!(value.get("c").unwrap().as_f64(), Some(-1500.5));
        // Exponent forms parse (and re-render in decimal form).
        assert_eq!(parse("-1.5e3").unwrap().render(), "-1500");
        assert_eq!(value.get("e").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" back\\slash \n\r\t \u{08}\u{0c} nul\u{0} emoji\u{1F600} λ";
        let rendered = Json::str(nasty).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(nasty));
        // Surrogate-pair escapes decode too.
        assert_eq!(
            parse(r#""\ud83d\ude00 \u03bb""#).unwrap().as_str(),
            Some("\u{1F600} \u{3bb}")
        );
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse(r#"{"a": }"#).unwrap_err();
        assert_eq!(e.position, 6);
        assert!(parse("[1,2").unwrap_err().message.contains("`,` or `]`"));
        assert!(parse("").unwrap_err().message.contains("end of input"));
        assert!(parse("1 2").unwrap_err().message.contains("trailing"));
        assert!(parse(r#""\ud800x""#)
            .unwrap_err()
            .message
            .contains("surrogate"));
        assert!(parse("nul").is_err());
        assert!(parse("01e").is_err());
    }

    #[test]
    fn hostile_nesting_is_bounded() {
        let deep = "[".repeat(10_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"));
    }

    #[test]
    fn numbers_are_exact_for_ids() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(Json::from(u64::from(u32::MAX)).render(), "4294967295");
    }
}
