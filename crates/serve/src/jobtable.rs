//! The bounded job table behind `POST /v1/submit`, `GET /v1/jobs/{id}`,
//! and `GET /v1/jobs/{id}/stream`.
//!
//! A submit enqueues the request on the session's non-blocking pool
//! ([`Session::submit`](cnfet::Session::submit)) and records the returned
//! [`JobHandle`] under a fresh id. Polling a job
//! harvests the handle at most once and caches the rendered outcome, so
//! repeated `GET`s are cheap and always agree.
//!
//! Ids are handed out sequentially, which is what lets the table answer
//! *expired* distinctly from *never existed*: an absent id below the
//! next fresh id must have been dropped by TTL expiry ([`Polled::Expired`]
//! → `410 Gone`), while an id the table never issued is
//! [`Polled::Unknown`] (`404`).
//!
//! Every job also carries a [`Progress`] handle. For composite requests
//! the table attaches the matching observer before submitting — a
//! [`RowObserver`] on sweeps, a [`DieObserver`] on repair lots, a
//! [`CandidateObserver`] on optimize searches, a [`SliceObserver`] on
//! adder macros — so corner rows / die outcomes / candidate rows /
//! bit-slice outcomes land on the progress as the engine
//! harvests them — the feed under `/stream`. Whole-report cache hits
//! never execute (the observer stays silent); the missing rows are
//! back-filled from the final report when the job settles, so a
//! streamed job always delivers every row before its terminal event.
//!
//! Three bounds keep the table from growing without limit under load:
//!
//! * **capacity** — at most `capacity` *pending* jobs at once; a submit
//!   past the bound is refused (the server answers `429`) instead of
//!   queueing unboundedly when producers outpace the pool;
//! * **expiry** — resolved jobs are dropped `ttl` after resolving
//!   (their results have been deliverable for that long), counted in
//!   [`JobTableStats::expired`];
//! * **pending cap** — a job whose handle has not resolved within
//!   [`JobTable::pending_ttl`] is settled [`JobView::Canceled`] and
//!   counted in [`JobTableStats::expired`]. Expiry starts at
//!   `settled_at`, so without this cap a handle that never resolves (a
//!   wedged pool, a lost completion) would pin its entry — and its
//!   slice of `capacity` — forever.

use crate::json::Json;
use crate::wire;
use cnfet::repair::DieOutcome;
use cnfet::sweep::CornerRow;
use cnfet::{
    CandidateObserver, CandidateRow, CnfetError, DieObserver, JobHandle, RequestKind, ResponseKind,
    RowObserver, Session, SliceObserver, SliceOutcome,
};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// A settled job's client-visible outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum JobView {
    /// Finished; the rendered result summary.
    Done(Json),
    /// Failed; the HTTP status and structured error payload.
    Failed(u16, Json),
    /// Abandoned before producing a result (server shutdown).
    Canceled,
}

/// What polling an id revealed.
#[derive(Clone, Debug, PartialEq)]
pub enum Polled {
    /// The table never issued this id — `404`.
    Unknown,
    /// The id existed but its settled result passed the TTL — `410`.
    Expired,
    /// Still queued or executing, with backoff metadata for pollers.
    Pending {
        /// Milliseconds since the job was submitted.
        age_ms: u64,
        /// Jobs pending in the table right now (this one included) — a
        /// proxy for how far back in the queue the job may be.
        queued: usize,
    },
    /// Settled; replays the same outcome until expiry.
    Settled(JobView),
}

/// One streamed progress row: a sweep's corner row, a repair lot's die
/// outcome, or an optimize search's candidate row, in canonical report
/// order either way.
#[derive(Clone, Debug)]
pub enum StreamRow {
    /// One cell × corner row of an executing sweep.
    Corner(CornerRow),
    /// One die outcome of an executing repair lot.
    Die(DieOutcome),
    /// One evaluated candidate of an executing optimize search.
    Candidate(CandidateRow),
    /// One characterized bit slice of an executing adder macro.
    Slice(SliceOutcome),
}

/// The live row feed of one job, shared between the engine's observer
/// ([`RowObserver`] for sweeps, [`DieObserver`] for repair lots —
/// producers) and `/stream` handlers (consumers). Non-composite jobs
/// carry one too, with `total` 0 — a stream of no rows and one terminal
/// event.
pub struct Progress {
    total: usize,
    state: Mutex<ProgressState>,
    cv: Condvar,
}

struct ProgressState {
    rows: Vec<StreamRow>,
    finished: Option<JobView>,
}

impl Progress {
    fn new(total: usize) -> Progress {
        Progress {
            total,
            state: Mutex::new(ProgressState {
                rows: Vec::new(),
                finished: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Total rows this job will deliver (cells × corners for a sweep,
    /// dies for a repair lot; 0 for non-composite jobs).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Appends the next streamed row. Rows arrive in report order from
    /// the composite's single harvest loop; anything out of order (or
    /// after the terminal state) is dropped rather than misfiled.
    fn push(&self, index: usize, row: StreamRow) {
        let mut state = self.state.lock().expect("progress lock");
        if state.finished.is_none() && index == state.rows.len() {
            state.rows.push(row);
            self.cv.notify_all();
        }
    }

    /// Marks the job settled, back-filling any rows the observer never
    /// saw (a whole-report cache hit skips execution entirely).
    fn finish(&self, rows: Option<Vec<StreamRow>>, view: JobView) {
        let mut state = self.state.lock().expect("progress lock");
        if state.finished.is_some() {
            return;
        }
        if let Some(rows) = rows {
            let seen = state.rows.len();
            state.rows.extend(rows.into_iter().skip(seen));
        }
        state.finished = Some(view);
        self.cv.notify_all();
    }

    /// Rows past `seen` plus the terminal view once settled; blocks up
    /// to `timeout` when neither is available yet.
    pub fn wait(&self, seen: usize, timeout: Duration) -> (Vec<StreamRow>, Option<JobView>) {
        let mut state = self.state.lock().expect("progress lock");
        if state.rows.len() <= seen && state.finished.is_none() {
            let (guard, _) = self.cv.wait_timeout(state, timeout).expect("progress lock");
            state = guard;
        }
        let rows = state.rows.get(seen..).unwrap_or(&[]).to_vec();
        (rows, state.finished.clone())
    }
}

enum JobState {
    Pending(JobHandle<ResponseKind>),
    Settled(JobView),
}

struct JobEntry {
    state: JobState,
    /// When the job was submitted; drives the `age_ms` backoff hint and
    /// the pending-age cap.
    created: Instant,
    /// When the job settled (resolved and was first observed); drives
    /// expiry. `None` while pending — a pending job is instead bounded
    /// by the table's pending-age cap.
    settled_at: Option<Instant>,
    /// Already counted in [`JobTableStats::expired`] (a pending job
    /// canceled by the pending-age cap); its eventual TTL drop must not
    /// count it twice.
    counted_expired: bool,
    progress: Arc<Progress>,
}

/// Why a submit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// The configured pending-job bound that was hit.
    pub capacity: usize,
}

/// Aggregate table counters for `GET /v1/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobTableStats {
    /// Jobs currently pending.
    pub pending: usize,
    /// Settled jobs still within their expiry window.
    pub settled: usize,
    /// Submits refused with backpressure since start.
    pub rejected: u64,
    /// Jobs ever accepted.
    pub submitted: u64,
    /// Settled jobs dropped by TTL expiry since start — the table's
    /// churn rate.
    pub expired: u64,
}

/// The bounded, expiring id → job map. Internally synchronized; the
/// server shares one behind an `Arc`.
pub struct JobTable {
    inner: Mutex<Inner>,
    capacity: usize,
    ttl: Duration,
    pending_ttl: Duration,
}

/// Default pending-age cap: generous enough for any real composite
/// (cold 1000-die lots finish in seconds), small enough that a wedged
/// handle frees its capacity slice the same hour it was leaked.
pub const DEFAULT_PENDING_TTL: Duration = Duration::from_secs(3600);

struct Inner {
    jobs: HashMap<u64, JobEntry>,
    next_id: u64,
    /// Jobs currently in [`JobState::Pending`], maintained on every
    /// transition so the submit/stats paths never scan the map.
    pending: usize,
    /// Polls since the last full expiry sweep (polls themselves expire
    /// only the entry they touch, so the hot path stays O(1)).
    polls_since_purge: u32,
    rejected: u64,
    submitted: u64,
    expired: u64,
}

/// A full expiry sweep runs on submit, on stats, and every this-many
/// polls — often enough to bound memory, rare enough that polling a job
/// stays O(1).
const PURGE_EVERY_POLLS: u32 = 256;

impl JobTable {
    /// A table admitting at most `capacity` concurrently-pending jobs and
    /// dropping settled jobs `ttl` after they resolve. Pending jobs are
    /// bounded by [`DEFAULT_PENDING_TTL`]; tune it with
    /// [`JobTable::pending_ttl`].
    pub fn new(capacity: usize, ttl: Duration) -> JobTable {
        JobTable {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                next_id: 1,
                pending: 0,
                polls_since_purge: 0,
                rejected: 0,
                submitted: 0,
                expired: 0,
            }),
            capacity,
            ttl,
            pending_ttl: DEFAULT_PENDING_TTL,
        }
    }

    /// Replaces the pending-age cap: a job whose handle has not resolved
    /// within this window is settled [`JobView::Canceled`] (and counted
    /// in [`JobTableStats::expired`]) instead of pinning its entry — and
    /// its slice of `capacity` — forever.
    #[must_use]
    pub fn pending_ttl(mut self, ttl: Duration) -> JobTable {
        self.pending_ttl = ttl;
        self
    }

    /// Submits one request on the session's pool and returns its job id,
    /// or refuses with [`Backpressure`] when `capacity` jobs are already
    /// pending. Expired jobs are purged first, so a full table recovers
    /// on its own as work drains. Composite requests get an observer
    /// attached ([`RowObserver`] on sweeps, [`DieObserver`] on repair
    /// lots) so their rows feed the job's [`Progress`] live.
    pub fn submit(&self, session: &Session, request: RequestKind) -> Result<u64, Backpressure> {
        // Build the progress (and, for composites, wire the observer)
        // before taking the table lock: the observer closure only touches
        // the progress's own lock, never the table's.
        let (request, progress) = match request {
            RequestKind::Sweep(sweep) => {
                let progress = Arc::new(Progress::new(sweep.row_count()));
                // Weak: once the entry expires, the engine's pushes (for
                // a sweep another client re-triggered) go nowhere.
                let feed: Weak<Progress> = Arc::downgrade(&progress);
                let sweep = sweep.observe_rows(RowObserver::new(move |index, row| {
                    if let Some(progress) = feed.upgrade() {
                        progress.push(index, StreamRow::Corner(row.clone()));
                    }
                }));
                (RequestKind::Sweep(sweep), progress)
            }
            RequestKind::Repair(repair) => {
                let progress = Arc::new(Progress::new(repair.die_count()));
                let feed: Weak<Progress> = Arc::downgrade(&progress);
                let repair = repair.observe_dies(DieObserver::new(move |index, outcome| {
                    if let Some(progress) = feed.upgrade() {
                        progress.push(index, StreamRow::Die(outcome.clone()));
                    }
                }));
                (RequestKind::Repair(repair), progress)
            }
            RequestKind::Optimize(optimize) => {
                let progress = Arc::new(Progress::new(optimize.candidate_count()));
                let feed: Weak<Progress> = Arc::downgrade(&progress);
                let optimize =
                    optimize.observe_candidates(CandidateObserver::new(move |index, row| {
                        if let Some(progress) = feed.upgrade() {
                            progress.push(index, StreamRow::Candidate(row.clone()));
                        }
                    }));
                (RequestKind::Optimize(optimize), progress)
            }
            RequestKind::Macro(makro) => {
                let progress = Arc::new(Progress::new(makro.slice_count()));
                let feed: Weak<Progress> = Arc::downgrade(&progress);
                let makro = makro.observe_slices(SliceObserver::new(move |index, outcome| {
                    if let Some(progress) = feed.upgrade() {
                        progress.push(index, StreamRow::Slice(*outcome));
                    }
                }));
                (RequestKind::Macro(makro), progress)
            }
            other => (other, Arc::new(Progress::new(0))),
        };
        let mut inner = self.inner.lock().expect("job table lock");
        let now = Instant::now();
        inner.refresh(now, self.ttl, self.pending_ttl);
        if inner.pending >= self.capacity {
            inner.rejected += 1;
            return Err(Backpressure {
                capacity: self.capacity,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.submitted += 1;
        inner.pending += 1;
        // Submit while holding the table lock so a concurrent poll of
        // this id can never observe the id before the handle exists.
        let handle = session.submit(request);
        inner.jobs.insert(
            id,
            JobEntry {
                state: JobState::Pending(handle),
                created: now,
                settled_at: None,
                counted_expired: false,
                progress,
            },
        );
        Ok(id)
    }

    /// The job's current state. O(1): only the polled entry is
    /// expiry-checked, with a single `Instant::now()` per call (plus an
    /// amortized full sweep every `PURGE_EVERY_POLLS` calls) — poll
    /// loops are the protocol's hottest path.
    pub fn poll(&self, id: u64) -> Polled {
        let mut inner = self.inner.lock().expect("job table lock");
        let now = Instant::now();
        inner.polls_since_purge += 1;
        if inner.polls_since_purge >= PURGE_EVERY_POLLS {
            inner.refresh(now, self.ttl, self.pending_ttl);
        }
        let ttl = self.ttl;
        let pending_ttl = self.pending_ttl;
        let issued = id >= 1 && id < inner.next_id;
        let pending_count = inner.pending;
        let (view, settled_now, expired_now) = match inner.jobs.entry(id) {
            std::collections::hash_map::Entry::Vacant(_) => {
                return if issued {
                    Polled::Expired
                } else {
                    Polled::Unknown
                };
            }
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                if occupied
                    .get()
                    .settled_at
                    .is_some_and(|at| now.duration_since(at) >= ttl)
                {
                    let counted = occupied.get().counted_expired;
                    occupied.remove();
                    if !counted {
                        inner.expired += 1;
                    }
                    return Polled::Expired;
                }
                let entry = occupied.get_mut();
                let mut settled_now = false;
                let mut expired_now = false;
                if let JobState::Pending(handle) = &mut entry.state {
                    if let Some(result) = handle.try_get() {
                        let rows = backfill_rows(&result);
                        let view = settle(result);
                        entry.progress.finish(rows, view.clone());
                        entry.state = JobState::Settled(view);
                        entry.settled_at = Some(now);
                        settled_now = true;
                    } else if now.duration_since(entry.created) >= pending_ttl {
                        // The handle never resolved within the pending
                        // cap: settle canceled so the entry — and its
                        // slice of capacity — stops leaking.
                        entry.progress.finish(None, JobView::Canceled);
                        entry.state = JobState::Settled(JobView::Canceled);
                        entry.settled_at = Some(now);
                        entry.counted_expired = true;
                        settled_now = true;
                        expired_now = true;
                    }
                }
                let view = match &entry.state {
                    JobState::Pending(_) => Polled::Pending {
                        age_ms: now.duration_since(entry.created).as_millis() as u64,
                        queued: pending_count,
                    },
                    JobState::Settled(view) => Polled::Settled(view.clone()),
                };
                (view, settled_now, expired_now)
            }
        };
        if settled_now {
            inner.pending -= 1;
        }
        if expired_now {
            inner.expired += 1;
        }
        view
    }

    /// The job's live [`Progress`] handle, for `/stream`; the `Err`
    /// carries the same unknown/expired distinction as [`JobTable::poll`].
    pub fn watch(&self, id: u64) -> Result<Arc<Progress>, Polled> {
        let inner = self.inner.lock().expect("job table lock");
        match inner.jobs.get(&id) {
            Some(entry) => Ok(entry.progress.clone()),
            None if id >= 1 && id < inner.next_id => Err(Polled::Expired),
            None => Err(Polled::Unknown),
        }
    }

    /// Table counters for the stats endpoint.
    pub fn stats(&self) -> JobTableStats {
        let mut inner = self.inner.lock().expect("job table lock");
        inner.refresh(Instant::now(), self.ttl, self.pending_ttl);
        JobTableStats {
            pending: inner.pending,
            settled: inner.jobs.len() - inner.pending,
            rejected: inner.rejected,
            submitted: inner.submitted,
            expired: inner.expired,
        }
    }

    /// Blocks until every pending job resolves (the session's pool has
    /// been shut down, so queued jobs cancel) and returns how many ended
    /// canceled. Called once during server shutdown, after the engine's
    /// last live handle is dropped.
    pub fn drain_canceled(&self) -> usize {
        let mut inner = self.inner.lock().expect("job table lock");
        let mut canceled = 0;
        // One timestamp for the whole sweep: the per-entry work below is
        // lock-held bookkeeping, not a place for repeated clock reads.
        let now = Instant::now();
        for entry in inner.jobs.values_mut() {
            if let JobState::Pending(handle) = &mut entry.state {
                // `wait_timeout` (rather than consuming `wait`) keeps the
                // entry pollable; the pool is gone so this resolves fast.
                // A job that somehow fails to resolve within the window is
                // reported canceled — shutdown must terminate.
                let (view, rows) = match handle.wait_timeout(Duration::from_secs(60)) {
                    Some(result) => {
                        let rows = backfill_rows(&result);
                        (settle(result), rows)
                    }
                    None => (JobView::Canceled, None),
                };
                if view == JobView::Canceled {
                    canceled += 1;
                }
                entry.progress.finish(rows, view.clone());
                entry.state = JobState::Settled(view);
                entry.settled_at = Some(now);
            }
        }
        inner.pending = 0;
        canceled
    }
}

impl Inner {
    /// Settles over-age pending jobs as canceled (the pending-age cap),
    /// then drops settled entries past their ttl, counting both in
    /// `expired` — each job at most once.
    fn refresh(&mut self, now: Instant, ttl: Duration, pending_ttl: Duration) {
        self.polls_since_purge = 0;
        for entry in self.jobs.values_mut() {
            if matches!(entry.state, JobState::Pending(_))
                && now.duration_since(entry.created) >= pending_ttl
            {
                entry.progress.finish(None, JobView::Canceled);
                entry.state = JobState::Settled(JobView::Canceled);
                entry.settled_at = Some(now);
                entry.counted_expired = true;
                self.pending -= 1;
                self.expired += 1;
            }
        }
        let mut dropped = 0;
        self.jobs.retain(|_, entry| match entry.settled_at {
            Some(at) if now.duration_since(at) >= ttl => {
                if !entry.counted_expired {
                    dropped += 1;
                }
                false
            }
            _ => true,
        });
        self.expired += dropped;
    }
}

/// The full row list a settled composite result implies — what a
/// whole-report cache hit back-fills into the progress feed in place of
/// the observer rows that never fired.
fn backfill_rows(result: &Result<ResponseKind, CnfetError>) -> Option<Vec<StreamRow>> {
    match result {
        Ok(ResponseKind::Sweep(report)) => Some(
            report
                .rows
                .iter()
                .map(|row| StreamRow::Corner(row.clone()))
                .collect(),
        ),
        Ok(ResponseKind::Repair(report)) => Some(
            report
                .dies
                .iter()
                .map(|outcome| StreamRow::Die(outcome.clone()))
                .collect(),
        ),
        Ok(ResponseKind::Optimize(report)) => Some(
            report
                .candidates
                .iter()
                .map(|row| StreamRow::Candidate(row.clone()))
                .collect(),
        ),
        Ok(ResponseKind::Macro(report)) => Some(
            report
                .slices
                .iter()
                .map(|outcome| StreamRow::Slice(*outcome))
                .collect(),
        ),
        _ => None,
    }
}

/// Renders a resolved job outcome once; polls replay the rendering.
fn settle(result: Result<ResponseKind, CnfetError>) -> JobView {
    match result {
        Ok(response) => JobView::Done(wire::render_response(&response)),
        Err(CnfetError::Canceled) => JobView::Canceled,
        Err(error) => {
            let (status, body) = wire::error_response(&error);
            JobView::Failed(status, body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet::core::StdCellKind;
    use cnfet::CellRequest;

    fn cell() -> RequestKind {
        RequestKind::from(CellRequest::new(StdCellKind::Inv))
    }

    fn settled(table: &JobTable, id: u64) -> JobView {
        loop {
            match table.poll(id) {
                Polled::Pending { .. } => std::thread::yield_now(),
                Polled::Settled(view) => break view,
                other => panic!("job {id} vanished while pending: {other:?}"),
            }
        }
    }

    #[test]
    fn submit_poll_round_trip_and_expiry() {
        let session = Session::new();
        let table = JobTable::new(8, Duration::from_millis(40));
        let id = table.submit(&session, cell()).unwrap();
        let done = settled(&table, id);
        let JobView::Done(body) = done else {
            panic!("expected Done, got {done:?}");
        };
        assert_eq!(body.get("type").unwrap().as_str(), Some("cell"));
        // Settled polls replay the same outcome until the ttl expires.
        assert!(matches!(table.poll(id), Polled::Settled(JobView::Done(_))));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(table.poll(id), Polled::Expired, "issued ids expire");
        assert_eq!(table.poll(9999), Polled::Unknown, "unissued ids 404");
        assert!(table.stats().expired >= 1, "expiry is counted");
    }

    #[test]
    fn pending_polls_carry_backoff_metadata() {
        let session = Session::new();
        let table = JobTable::new(8, Duration::from_secs(5));
        let id = table.submit(&session, cell()).unwrap();
        // The job may settle arbitrarily fast; only a pending poll (if
        // we catch one) must carry the metadata.
        if let Polled::Pending { queued, .. } = table.poll(id) {
            assert!(queued >= 1, "the pending job itself counts");
        }
        settled(&table, id);
    }

    #[test]
    fn zero_capacity_refuses_every_submit() {
        let session = Session::new();
        let table = JobTable::new(0, Duration::from_secs(5));
        assert_eq!(
            table.submit(&session, cell()),
            Err(Backpressure { capacity: 0 })
        );
        assert_eq!(table.stats().rejected, 1);
    }

    #[test]
    fn capacity_frees_as_jobs_settle() {
        let session = Session::new();
        let table = JobTable::new(1, Duration::from_secs(5));
        let id = table.submit(&session, cell()).unwrap();
        // Resolve the first job so the pending count returns to zero.
        settled(&table, id);
        table
            .submit(&session, cell())
            .expect("capacity freed once the first job settled");
        let stats = table.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn sweep_progress_streams_rows_then_finishes() {
        let session = Session::new();
        let table = JobTable::new(8, Duration::from_secs(5));
        let sweep = RequestKind::from(
            cnfet::SweepRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
                .metrics(cnfet::SweepMetrics::IMMUNITY)
                .grid(cnfet::VariationGrid::nominal().seeds([1, 2]))
                .mc(cnfet::immunity::McOptions {
                    tubes: 60,
                    ..Default::default()
                }),
        );
        let id = table.submit(&session, sweep.clone()).unwrap();
        let progress = table.watch(id).expect("job exists");
        assert_eq!(progress.total(), 4);
        let mut seen = 0;
        let view = loop {
            // Poll drives settlement; wait drains the row feed.
            table.poll(id);
            let (rows, finished) = progress.wait(seen, Duration::from_millis(10));
            seen += rows.len();
            if let Some(view) = finished {
                break view;
            }
        };
        assert_eq!(seen, 4, "every row streams before the terminal view");
        let JobView::Done(body) = view else {
            panic!("sweep failed: {view:?}");
        };
        assert_eq!(body.get("rows").unwrap().as_arr().unwrap().len(), 4);

        // The same sweep again is a whole-report cache hit — the
        // observer never fires, so the rows must back-fill at settle.
        let id = table.submit(&session, sweep).unwrap();
        let progress = table.watch(id).expect("job exists");
        settled(&table, id);
        let (rows, finished) = progress.wait(0, Duration::from_millis(10));
        assert_eq!(rows.len(), 4, "cache-hit jobs back-fill every row");
        assert!(finished.is_some());
    }

    #[test]
    fn repair_progress_streams_die_rows_then_finishes() {
        let session = Session::new();
        let table = JobTable::new(8, Duration::from_secs(5));
        let repair = RequestKind::from(
            cnfet::RepairRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
                .dies(3)
                .spares(1)
                .base_seed(11),
        );
        let id = table.submit(&session, repair.clone()).unwrap();
        let progress = table.watch(id).expect("job exists");
        assert_eq!(progress.total(), 3);
        let mut seen = 0;
        let mut dies_streamed = 0;
        let view = loop {
            table.poll(id);
            let (rows, finished) = progress.wait(seen, Duration::from_millis(10));
            seen += rows.len();
            dies_streamed += rows
                .iter()
                .filter(|row| matches!(row, StreamRow::Die(_)))
                .count();
            if let Some(view) = finished {
                break view;
            }
        };
        assert_eq!(seen, 3, "every die streams before the terminal view");
        assert_eq!(dies_streamed, 3, "repair jobs stream die rows");
        let JobView::Done(body) = view else {
            panic!("repair failed: {view:?}");
        };
        assert_eq!(body.get("type").unwrap().as_str(), Some("repair"));
        assert_eq!(body.get("dies").unwrap().as_arr().unwrap().len(), 3);

        // The same lot again is a whole-report cache hit — the observer
        // never fires, so the die rows must back-fill at settle.
        let id = table.submit(&session, repair).unwrap();
        let progress = table.watch(id).expect("job exists");
        settled(&table, id);
        let (rows, finished) = progress.wait(0, Duration::from_millis(10));
        assert_eq!(rows.len(), 3, "cache-hit jobs back-fill every die row");
        assert!(finished.is_some());
    }

    #[test]
    fn optimize_progress_streams_candidate_rows_then_finishes() {
        let session = Session::new();
        let table = JobTable::new(8, Duration::from_secs(5));
        let optimize = RequestKind::from(
            cnfet::OptimizeRequest::new([StdCellKind::Inv])
                .grid(cnfet::VariationGrid::nominal().tube_counts([6, 26]))
                .passes(1)
                .metrics(cnfet::SweepMetrics::IMMUNITY)
                .mc(cnfet::immunity::McOptions {
                    tubes: 60,
                    ..Default::default()
                }),
        );
        let id = table.submit(&session, optimize.clone()).unwrap();
        let progress = table.watch(id).expect("job exists");
        assert_eq!(progress.total(), 4, "2 tube + 1 pitch + 1 metallic");
        let mut seen = 0;
        let mut candidates_streamed = 0;
        let view = loop {
            table.poll(id);
            let (rows, finished) = progress.wait(seen, Duration::from_millis(10));
            seen += rows.len();
            candidates_streamed += rows
                .iter()
                .filter(|row| matches!(row, StreamRow::Candidate(_)))
                .count();
            if let Some(view) = finished {
                break view;
            }
        };
        assert_eq!(seen, 4, "every candidate streams before the terminal view");
        assert_eq!(
            candidates_streamed, 4,
            "optimize jobs stream candidate rows"
        );
        let JobView::Done(body) = view else {
            panic!("optimize failed: {view:?}");
        };
        assert_eq!(body.get("type").unwrap().as_str(), Some("optimize"));
        assert_eq!(body.get("candidates").unwrap().as_arr().unwrap().len(), 4);

        // The same search again is a whole-trajectory cache hit — the
        // observer never fires, so the candidates must back-fill.
        let id = table.submit(&session, optimize).unwrap();
        let progress = table.watch(id).expect("job exists");
        settled(&table, id);
        let (rows, finished) = progress.wait(0, Duration::from_millis(10));
        assert_eq!(rows.len(), 4, "cache-hit jobs back-fill every candidate");
        assert!(finished.is_some());
    }

    #[test]
    fn over_age_pending_jobs_settle_canceled_and_count_expired() {
        let session = cnfet::SessionBuilder::new().batch_workers(1).build();
        // Zero pending cap: any job still unresolved at its first poll
        // is over-age. Before the cap, this entry would stay Pending —
        // holding its capacity slice — forever.
        let table = JobTable::new(8, Duration::from_millis(40)).pending_ttl(Duration::ZERO);
        let slow = RequestKind::from(
            cnfet::SweepRequest::new([StdCellKind::Aoi22])
                .metrics(cnfet::SweepMetrics::IMMUNITY)
                .grid(cnfet::VariationGrid::nominal().seeds([99]))
                .mc(cnfet::immunity::McOptions {
                    tubes: 30_000,
                    ..Default::default()
                }),
        );
        let id = table.submit(&session, slow).unwrap();
        assert_eq!(table.poll(id), Polled::Settled(JobView::Canceled));
        let stats = table.stats();
        assert_eq!(stats.pending, 0, "the canceled job frees its slot");
        assert_eq!(stats.expired, 1, "the pending expiry is counted");
        // A streamer waiting on the job sees the terminal view, not a
        // hang.
        let progress = table.watch(id).expect("entry still serves polls");
        let (_, finished) = progress.wait(0, Duration::from_millis(10));
        assert_eq!(finished, Some(JobView::Canceled));
        // The settled entry's eventual TTL drop must not count it twice.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(table.poll(id), Polled::Expired);
        assert_eq!(table.stats().expired, 1, "each job expires once");
    }

    #[test]
    fn drain_cancels_queued_jobs_when_the_engine_dies() {
        // One pool worker, a queue of slow sweeps, and the session
        // dropped underneath: drain must settle everything, counting the
        // never-run tail as canceled.
        let session = cnfet::SessionBuilder::new().batch_workers(1).build();
        let table = JobTable::new(64, Duration::from_secs(5));
        // Distinct seeds: identical sweeps would single-flight into one
        // execution plus three instant cache hits, defeating the test.
        for seed in 0..4 {
            let slow = RequestKind::from(
                cnfet::SweepRequest::new([StdCellKind::Aoi22])
                    .metrics(cnfet::SweepMetrics::IMMUNITY)
                    .grid(cnfet::VariationGrid::nominal().seeds([seed]))
                    .mc(cnfet::immunity::McOptions {
                        tubes: 30_000,
                        ..Default::default()
                    }),
            );
            table.submit(&session, slow).unwrap();
        }
        drop(session);
        let canceled = table.drain_canceled();
        assert!(canceled >= 1, "queued jobs cancel when the session dies");
        let stats = table.stats();
        assert_eq!(stats.pending, 0, "drain settles everything");
    }
}
