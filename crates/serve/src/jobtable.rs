//! The bounded job table behind `POST /v1/submit` and `GET /v1/jobs/{id}`.
//!
//! A submit enqueues the request on the session's non-blocking pool
//! ([`Session::submit`](cnfet::Session::submit)) and records the returned
//! [`JobHandle`] under a fresh id. Polling a job
//! harvests the handle at most once and caches the rendered outcome, so
//! repeated `GET`s are cheap and always agree.
//!
//! Two bounds keep the table from growing without limit under load:
//!
//! * **capacity** — at most `capacity` *pending* jobs at once; a submit
//!   past the bound is refused (the server answers `429`) instead of
//!   queueing unboundedly when producers outpace the pool;
//! * **expiry** — resolved jobs are dropped `ttl` after resolving
//!   (their results have been deliverable for that long); expired ids
//!   poll as `404`, exactly like ids that never existed.

use crate::json::Json;
use crate::wire;
use cnfet::{CnfetError, JobHandle, RequestKind, ResponseKind, Session};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One job's current, client-visible state.
#[derive(Clone, Debug, PartialEq)]
pub enum JobView {
    /// Still queued or executing.
    Pending,
    /// Finished; the rendered result summary.
    Done(Json),
    /// Failed; the HTTP status and structured error payload.
    Failed(u16, Json),
    /// Abandoned before producing a result (server shutdown).
    Canceled,
}

enum JobState {
    Pending(JobHandle<ResponseKind>),
    Settled(JobView),
}

struct JobEntry {
    state: JobState,
    /// When the job settled (resolved and was first observed); drives
    /// expiry. `None` while pending — pending jobs never expire.
    settled_at: Option<Instant>,
}

/// Why a submit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// The configured pending-job bound that was hit.
    pub capacity: usize,
}

/// Aggregate table counters for `GET /v1/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobTableStats {
    /// Jobs currently pending.
    pub pending: usize,
    /// Settled jobs still within their expiry window.
    pub settled: usize,
    /// Submits refused with backpressure since start.
    pub rejected: u64,
    /// Jobs ever accepted.
    pub submitted: u64,
}

/// The bounded, expiring id → job map. Internally synchronized; the
/// server shares one behind an `Arc`.
pub struct JobTable {
    inner: Mutex<Inner>,
    capacity: usize,
    ttl: Duration,
}

struct Inner {
    jobs: HashMap<u64, JobEntry>,
    next_id: u64,
    /// Jobs currently in [`JobState::Pending`], maintained on every
    /// transition so the submit/stats paths never scan the map.
    pending: usize,
    /// Polls since the last full expiry sweep (polls themselves expire
    /// only the entry they touch, so the hot path stays O(1)).
    polls_since_purge: u32,
    rejected: u64,
    submitted: u64,
}

/// A full expiry sweep runs on submit, on stats, and every this-many
/// polls — often enough to bound memory, rare enough that polling a job
/// stays O(1).
const PURGE_EVERY_POLLS: u32 = 256;

impl JobTable {
    /// A table admitting at most `capacity` concurrently-pending jobs and
    /// dropping settled jobs `ttl` after they resolve.
    pub fn new(capacity: usize, ttl: Duration) -> JobTable {
        JobTable {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                next_id: 1,
                pending: 0,
                polls_since_purge: 0,
                rejected: 0,
                submitted: 0,
            }),
            capacity,
            ttl,
        }
    }

    /// Submits one request on the session's pool and returns its job id,
    /// or refuses with [`Backpressure`] when `capacity` jobs are already
    /// pending. Expired jobs are purged first, so a full table recovers
    /// on its own as work drains.
    pub fn submit(&self, session: &Session, request: RequestKind) -> Result<u64, Backpressure> {
        let mut inner = self.inner.lock().expect("job table lock");
        let now = Instant::now();
        inner.refresh(now, self.ttl);
        if inner.pending >= self.capacity {
            inner.rejected += 1;
            return Err(Backpressure {
                capacity: self.capacity,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.submitted += 1;
        inner.pending += 1;
        // Submit while holding the table lock so a concurrent poll of
        // this id can never observe the id before the handle exists.
        let handle = session.submit(request);
        inner.jobs.insert(
            id,
            JobEntry {
                state: JobState::Pending(handle),
                settled_at: None,
            },
        );
        Ok(id)
    }

    /// The job's current state; `None` for unknown (or expired) ids.
    /// O(1): only the polled entry is expiry-checked (plus an amortized
    /// full sweep every `PURGE_EVERY_POLLS` calls) — poll loops are
    /// the protocol's hottest path.
    pub fn poll(&self, id: u64) -> Option<JobView> {
        let mut inner = self.inner.lock().expect("job table lock");
        let now = Instant::now();
        inner.polls_since_purge += 1;
        if inner.polls_since_purge >= PURGE_EVERY_POLLS {
            inner.refresh(now, self.ttl);
        }
        let ttl = self.ttl;
        let (view, settled_now) = match inner.jobs.entry(id) {
            std::collections::hash_map::Entry::Vacant(_) => return None,
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                if occupied
                    .get()
                    .settled_at
                    .is_some_and(|at| now.duration_since(at) >= ttl)
                {
                    occupied.remove();
                    return None;
                }
                let entry = occupied.get_mut();
                let mut settled_now = false;
                if let JobState::Pending(handle) = &mut entry.state {
                    if let Some(result) = handle.try_get() {
                        entry.state = JobState::Settled(settle(result));
                        entry.settled_at = Some(now);
                        settled_now = true;
                    }
                }
                let view = match &entry.state {
                    JobState::Pending(_) => JobView::Pending,
                    JobState::Settled(view) => view.clone(),
                };
                (view, settled_now)
            }
        };
        if settled_now {
            inner.pending -= 1;
        }
        Some(view)
    }

    /// Table counters for the stats endpoint.
    pub fn stats(&self) -> JobTableStats {
        let mut inner = self.inner.lock().expect("job table lock");
        inner.refresh(Instant::now(), self.ttl);
        JobTableStats {
            pending: inner.pending,
            settled: inner.jobs.len() - inner.pending,
            rejected: inner.rejected,
            submitted: inner.submitted,
        }
    }

    /// Blocks until every pending job resolves (the session's pool has
    /// been shut down, so queued jobs cancel) and returns how many ended
    /// canceled. Called once during server shutdown, after the engine's
    /// last live handle is dropped.
    pub fn drain_canceled(&self) -> usize {
        let mut inner = self.inner.lock().expect("job table lock");
        let mut canceled = 0;
        for entry in inner.jobs.values_mut() {
            if let JobState::Pending(handle) = &mut entry.state {
                // `wait_timeout` (rather than consuming `wait`) keeps the
                // entry pollable; the pool is gone so this resolves fast.
                // A job that somehow fails to resolve within the window is
                // reported canceled — shutdown must terminate.
                let view = match handle.wait_timeout(Duration::from_secs(60)) {
                    Some(result) => settle(result),
                    None => JobView::Canceled,
                };
                if view == JobView::Canceled {
                    canceled += 1;
                }
                entry.state = JobState::Settled(view);
                entry.settled_at = Some(Instant::now());
            }
        }
        inner.pending = 0;
        canceled
    }
}

impl Inner {
    /// Drops settled entries past their ttl (pending jobs never expire,
    /// so `pending` is untouched).
    fn refresh(&mut self, now: Instant, ttl: Duration) {
        self.polls_since_purge = 0;
        self.jobs.retain(|_, entry| match entry.settled_at {
            Some(at) => now.duration_since(at) < ttl,
            None => true,
        });
    }
}

/// Renders a resolved job outcome once; polls replay the rendering.
fn settle(result: Result<ResponseKind, CnfetError>) -> JobView {
    match result {
        Ok(response) => JobView::Done(wire::render_response(&response)),
        Err(CnfetError::Canceled) => JobView::Canceled,
        Err(error) => {
            let (status, body) = wire::error_response(&error);
            JobView::Failed(status, body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet::core::StdCellKind;
    use cnfet::CellRequest;

    fn cell() -> RequestKind {
        RequestKind::from(CellRequest::new(StdCellKind::Inv))
    }

    #[test]
    fn submit_poll_round_trip_and_expiry() {
        let session = Session::new();
        let table = JobTable::new(8, Duration::from_millis(40));
        let id = table.submit(&session, cell()).unwrap();
        let done = loop {
            match table.poll(id).expect("job known") {
                JobView::Pending => std::thread::yield_now(),
                view => break view,
            }
        };
        let JobView::Done(body) = done else {
            panic!("expected Done, got {done:?}");
        };
        assert_eq!(body.get("type").unwrap().as_str(), Some("cell"));
        // Settled polls replay the same outcome until the ttl expires.
        assert!(matches!(table.poll(id), Some(JobView::Done(_))));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(table.poll(id), None, "expired jobs poll as unknown");
        assert_eq!(table.poll(9999), None, "unknown ids poll as unknown");
    }

    #[test]
    fn zero_capacity_refuses_every_submit() {
        let session = Session::new();
        let table = JobTable::new(0, Duration::from_secs(5));
        assert_eq!(
            table.submit(&session, cell()),
            Err(Backpressure { capacity: 0 })
        );
        assert_eq!(table.stats().rejected, 1);
    }

    #[test]
    fn capacity_frees_as_jobs_settle() {
        let session = Session::new();
        let table = JobTable::new(1, Duration::from_secs(5));
        let id = table.submit(&session, cell()).unwrap();
        // Resolve the first job so the pending count returns to zero.
        while matches!(table.poll(id), Some(JobView::Pending)) {
            std::thread::yield_now();
        }
        table
            .submit(&session, cell())
            .expect("capacity freed once the first job settled");
        let stats = table.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn drain_cancels_queued_jobs_when_the_engine_dies() {
        // One pool worker, a queue of slow sweeps, and the session
        // dropped underneath: drain must settle everything, counting the
        // never-run tail as canceled.
        let session = cnfet::SessionBuilder::new().batch_workers(1).build();
        let table = JobTable::new(64, Duration::from_secs(5));
        // Distinct seeds: identical sweeps would single-flight into one
        // execution plus three instant cache hits, defeating the test.
        for seed in 0..4 {
            let slow = RequestKind::from(
                cnfet::SweepRequest::new([StdCellKind::Aoi22])
                    .metrics(cnfet::SweepMetrics::IMMUNITY)
                    .grid(cnfet::VariationGrid::nominal().seeds([seed]))
                    .mc(cnfet::immunity::McOptions {
                        tubes: 30_000,
                        ..Default::default()
                    }),
            );
            table.submit(&session, slow).unwrap();
        }
        drop(session);
        let canceled = table.drain_canceled();
        assert!(canceled >= 1, "queued jobs cancel when the session dies");
        let stats = table.stats();
        assert_eq!(stats.pending, 0, "drain settles everything");
    }
}
