//! The server: a bounded acceptor/worker loop around one shared
//! [`Session`], routing the wire protocol of [`crate::wire`].
//!
//! The threading model mirrors the engine's own job pool
//! (`cnfet::jobs`): one acceptor thread pushes connections onto a
//! bounded queue guarded by a `Mutex` + `Condvar`, and a fixed set of
//! worker threads pops them, each serving its connection's requests in a
//! keep-alive loop against the one shared session. Every worker
//! therefore hits the same sharded caches — the whole point: many remote
//! clients iterating the same co-optimization corners share one warm
//! cache.
//!
//! Shutdown is graceful and deadlock-free: [`Server::shutdown`] sets the
//! shutdown flag, unblocks the acceptor with a **connect-to-self**
//! wakeup (the `accept(2)` call has no other way to observe the flag),
//! joins every thread, drops the engine's last live handle (the
//! session's pool drains, canceling queued jobs), and finally harvests
//! the job table so every accepted-but-unfinished job settles as
//! `canceled`.

use crate::encode::{self, Format};
use crate::http::{self, ReadError, Request};
use crate::jobtable::{JobTable, JobView, Polled, StreamRow};
use crate::json::{self, Json};
use crate::wire;
use cnfet::{RequestClass, ResponseKind, Session, SessionBuilder};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Everything a server run is configured by; the `cnfet-serve` binary
/// maps its flags onto this one-for-one.
///
/// # Example
///
/// ```
/// use cnfet_serve::ServeConfig;
///
/// let config = ServeConfig::default().cache_capacity(1 << 16).workers(8);
/// assert_eq!(config.cache_capacity, 1 << 16);
/// assert_eq!(config.addr, "127.0.0.1:8373");
/// ```
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`--addr`); port `0` binds an ephemeral port,
    /// reported by [`Server::addr`].
    pub addr: String,
    /// Per-class session cache bound (`--cache-capacity`); see
    /// [`SessionBuilder::cache_capacity`].
    pub cache_capacity: usize,
    /// Session cache lock stripes (`--cache-shards`); see
    /// [`SessionBuilder::cache_shards`].
    pub cache_shards: usize,
    /// HTTP worker threads (`--workers`); also the bound on concurrently
    /// served connections. `0` sizes to available parallelism.
    pub workers: usize,
    /// Engine executor threads (`--engine-workers`); see
    /// [`SessionBuilder::batch_workers`]. `0` sizes to available
    /// parallelism.
    pub engine_workers: usize,
    /// Pending-job bound of the submit table (`--job-capacity`); past
    /// it, `POST /v1/submit` answers `429`.
    pub job_capacity: usize,
    /// How long settled jobs stay pollable (`--job-ttl-secs`).
    pub job_ttl: Duration,
    /// Pending-age cap (`--pending-job-ttl-secs`): a submitted job whose
    /// handle has not resolved within this window is settled `canceled`
    /// instead of pinning its table entry — and its slice of
    /// [`job_capacity`](Self::job_capacity) — forever.
    pub pending_job_ttl: Duration,
    /// Cache snapshot path (`--snapshot`). When set, the server
    /// warm-boots from the file if it exists (a corrupt or
    /// version-mismatched snapshot logs a warning and boots cold),
    /// flushes the file every [`snapshot_interval`](Self::snapshot_interval)
    /// while running, and writes a final snapshot on graceful shutdown —
    /// so a restarted server replays prior sweeps as pure cache hits
    /// even when the previous process died abruptly between flushes.
    pub snapshot: Option<PathBuf>,
    /// How often the background flusher persists the snapshot
    /// (`--snapshot-interval-secs`). Only meaningful with
    /// [`snapshot`](Self::snapshot) set.
    pub snapshot_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8373".to_string(),
            cache_capacity: cnfet::cache::DEFAULT_CAPACITY,
            cache_shards: cnfet::cache::DEFAULT_SHARDS,
            workers: 0,
            engine_workers: 0,
            job_capacity: 1024,
            job_ttl: Duration::from_secs(300),
            pending_job_ttl: crate::jobtable::DEFAULT_PENDING_TTL,
            snapshot: None,
            snapshot_interval: Duration::from_secs(60),
        }
    }
}

impl ServeConfig {
    /// Replaces the listen address.
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> ServeConfig {
        self.addr = addr.into();
        self
    }

    /// Replaces the per-class cache capacity.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> ServeConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Replaces the cache shard count.
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> ServeConfig {
        self.cache_shards = shards;
        self
    }

    /// Replaces the HTTP worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// Replaces the engine executor width.
    #[must_use]
    pub fn engine_workers(mut self, workers: usize) -> ServeConfig {
        self.engine_workers = workers;
        self
    }

    /// Replaces the pending-job bound.
    #[must_use]
    pub fn job_capacity(mut self, capacity: usize) -> ServeConfig {
        self.job_capacity = capacity;
        self
    }

    /// Replaces the settled-job expiry window.
    #[must_use]
    pub fn job_ttl(mut self, ttl: Duration) -> ServeConfig {
        self.job_ttl = ttl;
        self
    }

    /// Replaces the pending-age cap.
    #[must_use]
    pub fn pending_job_ttl(mut self, ttl: Duration) -> ServeConfig {
        self.pending_job_ttl = ttl;
        self
    }

    /// Sets the warm-restart snapshot path.
    #[must_use]
    pub fn snapshot(mut self, path: impl Into<PathBuf>) -> ServeConfig {
        self.snapshot = Some(path.into());
        self
    }

    /// Replaces the periodic snapshot flush interval.
    #[must_use]
    pub fn snapshot_interval(mut self, interval: Duration) -> ServeConfig {
        self.snapshot_interval = interval;
        self
    }
}

/// What [`Server::shutdown`] observed while winding down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Submitted jobs that settled as canceled instead of finishing.
    pub jobs_canceled: usize,
    /// Requests served over the server's lifetime.
    pub requests_served: u64,
}

/// Connections queued beyond this answer `503` instead of waiting —
/// bounded memory under an accept flood.
const MAX_QUEUED_CONNECTIONS: usize = 1024;

/// Socket read timeout; doubles as the shutdown-flag poll interval for
/// idle keep-alive connections.
const READ_POLL: Duration = Duration::from_millis(200);

/// Idle keep-alive window after which a silent connection is dropped.
const IDLE_LIMIT: Duration = Duration::from_secs(10);

/// One live connection as it moves between the queue and a worker.
struct Conn {
    /// Buffered read half (a `try_clone` of `stream`).
    reader: BufReader<TcpStream>,
    /// Write half.
    stream: TcpStream,
    /// Idle time accumulated since the last request.
    idle: Duration,
}

struct Shared {
    session: Session,
    jobs: JobTable,
    queue: Mutex<VecDeque<Conn>>,
    available: Condvar,
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
}

/// A running server. Start with [`Server::start`], stop with
/// [`Server::shutdown`] (dropping without calling it aborts the threads
/// ungracefully at process exit, like any detached listener).
///
/// # Example
///
/// ```no_run
/// use cnfet_serve::{Server, ServeConfig};
///
/// let server = Server::start(ServeConfig::default().addr("127.0.0.1:0"))?;
/// println!("serving on http://{}", server.addr());
/// let report = server.shutdown();
/// assert_eq!(report.jobs_canceled, 0);
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    flusher: Option<std::thread::JoinHandle<()>>,
    snapshot: Option<PathBuf>,
}

impl Server {
    /// Binds the configured address and starts the acceptor and worker
    /// threads. The engine (session, caches, job pool) is built fresh
    /// and owned by the returned server.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let session = SessionBuilder::new()
            .cache_capacity(config.cache_capacity)
            .cache_shards(config.cache_shards)
            .batch_workers(config.engine_workers)
            .build();
        // Warm boot: seed the sweep cache from the snapshot, if any. A
        // bad file (corrupt, truncated, old version) must never stop the
        // server — it warns and boots cold.
        if let Some(path) = &config.snapshot {
            if path.exists() {
                match session.load_snapshot(path) {
                    Ok(restored) => eprintln!(
                        "cnfet-serve: warm boot — restored {restored} cache entries from {}",
                        path.display()
                    ),
                    Err(e) => eprintln!(
                        "cnfet-serve: warning: ignoring snapshot {}: {e}; booting cold",
                        path.display()
                    ),
                }
            }
        }
        // Floor of 4: on small machines a lone worker would serialize a
        // heavy request behind every other connection. Idle keep-alive
        // connections don't pin workers either way — see `worker_loop`.
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4)
        };
        let shared = Arc::new(Shared {
            session,
            jobs: JobTable::new(config.job_capacity, config.job_ttl)
                .pending_ttl(config.pending_job_ttl),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });

        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("cnfet-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cnfet-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn http worker")
            })
            .collect();
        // The periodic flusher lives in the server, not the binary's
        // main loop: an abrupt exit (SIGKILL, a crashed test harness, a
        // dropped-without-shutdown server) still leaves a snapshot at
        // most one interval old behind.
        let flusher = config.snapshot.as_ref().map(|path| {
            let shared = shared.clone();
            let path = path.clone();
            let interval = config.snapshot_interval;
            std::thread::Builder::new()
                .name("cnfet-serve-snapshot".to_string())
                .spawn(move || flush_loop(&shared, &path, interval))
                .expect("spawn snapshot flusher")
        });

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            flusher,
            snapshot: config.snapshot,
        })
    }

    /// The bound address (the actual port when the config asked for `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle on the server's engine — same caches, same stats; useful
    /// for in-process warmup and assertions alongside remote clients.
    pub fn session(&self) -> &Session {
        &self.shared.session
    }

    /// Stops accepting, drains the workers, shuts the engine down, and
    /// settles the job table. In-flight requests finish; jobs still
    /// queued on the engine's pool settle as canceled and are counted in
    /// the report.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.shutdown.store(true, Ordering::Release);
        // The acceptor is parked in accept(2); a throwaway connection to
        // ourselves is the portable way to make it re-check the flag.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
        // All worker handles are gone; this Arc is the last. Unwrap it so
        // the session — the engine's last live handle — actually drops:
        // its pool drains, and every still-queued job resolves canceled.
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| unreachable!("all server threads joined"));
        let requests_served = shared.requests.load(Ordering::Relaxed);
        // Persist the sweep cache before the engine goes away, so the
        // next boot replays today's sweeps as pure hits.
        if let Some(path) = &self.snapshot {
            match shared.session.save_snapshot(path) {
                Ok(saved) => eprintln!(
                    "cnfet-serve: wrote {saved} cache entries to {}",
                    path.display()
                ),
                Err(e) => eprintln!(
                    "cnfet-serve: warning: failed to write snapshot {}: {e}",
                    path.display()
                ),
            }
        }
        drop(shared.session);
        let jobs_canceled = shared.jobs.drain_canceled();
        ShutdownReport {
            jobs_canceled,
            requests_served,
        }
    }
}

/// Periodically persists the cache snapshot until shutdown. The final
/// authoritative write still happens in [`Server::shutdown`]; this loop
/// exists so ungraceful exits lose at most one interval of cache. Writes
/// are atomic (temp file + rename), so a flush can never tear a
/// concurrent warm boot from the same path. The shutdown flag is checked
/// every [`READ_POLL`] so joining this thread is prompt even with long
/// intervals.
///
/// Each flush goes through [`cnfet::snapshot::save_if`], re-checking the
/// shutdown flag *under the process-wide save lock*: a flush that loses
/// the race to shutdown is skipped entirely rather than staged alongside
/// (or renamed after) the final snapshot, so the shutdown snapshot
/// always wins — even for an embedder saving through
/// [`Server::session`] concurrently.
fn flush_loop(shared: &Shared, path: &std::path::Path, interval: Duration) {
    let step = READ_POLL.min(interval);
    let mut since_flush = Duration::ZERO;
    loop {
        std::thread::sleep(step);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        since_flush += step;
        if since_flush < interval {
            continue;
        }
        since_flush = Duration::ZERO;
        let saved = cnfet::snapshot::save_if(&shared.session, path, || {
            !shared.shutdown.load(Ordering::Acquire)
        });
        if let Err(e) = saved {
            eprintln!(
                "cnfet-serve: warning: failed to write snapshot {}: {e}",
                path.display()
            );
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Transient accept failures (fd pressure) must not spin.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return; // The wakeup connection itself lands here too.
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let conn = Conn {
            reader: BufReader::new(read_half),
            stream,
            idle: Duration::ZERO,
        };
        let mut queue = shared.queue.lock().expect("connection queue lock");
        if queue.len() >= MAX_QUEUED_CONNECTIONS {
            drop(queue);
            let mut conn = conn;
            let body = wire::error_body("overloaded", "connection queue full", None).render();
            let _ = http::write_response(&mut conn.stream, 503, &body, true);
            continue;
        }
        queue.push_back(conn);
        drop(queue);
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("connection queue lock");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break conn;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, READ_POLL)
                    .expect("connection queue lock");
                queue = guard;
            }
        };
        if let Some(conn) = serve_connection(conn, shared) {
            // The connection went idle while others were waiting: rotate
            // it to the back of the queue so a bounded worker set
            // round-robins over every live connection instead of letting
            // one idle keep-alive socket pin a worker.
            let mut queue = shared.queue.lock().expect("connection queue lock");
            queue.push_back(conn);
            drop(queue);
            shared.available.notify_one();
        }
    }
}

/// Serves one connection's requests until it closes, errs, idles out, or
/// the server shuts down. Returns the connection when it is merely idle
/// and other connections are waiting for a worker — the caller requeues
/// it.
fn serve_connection(mut conn: Conn, shared: &Shared) -> Option<Conn> {
    loop {
        match http::read_request(&mut conn.reader, &mut conn.stream) {
            Ok(request) => {
                conn.idle = Duration::ZERO;
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let close = request.wants_close() || shared.shutdown.load(Ordering::Acquire);
                match route(&request, shared) {
                    Routed::Json(status, body) => {
                        // HEAD answers exactly like GET minus the payload
                        // (load balancers probe /v1/healthz this way).
                        let body = if request.method == "HEAD" {
                            String::new()
                        } else {
                            body.render()
                        };
                        if http::write_response(&mut conn.stream, status, &body, close).is_err()
                            || close
                        {
                            return None;
                        }
                    }
                    Routed::Binary(status, bytes) => {
                        if http::write_response_bytes(
                            &mut conn.stream,
                            status,
                            encode::BINARY_CONTENT_TYPE,
                            &bytes,
                            close,
                        )
                        .is_err()
                            || close
                        {
                            return None;
                        }
                    }
                    Routed::Stream { id, format } => {
                        // Chunked responses always close the connection
                        // (see `http::start_chunked`); the stream handler
                        // owns the socket from here.
                        stream_job(&mut conn.stream, shared, id, format);
                        return None;
                    }
                }
            }
            Err(ReadError::TimedOut) => {
                conn.idle += READ_POLL;
                if conn.idle >= IDLE_LIMIT || shared.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                // Don't camp on an idle socket while accepted connections
                // wait for a worker. A timeout implies the reader's
                // buffer is empty, so the connection can safely park in
                // the queue and resume on any worker.
                let waiting = !shared
                    .queue
                    .lock()
                    .expect("connection queue lock")
                    .is_empty();
                if waiting {
                    return Some(conn);
                }
            }
            Err(ReadError::Closed) => return None,
            Err(ReadError::Malformed(message)) => {
                let body = wire::error_body("bad_request", &message, None).render();
                let _ = http::write_response(&mut conn.stream, 400, &body, true);
                return None;
            }
            Err(ReadError::TooLarge) => {
                let body =
                    wire::error_body("too_large", "head or body exceeds the limit", None).render();
                let _ = http::write_response(&mut conn.stream, 413, &body, true);
                return None;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// Where a routed request goes: a buffered JSON response, a buffered
/// binary response, or the chunked `/stream` path (which needs the raw
/// socket and is handled by the connection loop).
enum Routed {
    Json(u16, Json),
    Binary(u16, Vec<u8>),
    Stream { id: u64, format: Format },
}

/// Resolves the request's `Accept` header to a result format. JSON is
/// the default (`*/*`, `application/*`, no header); the binary row
/// encoding is `application/x-cnfet-rows`; anything else — a client
/// asking for a format this server cannot produce — is `406`.
fn negotiate(request: &Request) -> Result<Format, Routed> {
    let Some(accept) = request.header("accept") else {
        return Ok(Format::Json);
    };
    // First supported media range wins — clients list preferences in
    // order. Quality parameters (`;q=`) are ignored.
    for part in accept.split(',') {
        let media = part.split(';').next().unwrap_or("").trim();
        match media {
            "" => continue,
            "*/*" | "application/*" | "application/json" => return Ok(Format::Json),
            m if m == encode::BINARY_CONTENT_TYPE => return Ok(Format::Binary),
            _ => continue,
        }
    }
    Err(Routed::Json(
        406,
        wire::error_body(
            "not_acceptable",
            &format!(
                "no supported media type in accept `{accept}`; this server produces application/json and {}",
                encode::BINARY_CONTENT_TYPE
            ),
            None,
        ),
    ))
}

fn route(request: &Request, shared: &Shared) -> Routed {
    let format = match negotiate(request) {
        Ok(format) => format,
        Err(routed) => return routed,
    };
    // HEAD routes exactly like GET; the connection loop strips the body.
    let method = match request.method.as_str() {
        "HEAD" => "GET",
        m => m,
    };
    // The stream endpoint needs the raw socket; everything else buffers.
    if let Some(id) = request
        .path
        .strip_prefix("/v1/jobs/")
        .and_then(|rest| rest.strip_suffix("/stream"))
    {
        if request.method != "GET" {
            return Routed::Json(
                405,
                wire::error_body(
                    "method_not_allowed",
                    &format!("{} is not supported on {}", request.method, request.path),
                    None,
                ),
            );
        }
        return match id.parse::<u64>() {
            Ok(id) => Routed::Stream { id, format },
            Err(_) => Routed::Json(
                400,
                wire::error_body("bad_request", &format!("bad job id `{id}`"), None),
            ),
        };
    }
    // Binary form exists only for sweep and repair results; on any other
    // route the client asked for an encoding the response cannot take.
    if format == Format::Binary {
        if method == "POST" && request.path == "/v1/run" {
            return run_binary(request, shared);
        }
        return Routed::Json(
            406,
            wire::error_body(
                "not_acceptable",
                "the binary row encoding is only defined for sweep and repair results (POST /v1/run with a sweep or repair request, or GET /v1/jobs/{id}/stream)",
                None,
            ),
        );
    }
    let (status, body) = route_json(method, request, shared);
    Routed::Json(status, body)
}

/// `POST /v1/run` with `Accept: application/x-cnfet-rows`: a sweep
/// answers as a binary row table, a repair lot as a binary die table;
/// any other result kind is `406`.
fn run_binary(request: &Request, shared: &Shared) -> Routed {
    let value = match parse_body(&request.body) {
        Ok(value) => value,
        Err((status, body)) => return Routed::Json(status, body),
    };
    let kind = match wire::parse_request(&value) {
        Ok(kind) => kind,
        Err(e) => {
            return Routed::Json(400, wire::error_body("bad_request", &e.message, None));
        }
    };
    match shared.session.run(&kind) {
        Ok(ResponseKind::Sweep(report)) => {
            Routed::Binary(200, encode::encode_row_table(&report.rows))
        }
        Ok(ResponseKind::Repair(report)) => {
            Routed::Binary(200, encode::encode_die_table(&report.dies))
        }
        Ok(_) => Routed::Json(
            406,
            wire::error_body(
                "not_acceptable",
                "the binary row encoding is only defined for sweep and repair results; request this kind as application/json",
                None,
            ),
        ),
        Err(error) => {
            let (status, body) = wire::error_response(&error);
            Routed::Json(status, body)
        }
    }
}

/// Serves `GET /v1/jobs/{id}/stream`: a chunked response of progress
/// events and corner/die/candidate rows, flushed as the engine harvests
/// them, ending in a terminal `done` / `error` / `canceled` event. A write failure
/// (the peer hung up mid-stream) ends the handler immediately — the
/// worker is freed and the job settles in the table like any other.
fn stream_job(stream: &mut TcpStream, shared: &Shared, id: u64, format: Format) {
    let progress = match shared.jobs.watch(id) {
        Ok(progress) => progress,
        Err(polled) => {
            let (status, kind, message) = match polled {
                Polled::Expired => (410, "job_expired", format!("job {id} has expired")),
                _ => (404, "unknown_job", format!("no job {id}")),
            };
            let body = wire::error_body(kind, &message, None).render();
            let _ = http::write_response(stream, status, &body, true);
            return;
        }
    };
    let content_type = match format {
        Format::Json => "application/x-ndjson",
        Format::Binary => encode::BINARY_CONTENT_TYPE,
    };
    if http::start_chunked(stream, 200, content_type).is_err() {
        return;
    }
    let start = Json::obj([
        ("event", Json::str("start")),
        ("job", Json::from(id)),
        ("total", Json::from(progress.total())),
    ]);
    if emit_event(stream, format, &start).is_err() {
        return;
    }
    let mut seen = 0usize;
    loop {
        // Polling drives settlement (the job's handle is harvested under
        // the table lock); waiting drains the row feed.
        let _ = shared.jobs.poll(id);
        let (rows, finished) = progress.wait(seen, READ_POLL);
        for (offset, row) in rows.iter().enumerate() {
            let written = match format {
                Format::Json => {
                    let rendered = match row {
                        StreamRow::Corner(row) => wire::render_row(row),
                        StreamRow::Die(outcome) => wire::render_die_row(outcome),
                        StreamRow::Candidate(row) => wire::render_candidate(row),
                        StreamRow::Slice(outcome) => wire::render_slice_row(outcome),
                    };
                    emit_event(
                        stream,
                        format,
                        &Json::obj([
                            ("event", Json::str("row")),
                            ("index", Json::from(seen + offset)),
                            ("row", rendered),
                        ]),
                    )
                }
                Format::Binary => {
                    let framed = match row {
                        StreamRow::Corner(row) => {
                            encode::frame(encode::FRAME_ROW, &encode::encode_row(row))
                        }
                        StreamRow::Die(outcome) => {
                            encode::frame(encode::FRAME_DIE, &encode::encode_die(outcome))
                        }
                        // Candidates and slices have no dedicated binary
                        // frame; they ride in an event frame like
                        // start/done do.
                        StreamRow::Candidate(row) => encode::frame(
                            encode::FRAME_EVENT,
                            Json::obj([
                                ("event", Json::str("row")),
                                ("index", Json::from(seen + offset)),
                                ("row", wire::render_candidate(row)),
                            ])
                            .render()
                            .as_bytes(),
                        ),
                        StreamRow::Slice(outcome) => encode::frame(
                            encode::FRAME_EVENT,
                            Json::obj([
                                ("event", Json::str("row")),
                                ("index", Json::from(seen + offset)),
                                ("row", wire::render_slice_row(outcome)),
                            ])
                            .render()
                            .as_bytes(),
                        ),
                    };
                    http::write_chunk(stream, &framed)
                }
            };
            if written.is_err() {
                return;
            }
        }
        seen += rows.len();
        if let Some(view) = finished {
            let terminal = match view {
                JobView::Done(result) => {
                    Json::obj([("event", Json::str("done")), ("result", result)])
                }
                JobView::Failed(_, error) => {
                    let mut fields = vec![("event".to_string(), Json::str("error"))];
                    if let Json::Obj(error_fields) = error {
                        fields.extend(error_fields);
                    }
                    Json::Obj(fields)
                }
                JobView::Canceled => Json::obj([("event", Json::str("canceled"))]),
            };
            if emit_event(stream, format, &terminal).is_ok() {
                let _ = http::finish_chunked(stream);
            }
            return;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            let canceled = Json::obj([("event", Json::str("canceled"))]);
            if emit_event(stream, format, &canceled).is_ok() {
                let _ = http::finish_chunked(stream);
            }
            return;
        }
    }
}

/// One stream event: an ndjson line (JSON mode) or an event frame
/// (binary mode).
fn emit_event(stream: &mut TcpStream, format: Format, event: &Json) -> std::io::Result<()> {
    match format {
        Format::Json => {
            let mut line = event.render();
            line.push('\n');
            http::write_chunk(stream, line.as_bytes())
        }
        Format::Binary => http::write_chunk(
            stream,
            &encode::frame(encode::FRAME_EVENT, event.render().as_bytes()),
        ),
    }
}

fn route_json(method: &str, request: &Request, shared: &Shared) -> (u16, Json) {
    match (method, request.path.as_str()) {
        ("GET", "/v1/healthz") => (200, Json::obj([("ok", Json::Bool(true))])),
        ("GET", "/v1/stats") => (200, stats_body(shared)),
        ("POST", "/v1/run") => with_request_body(request, |kind| match shared.session.run(&kind) {
            Ok(response) => (200, wire::render_response(&response)),
            Err(error) => wire::error_response(&error),
        }),
        ("POST", "/v1/batch") => with_batch_body(request, |kinds| {
            let results = shared
                .session
                .run_batch(&kinds)
                .into_iter()
                .map(|result| match result {
                    Ok(response) => Json::obj([("ok", wire::render_response(&response))]),
                    Err(error) => wire::error_response(&error).1,
                })
                .collect::<Vec<Json>>();
            (200, Json::obj([("results", Json::Arr(results))]))
        }),
        ("POST", "/v1/submit") => with_batch_body(request, |kinds| {
            let mut ids = Vec::with_capacity(kinds.len());
            for kind in kinds {
                match shared.jobs.submit(&shared.session, kind) {
                    Ok(id) => ids.push(Json::from(id)),
                    Err(backpressure) => {
                        // Jobs admitted before the refusal stay admitted —
                        // their ids are reported so the client can poll
                        // or retry just the rejected tail.
                        return (
                            429,
                            Json::obj([
                                (
                                    "error",
                                    Json::obj([
                                        ("kind", Json::str("backpressure")),
                                        (
                                            "message",
                                            Json::str(format!(
                                                "job table full ({} pending jobs)",
                                                backpressure.capacity
                                            )),
                                        ),
                                    ]),
                                ),
                                ("jobs", Json::Arr(ids)),
                            ]),
                        );
                    }
                }
            }
            (202, Json::obj([("jobs", Json::Arr(ids))]))
        }),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let id = &path["/v1/jobs/".len()..];
            let Ok(id) = id.parse::<u64>() else {
                return (
                    400,
                    wire::error_body("bad_request", &format!("bad job id `{id}`"), None),
                );
            };
            match shared.jobs.poll(id) {
                Polled::Unknown => (
                    404,
                    wire::error_body("unknown_job", &format!("no job {id}"), None),
                ),
                // Distinct from never-issued: the job existed and its
                // result aged out. `410 Gone` tells the poller to stop.
                Polled::Expired => (
                    410,
                    wire::error_body(
                        "job_expired",
                        &format!("job {id} settled and its result expired"),
                        None,
                    ),
                ),
                Polled::Pending { age_ms, queued } => (
                    200,
                    Json::obj([
                        ("status", Json::str("pending")),
                        ("age_ms", Json::from(age_ms)),
                        ("queued", Json::from(queued)),
                    ]),
                ),
                Polled::Settled(JobView::Done(result)) => (
                    200,
                    Json::obj([("status", Json::str("done")), ("result", result)]),
                ),
                Polled::Settled(JobView::Failed(_, error)) => {
                    let mut fields = vec![("status".to_string(), Json::str("error"))];
                    if let Json::Obj(error_fields) = error {
                        fields.extend(error_fields);
                    }
                    (200, Json::Obj(fields))
                }
                Polled::Settled(JobView::Canceled) => {
                    (200, Json::obj([("status", Json::str("canceled"))]))
                }
            }
        }
        // Any other method on a known route is a method error, not a
        // missing resource — including PUT/DELETE and POSTs to job ids.
        (_, "/v1/run" | "/v1/batch" | "/v1/submit" | "/v1/stats" | "/v1/healthz") => (
            405,
            wire::error_body(
                "method_not_allowed",
                &format!("{} is not supported on {}", request.method, request.path),
                None,
            ),
        ),
        (_, path) if path.starts_with("/v1/jobs/") => (
            405,
            wire::error_body(
                "method_not_allowed",
                &format!("{} is not supported on {}", request.method, path),
                None,
            ),
        ),
        _ => (
            404,
            wire::error_body("not_found", &format!("no route for {}", request.path), None),
        ),
    }
}

/// Parses the body as one request object and hands it to `f`; JSON and
/// wire errors short-circuit to `400`.
fn with_request_body(
    request: &Request,
    f: impl FnOnce(cnfet::RequestKind) -> (u16, Json),
) -> (u16, Json) {
    match parse_body(&request.body) {
        Ok(value) => match wire::parse_request(&value) {
            Ok(kind) => f(kind),
            Err(e) => (400, wire::error_body("bad_request", &e.message, None)),
        },
        Err(response) => response,
    }
}

/// Parses the body as `{"requests": [...]}` (or a single request
/// object, treated as a batch of one) and hands the list to `f`.
fn with_batch_body(
    request: &Request,
    f: impl FnOnce(Vec<cnfet::RequestKind>) -> (u16, Json),
) -> (u16, Json) {
    let value = match parse_body(&request.body) {
        Ok(value) => value,
        Err(response) => return response,
    };
    let items: Vec<&Json> = match value.get("requests") {
        Some(Json::Arr(items)) => items.iter().collect(),
        Some(other) if !other.is_null() => {
            return (
                400,
                wire::error_body("bad_request", "requests: expected an array", None),
            )
        }
        _ => vec![&value],
    };
    let mut kinds = Vec::with_capacity(items.len());
    for (i, item) in items.into_iter().enumerate() {
        match wire::parse_request(item) {
            Ok(kind) => kinds.push(kind),
            Err(e) => {
                return (
                    400,
                    wire::error_body("bad_request", &format!("requests[{i}].{}", e.message), None),
                )
            }
        }
    }
    f(kinds)
}

fn parse_body(body: &[u8]) -> Result<Json, (u16, Json)> {
    let text = std::str::from_utf8(body).map_err(|_| {
        (
            400,
            wire::error_body("bad_request", "body is not UTF-8", None),
        )
    })?;
    json::parse(text).map_err(|e| {
        (
            400,
            wire::error_body("bad_request", &e.message, Some(e.position)),
        )
    })
}

/// `GET /v1/stats`: the full engine [`SessionStats`](cnfet::SessionStats)
/// (per-class hits/misses/evictions and the executor counters), per-class
/// cache occupancy, and the server's own counters.
fn stats_body(shared: &Shared) -> Json {
    let stats = shared.session.stats();
    let classes = RequestClass::ALL
        .into_iter()
        .map(|class| {
            let per_class = stats.class(class);
            let cache = shared.session.cache_stats(class);
            (
                class.name().to_string(),
                Json::obj([
                    ("hits", Json::from(per_class.hits)),
                    ("fast_hits", Json::from(per_class.fast_hits)),
                    ("misses", Json::from(per_class.misses)),
                    ("evictions", Json::from(per_class.evictions)),
                    ("requests", Json::from(per_class.requests())),
                    ("entries", Json::from(cache.entries)),
                    ("capacity", Json::from(cache.capacity)),
                    ("in_flight", Json::from(cache.in_flight)),
                ]),
            )
        })
        .collect::<Vec<(String, Json)>>();
    let jobs = shared.jobs.stats();
    Json::obj([
        ("classes", Json::Obj(classes)),
        (
            "engine",
            Json::obj([
                ("inflight_waits", Json::from(stats.inflight_waits)),
                ("batches", Json::from(stats.batches)),
                ("steals", Json::from(stats.steals)),
                ("submitted", Json::from(stats.submitted)),
                ("workers", Json::from(shared.session.worker_count())),
            ]),
        ),
        (
            "server",
            Json::obj([
                (
                    "connections",
                    Json::from(shared.connections.load(Ordering::Relaxed)),
                ),
                (
                    "requests",
                    Json::from(shared.requests.load(Ordering::Relaxed)),
                ),
                (
                    "jobs",
                    Json::obj([
                        ("pending", Json::from(jobs.pending)),
                        ("settled", Json::from(jobs.settled)),
                        ("rejected", Json::from(jobs.rejected)),
                        ("submitted", Json::from(jobs.submitted)),
                        ("expired", Json::from(jobs.expired)),
                    ]),
                ),
            ]),
        ),
    ])
}
