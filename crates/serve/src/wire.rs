//! The wire protocol: JSON encodings of every
//! [`RequestKind`] the engine services and of every
//! result / error it answers with.
//!
//! # Requests
//!
//! A request is an object with a `type` discriminant:
//!
//! ```json
//! {"type": "cell", "kind": "nand3", "strength": 2, "name": "N3_X2", "scheme": "s2"}
//! {"type": "library", "scheme": "s1"}
//! {"type": "immunity", "cell": {"kind": "inv"}, "engine": "certify"}
//! {"type": "immunity", "cell": {"kind": "aoi22"}, "engine": "monte_carlo",
//!  "mc": {"tubes": 500, "seed": 7, "metallic_fraction": 0.02}}
//! {"type": "flow", "source": "full_adder", "target": "s1", "emit_gds": true,
//!  "sim": {"toggle_in": "A", "ties": {"B": true, "CI": false}, "watch_out": "S"}}
//! {"type": "flow", "source": {"verilog": "module t(...); ... endmodule"}, "target": "cmos"}
//! {"type": "sweep", "cells": [{"kind": "inv"}, {"kind": "nand2"}],
//!  "grid": {"tube_counts": [26, 10], "metallic_fractions": [0.0, 0.02]},
//!  "metrics": "immunity", "mc": {"tubes": 200}, "loads_f": [1e-15]}
//! {"type": "sweep_corner", "cell": {"kind": "inv"},
//!  "corner": {"tubes_per_4lambda": 10, "pitch_scale": 1.3,
//!             "metallic_fraction": 0.0, "seed": 42}}
//! {"type": "tran", "deck": "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1p\n.end",
//!  "dt": 1e-11, "t_stop": 1e-8, "probes": ["out"]}
//! {"type": "repair", "cells": [{"kind": "inv"}, {"kind": "nand2"}],
//!  "dies": 1000, "seed": 7, "spares": 2, "solver": "auto",
//!  "params": {"metallic_fraction": 0.05, "misposition_fraction": 0.2},
//!  "adjacent": [[0, 1]]}
//! {"type": "die", "cells": [{"kind": "inv"}], "die": 42, "seed": 7}
//! {"type": "optimize", "cells": [{"kind": "inv"}],
//!  "grid": {"tube_counts": [6, 26], "pitch_scales": [1.0, 1.5]},
//!  "target": {"min_yield": 0.9, "max_delay_s": 5e-11}, "passes": 2,
//!  "metrics": "immunity", "mc": {"tubes": 200}}
//! {"type": "macro", "kind": "cla", "width": 64, "scheme": "s2", "seed": 7}
//! {"type": "macro_slice", "kind": "cla", "width": 64, "bit": 9}
//! ```
//!
//! Cell kinds are `inv`, `nand2..4`, `nor2..4`, `aoi21`, `aoi22`,
//! `aoi31`, `oai21`, `oai22`; schemes are `s1` / `s2`. Every field
//! beyond `type` (and per-type requireds) is optional and defaults like
//! the in-process builders. A cell's optional `scheme` overrides the
//! arrangement scheme while keeping the server's rule deck; richer
//! [`GenerateOptions`] overrides stay an
//! in-process feature.
//!
//! # Responses and errors
//!
//! Results are summaries — geometry accounting, verdicts, metrics —
//! rather than full layout dumps; clients that need drawn geometry run
//! in-process. Failures render as one structured shape,
//!
//! ```json
//! {"error": {"kind": "generate", "message": "…"}}
//! ```
//!
//! where `kind` names the [`CnfetError`] variant (`generate`, `parse`,
//! `network`, `sim_singular`, `sim_no_convergence`, `deck`, `gds`,
//! `library`, `verilog`, `missing_cell`, `invalid_request`, `canceled`,
//! `io`) and malformed requests use `bad_request` with a byte `position`
//! when the JSON itself failed to parse. Simulation failures split by
//! cause so a client can tell a structurally broken deck (`sim_singular`
//! — floating node or source loop) from Newton trouble
//! (`sim_no_convergence`). Grid axes are validated at parse time — a
//! negative or non-finite `pitch_scales` / `metallic_fractions` entry
//! answers `400` naming the offending index (`grid.pitch_scales[1]`)
//! before the engine ever renders a cache key — and the engine's own
//! [`CnfetError::InvalidRequest`] guard maps to `400` the same way, so
//! a malformed value can never occupy a cache slot.

use crate::json::Json;
use cnfet::core::{GenerateOptions, Scheme, StdCellKind};
use cnfet::dk::CellLibrary;
use cnfet::immunity::McOptions;
use cnfet::logic::AdderKind;
use cnfet::repair::{DefectParams, DieOutcome, Solver};
use cnfet::spice::SimError;
use cnfet::sweep::{
    CornerRow, CornerSummary, SweepCornerRequest, SweepMetrics, SweepReport, SweepRequest,
    VariationCorner, VariationGrid,
};
use cnfet::{
    CandidateRow, CellRequest, CellResult, CnfetError, DieRequest, FlowRequest, FlowResult,
    FlowSource, FlowTarget, ImmunityEngine, ImmunityReport, ImmunityRequest, LibraryRequest,
    MacroReport, MacroRequest, MacroSliceRequest, OptimizeReport, OptimizeRequest, OptimizeTarget,
    RepairReport, RepairRequest, RequestKind, ResponseKind, SimSpec, SliceOutcome, TranRequest,
    TranResult,
};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A semantically malformed request: well-formed JSON that does not
/// encode a request. The message names the offending field path
/// (`cells[2].kind`), and the server answers `400`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What is wrong, prefixed with the field path.
    pub message: String,
}

impl WireError {
    fn new(path: &str, message: impl std::fmt::Display) -> WireError {
        WireError {
            message: format!("{path}: {message}"),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WireError {}

/// The uniform error payload: `{"error": {"kind", "message"[, "position"]}}`.
pub fn error_body(kind: &str, message: &str, position: Option<usize>) -> Json {
    let mut fields = vec![
        ("kind".to_string(), Json::str(kind)),
        ("message".to_string(), Json::str(message)),
    ];
    if let Some(position) = position {
        fields.push(("position".to_string(), Json::from(position)));
    }
    Json::obj([("error", Json::Obj(fields))])
}

/// Maps an execution failure to its HTTP status and structured payload.
/// Domain failures are the client's problem (`422`); a canceled job
/// means the engine is going away (`503`).
pub fn error_response(error: &CnfetError) -> (u16, Json) {
    let kind = match error {
        CnfetError::Generate(_) => "generate",
        CnfetError::Parse(_) => "parse",
        CnfetError::Network(_) => "network",
        CnfetError::Sim(SimError::Singular) => "sim_singular",
        CnfetError::Sim(SimError::NoConvergence { .. }) => "sim_no_convergence",
        CnfetError::Deck(_) => "deck",
        CnfetError::Gds(_) => "gds",
        CnfetError::Library(_) => "library",
        CnfetError::Verilog(_) => "verilog",
        CnfetError::MissingCell(_) => "missing_cell",
        CnfetError::InvalidRequest { .. } => "invalid_request",
        CnfetError::Canceled => "canceled",
        CnfetError::Io(_) => "io",
        _ => "internal",
    };
    let status = match error {
        CnfetError::InvalidRequest { .. } => 400,
        CnfetError::Canceled => 503,
        CnfetError::Io(_) => 500,
        _ => 422,
    };
    (status, error_body(kind, &error.to_string(), None))
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// A present, non-null member.
fn opt<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    obj.get(key).filter(|v| !v.is_null())
}

fn need<'a>(obj: &'a Json, path: &str, key: &str) -> Result<&'a Json, WireError> {
    opt(obj, key).ok_or_else(|| WireError::new(&join(path, key), "missing required field"))
}

fn as_str<'a>(value: &'a Json, path: &str) -> Result<&'a str, WireError> {
    value
        .as_str()
        .ok_or_else(|| WireError::new(path, "expected a string"))
}

fn as_f64(value: &Json, path: &str) -> Result<f64, WireError> {
    value
        .as_f64()
        .ok_or_else(|| WireError::new(path, "expected a number"))
}

fn as_u64(value: &Json, path: &str) -> Result<u64, WireError> {
    value
        .as_u64()
        .ok_or_else(|| WireError::new(path, "expected a non-negative integer"))
}

fn as_bool(value: &Json, path: &str) -> Result<bool, WireError> {
    value
        .as_bool()
        .ok_or_else(|| WireError::new(path, "expected a boolean"))
}

fn as_arr<'a>(value: &'a Json, path: &str) -> Result<&'a [Json], WireError> {
    value
        .as_arr()
        .ok_or_else(|| WireError::new(path, "expected an array"))
}

fn num_list<T>(
    obj: &Json,
    path: &str,
    key: &str,
    convert: impl Fn(&Json, &str) -> Result<T, WireError>,
) -> Result<Option<Vec<T>>, WireError> {
    let Some(value) = opt(obj, key) else {
        return Ok(None);
    };
    let path = join(path, key);
    as_arr(value, &path)?
        .iter()
        .enumerate()
        .map(|(i, v)| convert(v, &format!("{path}[{i}]")))
        .collect::<Result<Vec<T>, WireError>>()
        .map(Some)
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// Parses one wire request object into the engine's [`RequestKind`].
pub fn parse_request(value: &Json) -> Result<RequestKind, WireError> {
    parse_request_at(value, "")
}

fn parse_request_at(value: &Json, path: &str) -> Result<RequestKind, WireError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(WireError::new(path, "expected a request object"));
    }
    let ty = as_str(need(value, path, "type")?, &join(path, "type"))?;
    match ty {
        "cell" => Ok(RequestKind::Cell(parse_cell(value, path)?)),
        "library" => Ok(RequestKind::Library(LibraryRequest::new(parse_scheme(
            need(value, path, "scheme")?,
            &join(path, "scheme"),
        )?))),
        "immunity" => Ok(RequestKind::Immunity(parse_immunity(value, path)?)),
        "flow" => Ok(RequestKind::Flow(parse_flow(value, path)?)),
        "sweep" => Ok(RequestKind::Sweep(parse_sweep(value, path)?)),
        "sweep_corner" => Ok(RequestKind::SweepCorner(parse_sweep_corner(value, path)?)),
        "tran" => Ok(RequestKind::Tran(parse_tran(value, path)?)),
        "repair" => Ok(RequestKind::Repair(parse_repair(value, path)?)),
        "die" => Ok(RequestKind::Die(parse_die(value, path)?)),
        "optimize" => Ok(RequestKind::Optimize(parse_optimize(value, path)?)),
        "macro" => Ok(RequestKind::Macro(parse_macro(value, path)?)),
        "macro_slice" => Ok(RequestKind::MacroSlice(parse_macro_slice(value, path)?)),
        other => Err(WireError::new(
            &join(path, "type"),
            format!("unknown request type `{other}`"),
        )),
    }
}

fn parse_kind(value: &Json, path: &str) -> Result<StdCellKind, WireError> {
    match as_str(value, path)? {
        "inv" => Ok(StdCellKind::Inv),
        "nand2" => Ok(StdCellKind::Nand(2)),
        "nand3" => Ok(StdCellKind::Nand(3)),
        "nand4" => Ok(StdCellKind::Nand(4)),
        "nor2" => Ok(StdCellKind::Nor(2)),
        "nor3" => Ok(StdCellKind::Nor(3)),
        "nor4" => Ok(StdCellKind::Nor(4)),
        "aoi21" => Ok(StdCellKind::Aoi21),
        "aoi22" => Ok(StdCellKind::Aoi22),
        "aoi31" => Ok(StdCellKind::Aoi31),
        "oai21" => Ok(StdCellKind::Oai21),
        "oai22" => Ok(StdCellKind::Oai22),
        other => Err(WireError::new(
            path,
            format!("unknown cell kind `{other}` (inv, nand2..4, nor2..4, aoi21/22/31, oai21/22)"),
        )),
    }
}

/// Renders a cell kind back to its wire name.
pub fn kind_name(kind: StdCellKind) -> String {
    match kind {
        StdCellKind::Inv => "inv".to_string(),
        StdCellKind::Nand(n) => format!("nand{n}"),
        StdCellKind::Nor(n) => format!("nor{n}"),
        StdCellKind::Aoi21 => "aoi21".to_string(),
        StdCellKind::Aoi22 => "aoi22".to_string(),
        StdCellKind::Aoi31 => "aoi31".to_string(),
        StdCellKind::Oai21 => "oai21".to_string(),
        StdCellKind::Oai22 => "oai22".to_string(),
    }
}

fn parse_scheme(value: &Json, path: &str) -> Result<Scheme, WireError> {
    match as_str(value, path)? {
        "s1" | "scheme1" => Ok(Scheme::Scheme1),
        "s2" | "scheme2" => Ok(Scheme::Scheme2),
        other => Err(WireError::new(
            path,
            format!("unknown scheme `{other}` (s1, s2)"),
        )),
    }
}

fn scheme_name(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Scheme1 => "s1",
        Scheme::Scheme2 => "s2",
    }
}

fn parse_cell(value: &Json, path: &str) -> Result<CellRequest, WireError> {
    let mut request =
        CellRequest::new(parse_kind(need(value, path, "kind")?, &join(path, "kind"))?);
    if let Some(strength) = opt(value, "strength") {
        let strength = as_u64(strength, &join(path, "strength"))?;
        if !(1..=255).contains(&strength) {
            return Err(WireError::new(&join(path, "strength"), "expected 1..=255"));
        }
        request = request.strength(strength as u8);
    }
    if let Some(name) = opt(value, "name") {
        request = request.named(as_str(name, &join(path, "name"))?);
    }
    if let Some(scheme) = opt(value, "scheme") {
        // Scheme override on the default rule deck; richer option
        // overrides stay in-process (see the module docs).
        request = request.options(GenerateOptions {
            scheme: parse_scheme(scheme, &join(path, "scheme"))?,
            ..GenerateOptions::default()
        });
    }
    Ok(request)
}

fn parse_mc(value: &Json, path: &str) -> Result<McOptions, WireError> {
    let mut mc = McOptions::default();
    if let Some(tubes) = opt(value, "tubes") {
        mc.tubes = as_u64(tubes, &join(path, "tubes"))? as usize;
    }
    if let Some(tau) = opt(value, "tau") {
        mc.tau = as_f64(tau, &join(path, "tau"))?;
    }
    if let Some(len) = opt(value, "segment_len_lambda") {
        mc.segment_len_lambda = as_f64(len, &join(path, "segment_len_lambda"))?;
    }
    if let Some(seed) = opt(value, "seed") {
        mc.seed = as_u64(seed, &join(path, "seed"))?;
    }
    if let Some(fraction) = opt(value, "metallic_fraction") {
        mc.metallic_fraction = as_f64(fraction, &join(path, "metallic_fraction"))?;
    }
    Ok(mc)
}

fn parse_immunity(value: &Json, path: &str) -> Result<ImmunityRequest, WireError> {
    let cell = parse_cell(need(value, path, "cell")?, &join(path, "cell"))?;
    let mc = match opt(value, "mc") {
        Some(mc) => parse_mc(mc, &join(path, "mc"))?,
        None => McOptions::default(),
    };
    let engine = match opt(value, "engine") {
        None => ImmunityEngine::Certify,
        Some(engine) => match as_str(engine, &join(path, "engine"))? {
            "certify" => ImmunityEngine::Certify,
            "monte_carlo" => ImmunityEngine::MonteCarlo(mc),
            "both" => ImmunityEngine::Both(mc),
            other => {
                return Err(WireError::new(
                    &join(path, "engine"),
                    format!("unknown engine `{other}` (certify, monte_carlo, both)"),
                ))
            }
        },
    };
    Ok(ImmunityRequest { cell, engine })
}

fn parse_flow(value: &Json, path: &str) -> Result<FlowRequest, WireError> {
    let source = match need(value, path, "source")? {
        Json::Str(s) if s == "full_adder" => FlowSource::FullAdder,
        Json::Str(s) => {
            return Err(WireError::new(
                &join(path, "source"),
                format!("unknown source `{s}` (full_adder, or {{\"verilog\": …}})"),
            ))
        }
        obj @ Json::Obj(_) => FlowSource::Verilog(
            as_str(
                need(obj, &join(path, "source"), "verilog")?,
                &join(path, "source.verilog"),
            )?
            .to_string(),
        ),
        _ => {
            return Err(WireError::new(
                &join(path, "source"),
                "expected `full_adder` or {\"verilog\": …}",
            ))
        }
    };
    let target = match as_str(need(value, path, "target")?, &join(path, "target"))? {
        "cmos" => FlowTarget::Cmos,
        scheme => FlowTarget::Cnfet(parse_scheme(&Json::str(scheme), &join(path, "target"))?),
    };
    let mut request = FlowRequest {
        source,
        target,
        sim: None,
        emit_gds: false,
    };
    if let Some(gds) = opt(value, "emit_gds") {
        request.emit_gds = as_bool(gds, &join(path, "emit_gds"))?;
    }
    if let Some(sim) = opt(value, "sim") {
        let sim_path = join(path, "sim");
        let mut ties = BTreeMap::new();
        if let Some(Json::Obj(fields)) = opt(sim, "ties") {
            for (name, tied) in fields {
                ties.insert(
                    name.clone(),
                    as_bool(tied, &format!("{sim_path}.ties.{name}"))?,
                );
            }
        }
        request.sim = Some(SimSpec {
            toggle_in: as_str(
                need(sim, &sim_path, "toggle_in")?,
                &join(&sim_path, "toggle_in"),
            )?
            .to_string(),
            ties,
            watch_out: as_str(
                need(sim, &sim_path, "watch_out")?,
                &join(&sim_path, "watch_out"),
            )?
            .to_string(),
        });
    }
    Ok(request)
}

fn parse_metrics(value: &Json, path: &str) -> Result<SweepMetrics, WireError> {
    match value {
        Json::Str(s) => match s.as_str() {
            "all" => Ok(SweepMetrics::ALL),
            "immunity" => Ok(SweepMetrics::IMMUNITY),
            "timing" => Ok(SweepMetrics::TIMING),
            other => Err(WireError::new(
                path,
                format!("unknown metric set `{other}` (all, immunity, timing, or an object)"),
            )),
        },
        obj @ Json::Obj(_) => {
            let flag = |key: &str| -> Result<bool, WireError> {
                opt(obj, key).map_or(Ok(false), |v| as_bool(v, &join(path, key)))
            };
            Ok(SweepMetrics {
                immunity: flag("immunity")?,
                timing: flag("timing")?,
                liberty: flag("liberty")?,
                retain_waveforms: flag("waveforms")?,
            })
        }
        _ => Err(WireError::new(path, "expected a string or an object")),
    }
}

/// A float axis value the grid key can render: finite and non-negative.
/// Rejected here — mirroring the engine's own
/// [`VariationGrid::validate`] guard — so a bad axis answers `400` with
/// its index named instead of reaching the cache-key path at all.
fn finite_axis(value: &Json, path: &str) -> Result<f64, WireError> {
    let v = as_f64(value, path)?;
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(WireError::new(
            path,
            format!("expected a finite non-negative number, got {v}"),
        ))
    }
}

fn parse_grid(value: &Json, path: &str) -> Result<VariationGrid, WireError> {
    let mut grid = VariationGrid::nominal();
    if let Some(counts) = num_list(value, path, "tube_counts", |v, p| {
        as_u64(v, p).map(|n| n as u32)
    })? {
        grid.tube_counts = counts;
    }
    if let Some(scales) = num_list(value, path, "pitch_scales", finite_axis)? {
        grid.pitch_scales = scales;
    }
    if let Some(fractions) = num_list(value, path, "metallic_fractions", finite_axis)? {
        grid.metallic_fractions = fractions;
    }
    if let Some(seeds) = num_list(value, path, "seeds", as_u64)? {
        grid.seeds = seeds;
    }
    Ok(grid)
}

fn parse_sweep(value: &Json, path: &str) -> Result<SweepRequest, WireError> {
    let mut request = SweepRequest::new(parse_cells(value, path)?);
    if let Some(grid) = opt(value, "grid") {
        request = request.grid(parse_grid(grid, &join(path, "grid"))?);
    }
    if let Some(metrics) = opt(value, "metrics") {
        request = request.metrics(parse_metrics(metrics, &join(path, "metrics"))?);
    }
    if let Some(mc) = opt(value, "mc") {
        request = request.mc(parse_mc(mc, &join(path, "mc"))?);
    }
    if let Some(loads) = num_list(value, path, "loads_f", as_f64)? {
        request = request.loads(loads);
    }
    Ok(request)
}

fn parse_corner(value: &Json, path: &str) -> Result<VariationCorner, WireError> {
    let mut corner = VariationCorner::nominal();
    if let Some(tubes) = opt(value, "tubes_per_4lambda") {
        corner.tubes_per_4lambda = as_u64(tubes, &join(path, "tubes_per_4lambda"))? as u32;
    }
    if let Some(scale) = opt(value, "pitch_scale") {
        corner.pitch_scale = as_f64(scale, &join(path, "pitch_scale"))?;
    }
    if let Some(fraction) = opt(value, "metallic_fraction") {
        corner.metallic_fraction = as_f64(fraction, &join(path, "metallic_fraction"))?;
    }
    if let Some(seed) = opt(value, "seed") {
        corner.seed = as_u64(seed, &join(path, "seed"))?;
    }
    Ok(corner)
}

fn parse_sweep_corner(value: &Json, path: &str) -> Result<SweepCornerRequest, WireError> {
    let cell = parse_cell(need(value, path, "cell")?, &join(path, "cell"))?;
    let corner = match opt(value, "corner") {
        Some(corner) => parse_corner(corner, &join(path, "corner"))?,
        None => VariationCorner::nominal(),
    };
    let metrics = match opt(value, "metrics") {
        Some(metrics) => parse_metrics(metrics, &join(path, "metrics"))?,
        None => SweepMetrics::ALL,
    };
    let mc = match opt(value, "mc") {
        Some(mc) => parse_mc(mc, &join(path, "mc"))?,
        None => McOptions::default(),
    };
    let loads_f = num_list(value, path, "loads_f", as_f64)?.unwrap_or_else(|| vec![1e-15]);
    Ok(SweepCornerRequest {
        cell,
        corner,
        metrics,
        mc,
        loads_f,
    })
}

fn parse_tran(value: &Json, path: &str) -> Result<TranRequest, WireError> {
    let deck = as_str(need(value, path, "deck")?, &join(path, "deck"))?;
    // Reject non-physical time steps here so the engine's own validation
    // never has to run on a server thread with garbage input.
    let positive = |key: &str| -> Result<f64, WireError> {
        let p = join(path, key);
        let v = as_f64(need(value, path, key)?, &p)?;
        if v.is_finite() && v > 0.0 {
            Ok(v)
        } else {
            Err(WireError::new(&p, "expected a positive finite number"))
        }
    };
    let dt = positive("dt")?;
    let t_stop = positive("t_stop")?;
    let mut request = TranRequest::new(deck, dt, t_stop);
    if let Some(probes) = opt(value, "probes") {
        let probes_path = join(path, "probes");
        let names = as_arr(probes, &probes_path)?
            .iter()
            .enumerate()
            .map(|(i, v)| as_str(v, &format!("{probes_path}[{i}]")).map(str::to_string))
            .collect::<Result<Vec<String>, WireError>>()?;
        request = request.probes(names);
    }
    Ok(request)
}

fn parse_cells(value: &Json, path: &str) -> Result<Vec<CellRequest>, WireError> {
    let cells_path = join(path, "cells");
    as_arr(need(value, path, "cells")?, &cells_path)?
        .iter()
        .enumerate()
        .map(|(i, c)| parse_cell(c, &format!("{cells_path}[{i}]")))
        .collect()
}

fn parse_defect_params(value: &Json, path: &str) -> Result<DefectParams, WireError> {
    let mut params = DefectParams::default();
    if let Some(fraction) = opt(value, "metallic_fraction") {
        params.metallic_fraction = as_f64(fraction, &join(path, "metallic_fraction"))?;
    }
    if let Some(fraction) = opt(value, "open_fraction") {
        params.open_fraction = as_f64(fraction, &join(path, "open_fraction"))?;
    }
    if let Some(fraction) = opt(value, "misposition_fraction") {
        params.misposition_fraction = as_f64(fraction, &join(path, "misposition_fraction"))?;
    }
    if let Some(tubes) = opt(value, "tubes_per_site") {
        params.tubes_per_site = as_u64(tubes, &join(path, "tubes_per_site"))? as u32;
    }
    if let Some(tolerance) = opt(value, "open_tolerance") {
        params.open_tolerance = as_f64(tolerance, &join(path, "open_tolerance"))?;
    }
    if let Some(tau) = opt(value, "tau") {
        params.tau = as_f64(tau, &join(path, "tau"))?;
    }
    if let Some(len) = opt(value, "segment_len_lambda") {
        params.segment_len_lambda = as_f64(len, &join(path, "segment_len_lambda"))?;
    }
    Ok(params)
}

fn parse_solver(value: &Json, path: &str) -> Result<Solver, WireError> {
    match as_str(value, path)? {
        "auto" => Ok(Solver::Auto),
        "matching" => Ok(Solver::Matching),
        "sat" => Ok(Solver::Sat),
        other => Err(WireError::new(
            path,
            format!("unknown solver `{other}` (auto, matching, sat)"),
        )),
    }
}

fn parse_adjacent(value: &Json, path: &str) -> Result<Vec<(u32, u32)>, WireError> {
    let Some(pairs) = opt(value, "adjacent") else {
        return Ok(Vec::new());
    };
    let path = join(path, "adjacent");
    as_arr(pairs, &path)?
        .iter()
        .enumerate()
        .map(|(i, pair)| {
            let pair_path = format!("{path}[{i}]");
            let pair = as_arr(pair, &pair_path)?;
            if pair.len() != 2 {
                return Err(WireError::new(&pair_path, "expected a [from, to] pair"));
            }
            Ok((
                as_u64(&pair[0], &format!("{pair_path}[0]"))? as u32,
                as_u64(&pair[1], &format!("{pair_path}[1]"))? as u32,
            ))
        })
        .collect()
}

fn parse_repair(value: &Json, path: &str) -> Result<RepairRequest, WireError> {
    let mut request = RepairRequest::new(parse_cells(value, path)?);
    if let Some(dies) = opt(value, "dies") {
        request = request.dies(as_u64(dies, &join(path, "dies"))?);
    }
    if let Some(seed) = opt(value, "seed") {
        request = request.base_seed(as_u64(seed, &join(path, "seed"))?);
    }
    if let Some(spares) = opt(value, "spares") {
        request = request.spares(as_u64(spares, &join(path, "spares"))? as u32);
    }
    if let Some(params) = opt(value, "params") {
        request = request.params(parse_defect_params(params, &join(path, "params"))?);
    }
    if let Some(solver) = opt(value, "solver") {
        request = request.solver(parse_solver(solver, &join(path, "solver"))?);
    }
    Ok(request.adjacent(parse_adjacent(value, path)?))
}

fn parse_die(value: &Json, path: &str) -> Result<DieRequest, WireError> {
    // One die shares the repair request's fields minus the lot size; the
    // required `die` index addresses the lot's seeded defect stream.
    let lot = parse_repair(value, path)?;
    Ok(DieRequest {
        cells: lot.cells,
        die: as_u64(need(value, path, "die")?, &join(path, "die"))?,
        base_seed: lot.base_seed,
        spares: lot.spares,
        params: lot.params,
        solver: lot.solver,
        adjacent: lot.adjacent,
    })
}

fn parse_target(value: &Json, path: &str) -> Result<OptimizeTarget, WireError> {
    let mut target = OptimizeTarget::new();
    if let Some(v) = opt(value, "min_yield") {
        target = target.min_yield(as_f64(v, &join(path, "min_yield"))?);
    }
    if let Some(v) = opt(value, "max_delay_s") {
        target = target.max_delay_s(as_f64(v, &join(path, "max_delay_s"))?);
    }
    if let Some(v) = opt(value, "max_energy_j") {
        target = target.max_energy_j(as_f64(v, &join(path, "max_energy_j"))?);
    }
    Ok(target)
}

fn parse_optimize(value: &Json, path: &str) -> Result<OptimizeRequest, WireError> {
    let mut request = OptimizeRequest::new(parse_cells(value, path)?);
    if let Some(grid) = opt(value, "grid") {
        request = request.grid(parse_grid(grid, &join(path, "grid"))?);
    }
    if let Some(target) = opt(value, "target") {
        request = request.target(parse_target(target, &join(path, "target"))?);
    }
    if let Some(passes) = opt(value, "passes") {
        let p = join(path, "passes");
        let passes = as_u64(passes, &p)?;
        if !(1..=u64::from(u32::MAX)).contains(&passes) {
            return Err(WireError::new(&p, "expected a pass count of at least 1"));
        }
        request = request.passes(passes as u32);
    }
    if let Some(metrics) = opt(value, "metrics") {
        request = request.metrics(parse_metrics(metrics, &join(path, "metrics"))?);
    }
    if let Some(mc) = opt(value, "mc") {
        request = request.mc(parse_mc(mc, &join(path, "mc"))?);
    }
    if let Some(loads) = num_list(value, path, "loads_f", as_f64)? {
        request = request.loads(loads);
    }
    Ok(request)
}

fn parse_adder_kind(value: &Json, path: &str) -> Result<AdderKind, WireError> {
    match as_str(value, path)? {
        "ripple" => Ok(AdderKind::Ripple),
        "cla" => Ok(AdderKind::Cla),
        other => Err(WireError::new(
            path,
            format!("unknown adder kind `{other}` (ripple, cla)"),
        )),
    }
}

/// The macro width gate, mirrored from [`MacroRequest::validate`] so a
/// malformed width answers `400` with its field path at parse time — it
/// never reaches the engine (whose own guard would also map to `400`).
fn parse_width(value: &Json, path: &str) -> Result<u32, WireError> {
    let width = as_u64(value, path)?;
    if matches!(width, 8 | 32 | 64) {
        Ok(width as u32)
    } else {
        Err(WireError::new(path, "expected one of 8|32|64"))
    }
}

fn parse_macro(value: &Json, path: &str) -> Result<MacroRequest, WireError> {
    let kind = parse_adder_kind(need(value, path, "kind")?, &join(path, "kind"))?;
    let width = parse_width(need(value, path, "width")?, &join(path, "width"))?;
    let mut request = MacroRequest::new(kind, width);
    if let Some(scheme) = opt(value, "scheme") {
        request = request.scheme(parse_scheme(scheme, &join(path, "scheme"))?);
    }
    if let Some(seed) = opt(value, "seed") {
        request = request.seed(as_u64(seed, &join(path, "seed"))?);
    }
    Ok(request)
}

fn parse_macro_slice(value: &Json, path: &str) -> Result<MacroSliceRequest, WireError> {
    // One slice shares the macro request's fields; the required `bit`
    // index addresses the slice within the (width-keyed) prefix plan.
    let whole = parse_macro(value, path)?;
    let bit_path = join(path, "bit");
    let bit = as_u64(need(value, path, "bit")?, &bit_path)?;
    if bit >= u64::from(whole.width) {
        return Err(WireError::new(&bit_path, "expected a bit below the width"));
    }
    Ok(MacroSliceRequest {
        kind: whole.kind,
        width: whole.width,
        bit: bit as u32,
        scheme: whole.scheme,
        seed: whole.seed,
    })
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

/// Renders any engine response as its wire summary.
pub fn render_response(response: &ResponseKind) -> Json {
    match response {
        ResponseKind::Cell(r) => render_cell(r),
        ResponseKind::Library(lib) => render_library(lib),
        ResponseKind::Immunity(r) => render_immunity(r),
        ResponseKind::Flow(r) => render_flow(r),
        ResponseKind::Sweep(r) => render_sweep(r),
        ResponseKind::SweepCorner(row) => {
            let mut fields = match render_row(row) {
                Json::Obj(fields) => fields,
                _ => unreachable!("rows render as objects"),
            };
            fields.insert(0, ("type".to_string(), Json::str("sweep_corner")));
            Json::Obj(fields)
        }
        ResponseKind::Tran(r) => render_tran(r),
        ResponseKind::Repair(r) => render_repair(r),
        ResponseKind::Die(outcome) => {
            let mut fields = match render_die_row(outcome) {
                Json::Obj(fields) => fields,
                _ => unreachable!("die rows render as objects"),
            };
            fields.insert(0, ("type".to_string(), Json::str("die")));
            Json::Obj(fields)
        }
        ResponseKind::Optimize(report) => render_optimize(report),
        ResponseKind::Macro(report) => render_macro(report),
        ResponseKind::MacroSlice(outcome) => {
            let mut fields = match render_slice_row(outcome) {
                Json::Obj(fields) => fields,
                _ => unreachable!("slice rows render as objects"),
            };
            fields.insert(0, ("type".to_string(), Json::str("macro_slice")));
            Json::Obj(fields)
        }
    }
}

fn render_tran(result: &TranResult) -> Json {
    Json::obj([
        ("type", Json::str("tran")),
        ("points", Json::from(result.time.len())),
        ("time", result.time.iter().copied().collect::<Json>()),
        (
            "probes",
            Json::Obj(
                result
                    .probes
                    .iter()
                    .map(|(name, samples)| {
                        (name.clone(), samples.iter().copied().collect::<Json>())
                    })
                    .collect(),
            ),
        ),
    ])
}

fn render_cell(result: &CellResult) -> Json {
    let cell = &result.cell;
    Json::obj([
        ("type", Json::str("cell")),
        ("name", Json::str(&cell.name)),
        ("kind", Json::str(kind_name(cell.kind))),
        ("scheme", Json::str(scheme_name(cell.scheme))),
        ("cached", Json::from(result.cached)),
        ("width_lambda", Json::from(cell.width_lambda)),
        ("height_lambda", Json::from(cell.height_lambda)),
        ("footprint_l2", Json::from(cell.footprint_l2)),
        ("pun_active_area_l2", Json::from(cell.pun_active_area_l2)),
        ("pdn_active_area_l2", Json::from(cell.pdn_active_area_l2)),
        ("via_on_gate_count", Json::from(cell.via_on_gate_count)),
        (
            "pins",
            cell.pins
                .iter()
                .map(|(name, _)| name.as_str())
                .collect::<Json>(),
        ),
    ])
}

fn render_library(lib: &CellLibrary) -> Json {
    Json::obj([
        ("type", Json::str("library")),
        ("scheme", Json::str(scheme_name(lib.scheme))),
        ("cells", Json::from(lib.cells.len())),
        (
            "names",
            lib.cells.iter().map(|c| c.name.as_str()).collect::<Json>(),
        ),
    ])
}

fn render_immunity(report: &ImmunityReport) -> Json {
    Json::obj([
        ("type", Json::str("immunity")),
        ("cell", Json::str(&report.cell.name)),
        ("immune", Json::from(report.immune)),
        (
            "cert",
            report.cert.as_ref().map_or(Json::Null, |cert| {
                Json::obj([
                    ("immune", Json::from(cert.immune)),
                    ("segments_checked", Json::from(cert.segments_checked)),
                    ("harmful", Json::from(cert.harmful.len())),
                ])
            }),
        ),
        (
            "mc",
            report.mc.as_ref().map_or(Json::Null, |mc| {
                Json::obj([
                    ("tubes", Json::from(mc.tubes)),
                    ("failures", Json::from(mc.failures)),
                    ("metallic_failures", Json::from(mc.metallic_failures)),
                    ("failure_probability", Json::from(mc.failure_probability())),
                ])
            }),
        ),
    ])
}

fn render_flow(result: &FlowResult) -> Json {
    Json::obj([
        ("type", Json::str("flow")),
        ("netlist", Json::str(&result.netlist.name)),
        ("instances", Json::from(result.netlist.instances.len())),
        (
            "placement",
            Json::obj([
                ("width_l", Json::from(result.placement.width_l)),
                ("height_l", Json::from(result.placement.height_l)),
                ("area_l2", Json::from(result.placement.area_l2)),
                ("utilization", Json::from(result.placement.utilization)),
            ]),
        ),
        (
            "metrics",
            result.metrics.as_ref().map_or(Json::Null, |m| {
                Json::obj([
                    ("delay_s", Json::from(m.delay_s)),
                    ("energy_j", Json::from(m.energy_j)),
                ])
            }),
        ),
        ("gds_len", Json::from(result.gds.as_ref().map(Vec::len))),
    ])
}

pub(crate) fn render_corner(corner: &VariationCorner) -> Json {
    Json::obj([
        (
            "tubes_per_4lambda",
            Json::from(u64::from(corner.tubes_per_4lambda)),
        ),
        ("pitch_scale", Json::from(corner.pitch_scale)),
        ("metallic_fraction", Json::from(corner.metallic_fraction)),
        ("seed", Json::from(corner.seed)),
    ])
}

pub(crate) fn render_row(row: &CornerRow) -> Json {
    Json::obj([
        ("cell", Json::str(&row.cell)),
        ("kind", Json::str(kind_name(row.kind))),
        ("strength", Json::from(u64::from(row.strength))),
        ("corner", render_corner(&row.corner)),
        ("mc_tubes", Json::from(row.mc_tubes)),
        ("mc_failures", Json::from(row.mc_failures)),
        ("immune", Json::from(row.immune)),
        ("metallic_yield", Json::from(row.metallic_yield)),
        ("delay_s", Json::from(row.delay_s())),
        ("energy_j", Json::from(row.energy_j())),
        ("yield", Json::from(row.yield_frac())),
        ("liberty", Json::from(row.liberty.clone())),
        ("waveform", Json::from(row.waveform.clone())),
    ])
}

fn render_summary(summary: &CornerSummary) -> Json {
    Json::obj([
        ("corner_index", Json::from(summary.corner_index)),
        ("corner", render_corner(&summary.corner)),
        ("min_yield", Json::from(summary.min_yield)),
        ("max_delay_s", Json::from(summary.max_delay_s)),
        ("total_energy_j", Json::from(summary.total_energy_j)),
    ])
}

fn render_sweep(report: &SweepReport) -> Json {
    Json::obj([
        ("type", Json::str("sweep")),
        ("cells", Json::from(report.cells)),
        (
            "corners",
            report.corners.iter().map(render_corner).collect::<Json>(),
        ),
        ("rows", report.rows.iter().map(render_row).collect::<Json>()),
        ("pareto", report.pareto.iter().copied().collect::<Json>()),
        (
            "best_corner",
            report
                .best_corner
                .as_ref()
                .map_or(Json::Null, render_summary),
        ),
        (
            "worst_corner",
            report
                .worst_corner
                .as_ref()
                .map_or(Json::Null, render_summary),
        ),
    ])
}

pub(crate) fn render_die_row(outcome: &DieOutcome) -> Json {
    Json::obj([
        ("die", Json::from(outcome.die)),
        ("sites", Json::from(u64::from(outcome.sites))),
        (
            "defective_sites",
            Json::from(u64::from(outcome.defective_sites)),
        ),
        ("repaired", Json::from(outcome.repaired)),
        ("solver", Json::str(outcome.solver)),
        ("spares_used", Json::from(u64::from(outcome.spares_used))),
        (
            "assignment",
            outcome
                .assignment
                .iter()
                .map(|site| Json::from(site.map(u64::from)))
                .collect::<Json>(),
        ),
    ])
}

pub(crate) fn render_candidate(row: &CandidateRow) -> Json {
    Json::obj([
        ("index", Json::from(row.index)),
        ("pass", Json::from(u64::from(row.pass))),
        ("axis", Json::str(row.axis.name())),
        (
            "tubes_per_4lambda",
            Json::from(u64::from(row.outcome.tubes_per_4lambda)),
        ),
        ("pitch_scale", Json::from(row.outcome.pitch_scale)),
        (
            "metallic_fraction",
            Json::from(row.outcome.metallic_fraction),
        ),
        ("rows", Json::from(row.outcome.rows)),
        ("min_yield", Json::from(row.outcome.min_yield)),
        ("max_delay_s", Json::from(row.outcome.max_delay_s)),
        ("total_energy_j", Json::from(row.outcome.total_energy_j)),
        ("score", Json::from(row.score)),
        ("meets_target", Json::from(row.meets_target)),
        ("best_so_far", Json::from(row.best_so_far)),
    ])
}

fn render_target(target: &OptimizeTarget) -> Json {
    Json::obj([
        ("min_yield", Json::from(target.min_yield)),
        ("max_delay_s", Json::from(target.max_delay_s)),
        ("max_energy_j", Json::from(target.max_energy_j)),
    ])
}

fn render_optimize(report: &OptimizeReport) -> Json {
    Json::obj([
        ("type", Json::str("optimize")),
        ("cells", Json::from(report.cells)),
        ("target", render_target(&report.target)),
        ("passes", Json::from(u64::from(report.passes))),
        (
            "candidates",
            report
                .candidates
                .iter()
                .map(render_candidate)
                .collect::<Json>(),
        ),
        ("best_index", Json::from(report.best_index)),
        ("converged", Json::from(report.converged)),
    ])
}

pub(crate) fn render_slice_row(outcome: &SliceOutcome) -> Json {
    Json::obj([
        ("bit", Json::from(u64::from(outcome.bit))),
        ("fanout", Json::from(u64::from(outcome.fanout))),
        ("load_f", Json::from(outcome.load_f)),
        ("sum_delay_s", Json::from(outcome.sum_delay_s)),
        ("carry_delay_s", Json::from(outcome.carry_delay_s)),
    ])
}

fn render_macro(report: &MacroReport) -> Json {
    Json::obj([
        ("type", Json::str("macro")),
        ("kind", Json::str(report.kind.name())),
        ("width", Json::from(u64::from(report.width))),
        ("scheme", Json::str(scheme_name(report.scheme))),
        (
            "slices",
            report.slices.iter().map(render_slice_row).collect::<Json>(),
        ),
        ("critical_path_s", Json::from(report.critical_path_s)),
        ("area_l2", Json::from(report.area_l2)),
        ("gate_count", Json::from(report.gate_count)),
        ("fa_instances", Json::from(report.fa_instances)),
        ("spice_len", Json::from(report.spice.len())),
        ("gds_len", Json::from(report.gds.len())),
    ])
}

fn render_repair(report: &RepairReport) -> Json {
    Json::obj([
        ("type", Json::str("repair")),
        ("cells", Json::from(report.cells)),
        ("spares", Json::from(u64::from(report.spares))),
        (
            "dies",
            report.dies.iter().map(render_die_row).collect::<Json>(),
        ),
        ("repaired_dies", Json::from(report.repaired_dies)),
        (
            "unrepairable",
            report.unrepairable.iter().copied().collect::<Json>(),
        ),
        ("spares_used", Json::from(report.spares_used)),
        (
            "yield_after_repair",
            Json::from(report.yield_after_repair()),
        ),
        ("spare_utilization", Json::from(report.spare_utilization())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn req(doc: &str) -> Result<RequestKind, WireError> {
        parse_request(&parse(doc).unwrap())
    }

    #[test]
    fn parses_every_request_type() {
        assert!(matches!(
            req(r#"{"type":"cell","kind":"nand3","strength":2}"#).unwrap(),
            RequestKind::Cell(c) if c.kind == StdCellKind::Nand(3) && c.strength == 2
        ));
        assert!(matches!(
            req(r#"{"type":"library","scheme":"s2"}"#).unwrap(),
            RequestKind::Library(l) if l.scheme == Scheme::Scheme2
        ));
        assert!(matches!(
            req(r#"{"type":"immunity","cell":{"kind":"inv"},"engine":"both","mc":{"tubes":9}}"#)
                .unwrap(),
            RequestKind::Immunity(ImmunityRequest {
                engine: ImmunityEngine::Both(mc),
                ..
            }) if mc.tubes == 9
        ));
        assert!(matches!(
            req(r#"{"type":"flow","source":"full_adder","target":"cmos"}"#).unwrap(),
            RequestKind::Flow(FlowRequest {
                target: FlowTarget::Cmos,
                ..
            })
        ));
        let RequestKind::Sweep(sweep) = req(
            r#"{"type":"sweep","cells":[{"kind":"inv"}],"metrics":"immunity",
                "grid":{"tube_counts":[26,10],"seeds":[1,2]}}"#,
        )
        .unwrap() else {
            panic!("expected a sweep");
        };
        assert_eq!(sweep.grid.len(), 4);
        assert_eq!(sweep.metrics, SweepMetrics::IMMUNITY);
        assert!(matches!(
            req(r#"{"type":"sweep_corner","cell":{"kind":"inv"},"corner":{"seed":3}}"#).unwrap(),
            RequestKind::SweepCorner(c) if c.corner.seed == 3
        ));
        let RequestKind::Tran(tran) = req(r#"{"type":"tran","deck":"V1 a 0 DC 1\n.end","dt":1e-11,
                "t_stop":1e-9,"probes":["a"]}"#)
        .unwrap() else {
            panic!("expected a tran");
        };
        assert_eq!(tran.dt, 1e-11);
        assert_eq!(tran.probes, vec!["a".to_string()]);
    }

    #[test]
    fn field_paths_name_the_offender() {
        let e = req(r#"{"type":"sweep","cells":[{"kind":"inv"},{"kind":"frob"}]}"#).unwrap_err();
        assert!(e.message.starts_with("cells[1].kind"), "{e}");
        let e = req(r#"{"type":"cell"}"#).unwrap_err();
        assert!(e.message.starts_with("kind: missing"), "{e}");
        let e = req(r#"{"type":"immunity","cell":{"kind":"inv"},"engine":"maybe"}"#).unwrap_err();
        assert!(e.message.starts_with("engine:"), "{e}");
        let e = req(r#"{"type":"warp"}"#).unwrap_err();
        assert!(e.message.contains("unknown request type"), "{e}");
        let e = req(r#"{"type":"tran","deck":".end","dt":-1e-11,"t_stop":1e-9}"#).unwrap_err();
        assert!(e.message.starts_with("dt: expected a positive"), "{e}");
        let e = req(r#"{"type":"tran","deck":".end","dt":1e-11,"t_stop":0}"#).unwrap_err();
        assert!(e.message.starts_with("t_stop: expected a positive"), "{e}");
    }

    #[test]
    fn parses_optimize_requests() {
        let RequestKind::Optimize(opt) = req(r#"{"type":"optimize","cells":[{"kind":"inv"}],
                "grid":{"tube_counts":[6,26],"pitch_scales":[1.0,1.5]},
                "target":{"min_yield":0.9,"max_delay_s":5e-11},
                "passes":3,"metrics":"immunity","mc":{"tubes":100}}"#)
        .unwrap() else {
            panic!("expected an optimize");
        };
        assert_eq!(opt.grid.tube_counts, vec![6, 26]);
        assert_eq!(opt.target.min_yield, Some(0.9));
        assert_eq!(opt.target.max_energy_j, None);
        assert_eq!(opt.passes, 3);
        assert_eq!(opt.mc.tubes, 100);
        // passes must stay at least 1.
        let e = req(r#"{"type":"optimize","cells":[{"kind":"inv"}],"passes":0}"#).unwrap_err();
        assert!(e.message.starts_with("passes:"), "{e}");
    }

    #[test]
    fn grid_axes_reject_non_finite_and_negative_values() {
        let e = req(r#"{"type":"sweep","cells":[{"kind":"inv"}],
                "grid":{"pitch_scales":[1.0,-0.5]}}"#)
        .unwrap_err();
        assert!(e.message.starts_with("grid.pitch_scales[1]"), "{e}");
        assert!(e.message.contains("finite non-negative"), "{e}");
        let e = req(r#"{"type":"optimize","cells":[{"kind":"inv"}],
                "grid":{"metallic_fractions":[-1.0]}}"#)
        .unwrap_err();
        assert!(e.message.starts_with("grid.metallic_fractions[0]"), "{e}");
        // Zero (including a parsed `-0.0`) is a valid axis value.
        assert!(req(r#"{"type":"sweep","cells":[{"kind":"inv"}],
                "grid":{"metallic_fractions":[-0.0, 0.02]}}"#,)
        .is_ok());
    }

    #[test]
    fn invalid_request_errors_answer_400_with_the_field_path() {
        let (status, body) = error_response(&CnfetError::InvalidRequest {
            field: "grid.metallic_fractions[1]".into(),
            message: "expected a finite non-negative number, got NaN".into(),
        });
        assert_eq!(status, 400);
        let error = body.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("invalid_request"));
        assert!(error
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("grid.metallic_fractions[1]"));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in StdCellKind::ALL {
            let name = kind_name(kind);
            assert_eq!(parse_kind(&Json::str(&name), "kind").unwrap(), kind);
        }
    }

    #[test]
    fn error_payloads_are_structured() {
        let (status, body) = error_response(&CnfetError::MissingCell("X".into()));
        assert_eq!(status, 422);
        let error = body.get("error").unwrap();
        assert_eq!(error.get("kind").unwrap().as_str(), Some("missing_cell"));
        assert!(error
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("`X`"));
        assert_eq!(error_response(&CnfetError::Canceled).0, 503);

        // Simulation failures split by cause on the wire.
        let (status, body) = error_response(&CnfetError::Sim(SimError::Singular));
        assert_eq!(status, 422);
        let kind = body.get("error").unwrap().get("kind").unwrap();
        assert_eq!(kind.as_str(), Some("sim_singular"));
        let (_, body) = error_response(&CnfetError::Sim(SimError::NoConvergence { at_step: 7 }));
        let error = body.get("error").unwrap();
        assert_eq!(
            error.get("kind").unwrap().as_str(),
            Some("sim_no_convergence")
        );
        assert!(error
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("step 7"));
    }
}
