//! A minimal blocking HTTP/1.1 client for the wire protocol — enough
//! for the bundled example, the integration tests, and the bench; real
//! deployments can use any HTTP client (the protocol is plain JSON over
//! HTTP, see `ARCHITECTURE.md` for curl transcripts).
//!
//! Requests are built with [`Client::request`]: a typed builder that
//! carries the method, path, optional JSON body, and the negotiated
//! result [`Format`]. On top of it sit two job-protocol helpers:
//! [`Client::submit_and_wait`] (submit, then poll to settlement) and
//! [`Client::submit_and_stream`] (submit, then consume the chunked
//! `/stream` response incrementally as [`StreamEvent`]s — in either
//! negotiated format, through one callback).

use crate::encode::{self, Format};
use crate::json::{self, Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The parsed JSON body, or [`Json::Null`] for non-JSON content
    /// types (check [`bytes`](ClientResponse::bytes) instead).
    pub body: Json,
    /// The raw response body bytes, whatever the content type.
    pub bytes: Vec<u8>,
    /// The response's `content-type` header (empty when absent).
    pub content_type: String,
}

impl ClientResponse {
    /// Fails loudly unless the status is the expected one — test and
    /// example ergonomics.
    ///
    /// # Panics
    ///
    /// Panics (with the body in the message) on any other status.
    pub fn expect_status(self, status: u16) -> Json {
        assert!(
            self.status == status,
            "expected {status}, got {}: {}",
            self.status,
            self.body.render()
        );
        self.body
    }
}

/// One event of a `GET /v1/jobs/{id}/stream` response, decoded from
/// either negotiated format.
#[derive(Clone, Debug)]
pub enum StreamEvent {
    /// The stream opened: the job id and the number of rows to expect
    /// (`0` for non-composite jobs).
    Start {
        /// The job being streamed.
        job: u64,
        /// Total rows the job will deliver (corner rows for a sweep,
        /// die outcomes for a repair lot, candidate evaluations for an
        /// optimization).
        total: u64,
    },
    /// One corner row, die outcome, or optimize candidate, in canonical
    /// report order.
    Row {
        /// Zero-based position of this row in the final report.
        index: u64,
        /// The row, rendered exactly as in the buffered JSON report.
        row: Json,
    },
    /// Terminal: the job succeeded; for composites the payload is the
    /// full report (every row again, plus summaries).
    Done(Json),
    /// Terminal: the job failed; the payload is the whole error event.
    Error(Json),
    /// Terminal: the job was canceled by server shutdown.
    Canceled,
}

/// A request under construction — returned by [`Client::request`].
pub struct RequestBuilder<'a> {
    client: &'a mut Client,
    method: String,
    path: String,
    body: Option<String>,
    accept: Format,
}

impl RequestBuilder<'_> {
    /// Attaches a JSON body (rendered immediately).
    pub fn body(mut self, body: &Json) -> Self {
        self.body = Some(body.render());
        self
    }

    /// Negotiates the result format (sent as the `Accept` header).
    /// JSON is the default.
    pub fn accept(mut self, format: Format) -> Self {
        self.accept = format;
        self
    }

    /// Performs the request and reads the full response.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn send(self) -> io::Result<ClientResponse> {
        self.client
            .perform(&self.method, &self.path, self.body.as_deref(), self.accept)
    }
}

/// Whether an error is the signature of a keep-alive connection the
/// server closed between requests (safe to retry on a fresh socket —
/// the server never processes a request without writing a response, so
/// zero response bytes means zero processing). Timeouts are excluded:
/// a slow server may still be working on the request.
fn is_stale_connection(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// Parsed response head: status line plus the framing headers the
/// client needs.
struct Head {
    status: u16,
    content_type: String,
    content_length: usize,
    chunked: bool,
    close: bool,
}

/// A keep-alive connection to a running server.
pub struct Client {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for the given server address. The connection is opened
    /// lazily on the first request and reused across requests.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None }
    }

    /// Starts building a request; finish with
    /// [`send`](RequestBuilder::send).
    pub fn request(&mut self, method: &str, path: &str) -> RequestBuilder<'_> {
        RequestBuilder {
            client: self,
            method: method.to_string(),
            path: path.to_string(),
            body: None,
            accept: Format::Json,
        }
    }

    /// Submits one request to `/v1/submit` and polls its job to
    /// settlement, returning the final poll response (`done` /
    /// `error` / `canceled` body). A non-`202` submit answer (e.g.
    /// `429` backpressure) is returned as-is instead.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn submit_and_wait(&mut self, request: &Json) -> io::Result<ClientResponse> {
        let submitted = self.submit_one(request)?;
        let id = match submitted {
            Ok(id) => id,
            Err(response) => return Ok(response),
        };
        let path = format!("/v1/jobs/{id}");
        loop {
            let response = self.request("GET", &path).send()?;
            let pending = response.status == 200
                && response.body.get("status").and_then(Json::as_str) == Some("pending");
            if !pending {
                return Ok(response);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Submits one request to `/v1/submit`, then consumes
    /// `GET /v1/jobs/{id}/stream` in the given format, invoking
    /// `on_event` for every decoded [`StreamEvent`] until the terminal
    /// one. Returns the job id.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures; a non-`202` submit
    /// answer and a non-chunked stream answer (`404`/`406`/`410`)
    /// surface as [`io::ErrorKind::Other`] errors carrying the
    /// response body.
    pub fn submit_and_stream(
        &mut self,
        request: &Json,
        format: Format,
        on_event: impl FnMut(StreamEvent),
    ) -> io::Result<u64> {
        let id = match self.submit_one(request)? {
            Ok(id) => id,
            Err(response) => {
                return Err(io::Error::other(format!(
                    "submit answered {}: {}",
                    response.status,
                    response.body.render()
                )));
            }
        };
        self.stream_job(id, format, on_event)?;
        Ok(id)
    }

    /// Consumes `GET /v1/jobs/{id}/stream` for an already-submitted
    /// job, invoking `on_event` per decoded [`StreamEvent`].
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures; a non-chunked
    /// answer (`404`/`406`/`410`) surfaces as an error carrying the
    /// response body.
    pub fn stream_job(
        &mut self,
        id: u64,
        format: Format,
        mut on_event: impl FnMut(StreamEvent),
    ) -> io::Result<()> {
        let path = format!("/v1/jobs/{id}/stream");
        let head = self.exchange("GET", &path, None, format)?;
        if !head.chunked {
            // A refusal (404 / 406 / 410): ordinary JSON body.
            let response = self.finish_buffered(head)?;
            return Err(io::Error::other(format!(
                "stream answered {}: {}",
                response.status,
                response.body.render()
            )));
        }
        let reader = self.stream.as_mut().expect("connected by exchange");
        let mut buffer = Vec::new();
        let mut consumed = 0usize;
        let mut next_row = 0u64;
        while let Some(chunk) = read_chunk(reader)? {
            buffer.extend_from_slice(&chunk);
            match format {
                Format::Json => {
                    while let Some(nl) = buffer[consumed..].iter().position(|&b| b == b'\n') {
                        let line = &buffer[consumed..consumed + nl];
                        let event = parse_event_line(line)?;
                        consumed += nl + 1;
                        on_event(event);
                    }
                }
                Format::Binary => {
                    while let Some((tag, payload, used)) = encode::read_frame(&buffer[consumed..]) {
                        let event = match tag {
                            encode::FRAME_ROW | encode::FRAME_DIE => {
                                let row = if tag == encode::FRAME_ROW {
                                    encode::decode_row(payload)
                                } else {
                                    encode::decode_die(payload)
                                }
                                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                                let index = next_row;
                                next_row += 1;
                                StreamEvent::Row { index, row }
                            }
                            encode::FRAME_EVENT => parse_event_line(payload)?,
                            other => {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("unknown stream frame tag {other}"),
                                ));
                            }
                        };
                        consumed += used;
                        on_event(event);
                    }
                }
            }
            // Already-dispatched bytes never shrink the buffer between
            // chunks; reclaim them here so long streams stay bounded.
            buffer.drain(..consumed);
            consumed = 0;
        }
        // Chunked responses are always `connection: close`.
        self.stream = None;
        Ok(())
    }

    /// `POST`s `{"requests": [request]}` to `/v1/submit`; `Ok(id)` on
    /// `202`, the raw response otherwise.
    fn submit_one(&mut self, request: &Json) -> io::Result<Result<u64, ClientResponse>> {
        let body = Json::obj([("requests", Json::Arr(vec![request.clone()]))]);
        let response = self.request("POST", "/v1/submit").body(&body).send()?;
        if response.status != 202 {
            return Ok(Err(response));
        }
        let id = response
            .body
            .get("jobs")
            .and_then(Json::as_arr)
            .and_then(|jobs| jobs.first())
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "submit answered 202 without a job id: {}",
                        response.body.render()
                    ),
                )
            })?;
        Ok(Ok(id))
    }

    /// One full buffered request/response exchange.
    fn perform(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        accept: Format,
    ) -> io::Result<ClientResponse> {
        let head = self.exchange(method, path, body, accept)?;
        if head.chunked {
            // Buffered callers never expect a stream; drain it whole.
            let reader = self.stream.as_mut().expect("connected by exchange");
            let mut bytes = Vec::new();
            while let Some(chunk) = read_chunk(reader)? {
                bytes.extend_from_slice(&chunk);
            }
            self.stream = None;
            return finish_response(head, bytes);
        }
        self.finish_buffered(head)
    }

    /// Reads the `content-length` body of a non-chunked response and
    /// parses it per its content type.
    fn finish_buffered(&mut self, head: Head) -> io::Result<ClientResponse> {
        let reader = self.stream.as_mut().expect("connected by exchange");
        let mut bytes = vec![0u8; head.content_length];
        // A truncation here is mid-response, after the server committed
        // to processing: surface it under a kind `is_stale_connection`
        // will not retry.
        reader.read_exact(&mut bytes).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("truncated response body: {e}"),
            )
        })?;
        if head.close {
            self.stream = None;
        }
        finish_response(head, bytes)
    }

    /// Writes the request and parses the response head, with one
    /// reconnect attempt when a *reused* keep-alive socket died without
    /// a single response byte. A timeout or a mid-response failure is
    /// NOT retried — the server may have processed the request, and
    /// blindly resending a POST (e.g. `/v1/submit`) would duplicate its
    /// effect.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        accept: Format,
    ) -> io::Result<Head> {
        let reused = self.stream.is_some();
        match self.exchange_once(method, path, body, accept) {
            Ok(head) => Ok(head),
            Err(e) if reused && is_stale_connection(&e) => {
                self.stream = None;
                self.exchange_once(method, path, body, accept)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn exchange_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        accept: Format,
    ) -> io::Result<Head> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(120)))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        let reader = self.stream.as_mut().expect("connected above");
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: cnfet\r\ncontent-length: {}\r\n",
            body.len()
        );
        // JSON is the protocol default; only a non-default negotiation
        // needs the header on the wire.
        if accept == Format::Binary {
            head.push_str("accept: ");
            head.push_str(accept.media_type());
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        {
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
        }

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
        }
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim()),
                )
            })?;

        let mut parsed = Head {
            status,
            content_type: String::new(),
            content_length: 0,
            chunked: false,
            close: false,
        };
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    parsed.content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                if name.eq_ignore_ascii_case("content-type") {
                    parsed.content_type = value.to_string();
                }
                if name.eq_ignore_ascii_case("transfer-encoding")
                    && value.eq_ignore_ascii_case("chunked")
                {
                    parsed.chunked = true;
                }
                if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
                    parsed.close = true;
                }
            }
        }
        Ok(parsed)
    }
}

/// Builds the final [`ClientResponse`]: JSON bodies are parsed, binary
/// bodies are kept raw with `body` left [`Json::Null`].
fn finish_response(head: Head, bytes: Vec<u8>) -> io::Result<ClientResponse> {
    let binary = head.content_type.starts_with(encode::BINARY_CONTENT_TYPE);
    let body = if binary {
        Json::Null
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    };
    Ok(ClientResponse {
        status: head.status,
        body,
        bytes,
        content_type: head.content_type,
    })
}

/// Reads one chunk of a `transfer-encoding: chunked` body; `None` is
/// the zero-length terminator.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Vec<u8>>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-stream",
        ));
    }
    let size = usize::from_str_radix(line.trim(), 16).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad chunk size line `{}`", line.trim()),
        )
    })?;
    if size == 0 {
        let mut terminator = String::new();
        reader.read_line(&mut terminator)?;
        return Ok(None);
    }
    let mut data = vec![0u8; size];
    reader.read_exact(&mut data)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    Ok(Some(data))
}

/// Decodes one event object (an ndjson line or a `FRAME_EVENT`
/// payload) into a [`StreamEvent`].
fn parse_event_line(line: &[u8]) -> io::Result<StreamEvent> {
    let text = std::str::from_utf8(line)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 stream event"))?;
    let event =
        json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let kind = event
        .get("event")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    Ok(match kind.as_str() {
        "start" => StreamEvent::Start {
            job: event.get("job").and_then(Json::as_u64).unwrap_or(0),
            total: event.get("total").and_then(Json::as_u64).unwrap_or(0),
        },
        "row" => StreamEvent::Row {
            index: event.get("index").and_then(Json::as_u64).unwrap_or(0),
            row: event.get("row").cloned().unwrap_or(Json::Null),
        },
        "done" => StreamEvent::Done(event.get("result").cloned().unwrap_or(Json::Null)),
        "canceled" => StreamEvent::Canceled,
        "error" => StreamEvent::Error(event),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown stream event `{other}`"),
            ));
        }
    })
}
