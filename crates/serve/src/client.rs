//! A minimal blocking HTTP/1.1 client for the wire protocol — enough
//! for the bundled example, the integration tests, and the bench; real
//! deployments can use any HTTP client (the protocol is plain JSON over
//! HTTP, see `ARCHITECTURE.md` for curl transcripts).

use crate::json::{self, Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// The parsed JSON body.
    pub body: Json,
}

impl ClientResponse {
    /// Fails loudly unless the status is the expected one — test and
    /// example ergonomics.
    ///
    /// # Panics
    ///
    /// Panics (with the body in the message) on any other status.
    pub fn expect_status(self, status: u16) -> Json {
        assert!(
            self.status == status,
            "expected {status}, got {}: {}",
            self.status,
            self.body.render()
        );
        self.body
    }
}

/// Whether an error is the signature of a keep-alive connection the
/// server closed between requests (safe to retry on a fresh socket —
/// the server never processes a request without writing a response, so
/// zero response bytes means zero processing). Timeouts are excluded:
/// a slow server may still be working on the request.
fn is_stale_connection(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// A keep-alive connection to a running server.
pub struct Client {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for the given server address. The connection is opened
    /// lazily on the first request and reused across requests.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, stream: None }
    }

    /// `GET`s a path.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST`s a JSON body to a path.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn post(&mut self, path: &str, body: &Json) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body.render()))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<String>,
    ) -> io::Result<ClientResponse> {
        let reused = self.stream.is_some();
        match self.request_once(method, path, body.as_deref()) {
            Ok(response) => Ok(response),
            // One reconnect attempt, but only when the failure looks like
            // a stale keep-alive connection: the *reused* socket died
            // without a single response byte. A timeout or a mid-response
            // failure is NOT retried — the server may have processed the
            // request, and blindly resending a POST (e.g. `/v1/submit`)
            // would duplicate its effect.
            Err(e) if reused && is_stale_connection(&e) => {
                self.stream = None;
                self.request_once(method, path, body.as_deref())
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(120)))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        let reader = self.stream.as_mut().expect("connected above");
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: cnfet\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        {
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
        }

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
        }
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line `{}`", status_line.trim()),
                )
            })?;

        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
                    close = true;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        // A truncation here is mid-response, after the server committed
        // to processing: surface it under a kind `is_stale_connection`
        // will not retry.
        reader.read_exact(&mut body).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("truncated response body: {e}"),
            )
        })?;
        if close {
            self.stream = None;
        }
        let text = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        let body = json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(ClientResponse { status, body })
    }
}
