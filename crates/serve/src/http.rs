//! Minimal HTTP/1.1 on top of [`std::net::TcpStream`]: request parsing,
//! response writing, and nothing else.
//!
//! The server speaks the subset real clients (curl, the bundled
//! [`Client`](crate::client::Client)) actually need:
//!
//! * request line + headers + `Content-Length`-delimited bodies;
//!   `Transfer-Encoding` is refused with a `400` (chunked framing is
//!   not implemented, and half-parsing it would desync the stream);
//! * `Expect: 100-continue` gets its interim `100 Continue`, and body
//!   reads ride out short stalls (`BODY_DEADLINE`, 10 s) instead of
//!   inheriting the between-request poll timeout;
//! * persistent connections — requests are served in a loop until the
//!   peer closes, sends `Connection: close`, or the idle window expires;
//! * hard bounds on header and body sizes, so a hostile peer cannot make
//!   a worker allocate unboundedly.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted header block, bytes.
pub const MAX_HEAD: usize = 16 * 1024;

/// Largest accepted request body, bytes (a verilog-carrying flow request
/// fits with two orders of magnitude to spare).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string included (the protocol uses none).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request ended without one.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed (or the idle window expired) between requests —
    /// the normal end of a keep-alive connection.
    Closed,
    /// The socket's read timeout expired with **no bytes consumed** —
    /// the connection is intact and the read can simply be retried. The
    /// worker loop uses this window to poll the shutdown flag.
    TimedOut,
    /// The bytes on the wire were not a well-formed request. The
    /// connection cannot be resynchronized and must be dropped after the
    /// `400` response.
    Malformed(String),
    /// The head or body exceeded [`MAX_HEAD`] / [`MAX_BODY`].
    TooLarge,
}

/// Reads one request from a buffered stream. [`ReadError::Closed`] is
/// the clean end of the connection; the other variants warrant a `400` /
/// `413` response before dropping it. `write_half` is only used to nod
/// at `Expect: 100-continue` clients before their body is read.
pub fn read_request(
    stream: &mut BufReader<TcpStream>,
    write_half: &mut TcpStream,
) -> Result<Request, ReadError> {
    let request_line = read_line(stream, true)?;
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad version `{version}`")));
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_line(stream, false)?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD {
            return Err(ReadError::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    // Chunked framing is not implemented; pretending the body is empty
    // would desync the keep-alive stream (chunk lines would parse as the
    // next request). Refuse it outright; the caller closes after the 400.
    if request.header("transfer-encoding").is_some() {
        return Err(ReadError::Malformed(
            "transfer-encoding is not supported; send a content-length body".into(),
        ));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ReadError::Malformed(format!("bad content-length `{len}`")))?;
        if len > MAX_BODY {
            return Err(ReadError::TooLarge);
        }
        // curl (and other clients) default to `Expect: 100-continue` for
        // larger bodies and hold the body back until the server nods.
        if request
            .header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
        {
            let _ = write_half.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
            let _ = write_half.flush();
        }
        let mut body = vec![0u8; len];
        read_body(stream, &mut body)?;
        request.body = body;
    }
    Ok(request)
}

/// How long a started request's body may take to dribble in before the
/// connection is declared dead. Distinct from the short between-request
/// poll timeout: mid-request stalls (a WAN client, an `Expect:
/// 100-continue` pause) must not kill the request.
const BODY_DEADLINE: std::time::Duration = std::time::Duration::from_secs(10);

/// `read_exact` that rides out read-timeout ticks (the socket keeps the
/// short between-request poll timeout) until `BODY_DEADLINE`.
fn read_body(stream: &mut BufReader<TcpStream>, body: &mut [u8]) -> Result<(), ReadError> {
    let deadline = std::time::Instant::now() + BODY_DEADLINE;
    let mut filled = 0;
    while filled < body.len() {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(ReadError::Closed),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if std::time::Instant::now() >= deadline {
                    return Err(ReadError::Closed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(ReadError::Closed),
        }
    }
    Ok(())
}

/// Reads one CRLF- (or LF-) terminated line, without the terminator.
/// `first` marks the request line, where EOF is the clean keep-alive end
/// rather than a truncation.
fn read_line(stream: &mut BufReader<TcpStream>, first: bool) -> Result<String, ReadError> {
    let mut line = Vec::new();
    let mut limited = stream.take(MAX_HEAD as u64 + 1);
    match limited.read_until(b'\n', &mut line) {
        Ok(0) if first => return Err(ReadError::Closed),
        Ok(0) => return Err(ReadError::Malformed("truncated head".into())),
        Ok(_) => {}
        // A clean timeout before any byte of the request line arrived is
        // retryable; anything else (resets, mid-line timeouts) ends the
        // connection.
        Err(e)
            if first
                && line.is_empty()
                && matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
        {
            return Err(ReadError::TimedOut)
        }
        Err(_) => return Err(ReadError::Closed),
    }
    if line.last() == Some(&b'\n') {
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
    } else if line.len() > MAX_HEAD {
        return Err(ReadError::TooLarge);
    } else if first && line.is_empty() {
        return Err(ReadError::Closed);
    }
    String::from_utf8(line).map_err(|_| ReadError::Malformed("non-UTF-8 head".into()))
}

/// The reason phrase of the status codes the protocol emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one `application/json` response. `close` adds
/// `Connection: close` so the client knows not to reuse the socket.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> io::Result<()> {
    write_response_bytes(stream, status, "application/json", body.as_bytes(), close)
}

/// Writes one response with an explicit content type and a raw byte
/// body — the binary result encodings of [`crate::encode`] ride this.
pub fn write_response_bytes(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Opens a `Transfer-Encoding: chunked` response. Streamed responses
/// always close the connection afterwards: the peer may abandon the
/// stream mid-chunk, at which point the framing (not the connection) is
/// the only thing left in a known state.
pub fn start_chunked(stream: &mut TcpStream, status: u16, content_type: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        reason(status),
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes and flushes one non-empty chunk. (An empty slice is skipped:
/// a zero-length chunk is the terminator, [`finish_chunked`]'s job.)
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn finish_chunked(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}
