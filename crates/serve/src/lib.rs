//! # cnfet-serve — the `Session` engine over the wire
//!
//! A std-only, dependency-free HTTP/1.1 + JSON server that exposes the
//! full [`cnfet::Session`] engine to concurrent network clients: every
//! request kind the engine services in-process — cells, libraries,
//! immunity verdicts, flows, variation sweeps, per-die repair lots,
//! processing↔circuit co-optimizations — is
//! one `POST` away, and
//! all clients share one warm, sharded, single-flight cache. This is the
//! serving shape of Hills-style co-optimization: many remote loops
//! iterating processing/circuit corners against one memoizing engine.
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/run` | one request, synchronous; body: a wire request object |
//! | `POST /v1/batch` | `{"requests": […]}`, fanned out on the engine's pool, answers in order |
//! | `POST /v1/submit` | non-blocking; answers `202 {"jobs": [id, …]}` or `429` on backpressure |
//! | `GET /v1/jobs/{id}` | `pending` (+ `age_ms`/`queued`) / `done` + result / `error` + payload / `canceled`; `410` once expired, `404` if never issued |
//! | `GET /v1/jobs/{id}/stream` | chunked progress stream: a `start` event, one row per sweep corner (or repair die, or optimize candidate) as the engine harvests it, then a terminal `done`/`error`/`canceled` event |
//! | `GET /v1/stats` | full engine [`SessionStats`](cnfet::SessionStats): per-class hits/misses/evictions, cache occupancy, pool counters, job table |
//! | `GET /v1/healthz` | liveness |
//!
//! Result formats are negotiated per request with `Accept`: JSON is the
//! default, sweep and repair results can instead come back in the
//! length-prefixed binary row/die encoding of [`encode`]
//! (`Accept: application/x-cnfet-rows`), and an `Accept` naming no
//! format the server can produce answers `406`. With `--snapshot
//! <PATH>` the server persists its sweep cache on graceful shutdown —
//! and periodically while serving (`--snapshot-interval-secs`), so an
//! abrupt death loses at most one interval — and warm-boots from it, so
//! a restart replays prior sweeps as pure cache hits.
//!
//! The request/response encodings are documented in [`wire`], the
//! binary row/stream framing in [`encode`], the JSON dialect
//! (hand-rolled — the workspace builds offline) in [`json`], and the
//! full protocol walk-through with curl transcripts in the repository's
//! `ARCHITECTURE.md`.
//!
//! ## In-process quickstart
//!
//! ```
//! use cnfet_serve::{json::Json, Client, ServeConfig, Server};
//!
//! // An ephemeral-port server; `cnfet-serve --addr 0.0.0.0:8373` is the
//! // same engine as a standalone process.
//! let server = Server::start(ServeConfig::default().addr("127.0.0.1:0"))?;
//! let mut client = Client::new(server.addr());
//!
//! let request = Json::obj([
//!     ("type", Json::str("cell")),
//!     ("kind", Json::str("nand3")),
//! ]);
//! let first = client
//!     .request("POST", "/v1/run")
//!     .body(&request)
//!     .send()?
//!     .expect_status(200);
//! assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
//! // Same request again: a pure cache hit, visible to every client.
//! let again = client
//!     .request("POST", "/v1/run")
//!     .body(&request)
//!     .send()?
//!     .expect_status(200);
//! assert_eq!(again.get("cached").unwrap().as_bool(), Some(true));
//!
//! let report = server.shutdown();
//! assert_eq!(report.requests_served, 2);
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod encode;
pub mod http;
pub mod jobtable;
pub mod json;
pub mod server;
pub mod wire;

pub use client::{Client, ClientResponse, RequestBuilder, StreamEvent};
pub use encode::Format;
pub use server::{ServeConfig, Server, ShutdownReport};
