//! # cnfet-serve — the `Session` engine over the wire
//!
//! A std-only, dependency-free HTTP/1.1 + JSON server that exposes the
//! full [`cnfet::Session`] engine to concurrent network clients: every
//! request kind the engine services in-process — cells, libraries,
//! immunity verdicts, flows, variation sweeps — is one `POST` away, and
//! all clients share one warm, sharded, single-flight cache. This is the
//! serving shape of Hills-style co-optimization: many remote loops
//! iterating processing/circuit corners against one memoizing engine.
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/run` | one request, synchronous; body: a wire request object |
//! | `POST /v1/batch` | `{"requests": […]}`, fanned out on the engine's pool, answers in order |
//! | `POST /v1/submit` | non-blocking; answers `202 {"jobs": [id, …]}` or `429` on backpressure |
//! | `GET /v1/jobs/{id}` | `pending` / `done` + result / `error` + payload / `canceled`; `404` after expiry |
//! | `GET /v1/stats` | full engine [`SessionStats`](cnfet::SessionStats): per-class hits/misses/evictions, cache occupancy, pool counters, job table |
//! | `GET /v1/healthz` | liveness |
//!
//! The request/response encodings are documented in [`wire`], the JSON
//! dialect (hand-rolled — the workspace builds offline) in [`json`], and
//! the full protocol walk-through with curl transcripts in the
//! repository's `ARCHITECTURE.md`.
//!
//! ## In-process quickstart
//!
//! ```
//! use cnfet_serve::{json::Json, Client, ServeConfig, Server};
//!
//! // An ephemeral-port server; `cnfet-serve --addr 0.0.0.0:8373` is the
//! // same engine as a standalone process.
//! let server = Server::start(ServeConfig::default().addr("127.0.0.1:0"))?;
//! let mut client = Client::new(server.addr());
//!
//! let request = Json::obj([
//!     ("type", Json::str("cell")),
//!     ("kind", Json::str("nand3")),
//! ]);
//! let first = client.post("/v1/run", &request)?.expect_status(200);
//! assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
//! // Same request again: a pure cache hit, visible to every client.
//! let again = client.post("/v1/run", &request)?.expect_status(200);
//! assert_eq!(again.get("cached").unwrap().as_bool(), Some(true));
//!
//! let report = server.shutdown();
//! assert_eq!(report.requests_served, 2);
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod jobtable;
pub mod json;
pub mod server;
pub mod wire;

pub use client::{Client, ClientResponse};
pub use server::{ServeConfig, Server, ShutdownReport};
