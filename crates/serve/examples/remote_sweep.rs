//! A co-optimization client driving a variation sweep **over the wire**:
//! boots a `cnfet-serve` server on an ephemeral port, then talks to it
//! purely through HTTP + JSON — exactly what a remote process-corner
//! loop (Hills-style processing/circuit co-optimization) would do, with
//! the server's warm cache shared across every client iteration.
//!
//! ```text
//! cargo run --release -p cnfet-serve --example remote_sweep
//! ```

use cnfet_serve::json::Json;
use cnfet_serve::{Client, ServeConfig, Server};

fn sweep_request() -> Json {
    Json::obj([
        ("type", Json::str("sweep")),
        (
            "cells",
            Json::Arr(vec![
                Json::obj([("kind", Json::str("inv"))]),
                Json::obj([("kind", Json::str("nand2"))]),
                Json::obj([("kind", Json::str("aoi22"))]),
            ]),
        ),
        (
            "grid",
            Json::obj([
                ("tube_counts", [26u64, 10].into_iter().collect::<Json>()),
                (
                    "metallic_fractions",
                    [0.0, 0.02].into_iter().collect::<Json>(),
                ),
            ]),
        ),
        ("metrics", Json::str("immunity")),
        ("mc", Json::obj([("tubes", Json::from(400u64))])),
    ])
}

fn class_stat(stats: &Json, class: &str, counter: &str) -> u64 {
    stats
        .get("classes")
        .and_then(|c| c.get(class))
        .and_then(|c| c.get(counter))
        .and_then(Json::as_u64)
        .expect("stats shape")
}

fn main() -> std::io::Result<()> {
    // In production this is a separate `cnfet-serve` process; here the
    // server rides along in-process so the example is self-contained —
    // the conversation below is real TCP either way.
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0"))?;
    println!("server up on http://{}\n", server.addr());
    let mut client = Client::new(server.addr());

    let health = client.get("/v1/healthz")?.expect_status(200);
    println!("GET /v1/healthz         -> {health}");

    // Round 1: the engine executes every cell × corner.
    let request = sweep_request();
    let report = client.post("/v1/run", &request)?.expect_status(200);
    let rows = report.get("rows").and_then(Json::as_arr).expect("rows");
    println!(
        "POST /v1/run (sweep)    -> {} cells x {} corners = {} rows",
        report.get("cells").and_then(Json::as_u64).unwrap(),
        report.get("corners").and_then(Json::as_arr).unwrap().len(),
        rows.len(),
    );
    let worst = report.get("worst_corner").expect("worst corner");
    println!(
        "                           worst corner min yield {:.4}",
        worst.get("min_yield").and_then(Json::as_f64).unwrap(),
    );

    let stats = client.get("/v1/stats")?.expect_status(200);
    let misses_after_first = class_stat(&stats, "sweeps", "misses");
    println!(
        "GET /v1/stats           -> sweeps: {} misses, {} hits",
        misses_after_first,
        class_stat(&stats, "sweeps", "hits"),
    );

    // Round 2: the *identical* sweep — another client iteration of the
    // co-optimization loop — is answered from the warm cache.
    let again = client.post("/v1/run", &request)?.expect_status(200);
    assert_eq!(again.render(), report.render(), "deterministic replay");
    let stats = client.get("/v1/stats")?.expect_status(200);
    assert_eq!(
        class_stat(&stats, "sweeps", "misses"),
        misses_after_first,
        "repeat sweep executed nothing"
    );
    println!(
        "POST /v1/run (repeat)   -> pure cache hit ({} sweep hits, misses unchanged)",
        class_stat(&stats, "sweeps", "hits"),
    );

    // Non-blocking: submit a widened sweep, poll the job to completion.
    // Only the added corners execute; the overlap is already cached.
    let mut widened = sweep_request();
    if let Json::Obj(fields) = &mut widened {
        for (key, value) in fields.iter_mut() {
            if key == "grid" {
                *value = Json::obj([
                    ("tube_counts", [26u64, 10, 6].into_iter().collect::<Json>()),
                    (
                        "metallic_fractions",
                        [0.0, 0.02].into_iter().collect::<Json>(),
                    ),
                ]);
            }
        }
    }
    let submitted = client.post("/v1/submit", &widened)?.expect_status(202);
    let job = submitted.get("jobs").and_then(Json::as_arr).expect("jobs")[0]
        .as_u64()
        .expect("job id");
    println!("POST /v1/submit         -> job {job}");
    let result = loop {
        let poll = client.get(&format!("/v1/jobs/{job}"))?.expect_status(200);
        match poll.get("status").and_then(Json::as_str) {
            Some("pending") => std::thread::sleep(std::time::Duration::from_millis(10)),
            Some("done") => break poll,
            other => panic!("job ended {other:?}"),
        }
    };
    let widened_rows = result
        .get("result")
        .and_then(|r| r.get("rows"))
        .and_then(Json::as_arr)
        .expect("widened rows")
        .len();
    println!("GET /v1/jobs/{job}        -> done, {widened_rows} rows (overlap served from cache)");

    let report = server.shutdown();
    println!(
        "\nshutdown: {} requests served, {} jobs canceled",
        report.requests_served, report.jobs_canceled
    );
    Ok(())
}
