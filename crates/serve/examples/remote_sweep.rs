//! A co-optimization client driving a variation sweep **over the wire**:
//! boots a `cnfet-serve` server on an ephemeral port, then talks to it
//! purely through HTTP + JSON — exactly what a remote process-corner
//! loop (Hills-style processing/circuit co-optimization) would do, with
//! the server's warm cache shared across every client iteration.
//!
//! ```text
//! cargo run --release -p cnfet-serve --example remote_sweep
//! ```

use cnfet_serve::json::Json;
use cnfet_serve::{Client, Format, ServeConfig, Server, StreamEvent};

fn sweep_request() -> Json {
    Json::obj([
        ("type", Json::str("sweep")),
        (
            "cells",
            Json::Arr(vec![
                Json::obj([("kind", Json::str("inv"))]),
                Json::obj([("kind", Json::str("nand2"))]),
                Json::obj([("kind", Json::str("aoi22"))]),
            ]),
        ),
        (
            "grid",
            Json::obj([
                ("tube_counts", [26u64, 10].into_iter().collect::<Json>()),
                (
                    "metallic_fractions",
                    [0.0, 0.02].into_iter().collect::<Json>(),
                ),
            ]),
        ),
        ("metrics", Json::str("immunity")),
        ("mc", Json::obj([("tubes", Json::from(400u64))])),
    ])
}

fn class_stat(stats: &Json, class: &str, counter: &str) -> u64 {
    stats
        .get("classes")
        .and_then(|c| c.get(class))
        .and_then(|c| c.get(counter))
        .and_then(Json::as_u64)
        .expect("stats shape")
}

fn main() -> std::io::Result<()> {
    // In production this is a separate `cnfet-serve` process; here the
    // server rides along in-process so the example is self-contained —
    // the conversation below is real TCP either way.
    let server = Server::start(ServeConfig::default().addr("127.0.0.1:0"))?;
    println!("server up on http://{}\n", server.addr());
    let mut client = Client::new(server.addr());

    let health = client
        .request("GET", "/v1/healthz")
        .send()?
        .expect_status(200);
    println!("GET /v1/healthz         -> {health}");

    // Round 1: the engine executes every cell × corner.
    let request = sweep_request();
    let report = client
        .request("POST", "/v1/run")
        .body(&request)
        .send()?
        .expect_status(200);
    let rows = report.get("rows").and_then(Json::as_arr).expect("rows");
    println!(
        "POST /v1/run (sweep)    -> {} cells x {} corners = {} rows",
        report.get("cells").and_then(Json::as_u64).unwrap(),
        report.get("corners").and_then(Json::as_arr).unwrap().len(),
        rows.len(),
    );
    let worst = report.get("worst_corner").expect("worst corner");
    println!(
        "                           worst corner min yield {:.4}",
        worst.get("min_yield").and_then(Json::as_f64).unwrap(),
    );

    let stats = client
        .request("GET", "/v1/stats")
        .send()?
        .expect_status(200);
    let misses_after_first = class_stat(&stats, "sweeps", "misses");
    println!(
        "GET /v1/stats           -> sweeps: {} misses, {} hits",
        misses_after_first,
        class_stat(&stats, "sweeps", "hits"),
    );

    // Round 2: the *identical* sweep — another client iteration of the
    // co-optimization loop — is answered from the warm cache.
    let again = client
        .request("POST", "/v1/run")
        .body(&request)
        .send()?
        .expect_status(200);
    assert_eq!(again.render(), report.render(), "deterministic replay");
    let stats = client
        .request("GET", "/v1/stats")
        .send()?
        .expect_status(200);
    assert_eq!(
        class_stat(&stats, "sweeps", "misses"),
        misses_after_first,
        "repeat sweep executed nothing"
    );
    println!(
        "POST /v1/run (repeat)   -> pure cache hit ({} sweep hits, misses unchanged)",
        class_stat(&stats, "sweeps", "hits"),
    );

    // Incremental: submit a widened sweep and stream its rows as the
    // engine harvests them — no poll loop, no waiting for the full
    // report. Only the added corners execute; the overlap is already
    // cached. `Format::Binary` negotiates the compact row encoding;
    // the decoded rows are field-identical to the JSON ones.
    let mut widened = sweep_request();
    if let Json::Obj(fields) = &mut widened {
        for (key, value) in fields.iter_mut() {
            if key == "grid" {
                *value = Json::obj([
                    ("tube_counts", [26u64, 10, 6].into_iter().collect::<Json>()),
                    (
                        "metallic_fractions",
                        [0.0, 0.02].into_iter().collect::<Json>(),
                    ),
                ]);
            }
        }
    }
    let mut streamed_rows = 0usize;
    let mut done_rows = 0usize;
    let job = client.submit_and_stream(&widened, Format::Binary, |event| match event {
        StreamEvent::Row { .. } => streamed_rows += 1,
        StreamEvent::Done(result) => {
            done_rows = result
                .get("rows")
                .and_then(Json::as_arr)
                .map(<[Json]>::len)
                .unwrap_or(0);
        }
        _ => {}
    })?;
    assert_eq!(streamed_rows, done_rows, "every row arrived before `done`");
    println!(
        "GET /v1/jobs/{job}/stream -> {streamed_rows} binary rows streamed, then `done` \
         (overlap served from cache)"
    );

    let report = server.shutdown();
    println!(
        "\nshutdown: {} requests served, {} jobs canceled",
        report.requests_served, report.jobs_canceled
    );
    Ok(())
}
