//! Bench: the `cnfet-serve` wire layer — full request → warm-cache-hit →
//! response latency over real loopback TCP, against the in-process hit
//! cost the `session` suite measures. The spread between
//! `served_cached_hits` and the session suite's `cached_serial` sample
//! is the protocol tax: HTTP parse + JSON decode/encode + two socket
//! hops.
//!
//! `served_streaming` is gated by `check_regression` (anchored on
//! `served_cached_hits`, so the ratio stays machine-relative); the rest
//! is recorded and uploaded as artifacts for trend-watching only —
//! loopback latency is far noisier across runners than the in-process
//! samples.

use cnfet::core::StdCellKind;
use cnfet::{Session, SweepMetrics, SweepRequest, VariationGrid};
use cnfet_bench::harness::Harness;
use cnfet_serve::json::Json;
use cnfet_serve::{Client, Format, ServeConfig, Server, StreamEvent};

fn cell_request(kind: &str) -> Json {
    Json::obj([("type", Json::str("cell")), ("kind", Json::str(kind))])
}

fn sweep_request() -> Json {
    Json::obj([
        ("type", Json::str("sweep")),
        (
            "cells",
            Json::Arr(vec![
                Json::obj([("kind", Json::str("inv"))]),
                Json::obj([("kind", Json::str("nand2"))]),
            ]),
        ),
        (
            "grid",
            Json::obj([
                ("tube_counts", [26u64, 10].into_iter().collect::<Json>()),
                ("seeds", [5u64].into_iter().collect::<Json>()),
            ]),
        ),
        ("metrics", Json::str("immunity")),
        ("mc", Json::obj([("tubes", Json::from(100u64))])),
    ])
}

fn main() {
    let mut h = Harness::new("serve");
    let server =
        Server::start(ServeConfig::default().addr("127.0.0.1:0")).expect("bind ephemeral port");
    let mut client = Client::new(server.addr());

    // Warm every kind this suite touches, so the timed loops below are
    // pure cache hits on the server side.
    let kinds = ["inv", "nand2", "nand3", "nor2", "aoi22", "oai21"];
    for kind in kinds {
        client
            .request("POST", "/v1/run")
            .body(&cell_request(kind))
            .send()
            .expect("warmup request")
            .expect_status(200);
    }
    client
        .request("POST", "/v1/run")
        .body(&sweep_request())
        .send()
        .expect("warmup sweep")
        .expect_status(200);

    // One request per round trip on a keep-alive connection: the
    // headline number.
    let mut i = 0usize;
    h.bench("served_cached_hits", 400, || {
        let kind = kinds[i % kinds.len()];
        i += 1;
        client
            .request("POST", "/v1/run")
            .body(&cell_request(kind))
            .send()
            .expect("served hit")
            .expect_status(200)
    });

    // The same six hits as one wire batch: amortizes the HTTP round
    // trip, keeps the JSON cost.
    let batch = Json::obj([(
        "requests",
        kinds.iter().map(|k| cell_request(k)).collect::<Json>(),
    )]);
    h.bench("served_cached_batch_6", 200, || {
        client
            .request("POST", "/v1/batch")
            .body(&batch)
            .send()
            .expect("served batch")
            .expect_status(200)
    });

    // Stats polling cost — what a dashboard scraping /v1/stats pays.
    h.bench("served_stats", 400, || {
        client
            .request("GET", "/v1/stats")
            .send()
            .expect("stats")
            .expect_status(200)
    });

    // Submit + chunked `/stream` of a warm 4-row sweep: the cost of
    // incremental delivery end to end (submit POST, job settlement,
    // per-row frames, terminal event, connection teardown). Gated —
    // this is the v2 protocol's headline path.
    let sweep = sweep_request();
    h.bench("served_streaming", 50, || {
        let mut rows = 0usize;
        client
            .submit_and_stream(&sweep, Format::Binary, |event| {
                if let StreamEvent::Row { .. } = event {
                    rows += 1;
                }
            })
            .expect("streamed sweep");
        assert_eq!(rows, 4, "every corner row was streamed");
    });

    let report = server.shutdown();
    assert_eq!(report.jobs_canceled, 0);

    // Snapshot round trip: persist a warm session's sweep cache and
    // warm-boot a cold one from it — the restart-recovery cost a
    // `--snapshot` deployment pays at shutdown + boot.
    let warm = Session::new();
    warm.run(
        &SweepRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
            .grid(VariationGrid::nominal().seeds([5, 6]))
            .metrics(SweepMetrics::IMMUNITY),
    )
    .expect("warm sweep");
    let path = std::env::temp_dir().join(format!("cnfet-bench-{}.snap", std::process::id()));
    h.bench("snapshot_warm_boot", 50, || {
        let entries = warm.save_snapshot(&path).expect("save snapshot");
        let cold = Session::new();
        let restored = cold.load_snapshot(&path).expect("load snapshot");
        assert_eq!(restored, entries);
    });
    let _ = std::fs::remove_file(&path);

    h.finish();
}
