//! Bench: the `cnfet-serve` wire layer — full request → warm-cache-hit →
//! response latency over real loopback TCP, against the in-process hit
//! cost the `session` suite measures. The spread between
//! `served_cached_hits` and the session suite's `cached_serial` sample
//! is the protocol tax: HTTP parse + JSON decode/encode + two socket
//! hops.
//!
//! Not gated by `check_regression`: loopback latency is far noisier
//! across runners than the in-process samples, so these numbers are
//! recorded (and uploaded as artifacts) for trend-watching, not gating.

use cnfet_bench::harness::Harness;
use cnfet_serve::json::Json;
use cnfet_serve::{Client, ServeConfig, Server};

fn cell_request(kind: &str) -> Json {
    Json::obj([("type", Json::str("cell")), ("kind", Json::str(kind))])
}

fn main() {
    let mut h = Harness::new("serve");
    let server =
        Server::start(ServeConfig::default().addr("127.0.0.1:0")).expect("bind ephemeral port");
    let mut client = Client::new(server.addr());

    // Warm every kind this suite touches, so the timed loops below are
    // pure cache hits on the server side.
    let kinds = ["inv", "nand2", "nand3", "nor2", "aoi22", "oai21"];
    for kind in kinds {
        client
            .post("/v1/run", &cell_request(kind))
            .expect("warmup request")
            .expect_status(200);
    }

    // One request per round trip on a keep-alive connection: the
    // headline number.
    let mut i = 0usize;
    h.bench("served_cached_hits", 400, || {
        let kind = kinds[i % kinds.len()];
        i += 1;
        client
            .post("/v1/run", &cell_request(kind))
            .expect("served hit")
            .expect_status(200)
    });

    // The same six hits as one wire batch: amortizes the HTTP round
    // trip, keeps the JSON cost.
    let batch = Json::obj([(
        "requests",
        kinds.iter().map(|k| cell_request(k)).collect::<Json>(),
    )]);
    h.bench("served_cached_batch_6", 200, || {
        client
            .post("/v1/batch", &batch)
            .expect("served batch")
            .expect_status(200)
    });

    // Stats polling cost — what a dashboard scraping /v1/stats pays.
    h.bench("served_stats", 400, || {
        client.get("/v1/stats").expect("stats").expect_status(200)
    });

    let report = server.shutdown();
    assert_eq!(report.jobs_canceled, 0);
    h.finish();
}
