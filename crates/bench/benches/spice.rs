//! Bench: transient-simulation throughput (the Figure 7 / Case-study hot
//! path).

use cnfet_bench::harness::Harness;
use cnfet_device::{CnfetModel, Polarity};
use cnfet_spice::{transient, Circuit, Waveform};
use std::sync::Arc;

fn inverter_chain(stages: usize) -> Circuit {
    let model = CnfetModel::poly_65nm();
    let nd = Arc::new(model.device(Polarity::N, 26, 130e-9));
    let pd = Arc::new(model.device(Polarity::P, 26, 130e-9));
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(1.0));
    let vin = ckt.node("n0");
    ckt.add_vsource(
        vin,
        Circuit::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 20e-12,
            rise: 5e-12,
            fall: 5e-12,
            width: 200e-12,
            period: 0.0,
        },
    );
    let mut prev = vin;
    for i in 1..=stages {
        let n = ckt.node(&format!("n{i}"));
        ckt.add_fet(n, prev, vdd, pd.clone());
        ckt.add_fet(n, prev, Circuit::GROUND, nd.clone());
        prev = n;
    }
    ckt
}

fn main() {
    let mut h = Harness::new("spice");
    let ckt5 = inverter_chain(5);
    h.bench("transient_inv5_500steps", 20, || {
        transient(&ckt5, 1e-12, 0.5e-9).unwrap()
    });
    let ckt15 = inverter_chain(15);
    h.bench("transient_inv15_250steps", 20, || {
        transient(&ckt15, 2e-12, 0.5e-9).unwrap()
    });
    h.finish();
}
