//! Bench: layout generation throughput (the Table 1 hot path).

use cnfet_bench::harness::Harness;
use cnfet_core::{generate_cell, GenerateOptions, Sizing, StdCellKind, Style};

fn main() {
    let mut h = Harness::new("euler_layout");
    for (name, style) in [
        ("new_immune", Style::NewImmune),
        ("old_etched", Style::OldEtched),
    ] {
        h.bench(format!("generate_nand3_{name}"), 200, || {
            generate_cell(
                StdCellKind::Nand(3),
                &GenerateOptions {
                    style,
                    sizing: Sizing::Matched { base_lambda: 4 },
                    ..GenerateOptions::default()
                },
            )
            .unwrap()
        });
    }
    h.bench("generate_aoi31_new", 200, || {
        generate_cell(StdCellKind::Aoi31, &GenerateOptions::default()).unwrap()
    });

    let rules = cnfet_core::DesignRules::cnfet65();
    h.bench("table1_full", 100, || cnfet_core::area::table1(&rules));
    h.finish();
}
