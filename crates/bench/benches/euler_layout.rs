//! Criterion bench: layout generation throughput (the Table 1 hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use cnfet_core::{generate_cell, GenerateOptions, Sizing, StdCellKind, Style};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    for (name, style) in [("new_immune", Style::NewImmune), ("old_etched", Style::OldEtched)] {
        group.bench_function(format!("nand3_{name}"), |b| {
            b.iter(|| {
                generate_cell(
                    StdCellKind::Nand(3),
                    &GenerateOptions {
                        style,
                        sizing: Sizing::Matched { base_lambda: 4 },
                        ..GenerateOptions::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.bench_function("aoi31_new", |b| {
        b.iter(|| generate_cell(StdCellKind::Aoi31, &GenerateOptions::default()).unwrap())
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    let rules = cnfet_core::DesignRules::cnfet65();
    c.bench_function("table1_full", |b| {
        b.iter(|| cnfet_core::area::table1(&rules))
    });
}

criterion_group!(benches, bench_generate, bench_table1);
criterion_main!(benches);
