//! Bench: the `Session` engine — cold vs cached vs batched generation of
//! the full `StdCellKind::ALL` × scheme request matrix, the library
//! build, a contended multi-thread hit path, a skewed batch, a
//! heterogeneous `submit_all` mix riding the persistent job pool, the
//! composite variation sweep, 1000-die repair-lot, and 64-bit adder
//! macro workloads (cold, cached, and the SAT-solver escalation), plus
//! the MNA engine's cold transient and characterization-sweep workloads.
//! This is the baseline future perf PRs (sharding, async serving) must
//! not regress; CI gates the `cached_*`/`contended_*`/`mixed_batch_*`/
//! `macro_cla64_cached`/`repair_1000_dies_cached`/`sweep_grid_cached*`/
//! `sweep_grid_mna*`/`tran_inverter_cold` samples through
//! `check_regression`.

use cnfet::core::{GenerateOptions, Scheme, StdCellKind};
use cnfet::device::Polarity;
use cnfet::dk::DesignKit;
use cnfet::logic::AdderKind;
use cnfet::repair::DefectParams;
use cnfet::spice::{Circuit, Waveform};
use cnfet::{
    CellRequest, FlowRequest, FlowSource, ImmunityRequest, LibraryRequest, MacroRequest,
    OptimizeRequest, OptimizeTarget, RepairRequest, RequestKind, Session, SweepMetrics,
    SweepRequest, VariationGrid,
};
use cnfet_bench::harness::Harness;
use std::sync::Arc;

/// The golden-test inverter: a loaded CNFET inverter driven by a pulse
/// — the canonical single-cell transient workload for the MNA engine.
fn inverter_circuit() -> Circuit {
    let kit = DesignKit::cnfet65();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(kit.cnfet.vdd));
    ckt.add_vsource(
        vin,
        Circuit::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: kit.cnfet.vdd,
            delay: 0.2e-9,
            rise: 10e-12,
            fall: 10e-12,
            width: 2e-9,
            period: 4e-9,
        },
    );
    let width_m = kit.base_width_lambda as f64 * 32.5e-9;
    let n = kit
        .cnfet
        .device(Polarity::N, kit.tubes_per_4lambda, width_m);
    let p = kit
        .cnfet
        .device(Polarity::P, kit.tubes_per_4lambda, width_m);
    ckt.add_fet(out, vin, Circuit::GROUND, Arc::new(n));
    ckt.add_fet(out, vin, vdd, Arc::new(p));
    ckt.add_load(out, 1e-15);
    ckt
}

fn matrix() -> Vec<CellRequest> {
    let mut requests = Vec::new();
    for kind in StdCellKind::ALL {
        for scheme in [Scheme::Scheme1, Scheme::Scheme2] {
            requests.push(CellRequest::new(kind).options(GenerateOptions {
                scheme,
                ..GenerateOptions::default()
            }));
        }
    }
    requests
}

/// A cost-skewed request list: mostly cheap strength-1 inverters plus a
/// tail of heavy high-strength complex gates, the shape that leaves
/// fixed-chunk executors with idle workers.
fn skewed(n_cheap: usize) -> Vec<CellRequest> {
    let mut requests: Vec<CellRequest> = (0..n_cheap)
        .map(|i| CellRequest::new(StdCellKind::Inv).named(format!("INV_SKEW_{i}")))
        .collect();
    for kind in [StdCellKind::Aoi22, StdCellKind::Oai21, StdCellKind::Nand(3)] {
        for strength in [7, 9] {
            requests.push(CellRequest::new(kind).strength(strength));
        }
    }
    requests
}

/// A heterogeneous mix — cells, immunity verdicts, and flows interleaved
/// — the shape of a co-optimization sweep going through `submit_all`.
fn mixed(cells: &[CellRequest]) -> Vec<RequestKind> {
    let mut requests = Vec::new();
    let verdicts = StdCellKind::ALL.into_iter().map(ImmunityRequest::certify);
    let flows = [
        FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1),
        FlowRequest::cmos(FlowSource::FullAdder),
    ];
    let mut cell_iter = cells.iter().cloned();
    for verdict in verdicts {
        // Interleave: two cells, one verdict.
        requests.extend(cell_iter.by_ref().take(2).map(RequestKind::from));
        requests.push(RequestKind::from(verdict));
    }
    requests.extend(cell_iter.map(RequestKind::from));
    requests.extend(flows.into_iter().map(RequestKind::from));
    requests
}

fn main() {
    let mut h = Harness::new("session");
    let requests = matrix();
    let n = requests.len();

    // Cold: a fresh session every iteration — every request generates.
    h.bench(format!("cold_serial_{n}_cells"), 50, || {
        let session = Session::new();
        for r in &requests {
            session.run(r).unwrap();
        }
        session
    });

    // Cached: one warm session — every request is a cache hit.
    let warm = Session::new();
    for r in &requests {
        warm.run(r).unwrap();
    }
    h.bench(format!("cached_serial_{n}_cells"), 200, || {
        for r in &requests {
            assert!(warm.run(r).unwrap().cached);
        }
    });

    // Batched: a fresh session fanned out across threads.
    h.bench(format!("cold_batch_{n}_cells"), 50, || {
        let session = Session::new();
        let results = session.run_batch(&requests);
        assert!(results.iter().all(|r| r.is_ok()));
        session
    });

    // Batched against the warm cache.
    h.bench(format!("cached_batch_{n}_cells"), 200, || {
        warm.run_batch(&requests)
    });

    // Contended hit path: every thread hammers the same warm cache with
    // the full matrix at once. This is the sample the sharded cache must
    // move — under a single lock all threads serialize here.
    for threads in [4, 8] {
        h.bench(format!("contended_hits_{threads}t_{n}_cells"), 100, || {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        for r in &requests {
                            assert!(warm.run(r).unwrap().cached);
                        }
                    });
                }
            })
        });
    }

    // Skewed batch: many cheap cells plus a heavy tail, cold every
    // iteration — measures how well the batch executor load-balances.
    let skewed_requests = skewed(48);
    let sn = skewed_requests.len();
    h.bench(format!("skewed_batch_{sn}_cells"), 30, || {
        let session = Session::new();
        let results = session.run_batch(&skewed_requests);
        assert!(results.iter().all(|r| r.is_ok()));
        session
    });

    // Mixed batch: cells + immunity verdicts + flows interleaved through
    // the non-blocking submit_all against the warm session — measures
    // JobHandle + pool dispatch overhead on the pure hit path.
    let mixed_requests = mixed(&requests);
    let mn = mixed_requests.len();
    for r in &mixed_requests {
        warm.run(r).unwrap();
    }
    h.bench(format!("mixed_batch_{mn}_reqs"), 100, || {
        let handles = warm.submit_all(mixed_requests.iter().cloned());
        for handle in handles {
            handle.wait().unwrap();
        }
    });

    // Variation sweep: the composite request — 3 cells × 4 corners
    // fanned out through the pool with batch-targeted helping. Cold is
    // informational (it times MC + reduction); the cached sample is the
    // gated one — a repeated sweep must stay a pure Sweeps-class hit.
    let sweep = SweepRequest::new([StdCellKind::Inv, StdCellKind::Nand(2), StdCellKind::Nor(2)])
        .grid(
            VariationGrid::nominal()
                .tube_counts([26, 10])
                .metallic_fractions([0.0, 0.05]),
        )
        .metrics(SweepMetrics::IMMUNITY)
        .mc(cnfet::immunity::McOptions {
            tubes: 200,
            ..Default::default()
        });
    h.bench("sweep_grid_cold_3c4k", 10, || {
        let session = Session::new();
        session.run(&sweep).unwrap()
    });
    let warm_sweep = Session::new();
    warm_sweep.run(&sweep).unwrap();
    h.bench("sweep_grid_cached_3c4k", 200, || {
        warm_sweep.run(&sweep).unwrap()
    });

    // MNA transient, cold: symbolic analysis + engine allocation + one
    // backward-Euler pulse period every iteration — the whole
    // lowering → analyze → stamp → refactor → solve chain. Gated: the
    // reusable-factorization engine must not regress.
    let inverter = inverter_circuit();
    let inverter_mna = cnfet::spice::to_mna(&inverter);
    h.bench("tran_inverter_cold", 20, || {
        let pattern = Arc::new(cnfet::mna::Pattern::analyze(&inverter_mna));
        let mut engine = cnfet::mna::Engine::new(pattern);
        engine
            .tran(&inverter_mna, &cnfet::mna::TranSpec::new(20e-12, 4e-9))
            .unwrap()
    });

    // MNA-backed characterization sweep, cold: 3 cells × 4 corners of
    // timing metrics, a fresh session every iteration — measures the
    // per-corner transient stack (pattern-cache reuse included), not
    // the memoization layer.
    let mna_sweep =
        SweepRequest::new([StdCellKind::Inv, StdCellKind::Nand(2), StdCellKind::Nor(2)])
            .grid(
                VariationGrid::nominal()
                    .tube_counts([26, 10])
                    .pitch_scales([1.0, 0.8]),
            )
            .metrics(SweepMetrics::TIMING);
    h.bench("sweep_grid_mna_3c4k", 10, || {
        let session = Session::new();
        session.run(&mna_sweep).unwrap()
    });

    // Repair lot: the second composite — 1000 dies of per-die defect
    // sampling + site testing + matching, fanned out through the pool.
    // Cold is informational; the cached sample (a pure Repairs-class
    // whole-report hit) is gated like the sweep's.
    let lot = RepairRequest::new([StdCellKind::Inv, StdCellKind::Nand(2), StdCellKind::Nor(2)])
        .dies(1000)
        .base_seed(0xB0BBA)
        .spares(2)
        .params(DefectParams {
            metallic_fraction: 0.05,
            misposition_fraction: 0.2,
            ..DefectParams::default()
        });
    h.bench("repair_1000_dies_cold", 10, || {
        let session = Session::new();
        session.run(&lot).unwrap()
    });
    let warm_repair = Session::new();
    warm_repair.run(&lot).unwrap();
    h.bench("repair_1000_dies_cached", 200, || {
        warm_repair.run(&lot).unwrap()
    });

    // Co-optimization: the third composite — a 20-candidate coordinate
    // descent whose every evaluation is a memoized candidate sweep. Cold
    // is informational (it times the search's sweep fan-out + helping);
    // the cached sample is gated — a repeated converged search must stay
    // a pure Optimizations-class trajectory hit.
    let optimize = OptimizeRequest::new([StdCellKind::Inv, StdCellKind::Nand(2)])
        .grid(
            VariationGrid::nominal()
                .tube_counts([26, 20, 16, 10, 8])
                .pitch_scales([1.0, 0.9, 0.8])
                .metallic_fractions([0.0, 0.01])
                .seeds([7]),
        )
        .target(OptimizeTarget::new().min_yield(0.5))
        .passes(2)
        .metrics(SweepMetrics::IMMUNITY)
        .mc(cnfet::immunity::McOptions {
            tubes: 200,
            ..Default::default()
        });
    assert_eq!(optimize.candidate_count(), 20);
    h.bench("optimize_cold_20cand", 10, || {
        let session = Session::new();
        session.run(&optimize).unwrap()
    });
    let warm_optimize = Session::new();
    assert!(warm_optimize.run(&optimize).unwrap().converged);
    h.bench("optimize_converged_cached", 200, || {
        warm_optimize.run(&optimize).unwrap()
    });

    // Hierarchical macro: the fourth composite — a 64-bit carry-look-
    // ahead adder fanning 64 bit-slice characterizations out through the
    // pool, then assembling placement + GDS around one shared full-adder
    // sub-cell. Cold is informational (it times the MNA-backed slice
    // characterizations + assembly); the cached sample (a pure
    // Macros-class whole-report hit) is gated like the other composites'.
    let cla64 = MacroRequest::new(AdderKind::Cla, 64).seed(0xB0BBA);
    h.bench("macro_cla64_cold", 3, || {
        let session = Session::new();
        session.run(&cla64).unwrap()
    });
    let warm_macro = Session::new();
    warm_macro.run(&cla64).unwrap();
    h.bench("macro_cla64_cached", 200, || {
        warm_macro.run(&cla64).unwrap()
    });

    // SAT fallback: the same defect mix under adjacency constraints, so
    // every die routes through the DPLL solver instead of matching —
    // informational, it times the solver escalation itself.
    let constrained =
        RepairRequest::new([StdCellKind::Inv, StdCellKind::Nand(2), StdCellKind::Nor(2)])
            .dies(100)
            .base_seed(0xB0BBA)
            .spares(2)
            .params(DefectParams {
                metallic_fraction: 0.05,
                misposition_fraction: 0.2,
                ..DefectParams::default()
            })
            .adjacent([(0, 1), (1, 2)]);
    h.bench("repair_sat_fallback_100_dies", 10, || {
        let session = Session::new();
        let report = session.run(&constrained).unwrap();
        assert!(report.dies.iter().all(|d| d.solver == "sat"));
        report
    });

    // Library build: cold (fresh session) vs memoized.
    h.bench("library_scheme1_cold", 20, || {
        Session::new()
            .run(&LibraryRequest::new(Scheme::Scheme1))
            .unwrap()
    });
    let warm_lib = Session::new();
    warm_lib.run(&LibraryRequest::new(Scheme::Scheme1)).unwrap();
    h.bench("library_scheme1_cached", 200, || {
        warm_lib.run(&LibraryRequest::new(Scheme::Scheme1)).unwrap()
    });

    h.finish();
}
