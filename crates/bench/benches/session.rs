//! Bench: the `Session` engine — cold vs cached vs batched generation of
//! the full `StdCellKind::ALL` × scheme request matrix, plus the library
//! build. This is the baseline future perf PRs (sharding, async serving)
//! must not regress.

use cnfet::core::{GenerateOptions, Scheme, StdCellKind};
use cnfet::{CellRequest, LibraryRequest, Session};
use cnfet_bench::harness::Harness;

fn matrix() -> Vec<CellRequest> {
    let mut requests = Vec::new();
    for kind in StdCellKind::ALL {
        for scheme in [Scheme::Scheme1, Scheme::Scheme2] {
            requests.push(CellRequest::new(kind).options(GenerateOptions {
                scheme,
                ..GenerateOptions::default()
            }));
        }
    }
    requests
}

fn main() {
    let mut h = Harness::new("session");
    let requests = matrix();
    let n = requests.len();

    // Cold: a fresh session every iteration — every request generates.
    h.bench(format!("cold_serial_{n}_cells"), 50, || {
        let session = Session::new();
        for r in &requests {
            session.generate(r).unwrap();
        }
        session
    });

    // Cached: one warm session — every request is a cache hit.
    let warm = Session::new();
    for r in &requests {
        warm.generate(r).unwrap();
    }
    h.bench(format!("cached_serial_{n}_cells"), 200, || {
        for r in &requests {
            assert!(warm.generate(r).unwrap().cached);
        }
    });

    // Batched: a fresh session fanned out across threads.
    h.bench(format!("cold_batch_{n}_cells"), 50, || {
        let session = Session::new();
        let results = session.generate_batch(&requests);
        assert!(results.iter().all(|r| r.is_ok()));
        session
    });

    // Batched against the warm cache.
    h.bench(format!("cached_batch_{n}_cells"), 200, || {
        warm.generate_batch(&requests)
    });

    // Library build: cold (fresh session) vs memoized.
    h.bench("library_scheme1_cold", 20, || {
        Session::new()
            .library(&LibraryRequest::new(Scheme::Scheme1))
            .unwrap()
    });
    let warm_lib = Session::new();
    warm_lib
        .library(&LibraryRequest::new(Scheme::Scheme1))
        .unwrap();
    h.bench("library_scheme1_cached", 200, || {
        warm_lib
            .library(&LibraryRequest::new(Scheme::Scheme1))
            .unwrap()
    });

    h.finish();
}
