//! Bench: immunity certification and Monte-Carlo throughput.

use cnfet_bench::harness::Harness;
use cnfet_core::{generate_cell, GenerateOptions, StdCellKind, Style};
use cnfet_immunity::{certify, simulate, McOptions};

fn main() {
    let mut h = Harness::new("immunity");
    let nand3 = generate_cell(StdCellKind::Nand(3), &GenerateOptions::default()).unwrap();
    let aoi31 = generate_cell(StdCellKind::Aoi31, &GenerateOptions::default()).unwrap();
    h.bench("certify_nand3", 100, || certify(&nand3.semantics));
    h.bench("certify_aoi31", 100, || certify(&aoi31.semantics));

    let vuln = generate_cell(
        StdCellKind::Nand(2),
        &GenerateOptions {
            style: Style::Vulnerable,
            ..GenerateOptions::default()
        },
    )
    .unwrap();
    let opts = McOptions {
        tubes: 500,
        ..McOptions::default()
    };
    h.bench("mc_500_tubes_nand2", 20, || {
        simulate(&vuln.semantics, &opts)
    });
    h.finish();
}
