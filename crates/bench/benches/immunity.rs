//! Criterion bench: immunity certification and Monte-Carlo throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use cnfet_core::{generate_cell, GenerateOptions, StdCellKind, Style};
use cnfet_immunity::{certify, simulate, McOptions};

fn bench_certify(c: &mut Criterion) {
    let nand3 = generate_cell(StdCellKind::Nand(3), &GenerateOptions::default()).unwrap();
    let aoi31 = generate_cell(StdCellKind::Aoi31, &GenerateOptions::default()).unwrap();
    c.bench_function("certify_nand3", |b| b.iter(|| certify(&nand3.semantics)));
    c.bench_function("certify_aoi31", |b| b.iter(|| certify(&aoi31.semantics)));
}

fn bench_monte_carlo(c: &mut Criterion) {
    let vuln = generate_cell(
        StdCellKind::Nand(2),
        &GenerateOptions {
            style: Style::Vulnerable,
            ..GenerateOptions::default()
        },
    )
    .unwrap();
    let opts = McOptions {
        tubes: 500,
        ..McOptions::default()
    };
    c.bench_function("mc_500_tubes_nand2", |b| {
        b.iter(|| simulate(&vuln.semantics, &opts))
    });
}

criterion_group!(benches, bench_certify, bench_monte_carlo);
criterion_main!(benches);
