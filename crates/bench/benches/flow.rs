//! Criterion bench: placement and synthesis throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use cnfet_core::Scheme;
use cnfet_flow::{full_adder, place_cnfet, synthesize};
use cnfet_logic::Expr;

fn bench_place(c: &mut Criterion) {
    let fa = full_adder();
    c.bench_function("place_fa_scheme1", |b| {
        b.iter(|| place_cnfet(&fa, Scheme::Scheme1).unwrap())
    });
    c.bench_function("place_fa_scheme2", |b| {
        b.iter(|| place_cnfet(&fa, Scheme::Scheme2).unwrap())
    });
}

fn bench_synthesize(c: &mut Criterion) {
    let parsed = Expr::parse("(a*b + c*d) * (e + f*g) + !(a*h)").unwrap();
    c.bench_function("synthesize_medium_expr", |b| {
        b.iter(|| synthesize("bench", &parsed.expr, &parsed.vars, "y"))
    });
}

criterion_group!(benches, bench_place, bench_synthesize);
criterion_main!(benches);
