//! Bench: placement and synthesis throughput.

use cnfet_bench::harness::Harness;
use cnfet_core::Scheme;
use cnfet_dk::{build_library, DesignKit};
use cnfet_flow::{full_adder, place_cnfet_with, synthesize};
use cnfet_logic::Expr;

fn main() {
    let mut h = Harness::new("flow");
    let fa = full_adder();
    let kit = DesignKit::cnfet65();
    let lib1 = build_library(&kit, Scheme::Scheme1).unwrap();
    let lib2 = build_library(&kit, Scheme::Scheme2).unwrap();
    h.bench("place_fa_scheme1", 100, || place_cnfet_with(&fa, &lib1));
    h.bench("place_fa_scheme2", 100, || place_cnfet_with(&fa, &lib2));

    let parsed = Expr::parse("(a*b + c*d) * (e + f*g) + !(a*h)").unwrap();
    h.bench("synthesize_medium_expr", 200, || {
        synthesize("bench", &parsed.expr, &parsed.vars, "y")
    });
    h.finish();
}
