//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds without network access, so criterion is not an
//! option; this harness covers what the perf work needs: named samples
//! over a fixed iteration count, min/mean/max reporting, and a machine-
//! readable JSON baseline under `target/bench-baselines/<suite>.json`
//! that future perf PRs diff against.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark's timing summary.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations (after one untimed warmup).
    pub iters: u32,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Slowest iteration, nanoseconds.
    pub max_ns: f64,
}

/// Collects samples for one bench suite and writes the baseline on
/// [`Harness::finish`].
pub struct Harness {
    suite: String,
    samples: Vec<Sample>,
}

impl Harness {
    /// Starts a suite (named after the bench target).
    pub fn new(suite: impl Into<String>) -> Harness {
        let suite = suite.into();
        println!("bench suite `{suite}`");
        println!(
            "{:<38} {:>6} {:>12} {:>12} {:>12}",
            "name", "iters", "min", "mean", "max"
        );
        Harness {
            suite,
            samples: Vec::new(),
        }
    }

    /// Runs `f` once untimed (warmup), then `iters` timed iterations.
    /// The result of every call is passed through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn bench<T>(&mut self, name: impl Into<String>, iters: u32, mut f: impl FnMut() -> T) {
        let name = name.into();
        black_box(f());
        let mut times = Vec::with_capacity(iters as usize);
        for _ in 0..iters.max(1) {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{:<38} {:>6} {:>12} {:>12} {:>12}",
            name,
            iters,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        self.samples.push(Sample {
            name,
            iters: iters.max(1),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        });
    }

    /// Prints the footer and writes `target/bench-baselines/<suite>.json`
    /// under the workspace target directory.
    pub fn finish(self) {
        let dir = baseline_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.json", self.suite));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("baseline written to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// The suite as a JSON baseline document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"suite\": \"{}\",\n  \"samples\": [\n",
            self.suite
        ));
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \"max_ns\": {:.1}}}{}\n",
                s.name,
                s.iters,
                s.min_ns,
                s.mean_ns,
                s.max_ns,
                if i + 1 == self.samples.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parses a baseline document previously written by [`Harness::finish`]
/// back into `(suite, samples)`. This is the exact inverse of
/// [`Harness::to_json`] — a hand-rolled scanner, since the workspace
/// builds without serde — and returns `None` on any malformed field.
pub fn parse_baseline(json: &str) -> Option<(String, Vec<Sample>)> {
    let suite = field_str(json, "\"suite\"")?;
    let mut samples = Vec::new();
    for chunk in json.split("{\"name\"").skip(1) {
        // Re-anchor the chunk so the field helpers see a full object.
        let chunk = format!("{{\"name\"{}", chunk.split('}').next()?);
        samples.push(Sample {
            name: field_str(&chunk, "\"name\"")?,
            iters: field_f64(&chunk, "\"iters\"")? as u32,
            min_ns: field_f64(&chunk, "\"min_ns\"")?,
            mean_ns: field_f64(&chunk, "\"mean_ns\"")?,
            max_ns: field_f64(&chunk, "\"max_ns\"")?,
        });
    }
    Some((suite, samples))
}

/// Extracts the string value of `"key": "value"`.
fn field_str(json: &str, key: &str) -> Option<String> {
    let after = &json[json.find(key)? + key.len()..];
    let open = after.find('"')? + 1;
    let rest = &after[open..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the numeric value of `"key": 123.4`.
fn field_f64(json: &str, key: &str) -> Option<f64> {
    let after = &json[json.find(key)? + key.len()..];
    let colon = after.find(':')? + 1;
    let rest = after[colon..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The canonical path of a suite's baseline:
/// `<baseline dir>/<suite>.json`. See [`parse_baseline`] to read one
/// back.
pub fn baseline_path(suite: &str) -> std::path::PathBuf {
    baseline_dir().join(format!("{suite}.json"))
}

/// The baseline directory: `$CARGO_TARGET_DIR/bench-baselines` when set,
/// else the workspace `target/` (two levels above this crate's manifest
/// when run under cargo), else the current directory.
fn baseline_dir() -> std::path::PathBuf {
    if let Some(t) = std::env::var_os("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(t).join("bench-baselines");
    }
    if let Some(m) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = std::path::PathBuf::from(m);
        if let Some(ws) = manifest.parent().and_then(|p| p.parent()) {
            return ws.join("target/bench-baselines");
        }
    }
    std::path::PathBuf::from("target/bench-baselines")
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_record_and_serialize() {
        let mut h = Harness::new("unit");
        let mut calls = 0u32;
        h.bench("counting", 5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 6, "one warmup + five timed");
        assert_eq!(h.samples.len(), 1);
        assert!(h.samples[0].min_ns <= h.samples[0].mean_ns);
        assert!(h.samples[0].mean_ns <= h.samples[0].max_ns);
        let json = h.to_json();
        assert!(json.contains("\"suite\": \"unit\""));
        assert!(json.contains("\"name\": \"counting\""));
    }

    #[test]
    fn parse_baseline_inverts_to_json() {
        let mut h = Harness::new("roundtrip");
        h.bench("fast", 3, || 1 + 1);
        h.bench("slow", 2, || {
            std::thread::sleep(std::time::Duration::from_micros(50))
        });
        let (suite, samples) = parse_baseline(&h.to_json()).expect("parses");
        assert_eq!(suite, "roundtrip");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "fast");
        assert_eq!(samples[0].iters, 3);
        assert_eq!(samples[1].name, "slow");
        assert!((samples[1].min_ns - h.samples[1].min_ns).abs() < 0.11);
        assert!((samples[1].mean_ns - h.samples[1].mean_ns).abs() < 0.11);
    }

    #[test]
    fn parse_baseline_rejects_garbage() {
        assert!(parse_baseline("not json").is_none());
        assert!(parse_baseline("{\"suite\": \"x\", \"samples\": [{\"name\": \"y\"}]}").is_none());
    }
}
