//! Shared reporting helpers for the table/figure regenerator binaries,
//! and the workspace's dependency-free benchmark harness.
//!
//! Each binary under `src/bin/` regenerates one experimental artifact of
//! the paper and prints measured-vs-paper rows:
//!
//! * `table1` — Table 1 (area difference, new vs old immune layouts);
//! * `fig2_immunity` — Figure 2 (vulnerable vs immune NAND under
//!   mispositioned CNTs);
//! * `fig34_layouts` — Figures 3–4 (NAND3 and AOI layouts, SVG/GDS dumps);
//! * `fig7_fo4` — Figure 7 (FO4 delay gain vs number of CNTs);
//! * `case_study1` — Case study 1 (technology comparison + area gain);
//! * `case_study2` — Case study 2 (full-adder delay/energy/area);
//! * `edp_summary` — the headline EDP/EDAP gains.
//!
//! The `benches/` targets use [`harness`] (the workspace builds without
//! network access, so criterion is not available): wall-clock timing over
//! a fixed iteration count, a printed table, and a JSON baseline written
//! under `target/bench-baselines/` for future perf PRs to diff against.

pub mod harness;

/// Formats a measured-vs-paper comparison line.
pub fn compare_line(label: &str, measured: f64, paper: f64, unit: &str) -> String {
    let delta = if paper != 0.0 {
        format!("{:+.1}%", (measured - paper) / paper * 100.0)
    } else {
        "—".to_string()
    };
    format!("{label:<34} measured {measured:>9.3} {unit:<5} paper {paper:>9.3} {unit:<5} Δ {delta}")
}

/// Renders a simple ASCII table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_line_formats() {
        let line = compare_line("test", 4.2, 4.0, "x");
        assert!(line.contains("measured"));
        assert!(line.contains("+5.0%"));
    }

    #[test]
    fn row_aligns() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
