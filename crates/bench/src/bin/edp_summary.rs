//! Regenerates the headline **EDP/EDAP** numbers of the abstract and
//! conclusions.

use cnfet_bench::compare_line;
use cnfet_core::area::inverter_area_gain;
use cnfet_core::DesignRules;
use cnfet_device::fo4::gain_curve;
use cnfet_device::{CmosModel, CnfetModel};

fn main() {
    let cnfet = CnfetModel::poly_65nm();
    let cmos = CmosModel::industrial_65nm();
    let rules = DesignRules::cnfet65();

    let curve = gain_curve(&cnfet, &cmos, 32);
    let peak = curve
        .iter()
        .max_by(|a, b| a.delay_gain.total_cmp(&b.delay_gain))
        .expect("nonempty");
    let area = inverter_area_gain(4, &rules);
    let edp = peak.delay_gain * peak.energy_gain;
    let edap = edp * area;

    println!("Headline gains of the CNFET inverter at the optimal pitch\n");
    println!("{}", compare_line("delay gain", peak.delay_gain, 4.2, "x"));
    println!(
        "{}",
        compare_line("energy/cycle gain", peak.energy_gain, 2.0, "x")
    );
    println!("{}", compare_line("area gain", area, 1.4, "x"));
    println!("{}", compare_line("EDP gain", edp, 8.4, "x"));
    println!("{}", compare_line("EDAP gain", edap, 12.0, "x"));
    println!("\nAbstract: \"more than 4x in delay, 2x in energy/cycle and more than");
    println!("30% area savings\"; conclusions: \"EDAP gains in the order of ~12x\".");
    println!("(The conclusions also quote \">10x EDP\", which is inconsistent with");
    println!("the paper's own 4.2x × 2x = 8.4x — see EXPERIMENTS.md.)");
}
