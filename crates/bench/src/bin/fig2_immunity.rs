//! Regenerates the **Figure 2** comparison: mispositioned CNTs on the
//! vulnerable CMOS-style NAND versus the immune layouts, plus the formal
//! immunity certificates — one `ImmunityRequest` per layout, both engines
//! in a single pass.

use cnfet::core::{GenerateOptions, Scheme, Sizing, StdCellKind, Style};
use cnfet::immunity::McOptions;
use cnfet::{CellRequest, ImmunityEngine, ImmunityRequest, Session};

fn main() {
    let session = Session::new();
    println!("Figure 2 — functional immunity to mispositioned CNTs");
    println!("(Monte-Carlo: 20000 wavy tubes, slope ≤ 1.0, plus exact certification)\n");
    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "layout", "failures", "P(fail)", "certified"
    );

    let cases = [
        (
            "INV vulnerable (fig 2a)",
            StdCellKind::Inv,
            Style::Vulnerable,
        ),
        (
            "NAND2 vulnerable (fig 2b)",
            StdCellKind::Nand(2),
            Style::Vulnerable,
        ),
        (
            "NAND2 old immune [6] (2c)",
            StdCellKind::Nand(2),
            Style::OldEtched,
        ),
        (
            "NAND2 new immune (ours)",
            StdCellKind::Nand(2),
            Style::NewImmune,
        ),
        (
            "NAND3 new immune (ours)",
            StdCellKind::Nand(3),
            Style::NewImmune,
        ),
        (
            "AOI31 new immune (fig 4)",
            StdCellKind::Aoi31,
            Style::NewImmune,
        ),
    ];
    let opts = McOptions {
        tubes: 20_000,
        ..McOptions::default()
    };

    for (label, kind, style) in cases {
        let report = session
            .run(&ImmunityRequest {
                cell: CellRequest::new(kind).options(GenerateOptions {
                    style,
                    scheme: Scheme::Scheme1,
                    sizing: Sizing::Matched { base_lambda: 4 },
                    ..GenerateOptions::default()
                }),
                engine: ImmunityEngine::Both(opts.clone()),
            })
            .expect("cell generates");
        let mc = report.mc.expect("monte-carlo ran");
        let cert = report.cert.expect("certification ran");
        println!(
            "{label:<28} {:>10} {:>11.2}% {:>12}",
            mc.failures,
            mc.failure_probability() * 100.0,
            if cert.immune { "immune" } else { "NOT immune" }
        );
    }

    println!("\nPaper claim: the new layout technique ensures 100% functional");
    println!("immunity to mispositioned CNTs — certified above for every immune cell");
    println!("(zero failures and a sound reachability certificate).");
}
