//! Regenerates **Figure 7**: FO4 delay gain of the CNFET inverter over the
//! CMOS one as a function of the number of CNTs per device.

use cnfet_device::fo4::{cnfet_fo4_delay_at_pitch, gain_curve};
use cnfet_device::{CmosModel, CnfetModel};

fn main() {
    let cnfet = CnfetModel::poly_65nm();
    let cmos = CmosModel::industrial_65nm();
    let curve = gain_curve(&cnfet, &cmos, 32);

    println!("Figure 7 — FO4 delay gain vs number of CNTs (4λ device width)\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "CNTs", "pitch/nm", "delay gain", "energy gain"
    );
    for p in &curve {
        let marker = if p.n_tubes == 26 {
            "  <= optimal pitch (5 nm)"
        } else {
            ""
        };
        println!(
            "{:>6} {:>10.2} {:>12.2} {:>12.2}{marker}",
            p.n_tubes, p.pitch_nm, p.delay_gain, p.energy_gain
        );
    }

    let peak = curve
        .iter()
        .max_by(|a, b| a.delay_gain.total_cmp(&b.delay_gain))
        .expect("nonempty");
    println!("\nAnchors (paper → measured):");
    println!(
        "  1 CNT/device delay gain:   2.75x → {:.2}x",
        curve[0].delay_gain
    );
    println!(
        "  1 CNT/device energy gain:  6.3x  → {:.2}x",
        curve[0].energy_gain
    );
    println!(
        "  optimal pitch:             5 nm  → {:.1} nm ({} tubes)",
        peak.pitch_nm, peak.n_tubes
    );
    println!(
        "  delay gain at optimum:     4.2x  → {:.2}x",
        peak.delay_gain
    );
    println!(
        "  energy gain at optimum:    2.0x  → {:.2}x",
        peak.energy_gain
    );

    // The 1% window claim.
    let w = 130e-9;
    let dmin = cnfet_fo4_delay_at_pitch(&cnfet, 5.0, w);
    let mut worst: f64 = 0.0;
    for i in 0..=20 {
        let p = 4.5 + i as f64 * 0.05;
        let d = cnfet_fo4_delay_at_pitch(&cnfet, p, w);
        worst = worst.max((d - dmin) / dmin * 100.0);
    }
    println!("  4.5–5.5 nm delay window:   ≤1%   → ≤{worst:.2}% variation");
}
