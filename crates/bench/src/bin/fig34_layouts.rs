//! Regenerates the **Figure 3 / Figure 4** layouts: NAND3 in the old and
//! new immune styles, and the AOI31 of Figure 4, dumping SVG and GDSII
//! into `target/figures/` — all served by one session.

use cnfet::core::{GenerateOptions, Scheme, Sizing, StdCellKind, Style};
use cnfet::geom::{render_svg, write_gds, Library};
use cnfet::{CellRequest, Session};
use std::fs;
use std::path::Path;

fn main() {
    let session = Session::new();
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create output directory");

    let mut gds_lib = Library::new("figures_3_4");
    let cases = [
        (
            "fig3a_nand3_old",
            StdCellKind::Nand(3),
            Style::OldEtched,
            Sizing::Matched { base_lambda: 4 },
        ),
        (
            "fig3b_nand3_new",
            StdCellKind::Nand(3),
            Style::NewImmune,
            Sizing::Matched { base_lambda: 4 },
        ),
        (
            "fig4a_aoi31_basic",
            StdCellKind::Aoi31,
            Style::NewImmune,
            Sizing::Uniform { width_lambda: 4 },
        ),
        (
            "fig4b_aoi31_symmetric",
            StdCellKind::Aoi31,
            Style::NewImmune,
            Sizing::Matched { base_lambda: 2 },
        ),
        (
            "fig2b_nand2_vulnerable",
            StdCellKind::Nand(2),
            Style::Vulnerable,
            Sizing::Matched { base_lambda: 4 },
        ),
    ];

    println!("Figures 3–4 — layout generation\n");
    for (name, kind, style, sizing) in cases {
        let cell = session
            .run(&CellRequest::new(kind).options(GenerateOptions {
                style,
                scheme: Scheme::Scheme1,
                sizing,
                ..GenerateOptions::default()
            }))
            .expect("cell generates")
            .cell;
        let svg = render_svg(&cell.cell, 2.0);
        let svg_path = out_dir.join(format!("{name}.svg"));
        fs::write(&svg_path, svg).expect("write svg");
        let mut c = cell.cell.clone();
        c.set_name(name);
        gds_lib.add_cell(c);
        println!(
            "{name:<26} PUN {:>6.0} λ²  PDN {:>6.0} λ²  total {:>6.0} λ²  vias-on-gate {}",
            cell.pun_active_area_l2,
            cell.pdn_active_area_l2,
            cell.active_area_l2(),
            cell.via_on_gate_count,
        );
    }

    let gds_path = out_dir.join("figures_3_4.gds");
    fs::write(&gds_path, write_gds(&gds_lib)).expect("write gds");
    println!("\nSVG and GDSII written to {}", out_dir.display());
    println!("Paper: the new NAND3 layout (fig 3b) is 16.67% smaller than (fig 3a) at 4λ.");
}
