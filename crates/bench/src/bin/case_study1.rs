//! Regenerates **Case study 1**: the FO4 technology comparison and the
//! inverter area gain, cross-validated with the transient simulator.

use cnfet_bench::compare_line;
use cnfet_core::area::inverter_area_gain;
use cnfet_core::DesignRules;
use cnfet_device::fo4::{cmos_fo4, gain_curve};
use cnfet_device::{CmosModel, CnfetModel, Polarity};
use cnfet_spice::{propagation_delay, transient, Circuit, Edge, Waveform};
use std::sync::Arc;

fn main() {
    let cnfet = CnfetModel::poly_65nm();
    let cmos = CmosModel::industrial_65nm();
    let rules = DesignRules::cnfet65();

    println!("Case study 1 — CNFET vs CMOS technology comparison at 65 nm\n");
    let curve = gain_curve(&cnfet, &cmos, 32);
    let peak = &curve[25];
    println!(
        "{}",
        compare_line("FO4 delay gain, 1 CNT", curve[0].delay_gain, 2.75, "x")
    );
    println!(
        "{}",
        compare_line("energy gain, 1 CNT", curve[0].energy_gain, 6.3, "x")
    );
    println!(
        "{}",
        compare_line("optimal CNT pitch", peak.pitch_nm, 5.0, "nm")
    );
    println!(
        "{}",
        compare_line("FO4 delay gain at optimum", peak.delay_gain, 4.2, "x")
    );
    println!(
        "{}",
        compare_line("energy gain at optimum", peak.energy_gain, 2.0, "x")
    );
    println!(
        "{}",
        compare_line(
            "inverter area gain (4λ)",
            inverter_area_gain(4, &rules),
            1.4,
            "x",
        )
    );
    for w in [6, 10] {
        println!(
            "  (area gain declines with width: {}λ → {:.2}x)",
            w,
            inverter_area_gain(w, &rules)
        );
    }

    // Cross-validation: simulate a 5-stage FO4 chain transistor-level and
    // measure the 3rd stage, exactly like the paper's setup.
    println!("\nTransient cross-validation (5-stage FO4 chain, 3rd stage):");
    let cnfet_delay = fo4_chain_delay_cnfet(&cnfet);
    let cmos_delay = fo4_chain_delay_cmos(&cmos);
    let analytic = cmos_fo4(&cmos).delay_s;
    println!(
        "  CMOS 3rd-stage delay: {:.2} ps (analytic estimator: {:.2} ps)",
        cmos_delay * 1e12,
        analytic * 1e12
    );
    println!(
        "  CNFET 3rd-stage delay (26 tubes): {:.2} ps",
        cnfet_delay * 1e12
    );
    println!(
        "  simulated delay gain: {:.2}x (analytic: {:.2}x)",
        cmos_delay / cnfet_delay,
        peak.delay_gain
    );
}

/// Builds a 5-stage inverter chain where each stage fans out to 4 copies
/// (modelled as 4x the gate load) and measures stage 3.
fn fo4_chain_delay_cnfet(model: &CnfetModel) -> f64 {
    let w = 130e-9;
    let n_dev = Arc::new(model.device(Polarity::N, 26, w));
    let p_dev = Arc::new(model.device(Polarity::P, 26, w));
    use cnfet_device::FetModel;
    let cin = n_dev.cgate() + p_dev.cgate();
    fo4_chain_delay(model.vdd, cin, |ckt, vin, vout, vdd| {
        ckt.add_fet(vout, vin, vdd, p_dev.clone());
        ckt.add_fet(vout, vin, Circuit::GROUND, n_dev.clone());
    })
}

fn fo4_chain_delay_cmos(model: &CmosModel) -> f64 {
    let wn = model.wmin_n;
    let wp = model.paired_pmos_width(wn);
    let n_dev = Arc::new(model.device(Polarity::N, wn));
    let p_dev = Arc::new(model.device(Polarity::P, wp));
    use cnfet_device::FetModel;
    let cin = n_dev.cgate() + p_dev.cgate();
    fo4_chain_delay(model.vdd, cin, |ckt, vin, vout, vdd| {
        ckt.add_fet(vout, vin, vdd, p_dev.clone());
        ckt.add_fet(vout, vin, Circuit::GROUND, n_dev.clone());
    })
}

fn fo4_chain_delay(
    vdd_v: f64,
    cin: f64,
    mut add_inverter: impl FnMut(&mut Circuit, cnfet_spice::Node, cnfet_spice::Node, cnfet_spice::Node),
) -> f64 {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add_vsource(vdd, Circuit::GROUND, Waveform::Dc(vdd_v));
    let vin = ckt.node("n0");
    ckt.add_vsource(
        vin,
        Circuit::GROUND,
        Waveform::Pulse {
            v0: 0.0,
            v1: vdd_v,
            delay: 50e-12,
            rise: 5e-12,
            fall: 5e-12,
            width: 2e-9,
            period: 0.0,
        },
    );
    let mut nodes = vec![vin];
    for i in 1..=5 {
        let n = ckt.node(&format!("n{i}"));
        nodes.push(n);
    }
    for i in 0..5 {
        add_inverter(&mut ckt, nodes[i], nodes[i + 1], vdd);
        // FO4: each stage drives 3 extra copies of the next stage's input.
        ckt.add_load(nodes[i + 1], 3.0 * cin);
    }
    let tran = transient(&ckt, 1e-12, 1e-9).expect("fo4 chain converges");
    propagation_delay(&tran, nodes[2], nodes[3], vdd_v, Edge::Any, 0.0).expect("stage 3 switches")
}
