//! CI perf gate: compares a freshly-run bench baseline against the
//! committed reference and fails when a cached-hit sample regresses.
//!
//! ```text
//! cargo bench -p cnfet-bench --bench session
//! cargo run -p cnfet-bench --bin check_regression
//! ```
//!
//! By default it reads the committed reference from
//! `crates/bench/baselines/session.json`, the fresh run from
//! `target/bench-baselines/session.json`, and fails (exit 1) when any
//! gated sample — the `cached_*` / `contended_*` / `mixed_batch_*`
//! hit-path samples, i.e. the latencies that are pure cache/lock/pool
//! work and therefore meaningful to gate — is more than 25% slower than
//! the reference.
//!
//! The committed reference and the CI runner are different machines, so
//! absolute nanoseconds do not transfer. Each gated sample is therefore
//! normalized by an **anchor** sample from its own run (default: the
//! `cold_serial` generation workload): the gated metric is
//! `min_ns / anchor.min_ns`, a machine-relative cost of the cache hit
//! path in units of "cold generation work", and the >25% comparison is
//! applied to that ratio. Cold samples time the layout generator itself
//! and are reported as info only. Pass `--absolute` for raw-nanosecond
//! comparison on a same-machine reference.
//!
//! Flags: `--baseline <path>`, `--current <path>`, `--max-regress <pct>`
//! (also honors the `BENCH_MAX_REGRESS_PCT` env var), `--gate <prefix>`
//! (repeatable; replaces the default gated prefixes), `--anchor <prefix>`,
//! `--absolute`.

use cnfet_bench::harness::{baseline_path, parse_baseline, Sample};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Sample-name prefixes gated by default: the pure cache/lock hit paths,
/// the heterogeneous `submit_all` mix (JobHandle + pool dispatch over
/// cache hits), the composite sweep's, 1000-die repair lot's, converged
/// co-optimization's, and 64-bit adder macro's whole-report hits, and
/// the MNA engine's cold transient + characterization-sweep workloads.
const DEFAULT_GATES: [&str; 10] = [
    "cached_",
    "contended_",
    "library_scheme1_cached",
    "macro_cla64_cached",
    "mixed_batch_",
    "optimize_converged_cached",
    "repair_1000_dies_cached",
    "sweep_grid_cached",
    "sweep_grid_mna",
    "tran_inverter_cold",
];

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    max_regress_pct: f64,
    gates: Vec<String>,
    anchor: String,
    absolute: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/session.json"),
        current: baseline_path("session"),
        max_regress_pct: std::env::var("BENCH_MAX_REGRESS_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25.0),
        gates: DEFAULT_GATES.iter().map(|s| s.to_string()).collect(),
        anchor: "cold_serial".to_string(),
        absolute: false,
    };
    let mut it = std::env::args().skip(1);
    let mut custom_gates = Vec::new();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--current" => args.current = PathBuf::from(value("--current")?),
            "--max-regress" => {
                args.max_regress_pct = value("--max-regress")?
                    .parse()
                    .map_err(|e| format!("--max-regress: {e}"))?
            }
            "--gate" => custom_gates.push(value("--gate")?),
            "--anchor" => args.anchor = value("--anchor")?,
            "--absolute" => args.absolute = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !custom_gates.is_empty() {
        args.gates = custom_gates;
    }
    Ok(args)
}

/// The anchor's `min_ns` in a sample set: the first sample whose name
/// starts with the anchor prefix.
fn anchor_min_ns<'a>(samples: impl IntoIterator<Item = &'a Sample>, anchor: &str) -> Option<f64> {
    samples
        .into_iter()
        .find(|s| s.name.starts_with(anchor))
        .map(|s| s.min_ns)
}

fn load(path: &PathBuf) -> Result<Vec<Sample>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (_, samples) =
        parse_baseline(&text).ok_or_else(|| format!("{}: malformed baseline", path.display()))?;
    Ok(samples)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (reference, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(r), Ok(c)) => (r, c),
        (r, c) => {
            for e in [r.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };
    // Normalizing by a same-run anchor makes the gated metric
    // machine-relative: the committed reference and the CI runner are
    // different hardware, so raw nanoseconds do not transfer.
    let anchors = if args.absolute {
        None
    } else {
        match (
            anchor_min_ns(&reference, &args.anchor),
            anchor_min_ns(&current, &args.anchor),
        ) {
            (Some(r), Some(c)) => Some((r, c)),
            _ => {
                eprintln!(
                    "error: anchor sample `{}*` missing from reference or current run",
                    args.anchor
                );
                return ExitCode::from(2);
            }
        }
    };
    let current: HashMap<&str, &Sample> = current.iter().map(|s| (s.name.as_str(), s)).collect();

    match anchors {
        Some(_) => println!(
            "perf gate: min_ns / same-run `{}*` min_ns, vs {}, limit +{:.0}%",
            args.anchor,
            args.baseline.display(),
            args.max_regress_pct
        ),
        None => println!(
            "perf gate: absolute min_ns vs {}, limit +{:.0}%",
            args.baseline.display(),
            args.max_regress_pct
        ),
    }
    println!(
        "{:<38} {:>12} {:>12} {:>8}  verdict",
        "name", "reference", "current", "delta"
    );
    let mut failures = 0u32;
    for reference_sample in &reference {
        let name = reference_sample.name.as_str();
        let gated = args.gates.iter().any(|g| name.starts_with(g.as_str()));
        let Some(current_sample) = current.get(name) else {
            if gated {
                println!(
                    "{name:<38} {:>12.0} {:>12} {:>8}  FAIL (missing)",
                    reference_sample.min_ns, "—", "—"
                );
                failures += 1;
            }
            continue;
        };
        let (reference_metric, current_metric) = match anchors {
            Some((r, c)) => (
                reference_sample.min_ns / r.max(f64::MIN_POSITIVE),
                current_sample.min_ns / c.max(f64::MIN_POSITIVE),
            ),
            None => (reference_sample.min_ns, current_sample.min_ns),
        };
        let delta_pct =
            (current_metric - reference_metric) / reference_metric.max(f64::MIN_POSITIVE) * 100.0;
        let verdict = if !gated {
            "info"
        } else if delta_pct > args.max_regress_pct {
            failures += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{name:<38} {:>12.0} {:>12.0} {:>+7.1}%  {verdict}",
            reference_sample.min_ns, current_sample.min_ns, delta_pct
        );
    }
    if failures > 0 {
        eprintln!(
            "perf gate FAILED: {failures} gated sample(s) regressed >{:.0}%",
            args.max_regress_pct
        );
        return ExitCode::from(1);
    }
    println!("perf gate passed");
    ExitCode::SUCCESS
}
