//! Regenerates **Table 1**: area difference between the new compact
//! immune layout and the etched-region layout of Patil et al. \[6\].

use cnfet_bench::row;
use cnfet_core::area::{table1, TABLE1_WIDTHS};
use cnfet_core::DesignRules;

fn main() {
    let rules = DesignRules::cnfet65();
    let entries = table1(&rules);

    println!("Table 1 — area difference between the new and old [6] layouts");
    println!("(percent of the old layout's active area; paper values in parentheses)\n");
    let widths = [16, 18, 18, 18, 18];
    let header: Vec<String> = std::iter::once("Cell type".to_string())
        .chain(TABLE1_WIDTHS.iter().map(|w| format!("{w}λ")))
        .collect();
    println!("{}", row(&header, &widths));
    for e in &entries {
        let mut cells = vec![e.label.to_string()];
        for i in 0..4 {
            cells.push(format!("{:5.2}% ({:5.2}%)", e.measured[i], e.paper[i]));
        }
        println!("{}", row(&cells, &widths));
    }

    println!("\nNAND/NOR rows use the paper's series-compensated sizing");
    println!("(\"n-CNFETs are three times bigger than the p-CNFETs for a NAND3\");");
    println!("AOI/OAI rows use uniform sizing, which is what reproduces the printed values.");
}
