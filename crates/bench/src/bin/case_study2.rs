//! Regenerates **Case study 2**: the full adder of Figure 8 — delay and
//! energy gains over CMOS, and the area gains of the two layout schemes.
//! All three runs are typed `FlowRequest`s against one session, so the
//! Scheme-1 library is built once and shared.

use cnfet::core::Scheme;
use cnfet::{FlowRequest, FlowSource, Session, SimSpec};
use cnfet_bench::compare_line;
use std::collections::BTreeMap;

fn main() {
    let session = Session::new();
    println!("Case study 2 — full adder (9x NAND2 2X + 4X/7X/9X inverters)\n");

    // Area: CMOS rows vs Scheme 1 rows vs Scheme 2 compact shelves.
    let cmos = session
        .run(&FlowRequest::cmos(FlowSource::FullAdder))
        .expect("cmos placement");
    let s1 = session
        .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1))
        .expect("scheme 1 placement");
    let s2 = session
        .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme2))
        .expect("scheme 2 placement");
    println!("placement                    area/λ²   width×height        utilization");
    for (name, p) in [
        ("CMOS rows", &cmos.placement),
        ("CNFET scheme 1", &s1.placement),
        ("CNFET scheme 2", &s2.placement),
    ] {
        println!(
            "{name:<26} {:>9.0}   {:>7.0} × {:<8.0}   {:>6.1}%",
            p.area_l2,
            p.width_l,
            p.height_l,
            p.utilization * 100.0
        );
    }
    println!();
    println!(
        "{}",
        compare_line(
            "area gain, scheme 1",
            cmos.placement.area_l2 / s1.placement.area_l2,
            1.4,
            "x",
        )
    );
    println!(
        "{}",
        compare_line(
            "area gain, scheme 2",
            cmos.placement.area_l2 / s2.placement.area_l2,
            1.6,
            "x",
        )
    );

    // Delay/energy: transistor-level simulation with placed wire loads.
    // Toggle `a` with b=1, cin=0 so both sum and carry switch.
    let mut ties = BTreeMap::new();
    ties.insert("b".to_string(), true);
    ties.insert("cin".to_string(), false);

    let mut delay_gains = Vec::new();
    let mut energy_gains = Vec::new();
    for out in ["sum", "carry"] {
        let sim = SimSpec {
            toggle_in: "a".to_string(),
            ties: ties.clone(),
            watch_out: out.to_string(),
        };
        let cnfet = session
            .run(&FlowRequest::cnfet(FlowSource::FullAdder, Scheme::Scheme1).simulate(sim.clone()))
            .expect("cnfet FA simulates")
            .metrics
            .expect("simulation requested");
        let cmos = session
            .run(&FlowRequest::cmos(FlowSource::FullAdder).simulate(sim))
            .expect("cmos FA simulates")
            .metrics
            .expect("simulation requested");
        println!(
            "\npath a→{out}: CNFET {:.1} ps / {:.2} fJ   CMOS {:.1} ps / {:.2} fJ",
            cnfet.delay_s * 1e12,
            cnfet.energy_j * 1e15,
            cmos.delay_s * 1e12,
            cmos.energy_j * 1e15
        );
        delay_gains.push(cmos.delay_s / cnfet.delay_s);
        energy_gains.push(cmos.energy_j / cnfet.energy_j);
    }
    let avg_delay = delay_gains.iter().sum::<f64>() / delay_gains.len() as f64;
    let avg_energy = energy_gains.iter().sum::<f64>() / energy_gains.len() as f64;
    println!();
    println!(
        "{}",
        compare_line("average delay gain", avg_delay, 3.5, "x")
    );
    println!(
        "{}",
        compare_line("average energy gain", avg_energy, 1.5, "x")
    );
    println!("\nPaper: >30% (scheme 1) and >50% (scheme 2) area savings over CMOS,");
    println!("~3.5x delay and ~1.5x energy/cycle improvement.");
    let stats = session.stats();
    println!(
        "(session: {} flows, {} library builds, {} library cache hits)",
        stats.flows.requests(),
        stats.libraries.misses,
        stats.libraries.hits
    );
}
