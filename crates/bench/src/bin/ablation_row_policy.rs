//! Ablation: the paper's per-product-term row construction versus this
//! library's full-Euler extension (DESIGN.md calls this design choice
//! out explicitly).
//!
//! The paper lays every multi-device SOP product term in its own row;
//! a minimum Euler-trail cover can snake several terms through shared
//! contacts instead, and is never larger.

use cnfet_bench::row;
use cnfet_core::{
    generate_cell, GenerateOptions, RowPolicy, Scheme, Sizing, StdCellKind, Style,
};
use cnfet_immunity::certify;

fn main() {
    println!("Ablation — row decomposition policy (uniform 4λ sizing)\n");
    let widths = [10, 16, 16, 10, 10];
    println!(
        "{}",
        row(
            &[
                "cell".into(),
                "paper rows / λ²".into(),
                "full Euler / λ²".into(),
                "saving".into(),
                "immune".into()
            ],
            &widths
        )
    );

    for kind in StdCellKind::ALL {
        let mk = |policy| {
            generate_cell(
                kind,
                &GenerateOptions {
                    style: Style::NewImmune,
                    scheme: Scheme::Scheme1,
                    sizing: Sizing::Uniform { width_lambda: 4 },
                    row_policy: policy,
                    ..GenerateOptions::default()
                },
            )
            .expect("generates")
        };
        let paper = mk(RowPolicy::PaperProductTerms);
        let euler = mk(RowPolicy::FullEuler);
        let saving = (paper.active_area_l2() - euler.active_area_l2())
            / paper.active_area_l2()
            * 100.0;
        let immune = certify(&euler.semantics).immune;
        println!(
            "{}",
            row(
                &[
                    kind.name(),
                    format!("{:.0}", paper.active_area_l2()),
                    format!("{:.0}", euler.active_area_l2()),
                    format!("{saving:.1}%"),
                    format!("{immune}"),
                ],
                &widths
            )
        );
        assert!(
            euler.active_area_l2() <= paper.active_area_l2() + 1e-9,
            "{kind}: full Euler must never lose"
        );
        assert!(immune, "{kind}: full Euler layout must stay immune");
    }
    println!("\nThe full-Euler policy collapses e.g. the AOI22 pull-down from two");
    println!("16λ rows into one 29λ snake — a compaction beyond the paper's own");
    println!("technique, with immunity preserved (certified above).");
}
