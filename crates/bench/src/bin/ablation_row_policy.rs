//! Ablation: the paper's per-product-term row construction versus this
//! library's full-Euler extension (DESIGN.md calls this design choice
//! out explicitly).
//!
//! The paper lays every multi-device SOP product term in its own row;
//! a minimum Euler-trail cover can snake several terms through shared
//! contacts instead, and is never larger. Both variants of every cell go
//! through one session — the 2×12 request matrix is a single batch.

use cnfet::core::{GenerateOptions, RowPolicy, Scheme, Sizing, StdCellKind, Style};
use cnfet::{CellRequest, ImmunityRequest, Session};
use cnfet_bench::row;

fn main() {
    let session = Session::new();
    println!("Ablation — row decomposition policy (uniform 4λ sizing)\n");
    let widths = [10, 16, 16, 10, 10];
    println!(
        "{}",
        row(
            &[
                "cell".into(),
                "paper rows / λ²".into(),
                "full Euler / λ²".into(),
                "saving".into(),
                "immune".into()
            ],
            &widths
        )
    );

    let request = |kind, policy| {
        CellRequest::new(kind).options(GenerateOptions {
            style: Style::NewImmune,
            scheme: Scheme::Scheme1,
            sizing: Sizing::Uniform { width_lambda: 4 },
            row_policy: policy,
            ..GenerateOptions::default()
        })
    };
    let requests: Vec<CellRequest> = StdCellKind::ALL
        .into_iter()
        .flat_map(|kind| {
            [
                request(kind, RowPolicy::PaperProductTerms),
                request(kind, RowPolicy::FullEuler),
            ]
        })
        .collect();
    let results = session.run_batch(&requests);

    for (kind, pair) in StdCellKind::ALL.into_iter().zip(results.chunks(2)) {
        let paper = &pair[0].as_ref().expect("generates").cell;
        let euler = &pair[1].as_ref().expect("generates").cell;
        let saving =
            (paper.active_area_l2() - euler.active_area_l2()) / paper.active_area_l2() * 100.0;
        // The immunity request recalls the batch-cached cell.
        let immune = session
            .run(&ImmunityRequest::certify(request(
                kind,
                RowPolicy::FullEuler,
            )))
            .expect("certifies")
            .immune;
        println!(
            "{}",
            row(
                &[
                    kind.name(),
                    format!("{:.0}", paper.active_area_l2()),
                    format!("{:.0}", euler.active_area_l2()),
                    format!("{saving:.1}%"),
                    format!("{immune}"),
                ],
                &widths
            )
        );
        assert!(
            euler.active_area_l2() <= paper.active_area_l2() + 1e-9,
            "{kind}: full Euler must never lose"
        );
        assert!(immune, "{kind}: full Euler layout must stay immune");
    }
    assert_eq!(
        session.stats().cells.misses,
        2 * StdCellKind::ALL.len() as u64,
        "certification must not regenerate"
    );
    println!("\nThe full-Euler policy collapses e.g. the AOI22 pull-down from two");
    println!("16λ rows into one 29λ snake — a compaction beyond the paper's own");
    println!("technique, with immunity preserved (certified above).");
}
