//! Series–parallel device networks and their duals.

use crate::expr::Expr;
use crate::vars::VarId;
use std::collections::BTreeSet;
use std::fmt;

/// A series–parallel network of FET devices.
///
/// A network conducts between its two terminals when the boolean condition
/// it realizes is true: a [`SpNetwork::Device`] conducts when its gate
/// variable is 1, [`SpNetwork::Series`] is conjunction, and
/// [`SpNetwork::Parallel`] is disjunction. Pull-down networks realize the
/// gate's complemented function directly; pull-up networks realize the
/// [dual](SpNetwork::dual).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SpNetwork {
    /// A single transistor controlled by a gate signal.
    Device(VarId),
    /// Sub-networks connected head-to-tail (AND).
    Series(Vec<SpNetwork>),
    /// Sub-networks connected across the same pair of terminals (OR).
    Parallel(Vec<SpNetwork>),
}

/// Error converting an expression into a network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The expression contains negation; pull networks are positive-unate.
    NotPositive,
    /// The expression contains a constant, which has no device realization.
    ConstantSubexpression,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NotPositive => {
                write!(
                    f,
                    "pull networks require a positive (negation-free) expression"
                )
            }
            NetworkError::ConstantSubexpression => {
                write!(f, "constants cannot be realized as devices")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

impl SpNetwork {
    /// Builds the network realizing a positive expression (AND → series,
    /// OR → parallel), flattened to canonical form.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NotPositive`] on negations and
    /// [`NetworkError::ConstantSubexpression`] on constants.
    ///
    /// # Example
    ///
    /// ```
    /// use cnfet_logic::{Expr, SpNetwork};
    /// let e = Expr::parse("A*B + C").unwrap();
    /// let n = SpNetwork::from_expr(&e.expr).unwrap();
    /// assert_eq!(n.device_count(), 3);
    /// ```
    pub fn from_expr(expr: &Expr) -> Result<SpNetwork, NetworkError> {
        let net = match expr {
            Expr::Var(v) => SpNetwork::Device(*v),
            Expr::Const(_) => return Err(NetworkError::ConstantSubexpression),
            Expr::Not(_) => return Err(NetworkError::NotPositive),
            Expr::And(es) => SpNetwork::Series(
                es.iter()
                    .map(SpNetwork::from_expr)
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Or(es) => SpNetwork::Parallel(
                es.iter()
                    .map(SpNetwork::from_expr)
                    .collect::<Result<_, _>>()?,
            ),
        };
        Ok(net.normalized())
    }

    /// The dual network: series and parallel swapped. The pull-up network
    /// of a static gate is the dual of its pull-down network.
    pub fn dual(&self) -> SpNetwork {
        match self {
            SpNetwork::Device(v) => SpNetwork::Device(*v),
            SpNetwork::Series(ns) => SpNetwork::Parallel(ns.iter().map(SpNetwork::dual).collect()),
            SpNetwork::Parallel(ns) => SpNetwork::Series(ns.iter().map(SpNetwork::dual).collect()),
        }
    }

    /// Canonical form: nested series-of-series and parallel-of-parallel are
    /// flattened, singleton groups unwrapped.
    pub fn normalized(&self) -> SpNetwork {
        match self {
            SpNetwork::Device(v) => SpNetwork::Device(*v),
            SpNetwork::Series(ns) => {
                let mut flat = Vec::new();
                for n in ns {
                    match n.normalized() {
                        SpNetwork::Series(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("nonempty")
                } else {
                    SpNetwork::Series(flat)
                }
            }
            SpNetwork::Parallel(ns) => {
                let mut flat = Vec::new();
                for n in ns {
                    match n.normalized() {
                        SpNetwork::Parallel(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("nonempty")
                } else {
                    SpNetwork::Parallel(flat)
                }
            }
        }
    }

    /// Whether the network conducts under an assignment bitmask.
    pub fn conducts(&self, assignment: u64) -> bool {
        match self {
            SpNetwork::Device(v) => assignment >> v.index() & 1 == 1,
            SpNetwork::Series(ns) => ns.iter().all(|n| n.conducts(assignment)),
            SpNetwork::Parallel(ns) => ns.iter().any(|n| n.conducts(assignment)),
        }
    }

    /// Number of devices (transistors).
    pub fn device_count(&self) -> usize {
        match self {
            SpNetwork::Device(_) => 1,
            SpNetwork::Series(ns) | SpNetwork::Parallel(ns) => {
                ns.iter().map(SpNetwork::device_count).sum()
            }
        }
    }

    /// Sorted distinct gate variables.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            SpNetwork::Device(v) => out.push(*v),
            SpNetwork::Series(ns) | SpNetwork::Parallel(ns) => {
                for n in ns {
                    n.collect_vars(out);
                }
            }
        }
    }

    /// All terminal-to-terminal conduction paths, each as the set of gates
    /// along it. A network conducts iff some path's gates are all on.
    ///
    /// The immunity analysis compares stray CNT conduction conditions
    /// against this set (Section III of the paper / Patil et al. \[6\]).
    pub fn paths(&self) -> Vec<BTreeSet<VarId>> {
        match self {
            SpNetwork::Device(v) => vec![BTreeSet::from([*v])],
            SpNetwork::Parallel(ns) => ns.iter().flat_map(SpNetwork::paths).collect(),
            SpNetwork::Series(ns) => {
                let mut acc: Vec<BTreeSet<VarId>> = vec![BTreeSet::new()];
                for n in ns {
                    let sub = n.paths();
                    let mut next = Vec::with_capacity(acc.len() * sub.len());
                    for a in &acc {
                        for s in &sub {
                            let mut merged = a.clone();
                            merged.extend(s.iter().copied());
                            next.push(merged);
                        }
                    }
                    acc = next;
                }
                acc
            }
        }
    }

    /// All minimal cut sets (gate sets whose simultaneous off-state
    /// disconnects the terminals): the paths of the dual network.
    pub fn cuts(&self) -> Vec<BTreeSet<VarId>> {
        self.dual().paths()
    }

    /// Depth of the longest series chain through the network — the
    /// worst-case device stack, which sizing policies compensate for.
    pub fn max_series_depth(&self) -> usize {
        match self {
            SpNetwork::Device(_) => 1,
            SpNetwork::Series(ns) => ns.iter().map(SpNetwork::max_series_depth).sum(),
            SpNetwork::Parallel(ns) => ns
                .iter()
                .map(SpNetwork::max_series_depth)
                .max()
                .unwrap_or(0),
        }
    }

    /// Top-level parallel branches (the SOP "product terms" when the
    /// network came from an SOP expression). For series or device
    /// networks, returns a single branch.
    pub fn branches(&self) -> Vec<&SpNetwork> {
        match self {
            SpNetwork::Parallel(ns) => ns.iter().collect(),
            other => vec![other],
        }
    }
}

impl fmt::Display for SpNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpNetwork::Device(v) => write!(f, "{v}"),
            SpNetwork::Series(ns) => {
                write!(f, "series(")?;
                for (i, n) in ns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, ")")
            }
            SpNetwork::Parallel(ns) => {
                write!(f, "par(")?;
                for (i, n) in ns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::vars::VarTable;

    fn net(s: &str) -> SpNetwork {
        let mut vars = VarTable::new();
        let e = Expr::parse_with(s, &mut vars).unwrap();
        SpNetwork::from_expr(&e).unwrap()
    }

    #[test]
    fn conduction_matches_expression() {
        let mut vars = VarTable::new();
        let e = Expr::parse_with("A*(B+C*D)+E", &mut vars).unwrap();
        let n = SpNetwork::from_expr(&e).unwrap();
        for m in 0..32u64 {
            assert_eq!(n.conducts(m), e.eval(m), "mask {m:05b}");
        }
    }

    #[test]
    fn dual_complement_identity() {
        // Dual network conducts exactly when original does NOT conduct under
        // complemented inputs: D*(x) = !D(!x).
        let n = net("A*(B+C)+D");
        let d = n.dual();
        let nvars = 4;
        let full = (1u64 << nvars) - 1;
        for m in 0..=full {
            assert_eq!(d.conducts(m), !n.conducts(!m & full), "mask {m:b}");
        }
    }

    #[test]
    fn dual_of_dual_is_identity() {
        for s in ["A", "A*B*C", "A+B+C", "A*(B+C)+D*E"] {
            let n = net(s);
            assert_eq!(n.dual().dual(), n, "{s}");
        }
    }

    #[test]
    fn rejects_negative_and_constant() {
        let mut vars = VarTable::new();
        let neg = Expr::parse_with("!A", &mut vars).unwrap();
        assert_eq!(SpNetwork::from_expr(&neg), Err(NetworkError::NotPositive));
        let konst = Expr::parse_with("A+1", &mut vars).unwrap();
        assert_eq!(
            SpNetwork::from_expr(&konst),
            Err(NetworkError::ConstantSubexpression)
        );
    }

    #[test]
    fn paths_of_aoi21() {
        // PDN of AOI21: A*B + C → paths {A,B} and {C}.
        let n = net("A*B+C");
        let paths = n.paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.len() == 2));
        assert!(paths.iter().any(|p| p.len() == 1));
    }

    #[test]
    fn paths_characterize_conduction() {
        let n = net("A*(B+C*D)+E");
        let paths = n.paths();
        for m in 0..32u64 {
            let via_paths = paths
                .iter()
                .any(|p| p.iter().all(|v| m >> v.index() & 1 == 1));
            assert_eq!(via_paths, n.conducts(m));
        }
    }

    #[test]
    fn cuts_block_conduction() {
        let n = net("A*B+C");
        for cut in n.cuts() {
            // Turn on everything except the cut gates: must not conduct.
            let mut m = u64::MAX;
            for v in &cut {
                m &= !(1 << v.index());
            }
            assert!(!n.conducts(m), "cut {cut:?} fails to block");
        }
    }

    #[test]
    fn series_depth() {
        assert_eq!(net("A*B*C").max_series_depth(), 3);
        assert_eq!(net("A+B+C").max_series_depth(), 1);
        assert_eq!(net("(A+B)*C").max_series_depth(), 2);
        assert_eq!(net("A*B+C").max_series_depth(), 2);
    }

    #[test]
    fn normalization_flattens() {
        let n = SpNetwork::Series(vec![
            SpNetwork::Series(vec![
                SpNetwork::Device(VarId(0)),
                SpNetwork::Device(VarId(1)),
            ]),
            SpNetwork::Device(VarId(2)),
        ])
        .normalized();
        assert_eq!(
            n,
            SpNetwork::Series(vec![
                SpNetwork::Device(VarId(0)),
                SpNetwork::Device(VarId(1)),
                SpNetwork::Device(VarId(2)),
            ])
        );
    }

    #[test]
    fn branches_of_sop() {
        let n = net("A*B+C*D+E");
        assert_eq!(n.branches().len(), 3);
        assert_eq!(net("A*B").branches().len(), 1);
    }
}
