//! Boolean expressions: AST, parser, evaluator.

use crate::vars::{VarId, VarTable};
use std::fmt;

/// A boolean expression over named variables.
///
/// Supported concrete syntax (see [`Expr::parse`]):
///
/// * variables: identifiers (`A`, `cin`, `x1`);
/// * AND: `*` or `&`; OR: `+` or `|`;
/// * NOT: prefix `!`/`~` or postfix `'` (as in the paper's `(ABC+D)'`);
/// * constants `0` and `1`; parentheses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A variable reference.
    Var(VarId),
    /// Logical constant.
    Const(bool),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction of two or more operands.
    And(Vec<Expr>),
    /// Disjunction of two or more operands.
    Or(Vec<Expr>),
}

/// Error from [`Expr::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which parsing failed.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Expr {
    /// Parses an expression, interning variables into a fresh table.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input.
    ///
    /// # Example
    ///
    /// ```
    /// use cnfet_logic::Expr;
    /// let e = Expr::parse("!(A*B + C)").unwrap();
    /// assert_eq!(e.vars().len(), 3);
    /// ```
    pub fn parse(input: &str) -> Result<ExprWithVars, ParseError> {
        let mut vars = VarTable::new();
        let expr = Self::parse_with(input, &mut vars)?;
        Ok(ExprWithVars { expr, vars })
    }

    /// Parses an expression, interning variables into an existing table so
    /// several expressions can share ids.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input.
    pub fn parse_with(input: &str, vars: &mut VarTable) -> Result<Expr, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            vars,
        };
        let e = p.parse_or()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(e)
    }

    /// Evaluates under an assignment bitmask (bit `i` = value of `VarId(i)`).
    pub fn eval(&self, assignment: u64) -> bool {
        match self {
            Expr::Var(v) => assignment >> v.index() & 1 == 1,
            Expr::Const(b) => *b,
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(es) => es.iter().all(|e| e.eval(assignment)),
            Expr::Or(es) => es.iter().any(|e| e.eval(assignment)),
        }
    }

    /// Sorted list of distinct variables appearing in the expression.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Var(v) => out.push(*v),
            Expr::Const(_) => {}
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
        }
    }

    /// Whether the expression is positive-unate syntactically (contains no
    /// negation). Pull networks of static gates must be positive.
    pub fn is_positive(&self) -> bool {
        match self {
            Expr::Var(_) | Expr::Const(_) => true,
            Expr::Not(_) => false,
            Expr::And(es) | Expr::Or(es) => es.iter().all(Expr::is_positive),
        }
    }

    /// Applies De Morgan's laws to push all negations to the literals,
    /// returning the negation-normal form of `!self`.
    pub fn complement_nnf(&self) -> Expr {
        match self {
            Expr::Var(_) => Expr::Not(Box::new(self.clone())),
            Expr::Const(b) => Expr::Const(!b),
            Expr::Not(e) => e.to_nnf(),
            Expr::And(es) => Expr::Or(es.iter().map(Expr::complement_nnf).collect()),
            Expr::Or(es) => Expr::And(es.iter().map(Expr::complement_nnf).collect()),
        }
    }

    /// Negation-normal form of `self`.
    pub fn to_nnf(&self) -> Expr {
        match self {
            Expr::Var(_) | Expr::Const(_) => self.clone(),
            Expr::Not(e) => e.complement_nnf(),
            Expr::And(es) => Expr::And(es.iter().map(Expr::to_nnf).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(Expr::to_nnf).collect()),
        }
    }

    /// Renders with explicit operators using the given name table.
    pub fn display<'a>(&'a self, vars: &'a VarTable) -> DisplayExpr<'a> {
        DisplayExpr { expr: self, vars }
    }
}

/// An expression together with the variable table its ids refer to.
#[derive(Clone, Debug)]
pub struct ExprWithVars {
    /// The parsed expression.
    pub expr: Expr,
    /// Names of the variables appearing in `expr`.
    pub vars: VarTable,
}

impl ExprWithVars {
    /// Evaluates under an assignment bitmask.
    pub fn eval(&self, assignment: u64) -> bool {
        self.expr.eval(assignment)
    }

    /// Sorted distinct variables.
    pub fn vars(&self) -> Vec<VarId> {
        self.expr.vars()
    }
}

/// Helper returned by [`Expr::display`].
pub struct DisplayExpr<'a> {
    expr: &'a Expr,
    vars: &'a VarTable,
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Expr, vars: &VarTable, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
            match e {
                Expr::Var(v) => f.write_str(vars.name(*v)),
                Expr::Const(b) => write!(f, "{}", u8::from(*b)),
                Expr::Not(inner) => {
                    f.write_str("!")?;
                    go(inner, vars, f, 2)
                }
                Expr::And(es) => {
                    let need = parent >= 2;
                    if need {
                        f.write_str("(")?;
                    }
                    for (i, sub) in es.iter().enumerate() {
                        if i > 0 {
                            f.write_str("*")?;
                        }
                        go(sub, vars, f, 1)?;
                    }
                    if need {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
                Expr::Or(es) => {
                    let need = parent >= 1;
                    if need {
                        f.write_str("(")?;
                    }
                    for (i, sub) in es.iter().enumerate() {
                        if i > 0 {
                            f.write_str("+")?;
                        }
                        go(sub, vars, f, 0)?;
                    }
                    if need {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self.expr, self.vars, f, 0)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    vars: &'a mut VarTable,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut terms = vec![self.parse_and()?];
        while let Some(c) = self.peek() {
            if c == b'+' || c == b'|' {
                self.pos += 1;
                terms.push(self.parse_and()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            Expr::Or(terms)
        })
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut factors = vec![self.parse_factor()?];
        loop {
            match self.peek() {
                Some(b'*') | Some(b'&') => {
                    self.pos += 1;
                    factors.push(self.parse_factor()?);
                }
                // Implicit AND by juxtaposition: `AB`, `A(B+C)`, `!A B`.
                Some(c)
                    if c == b'('
                        || c == b'!'
                        || c == b'~'
                        || c.is_ascii_alphabetic()
                        || c == b'_' =>
                {
                    factors.push(self.parse_factor()?);
                }
                _ => break,
            }
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("nonempty")
        } else {
            Expr::And(factors)
        })
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        let mut e = match self.peek() {
            Some(b'!') | Some(b'~') => {
                self.pos += 1;
                let inner = self.parse_factor()?;
                Expr::Not(Box::new(inner))
            }
            Some(b'(') => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if self.peek() != Some(b')') {
                    return Err(self.err("expected `)`"));
                }
                self.pos += 1;
                inner
            }
            Some(b'0') => {
                self.pos += 1;
                Expr::Const(false)
            }
            Some(b'1') => {
                self.pos += 1;
                Expr::Const(true)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_alphanumeric()
                        || self.bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let name =
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii identifier");
                Expr::Var(self.vars.intern(name))
            }
            _ => return Err(self.err("expected variable, constant, `(`, `!` or `~`")),
        };
        // Postfix complement(s): A', (A+B)''.
        while self.peek() == Some(b'\'') {
            self.pos += 1;
            e = Expr::Not(Box::new(e));
        }
        Ok(e)
    }
}

/// Parses a *single-letter-variable* product-of-letters shorthand like the
/// paper's `ABC+D`, treating every ASCII letter as its own variable.
///
/// Provided as a convenience for writing cell functions exactly as the
/// paper prints them. Multi-character identifiers in the input still work
/// (identifier tokens take maximal munch), so prefer [`Expr::parse`] unless
/// you need letter-splitting.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_letters(input: &str, vars: &mut VarTable) -> Result<Expr, ParseError> {
    // Insert explicit `*` between adjacent letters so `ABC` → `A*B*C`.
    let mut rewritten = String::with_capacity(input.len() * 2);
    let chars: Vec<char> = input.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        rewritten.push(c);
        if c.is_ascii_alphabetic() {
            if let Some(&next) = chars.get(i + 1) {
                if next.is_ascii_alphabetic() {
                    rewritten.push('*');
                }
            }
        }
    }
    Expr::parse_with(&rewritten, vars)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_same_function(a: &str, b: &str) {
        let mut vars = VarTable::new();
        let ea = Expr::parse_with(a, &mut vars).unwrap();
        let eb = Expr::parse_with(b, &mut vars).unwrap();
        let n = vars.len();
        for m in 0..1u64 << n {
            assert_eq!(ea.eval(m), eb.eval(m), "{a} vs {b} at {m:b}");
        }
    }

    #[test]
    fn parses_basic_operators() {
        assert_same_function("A*B", "A&B");
        assert_same_function("A+B", "A|B");
        assert_same_function("!A", "~A");
        assert_same_function("!A", "A'");
    }

    #[test]
    fn implicit_and() {
        assert_same_function("A B", "A*B");
        assert_same_function("A(B+C)", "A*(B+C)");
    }

    #[test]
    fn precedence_and_over_or() {
        let parsed = Expr::parse("A*B+C").unwrap();
        // (A*B)+C: true when C alone.
        assert!(parsed.eval(0b100));
        assert!(!parsed.eval(0b001));
        assert!(parsed.eval(0b011));
    }

    #[test]
    fn paper_style_postfix_complement() {
        let e = Expr::parse("(A*B*C + D)'").unwrap();
        // !(ABC+D): false when D=1.
        assert!(!e.eval(0b1000));
        assert!(!e.eval(0b0111));
        assert!(e.eval(0b0011));
    }

    #[test]
    fn letters_shorthand() {
        let mut vars = VarTable::new();
        let e = parse_letters("ABC+D", &mut vars).unwrap();
        assert_eq!(vars.len(), 4);
        assert!(e.eval(0b0111));
        assert!(e.eval(0b1000));
        assert!(!e.eval(0b0101));
    }

    #[test]
    fn constants() {
        assert!(Expr::parse("1").unwrap().expr.eval(0));
        assert!(!Expr::parse("0").unwrap().expr.eval(0));
        assert_same_function("A*1", "A");
        assert_same_function("A+0", "A");
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("A+").is_err());
        assert!(Expr::parse("(A").is_err());
        assert!(Expr::parse("A)").is_err());
        assert!(Expr::parse("A $ B").is_err());
    }

    #[test]
    fn nnf_and_complement() {
        let parsed = Expr::parse("!(A*!B + !C)").unwrap();
        let nnf = parsed.expr.to_nnf();
        // NNF evaluates identically.
        for m in 0..8u64 {
            assert_eq!(parsed.expr.eval(m), nnf.eval(m));
        }
        // And all negations are on literals.
        fn check(e: &Expr) -> bool {
            match e {
                Expr::Not(inner) => matches!(**inner, Expr::Var(_)),
                Expr::And(es) | Expr::Or(es) => es.iter().all(check),
                _ => true,
            }
        }
        assert!(check(&nnf));
    }

    #[test]
    fn positivity() {
        assert!(Expr::parse("A*B+C").unwrap().expr.is_positive());
        assert!(!Expr::parse("A*!B").unwrap().expr.is_positive());
    }

    #[test]
    fn display_round_trip() {
        let parsed = Expr::parse("!(A*B+C)*(D+E)").unwrap();
        let shown = parsed.expr.display(&parsed.vars).to_string();
        let mut vars2 = VarTable::new();
        let reparsed = Expr::parse_with(&shown, &mut vars2).unwrap();
        for m in 0..32u64 {
            assert_eq!(
                parsed.expr.eval(m),
                reparsed.eval(m),
                "mask {m:b} in {shown}"
            );
        }
    }

    #[test]
    fn vars_sorted_dedup() {
        let parsed = Expr::parse("B*A+B*C").unwrap();
        assert_eq!(parsed.vars().len(), 3);
    }
}
