//! The multigraph view of a pull network: contacts are nodes, gates are
//! edges — exactly the abstraction the paper uses to draw Euler paths.

use crate::network::SpNetwork;
use crate::vars::VarId;
use std::fmt;

/// Index of a node within a [`PullGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of an edge within a [`PullGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// The electrical role of a graph node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The supply-side terminal (Vdd for a PUN, Gnd for a PDN).
    Source,
    /// The output terminal of the network.
    Drain,
    /// An intermediate node (`m1`, `m2`, … in the paper's Figure 4).
    Internal,
}

/// A device edge: a transistor whose gate is `gate`, connected between
/// nodes `a` and `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Gate signal controlling the device.
    pub gate: VarId,
    /// One terminal.
    pub a: NodeId,
    /// The other terminal.
    pub b: NodeId,
}

/// A multigraph of devices between metal-contact nodes.
///
/// Node 0 is always the [`NodeKind::Source`] terminal and node 1 the
/// [`NodeKind::Drain`] terminal.
///
/// # Example
///
/// ```
/// use cnfet_logic::{Expr, SpNetwork, PullGraph, NodeKind};
/// let e = Expr::parse("A*B+C").unwrap();
/// let g = PullGraph::from_network(&SpNetwork::from_expr(&e.expr).unwrap());
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.kind(cnfet_logic::NodeId(0)), NodeKind::Source);
/// ```
#[derive(Clone, Debug)]
pub struct PullGraph {
    kinds: Vec<NodeKind>,
    edges: Vec<Edge>,
}

impl PullGraph {
    /// Creates a graph with only the two terminals.
    pub fn new() -> PullGraph {
        PullGraph {
            kinds: vec![NodeKind::Source, NodeKind::Drain],
            edges: Vec::new(),
        }
    }

    /// The source terminal node.
    pub const SOURCE: NodeId = NodeId(0);
    /// The drain (output) terminal node.
    pub const DRAIN: NodeId = NodeId(1);

    /// Builds the multigraph of a series–parallel network between the two
    /// terminals, introducing internal nodes for series connections.
    pub fn from_network(net: &SpNetwork) -> PullGraph {
        let mut g = PullGraph::new();
        g.wire(net, PullGraph::SOURCE, PullGraph::DRAIN);
        g
    }

    fn wire(&mut self, net: &SpNetwork, a: NodeId, b: NodeId) {
        match net {
            SpNetwork::Device(v) => {
                self.edges.push(Edge { gate: *v, a, b });
            }
            SpNetwork::Parallel(ns) => {
                for n in ns {
                    self.wire(n, a, b);
                }
            }
            SpNetwork::Series(ns) => {
                let mut prev = a;
                for (i, n) in ns.iter().enumerate() {
                    let next = if i + 1 == ns.len() {
                        b
                    } else {
                        self.add_internal()
                    };
                    self.wire(n, prev, next);
                    prev = next;
                }
            }
        }
    }

    /// Adds an internal node, returning its id.
    pub fn add_internal(&mut self) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Internal);
        id
    }

    /// Adds a device edge.
    pub fn add_edge(&mut self, gate: VarId, a: NodeId, b: NodeId) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { gate, a, b });
        id
    }

    /// The role of a node.
    ///
    /// # Panics
    ///
    /// Panics on an id from another graph.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0 as usize]
    }

    /// Number of nodes (including both terminals).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of device edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge record for `id`.
    ///
    /// # Panics
    ///
    /// Panics on an id from another graph.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.0 as usize]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree (number of incident device edges, self-loops counted twice).
    pub fn degree(&self, node: NodeId) -> usize {
        self.edges
            .iter()
            .map(|e| usize::from(e.a == node) + usize::from(e.b == node))
            .sum()
    }

    /// Nodes of odd degree, ascending.
    pub fn odd_nodes(&self) -> Vec<NodeId> {
        (0..self.kinds.len() as u32)
            .map(NodeId)
            .filter(|&n| self.degree(n) % 2 == 1)
            .collect()
    }

    /// Human-readable node label (`Vdd`/`Gnd` handled by the caller via
    /// `source_name`).
    pub fn node_label(&self, node: NodeId, source_name: &str) -> String {
        match self.kind(node) {
            NodeKind::Source => source_name.to_string(),
            NodeKind::Drain => "Out".to_string(),
            NodeKind::Internal => format!("m{}", node.0 - 1),
        }
    }
}

impl Default for PullGraph {
    fn default() -> Self {
        PullGraph::new()
    }
}

impl fmt::Display for PullGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph({} nodes", self.node_count())?;
        for e in &self.edges {
            write!(f, ", {}-[{}]-{}", e.a.0, e.gate, e.b.0)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::vars::VarTable;

    fn graph(s: &str) -> PullGraph {
        let mut vars = VarTable::new();
        let e = Expr::parse_with(s, &mut vars).unwrap();
        PullGraph::from_network(&SpNetwork::from_expr(&e).unwrap())
    }

    #[test]
    fn parallel_has_no_internal_nodes() {
        let g = graph("A+B+C");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(PullGraph::SOURCE), 3);
        assert_eq!(g.degree(PullGraph::DRAIN), 3);
    }

    #[test]
    fn series_chain_nodes() {
        let g = graph("A*B*C");
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(PullGraph::SOURCE), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
    }

    #[test]
    fn aoi31_structure() {
        // (A+B+C)*D — the paper's Figure 4 PUN.
        let g = graph("(A+B+C)*D");
        // Nodes: Vdd, Out, m1. Edges: A,B,C from Vdd to m1; D from m1 to Out.
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        let m1 = NodeId(2);
        assert_eq!(g.kind(m1), NodeKind::Internal);
        assert_eq!(g.degree(m1), 4);
        assert_eq!(g.degree(PullGraph::SOURCE), 3);
        assert_eq!(g.degree(PullGraph::DRAIN), 1);
    }

    #[test]
    fn odd_nodes_nand3_pun() {
        let g = graph("A+B+C");
        assert_eq!(g.odd_nodes(), vec![PullGraph::SOURCE, PullGraph::DRAIN]);
    }

    #[test]
    fn labels() {
        let g = graph("(A+B)*C");
        assert_eq!(g.node_label(PullGraph::SOURCE, "Vdd"), "Vdd");
        assert_eq!(g.node_label(PullGraph::DRAIN, "Vdd"), "Out");
        assert_eq!(g.node_label(NodeId(2), "Vdd"), "m1");
    }
}
