//! Variable identifiers and name tables.

use std::collections::HashMap;
use std::fmt;

/// A compact identifier for a boolean variable (a gate input signal).
///
/// `VarId`s index into a [`VarTable`]; assignments are bitmasks, so at most
/// 64 distinct variables may appear in one expression — far beyond any
/// standard cell's fan-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Index usable for slices and bitmasks.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Bidirectional map between variable names and [`VarId`]s.
///
/// # Example
///
/// ```
/// use cnfet_logic::VarTable;
/// let mut vars = VarTable::new();
/// let a = vars.intern("A");
/// assert_eq!(vars.intern("A"), a);
/// assert_eq!(vars.name(a), "A");
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Returns the id for `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when more than 64 variables are interned; assignments are
    /// 64-bit masks.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        assert!(self.names.len() < 64, "too many variables (max 64)");
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing variable by name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = VarTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        assert_ne!(a, b);
        assert_eq!(t.intern("A"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(b), "B");
        assert_eq!(t.lookup("C"), None);
    }

    #[test]
    fn iter_in_order() {
        let mut t = VarTable::new();
        t.intern("x");
        t.intern("y");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
