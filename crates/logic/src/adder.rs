//! Generate/propagate carry plans for multi-bit adder macros.
//!
//! The standard-cell layer composes full-adder cells into 8/32/64-bit
//! arithmetic macros; this module provides the *logical* side of that
//! composition: for a given width and [`AdderKind`], the plan of carry
//! computation — the ripple chain, or a Kogge–Stone-style parallel
//! prefix tree over per-bit `(g, t)` pairs (`g = a·b` generate,
//! `t = a + b` transmit/propagate-inclusive) — together with the
//! critical-path depth the characterization layer turns into delay, and
//! a bit-accurate evaluator the tests pin the wiring down with.
//!
//! The plan is pure data: `cnfet-flow` materializes it into NAND2/INV
//! glue gates around reference-instantiated full-adder sub-cells, and
//! the umbrella crate's `MacroRequest` characterizes its critical carry
//! path per bit slice.
//!
//! # Example
//!
//! ```
//! use cnfet_logic::adder::{AdderKind, AdderPlan};
//!
//! let cla = AdderPlan::new(AdderKind::Cla, 32);
//! let ripple = AdderPlan::new(AdderKind::Ripple, 32);
//! assert!(cla.carry_depth() < ripple.carry_depth());
//! let (sum, cout) = cla.evaluate(7, 9, false);
//! assert_eq!((sum, cout), (16, false));
//! ```

/// Carry organization of an adder macro.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdderKind {
    /// Ripple-carry: bit `i`'s carry-out feeds bit `i + 1`'s carry-in;
    /// depth grows linearly with width.
    Ripple,
    /// Carry-look-ahead: a radix-2 parallel prefix tree (Kogge–Stone
    /// shape) over per-bit generate/transmit pairs; depth grows with
    /// `log2(width)`.
    Cla,
}

impl AdderKind {
    /// Stable lower-case wire name (`"ripple"` / `"cla"`).
    pub fn name(self) -> &'static str {
        match self {
            AdderKind::Ripple => "ripple",
            AdderKind::Cla => "cla",
        }
    }
}

/// One combine node of the prefix tree: merges the `(g, t)` span ending
/// at `bit` with the adjacent lower span of length `distance`, producing
/// the span pair for `[bit - 2·distance + 1 ..= bit]` (spans clamp at
/// bit 0, the Kogge–Stone boundary case).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixNode {
    /// Tree level, 1-based (`distance == 1 << (level - 1)`).
    pub level: u32,
    /// Highest bit of the combined span — where the node's output lives.
    pub bit: u32,
    /// How far below `bit` the lower operand span starts.
    pub distance: u32,
}

/// The carry plan of one adder macro: the prefix node list (empty for
/// ripple) plus the derived critical-path depth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdderPlan {
    /// Carry organization.
    pub kind: AdderKind,
    /// Operand width in bits.
    pub width: u32,
    /// Prefix combine nodes in evaluation order (level-major, then bit);
    /// empty for [`AdderKind::Ripple`].
    pub nodes: Vec<PrefixNode>,
}

impl AdderPlan {
    /// Plans a `width`-bit adder of the given kind. Widths of zero are
    /// clamped to one.
    pub fn new(kind: AdderKind, width: u32) -> AdderPlan {
        let width = width.max(1);
        let nodes = match kind {
            AdderKind::Ripple => Vec::new(),
            AdderKind::Cla => {
                let mut nodes = Vec::new();
                let mut distance = 1u32;
                let mut level = 1u32;
                while distance < width {
                    for bit in distance..width {
                        nodes.push(PrefixNode {
                            level,
                            bit,
                            distance,
                        });
                    }
                    distance *= 2;
                    level += 1;
                }
                nodes
            }
        };
        AdderPlan { kind, width, nodes }
    }

    /// Number of tree levels (`0` for ripple and for one-bit spans).
    pub fn levels(&self) -> u32 {
        self.nodes.last().map_or(0, |n| n.level)
    }

    /// Logic stages on the critical carry path, the quantity the
    /// characterization layer scales a stage delay by: one generate
    /// stage plus the chain (ripple) or the tree levels plus the final
    /// carry merge (CLA).
    pub fn carry_depth(&self) -> u32 {
        match self.kind {
            AdderKind::Ripple => self.width,
            AdderKind::Cla => 1 + self.levels() + 1,
        }
    }

    /// Prefix nodes whose *lower* operand is the level-0 span of `bit` —
    /// the fan-out the bit's generate/transmit pair must drive beyond
    /// its own slice. Always `0` for ripple.
    pub fn fanout_of(&self, bit: u32) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.level == 1 && n.bit.saturating_sub(n.distance) == bit)
            .count()
    }

    /// Evaluates the plan bit-accurately: `a + b + cin` over the low
    /// `width` bits, returning `(sum, carry_out)`. The CLA path walks
    /// the actual node list (not a shortcut addition), so a mis-planned
    /// tree fails the comparison against native addition.
    pub fn evaluate(&self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        let width = self.width.min(64);
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let (a, b) = (a & mask, b & mask);
        let bit = |x: u64, i: u32| (x >> i) & 1 == 1;

        // Per-bit generate/transmit (span length 1).
        let mut g: Vec<bool> = (0..width).map(|i| bit(a, i) && bit(b, i)).collect();
        let mut t: Vec<bool> = (0..width).map(|i| bit(a, i) || bit(b, i)).collect();

        let carries: Vec<bool> = match self.kind {
            AdderKind::Ripple => {
                // c[i] = carry into bit i.
                let mut carries = Vec::with_capacity(width as usize + 1);
                carries.push(cin);
                for i in 0..width as usize {
                    let c = *carries.last().expect("seeded with cin");
                    carries.push(g[i] || (t[i] && c));
                }
                carries
            }
            AdderKind::Cla => {
                // Walk the node list: after all levels, (g[i], t[i]) span
                // [0 ..= i], so carry into bit i+1 is g[i] | t[i]&cin.
                for node in &self.nodes {
                    let hi = node.bit as usize;
                    let lo = (node.bit.saturating_sub(node.distance)) as usize;
                    if lo == hi {
                        continue; // span already reaches bit 0
                    }
                    let g_new = g[hi] || (t[hi] && g[lo]);
                    let t_new = t[hi] && t[lo];
                    g[hi] = g_new;
                    t[hi] = t_new;
                }
                let mut carries = Vec::with_capacity(width as usize + 1);
                carries.push(cin);
                for i in 0..width as usize {
                    carries.push(g[i] || (t[i] && cin));
                }
                carries
            }
        };

        let mut sum = 0u64;
        for i in 0..width {
            let s = bit(a, i) ^ bit(b, i) ^ carries[i as usize];
            if s {
                sum |= 1 << i;
            }
        }
        (sum, carries[width as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_match_native_addition() {
        for kind in [AdderKind::Ripple, AdderKind::Cla] {
            for width in [1u32, 5, 8, 32, 64] {
                let plan = AdderPlan::new(kind, width);
                let mask = if width == 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                };
                let samples = [
                    (0u64, 0u64),
                    (mask, 1),
                    (mask, mask),
                    (0x5555_5555_5555_5555, 0xAAAA_AAAA_AAAA_AAAA),
                    (0xDEAD_BEEF_0123_4567, 0x0FED_CBA9_8765_4321),
                ];
                for (a, b) in samples {
                    for cin in [false, true] {
                        let (sum, cout) = plan.evaluate(a, b, cin);
                        let wide =
                            (u128::from(a & mask)) + (u128::from(b & mask)) + u128::from(cin);
                        assert_eq!(sum, (wide as u64) & mask, "{kind:?} w{width} {a:x}+{b:x}");
                        assert_eq!(cout, wide >> width & 1 == 1, "{kind:?} w{width} cout");
                    }
                }
            }
        }
    }

    #[test]
    fn cla_depth_is_logarithmic() {
        for (width, levels) in [(8u32, 3u32), (32, 5), (64, 6)] {
            let plan = AdderPlan::new(AdderKind::Cla, width);
            assert_eq!(plan.levels(), levels);
            assert_eq!(plan.carry_depth(), levels + 2);
            assert!(plan.carry_depth() < AdderPlan::new(AdderKind::Ripple, width).carry_depth());
        }
    }

    #[test]
    fn ripple_has_no_tree() {
        let plan = AdderPlan::new(AdderKind::Ripple, 32);
        assert!(plan.nodes.is_empty());
        assert_eq!(plan.carry_depth(), 32);
        assert_eq!(plan.fanout_of(3), 0);
    }

    #[test]
    fn kogge_stone_fanout_shape() {
        let plan = AdderPlan::new(AdderKind::Cla, 8);
        // Level-1 nodes combine (i, i-1): bit i's pair feeds node i+1.
        assert_eq!(plan.fanout_of(0), 1);
        assert_eq!(plan.fanout_of(6), 1);
        assert_eq!(plan.fanout_of(7), 0, "top bit feeds no lower span");
        // Node count: sum over levels of (width - 2^(level-1)).
        assert_eq!(plan.nodes.len(), (8 - 1) + (8 - 2) + (8 - 4));
    }
}
