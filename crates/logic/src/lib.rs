//! Boolean logic and series–parallel network machinery for CNFET layout
//! synthesis.
//!
//! The paper's compact imperfection-immune layout technique works on the
//! *transistor network* level: a static CNFET gate computes `F = !D(X)`
//! where the pull-down network realizes the positive-unate function `D` as
//! a series–parallel device graph and the pull-up network realizes its
//! dual. The new layout is obtained by drawing an **Euler path** through
//! the network graph, "considering the metal contacts (Vdd/Out/Gnd) as
//! nodes and gates (A/B/C) as edges" (Section III).
//!
//! This crate provides:
//!
//! * [`Expr`] — boolean expressions with a parser ([`Expr::parse`]) and
//!   evaluator;
//! * [`SpNetwork`] — series–parallel device networks, their duals, path and
//!   cut enumeration;
//! * [`PullGraph`] — the multigraph view (contacts = nodes, gates = edges);
//! * [`euler`] — Euler path construction and minimum open-trail
//!   decomposition, which generalizes the paper's SOP-row construction.
//!
//! # Example: the NAND3 pull-up network of Figure 3
//!
//! ```
//! use cnfet_logic::{Expr, SpNetwork, PullGraph, euler};
//!
//! let pdn_fn = Expr::parse("A*B*C").unwrap();      // NAND3 pull-down: series
//! let pdn = SpNetwork::from_expr(&pdn_fn.expr).unwrap();
//! let pun = pdn.dual();                            // pull-up: parallel
//! let graph = PullGraph::from_network(&pun);
//! let trail = euler::euler_trails(&graph).remove(0);
//! // Vdd-A-Out-B-Vdd-C-Out: 3 gates, 4 contact visits.
//! assert_eq!(trail.edges.len(), 3);
//! assert_eq!(trail.nodes.len(), 4);
//! ```

pub mod adder;
pub mod euler;
pub mod expr;
pub mod graph;
pub mod network;
pub mod vars;

pub use adder::{AdderKind, AdderPlan, PrefixNode};
pub use euler::{euler_path, euler_trails, Trail};
pub use expr::{parse_letters, Expr, ExprWithVars, ParseError};
pub use graph::{EdgeId, NodeId, NodeKind, PullGraph};
pub use network::SpNetwork;
pub use vars::{VarId, VarTable};
